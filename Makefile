# Convenience targets (plain pytest works too; see CONTRIBUTING.md).

.PHONY: install test fuzz check bench bench-report examples all clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/ -q

# Bounded, fully seeded fault-injection pass (deterministic; < 60 s):
# the robustness-marked tests run the 270-case campaign and the
# recover-mode property checks excluded from the default `test` run.
fuzz:
	pytest tests/robustness -q -m robustness

check: test fuzz

bench:
	pytest benchmarks/ --benchmark-only

bench-report:
	rm -f benchmarks/last_report.txt
	pytest benchmarks/ --benchmark-only -s
	@echo "--- consolidated report: benchmarks/last_report.txt"

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

all: test bench

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
