# Convenience targets (plain pytest works too; see CONTRIBUTING.md).

.PHONY: install test fuzz fuzz-quick lint lint-sarif check bench bench-quick bench-report examples all clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/ -q

# Bounded, fully seeded fault-injection pass (deterministic; < 2 min):
# the robustness-marked tests run the 432-case campaign — byte damage,
# zip bombs, hung and crashing workers — and the recover-mode property
# checks excluded from the default `test` run.
fuzz:
	pytest tests/robustness -q -m robustness

# Reduced campaign for CI gating (3 seeds per cell, ~150 cases): same
# grid, same zero-crash contract, well under the job's hard timeout.
# Exit code 1 = at least one crash escaped the structured-error contract.
fuzz-quick:
	PYTHONPATH=src python -m repro fuzz --seeds 3

# AST + dataflow + interprocedural + interval invariant checker
# (REP001-REP021, REP017 retired into REP020;
# docs/STATIC_ANALYSIS.md).  Exit 0 clean / 1 findings / 2 internal
# error; the shipped baseline is empty, so any finding is a regression.
# The per-module rule phase fans out over 2 worker processes; the
# summary line reports wall time and worker count.
lint:
	PYTHONPATH=src python -m repro lint src/repro --baseline lint-baseline.json --jobs 2

# Machine-readable SARIF 2.1.0 report (CI uploads this as an artifact).
# Exit code matches `make lint`; the report is written either way.
lint-sarif:
	PYTHONPATH=src python -m repro lint src/repro --format sarif --jobs 2 > lint-report.sarif

check: test fuzz lint

bench:
	pytest benchmarks/ --benchmark-only

# Decode-throughput regression check (docs/PERFORMANCE.md): times the
# hot decode paths on a deterministic corpus and writes BENCH_pr10.json
# with speedups vs the committed benchmarks/BENCH_baseline.json.
# Corpus size in MB via BENCH_CORPUS_MB (default 2.0).
bench-quick:
	PYTHONPATH=src python benchmarks/bench_decode.py --out BENCH_pr10.json

bench-report:
	rm -f benchmarks/last_report.txt
	pytest benchmarks/ --benchmark-only -s
	@echo "--- consolidated report: benchmarks/last_report.txt"

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

all: test bench

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
