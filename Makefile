# Convenience targets (plain pytest works too; see CONTRIBUTING.md).

.PHONY: install test bench bench-report examples all clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/ -q

bench:
	pytest benchmarks/ --benchmark-only

bench-report:
	rm -f benchmarks/last_report.txt
	pytest benchmarks/ --benchmark-only -s
	@echo "--- consolidated report: benchmarks/last_report.txt"

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

all: test bench

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
