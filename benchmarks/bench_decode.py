"""Benchmark-regression harness for the decode hot paths.

Times the three workloads whose throughput the paper's contribution is
about (Table II / Figure 5) on a deterministic generated corpus:

* ``sequential_inflate`` — byte-domain :func:`repro.deflate.inflate.inflate`
  over a raw DEFLATE payload (the gunzip role);
* ``marker_inflate``     — marker-domain first pass with a fully
  undetermined context (:func:`repro.core.marker_inflate.marker_inflate`);
* ``pugz_two_pass``      — the full two-pass parallel decompressor
  (:func:`repro.core.pugz.pugz_decompress_payload`, serial executor, so
  the number measures single-thread work, not parallel speedup);
* ``seek_cold``          — first touch of an un-indexed gzip file via
  :class:`repro.index.seekable.SeekableGzipReader` (the pugz cold start
  that also builds the checkpoint index); MB/s of the whole corpus the
  cold pass decodes;
* ``seek_warm``          — 64 seeded random 4 KiB ``pread`` calls
  against a pre-built index; MB/s of *served* bytes, so the <= span
  decode overhead per seek is priced in.

Every workload runs once per decode kernel (``--kernel pure|numpy|both``;
default ``both``, or ``$REPRO_KERNEL`` when set), and results are
written as JSON with the schema

    {workload: {kernel: {"mb_per_s": float, "speedup_vs_baseline": float}}}

plus a ``_meta`` entry (corpus size, repeats, python version, kernels).
The committed baseline (``benchmarks/BENCH_baseline.json``) uses the
same nested shape; a legacy flat baseline (``{workload: {"mb_per_s"}}``)
is accepted and applies to every kernel.  ``--max-regression`` gates
each (workload, kernel) cell independently, so neither kernel can
regress behind the other's numbers.  ``speedup_vs_baseline`` > 1 means
this tree is faster.  Run via ``make bench-quick``; see
docs/PERFORMANCE.md "Two-stage kernels".

Determinism: the corpus is seeded (``random.Random(SEED)``) and zlib is
deterministic for a given input/level, so byte streams are identical
across runs and machines — only the wall-clock differs.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
import zlib

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.marker_inflate import marker_inflate  # noqa: E402
from repro.core.pugz import pugz_decompress_payload  # noqa: E402
from repro.deflate.inflate import inflate  # noqa: E402
from repro.index.seekable import SeekableGzipReader  # noqa: E402
from repro.index.zran import build_index  # noqa: E402

SEED = 0x5EED5
DEFAULT_MB = float(os.environ.get("BENCH_CORPUS_MB", "2.0"))
WORKLOADS = (
    "sequential_inflate",
    "marker_inflate",
    "pugz_two_pass",
    "seek_cold",
    "seek_warm",
)


def make_corpus(n_bytes: int, seed: int = SEED) -> bytes:
    """FASTQ-like deterministic ASCII corpus (headers, DNA, qualities)."""
    import random

    rng = random.Random(seed)
    out = bytearray()
    read_id = 0
    while len(out) < n_bytes:
        read_id += 1
        seq_len = rng.randint(80, 120)
        seq = "".join(rng.choice("ACGT") for _ in range(seq_len))
        qual = "".join(chr(rng.randint(33, 73)) for _ in range(seq_len))
        out += (
            f"@SRR000001.{read_id} {read_id}/1\n{seq}\n+\n{qual}\n"
        ).encode("ascii")
    return bytes(out[:n_bytes])


def _time_best(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds of ``fn()``."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_workloads(corpus: bytes, repeats: int, kernel: str) -> dict[str, float]:
    """Measure every workload under ``kernel``; MB/s of decompressed output."""
    payload = zlib.compress(corpus, 6)[2:-4]  # strip zlib framing -> raw DEFLATE
    n_out = len(corpus)

    results: dict[str, float] = {}

    def seq() -> None:
        data = inflate(payload, kernel=kernel).data
        assert data == corpus, "sequential inflate produced wrong bytes"

    results["sequential_inflate"] = n_out / 1e6 / _time_best(seq, repeats)

    def mk() -> None:
        res = marker_inflate(payload, window=None, kernel=kernel)
        assert res.total_output == n_out, "marker inflate wrong length"

    results["marker_inflate"] = n_out / 1e6 / _time_best(mk, repeats)

    def pz() -> None:
        data = pugz_decompress_payload(
            payload, 0, 8 * len(payload), n_chunks=4, executor="serial",
            kernel=kernel,
        )
        assert data == corpus, "pugz produced wrong bytes"

    results["pugz_two_pass"] = n_out / 1e6 / _time_best(pz, repeats)

    gz = _gzip_frame(corpus, payload)

    def cold() -> None:
        reader = SeekableGzipReader(gz, n_chunks=4, kernel=kernel)
        mid = n_out // 2
        assert reader.pread(mid, 4096) == corpus[mid : mid + 4096]

    results["seek_cold"] = n_out / 1e6 / _time_best(cold, repeats)

    idx = build_index(gz, span=1 << 18)
    import random

    rng = random.Random(SEED + 1)
    offsets = [rng.randrange(0, n_out - 4096) for _ in range(64)]

    def warm() -> None:
        reader = SeekableGzipReader(gz, index=idx, kernel=kernel)
        for off in offsets:
            assert reader.pread(off, 4096) == corpus[off : off + 4096]

    results["seek_warm"] = len(offsets) * 4096 / 1e6 / _time_best(warm, repeats)

    return results


def _gzip_frame(corpus: bytes, payload: bytes) -> bytes:
    """Frame the raw DEFLATE payload as a single-member gzip file."""
    import struct

    header = b"\x1f\x8b\x08\x00\x00\x00\x00\x00\x00\xff"
    trailer = struct.pack("<II", zlib.crc32(corpus), len(corpus) & 0xFFFFFFFF)
    return header + payload + trailer


def _baseline_mbps(baseline: dict, workload: str, kernel: str):
    """Baseline MB/s for a (workload, kernel) cell.

    Accepts both the nested per-kernel schema and the legacy flat one,
    where a single number covers every kernel.
    """
    entry = baseline.get(workload, {})
    if kernel in entry and isinstance(entry[kernel], dict):
        return entry[kernel].get("mb_per_s")
    return entry.get("mb_per_s")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--size-mb", type=float, default=DEFAULT_MB,
                    help="corpus size in MB (env BENCH_CORPUS_MB overrides default)")
    ap.add_argument("--repeats", type=int, default=3, help="best-of-N timing")
    ap.add_argument("--kernel", choices=("pure", "numpy", "both"),
                    default=os.environ.get("REPRO_KERNEL") or "both",
                    help="decode kernel(s) to measure "
                         "(default: $REPRO_KERNEL, else both)")
    ap.add_argument("--out", default="BENCH_pr10.json", help="result JSON path")
    ap.add_argument("--baseline", default=os.path.join(
        os.path.dirname(__file__), "BENCH_baseline.json"),
        help="baseline JSON to compare against")
    ap.add_argument("--write-baseline", action="store_true",
                    help="write --out in baseline format (mb_per_s only)")
    ap.add_argument("--max-regression", type=float, default=None,
                    help="exit 1 if any workload is slower than "
                         "baseline * (1 - MAX_REGRESSION), e.g. 0.2")
    args = ap.parse_args(argv)

    kernels = ("pure", "numpy") if args.kernel == "both" else (args.kernel,)
    corpus = make_corpus(int(args.size_mb * 1e6))
    print(
        f"corpus: {len(corpus)/1e6:.2f} MB FASTQ-like, repeats={args.repeats}, "
        f"kernels={'/'.join(kernels)}"
    )
    measured = {k: run_workloads(corpus, args.repeats, k) for k in kernels}

    baseline: dict = {}
    if not args.write_baseline and os.path.exists(args.baseline):
        with open(args.baseline) as fh:
            baseline = json.load(fh)

    header = f"  {'workload':<20}" + "".join(f" {k + ' MB/s':>12}" for k in kernels)
    if len(kernels) == 2:
        header += f" {'numpy/pure':>11}"
    print(header)

    report: dict = {}
    failed: list[str] = []
    for name in WORKLOADS:
        cells: dict = {}
        row = f"  {name:<20}"
        for k in kernels:
            mbps = round(measured[k][name], 3)
            if args.write_baseline:
                cells[k] = {"mb_per_s": mbps}
                row += f" {mbps:12.2f}"
                continue
            base = _baseline_mbps(baseline, name, k)
            speedup = round(mbps / base, 3) if base else None
            cells[k] = {"mb_per_s": mbps, "speedup_vs_baseline": speedup}
            row += f" {mbps:12.2f}"
            if (
                args.max_regression is not None
                and speedup is not None
                and speedup < 1.0 - args.max_regression
            ):
                failed.append(f"{name}[{k}]")
        if len(kernels) == 2:
            row += f" {measured['numpy'][name] / measured['pure'][name]:10.2f}x"
        print(row)
        report[name] = cells

    report["_meta"] = {
        "corpus_mb": round(len(corpus) / 1e6, 3),
        "repeats": args.repeats,
        "python": platform.python_version(),
        "seed": SEED,
        "kernels": list(kernels),
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")

    if failed:
        print(f"REGRESSION: {', '.join(failed)} slower than "
              f"{(1 - args.max_regression):.0%} of baseline", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
