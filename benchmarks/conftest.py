"""Shared benchmark fixtures and the paper-vs-measured report helper.

Every bench prints the rows/series of the corresponding paper table or
figure, with the paper's published values alongside for comparison, and
also stores them in ``benchmark.extra_info`` so the JSON export carries
them.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import sys

import pytest


import os

#: All report blocks are also appended here, so a plain
#: ``pytest benchmarks/ --benchmark-only`` run leaves the full
#: paper-vs-measured record on disk even without ``-s``.
REPORT_PATH = os.environ.get("REPRO_REPORT_FILE", "benchmarks/last_report.txt")


def report(title: str, lines: list[str]) -> None:
    """Print a framed report block and append it to the report file."""
    bar = "=" * max(len(title) + 4, 60)
    out = "\n".join(["", bar, f"| {title}", bar, *lines, bar, ""])
    print(out, file=sys.stderr)
    try:
        with open(REPORT_PATH, "a") as fh:
            fh.write(out + "\n")
    except OSError:
        pass


@pytest.fixture(scope="session")
def reporter():
    return report


@pytest.fixture(scope="session")
def dna_1m():
    """1 Mbp of random DNA — the paper's Section IV-C input."""
    from repro.data import random_dna

    return random_dna(1_000_000, seed=190517)


@pytest.fixture(scope="session")
def fastq_4m():
    """~4.6 MB synthetic FASTQ with safe qualities (resolvable)."""
    from repro.data import synthetic_fastq

    return synthetic_fastq(12_000, read_length=150, seed=101, quality_profile="safe")


@pytest.fixture(scope="session")
def fastq_cross_4m():
    """~4.6 MB synthetic FASTQ with cross-matching content."""
    from repro.data import synthetic_fastq

    return synthetic_fastq(
        12_000, read_length=150, seed=103,
        quality_profile="illumina", barcode="ATCACG",
    )
