"""Ablations of the design choices DESIGN.md calls out.

* confirmation depth (the paper decompresses "five more blocks" after
  a candidate): specificity vs probe cost;
* marker-domain overhead: the price of provenance tracking in pass 1
  (why pugz's per-thread speed is gunzip-class, not libdeflate-class);
* chunk count: two-pass overhead as chunking gets finer.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.marker_inflate import marker_inflate
from repro.core.pugz import pugz_decompress
from repro.core.sync import find_block_start
from repro.data import gzip_zlib
from repro.deflate.gzipfmt import parse_gzip_header
from repro.deflate.inflate import inflate


@pytest.fixture(scope="module")
def stream(fastq_4m):
    gz = gzip_zlib(fastq_4m, 6)
    full = inflate(gz, start_bit=80)
    return gz, full, fastq_4m


def test_ablation_confirm_blocks(benchmark, stream, reporter):
    """Sweep the confirmation depth 0-5; all must stay exact on real
    boundaries, cost grows mildly with depth."""
    gz, full, _ = stream
    target = full.blocks[3]
    start = full.blocks[2].start_bit + 1

    def run():
        rows = {}
        for depth in (0, 1, 2, 5):
            t0 = time.perf_counter()
            sync = find_block_start(gz, start_bit=start, confirm_blocks=depth)
            rows[depth] = (sync.bit_offset, time.perf_counter() - t0)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'confirm':>8}{'found bit':>12}{'seconds':>9}"]
    for d, (bit, secs) in rows.items():
        lines.append(f"{d:>8}{bit:>12}{secs:>9.3f}")
    lines.append("paper uses 5 confirmation blocks.")
    reporter("Ablation: sync confirmation depth", lines)

    for d, (bit, _) in rows.items():
        assert bit == target.start_bit, f"depth {d} found the wrong boundary"


def test_ablation_marker_overhead(benchmark, stream, reporter):
    """Cost of the marker alphabet vs plain byte decoding."""
    gz, _, text = stream
    start, *_ = parse_gzip_header(gz)
    mb = len(gz) / 1e6

    def run():
        t0 = time.perf_counter()
        inflate(gz, start_bit=8 * start)
        byte_rate = mb / (time.perf_counter() - t0)
        t0 = time.perf_counter()
        marker_inflate(gz, start_bit=8 * start)
        marker_rate = mb / (time.perf_counter() - t0)
        return byte_rate, marker_rate

    byte_rate, marker_rate = benchmark.pedantic(run, rounds=1, iterations=1)
    overhead = byte_rate / marker_rate
    reporter(
        "Ablation: marker-domain overhead",
        [
            f"byte-domain decode:   {byte_rate:6.2f} MB/s",
            f"marker-domain decode: {marker_rate:6.2f} MB/s",
            f"overhead factor:      {overhead:6.2f}x",
            "this is why the cost model's pass-1 rate (30 MB/s) sits",
            "below libdeflate's 118 MB/s on the paper's testbed.",
        ],
    )
    benchmark.extra_info["overhead"] = overhead
    assert 1.0 < overhead < 10.0


def test_ablation_chunk_overhead(benchmark, stream, reporter):
    """Two-pass overhead as a function of chunk count (serial, so the
    delta is pure algorithmic cost: syncs, markers, translation)."""
    gz, _, text = stream

    def run():
        rows = {}
        for n in (1, 2, 4, 8):
            t0 = time.perf_counter()
            out, rep = pugz_decompress(gz, n_chunks=n, return_report=True)
            dt = time.perf_counter() - t0
            assert out == text
            rows[n] = (dt, rep.sync_seconds, rep.pass2_seconds,
                       sum(rep.chunk_marker_counts))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'chunks':>7}{'total s':>9}{'sync s':>8}{'pass2 s':>9}{'markers':>10}"]
    for n, (dt, sync_s, p2, markers) in rows.items():
        lines.append(f"{n:>7}{dt:>9.2f}{sync_s:>8.2f}{p2:>9.3f}{markers:>10}")
    reporter("Ablation: chunk-count overhead (serial execution)", lines)

    # More chunks -> more markers to resolve (monotone in expectation).
    assert rows[8][3] >= rows[2][3]
    # Single-chunk path has no sync or pass-2 cost.
    assert rows[1][1] == 0.0 or rows[1][1] < 0.05
    assert rows[1][3] == 0
