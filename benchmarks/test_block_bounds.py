"""Validation of the Appendix X-A probe size bounds.

The probe rejects candidate blocks whose decompressed size falls
outside [1 KiB, 4 MiB].  This bench measures the block-size
distribution real gzip streams produce across workloads and levels —
demonstrating the bounds never reject a genuine block while pruning a
huge share of the false-candidate space.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import stream_block_stats
from repro.data import fastq_like, gzip_zlib, random_dna, synthetic_fastq


def test_block_size_distribution(benchmark, reporter):
    workloads = {
        "fastq L1": (synthetic_fastq(6000, read_length=100, seed=1), 1),
        "fastq L6": (synthetic_fastq(6000, read_length=100, seed=1), 6),
        "fastq L9": (synthetic_fastq(6000, read_length=100, seed=1), 9),
        "dna L6": (random_dna(2_000_000, seed=2), 6),
        "fastq-like L6": (fastq_like(2_000_000, seed=3), 6),
    }

    def run():
        rows = {}
        for name, (data, level) in workloads.items():
            gz = gzip_zlib(data, level)
            stats = stream_block_stats(gz, start_bit=80)
            rows[name] = stats
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'workload':<15}{'blocks':>7}{'min':>9}{'median':>9}{'max':>9}{'in-bounds':>10}"]
    for name, stats in rows.items():
        sizes = stats.out_sizes
        lines.append(
            f"{name:<15}{stats.count:>7}{sizes.min():>9}"
            f"{int(np.median(sizes)):>9}{sizes.max():>9}"
            f"{stats.within_probe_bounds():>10.0%}"
        )
    lines.append("")
    lines.append("probe bounds [1 KiB, 4 MiB] (Appendix X-A) cover every")
    lines.append("interior block of every workload/level combination.")
    reporter("Appendix X-A: block-size bounds validation", lines)

    for name, stats in rows.items():
        assert stats.within_probe_bounds() == 1.0, name
        # gzip's 16K-token buffer keeps blocks far below the 4 MiB cap.
        assert stats.out_sizes.max() < 4 * 1024 * 1024
