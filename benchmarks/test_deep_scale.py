"""Opt-in deep-scale runs (set ``REPRO_DEEP=1`` to enable).

The paper's Figure 2 (bottom) runs 150 MB; the default benches scale to
12 MB.  These deep variants push the pure-Python pipeline towards the
paper's scale (tens of MB, several minutes each) for readers who want
the longer trajectories.  They report; they assert only sanity (the
level-1 trajectory at zlib semantics is an open question the default
bench documents).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import payload_token_stats, undetermined_window_series
from repro.data import fastq_like, gzip_zlib
from repro.deflate.inflate import inflate

DEEP = os.environ.get("REPRO_DEEP") == "1"

pytestmark = pytest.mark.skipif(
    not DEEP, reason="deep-scale runs are opt-in: REPRO_DEEP=1"
)

UNIT = 450
DNA_LEN = 150


def test_fig2_bottom_level1_deep(benchmark, reporter):
    """30 MB FASTQ-like at level 1: how far does the DNA phase decay?"""
    text = fastq_like(30_000_000, seed=190517)
    gz = gzip_zlib(text, 1)

    def run():
        full = inflate(gz, start_bit=80, max_blocks=2)
        b2 = full.blocks[1]
        stats = payload_token_stats(gz, start_bit=80, skip_blocks=1).stats
        oa = max(200, int(stats.mean_offset))
        phase0 = b2.out_start

        def dna_phase(positions):
            return ((positions + phase0) % UNIT) < DNA_LEN

        return undetermined_window_series(gz, b2.start_bit, oa,
                                          position_filter=dna_phase), oa

    series, oa = benchmark.pedantic(run, rounds=1, iterations=1)
    fr = series.fractions
    picks = [int(len(fr) * f) for f in (0.02, 0.1, 0.3, 0.6, 0.9)]
    lines = [f"o_a = {oa}, windows = {len(fr)}, total {series.total / 1e6:.0f} MB"]
    for p in picks:
        lines.append(f"window {p:>6}: DNA undetermined {fr[p]:.3f}")
    lines.append("paper (gzip, 150 MB): level -1 resolves only after ~25 MB.")
    reporter("Deep: FASTQ-like level 1 at 30 MB", lines)
    assert len(fr) > 1000
