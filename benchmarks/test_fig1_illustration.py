"""Figure 1: illustration of the undetermined-context decode.

Paper figure: after a random access, a 32 KiB '?' context is assumed;
the first 192 bytes of blocks 0 / 1 / 10 / 50 show fewer and fewer '?'
characters as literals accumulate and get back-referenced.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.marker import MARKER_BASE, to_bytes
from repro.core.marker_inflate import marker_inflate
from repro.core.sync import find_block_start
from repro.data import gzip_zlib


def test_fig1_blocks(benchmark, fastq_cross_4m, reporter):
    gz = gzip_zlib(fastq_cross_4m, 6)

    def run():
        sync = find_block_start(gz, start_bit=8 * (len(gz) // 5))
        return sync, marker_inflate(gz, start_bit=sync.bit_offset)

    sync, res = benchmark.pedantic(run, rounds=1, iterations=1)

    blocks = res.blocks
    show = [i for i in (0, 1, 10, 50) if i < len(blocks)]
    lines = []
    fractions = {}
    for i in show:
        b = blocks[i]
        segment = res.symbols[b.out_start : b.out_start + 192]
        text = to_bytes(segment, placeholder=ord("?")).decode("ascii", "replace")
        whole = res.symbols[b.out_start : b.out_end]
        frac = float((whole >= MARKER_BASE).mean())
        fractions[i] = frac
        lines.append(f"-- block {i} (undetermined {frac:.1%}) --")
        for k in range(0, 192, 64):
            lines.append("  " + text[k : k + 64].replace("\n", "~"))
    reporter("Figure 1: '?' decay across blocks after random access", lines)
    benchmark.extra_info["fractions"] = {str(k): v for k, v in fractions.items()}

    # The paper's visual: later blocks contain fewer undetermined chars.
    keys = sorted(fractions)
    assert fractions[keys[0]] > fractions[keys[-1]]
    assert fractions[keys[0]] > 0.3  # block 0 heavily undetermined
