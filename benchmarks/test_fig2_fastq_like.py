"""Figure 2 (bottom) + Section IV-D: the FASTQ-like string.

Paper protocol: a 150 MB string of repeated [150 random DNA | 300 'x']
units, compressed at gzip levels -1/-4/default/-9, decompressed from
block 2 with an undetermined context; undetermined fraction per
o_a-sized window.

Scaling substitution (DESIGN.md): we run 12 MB instead of 150 MB, and
count the *DNA phase* of the string.  Under zlib the 'x' spacers form
unbroken back-reference lineages (each run's first 'x' always has a
full-length match to the previous run), so the decaying signal of the
paper's figure lives in the DNA positions.  Findings reproduced:

* levels -4/-6/-9: DNA undetermined fraction collapses quickly —
  random access feasible;
* level -1: DNA stays match-encoded vastly longer (the paper sees
  resolution only after ~25 MB; within our 12 MB the fraction is still
  high), reproducing the "only after around 25 MB" contrast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import payload_token_stats, undetermined_window_series
from repro.data import fastq_like, gzip_zlib
from repro.deflate.inflate import inflate

LEVELS = (1, 4, 6, 9)
DNA_LEN = 150
UNIT = 450  # 150 DNA + 300 'x'
SIZE = 12_000_000


@pytest.fixture(scope="module")
def fastq_like_text():
    return fastq_like(SIZE, dna_length=DNA_LEN, spacer_length=UNIT - DNA_LEN, seed=190517)


def test_fig2_bottom_series(benchmark, fastq_like_text, reporter):
    text = fastq_like_text

    def run():
        series = {}
        meta = {}
        for level in LEVELS:
            gz = gzip_zlib(text, level)
            full = inflate(gz, start_bit=80, max_blocks=2)
            b2 = full.blocks[1]
            stats = payload_token_stats(gz, start_bit=80, skip_blocks=1).stats
            oa = max(200, int(stats.mean_offset))
            phase0 = b2.out_start  # output position 0 = this text offset

            def dna_phase(positions, _phase0=phase0):
                return ((positions + _phase0) % UNIT) < DNA_LEN

            ws = undetermined_window_series(
                gz, b2.start_bit, oa, position_filter=dna_phase
            )
            series[level] = ws.fractions
            meta[level] = (oa, len(gz))
        return series, meta

    series, meta = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"input: {SIZE / 1e6:.0f} MB FASTQ-like (paper: 150 MB; see DESIGN.md)"]
    picks = (1, 10, 50, 200, 500, 1000, 2000)
    lines.append("windowidx " + " ".join(f"{i:>7d}" for i in picks))
    for level in LEVELS:
        s = series[level]
        vals = [s[i - 1] if i - 1 < len(s) else float("nan") for i in picks]
        lines.append(
            f"gzip -{level}   " + " ".join(f"{v:7.3f}" for v in vals)
            + f"   (o_a={meta[level][0]})"
        )
    reporter("Figure 2 (bottom): DNA undetermined fraction, FASTQ-like", lines)
    for level in LEVELS:
        benchmark.extra_info[f"oa_level{level}"] = meta[level][0]

    # --- paper-shape assertions -------------------------------------
    # Lazy levels: DNA fraction collapses (paper: feasible at any level
    # >= -4).  Require < 10% in the late stream.
    for level in (4, 6, 9):
        s = series[level]
        tail = s[int(len(s) * 0.8):]
        assert tail.mean() < 0.10, f"level {level} DNA did not resolve: {tail.mean():.3f}"
    # Level -1: resolution needs ~25 MB in the paper; at 12 MB the DNA
    # must still be mostly undetermined, and clearly above every lazy
    # level — the figure's stark contrast.
    s1 = series[1]
    late1 = s1[int(len(s1) * 0.8):].mean()
    assert late1 > 0.5
    for level in (4, 6, 9):
        s = series[level]
        assert late1 > 5 * max(1e-6, s[int(len(s) * 0.8):].mean())


def test_fastq_like_offsets_exceed_dna_offsets(benchmark, fastq_like_text, reporter):
    """Section IV-D: spacers push DNA match offsets up (>= unit size),
    the mechanism behind the extra literals."""
    text = fastq_like_text[:2_000_000]

    def run():
        gz = gzip_zlib(text, 6)
        stats = payload_token_stats(gz, start_bit=80, skip_blocks=1).stats
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    reporter(
        "Section IV-D: FASTQ-like offsets",
        [f"o_a = {stats.mean_offset:.0f} (unit size {UNIT}; DNA-only file had ~3600)"],
    )
    assert stats.mean_offset > 300
