"""Figure 2 (top) + Section IV-C: undetermined characters on random DNA.

Paper protocol: compress 1 Mbp of random DNA with gzip at levels
-1/-4/default/-9; decompress from block 2 with a fully undetermined
context; count undetermined characters in non-overlapping windows of
size o_a (the stream's average match offset, 3602 at the default
level); overlay the non-greedy model (1 - L_i).

Paper findings reproduced here:

* o_a ~= 3602 at the default level;
* levels -4/-6: undetermined fraction vanishes by window ~150;
* level -9 vanishes later (paper: ~window 790);
* level -1 never vanishes (all-matches encoding, Section V-A).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import payload_token_stats, undetermined_window_series
from repro.data import gzip_zlib
from repro.deflate.inflate import inflate
from repro.models import literal_rate, undetermined_series

LEVELS = (1, 4, 6, 9)


@pytest.fixture(scope="module")
def dna_streams(dna_1m):
    """level -> (payload bytes, block-2 start bit, o_a, l_a)."""
    out = {}
    for level in LEVELS:
        gz = gzip_zlib(dna_1m, level)
        full = inflate(gz, start_bit=80)
        stats = payload_token_stats(gz, start_bit=80, skip_blocks=1).stats
        block2 = full.blocks[1] if len(full.blocks) > 1 else full.blocks[0]
        out[level] = (gz, block2.start_bit, stats.mean_offset, stats.mean_length)
    return out


def test_fig2_top_series(benchmark, dna_streams, reporter):
    """Regenerate the Figure 2 (top) series and check their shapes."""
    oa6 = dna_streams[6][2]
    la6 = dna_streams[6][3]
    window = int(round(oa6))

    def run():
        series = {}
        for level in LEVELS:
            gz, start_bit, _, _ = dna_streams[level]
            series[level] = undetermined_window_series(gz, start_bit, window).fractions
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)

    L1 = literal_rate(mean_match_length=la6)
    n = max(len(s) for s in series.values())
    model = undetermined_series(n, L1)

    lines = [
        f"window size o_a = {window}  (paper: 3602)",
        f"l_a = {la6:.2f}  (paper: 7.6)   model L1 = {L1:.3f}  (paper: ~0.04)",
        "",
        "windowidx " + " ".join(f"{i:>6d}" for i in (1, 10, 25, 50, 100, 150, 200)),
    ]
    for level in LEVELS:
        s = series[level]
        vals = [s[i - 1] if i - 1 < len(s) else float("nan") for i in (1, 10, 25, 50, 100, 150, 200)]
        lines.append(f"gzip -{level}   " + " ".join(f"{v:6.3f}" for v in vals))
    vals = [model[i - 1] for i in (1, 10, 25, 50, 100, 150, 200)]
    lines.append("model     " + " ".join(f"{v:6.3f}" for v in vals))
    reporter("Figure 2 (top): undetermined chars, random DNA 1 Mbp", lines)

    benchmark.extra_info["oa"] = window
    benchmark.extra_info["la"] = la6
    benchmark.extra_info["L1_model"] = L1

    # --- paper-shape assertions -------------------------------------
    # o_a near the paper's 3602.
    assert 2500 < window < 5000
    # The default level vanishes by window ~150 (allow < 2%); level -4
    # decays on the same trajectory but, with zlib's tuning (max_lazy=4
    # suppresses part of the lazy search), needs a few dozen more
    # windows — require < 5% by window 250.
    s = series[6]
    assert s[140:170].mean() < 0.02, "level 6 did not vanish by window 150"
    s4 = series[4]
    assert s4[min(240, len(s4) - 10):].mean() < 0.05, "level 4 did not vanish by window 250"
    # Level -9 decays more slowly than -6.
    s6, s9 = series[6], series[9]
    m = min(len(s6), len(s9), 120)
    assert s9[40:m].mean() > s6[40:m].mean()
    # Level -1: matches-only encoding -> stays essentially fully
    # undetermined (Section V-A: random access impossible).
    s1 = series[1]
    assert s1[-20:].mean() > 0.9
    # The model line tracks the default level in the mid range.
    s = series[6]
    idx = np.arange(10, min(100, len(s)))
    ratio = (s[idx] + 1e-3) / (model[idx] + 1e-3)
    assert 0.25 < np.median(ratio) < 4.0


def test_section4c_oa_by_level(benchmark, dna_streams, reporter):
    """Mean offsets per level; -9's o_a' > default's o_a (paper: 12755
    vs 3602)."""

    def collect():
        return {level: dna_streams[level][2] for level in LEVELS}

    offsets = benchmark.pedantic(collect, rounds=1, iterations=1)
    lines = [f"gzip -{lvl}: o_a = {off:8.1f}" for lvl, off in offsets.items()]
    lines.append("paper: o_a(-6) = 3602, o_a(-9) = 12755")
    reporter("Section IV-C / V-D: average match offsets", lines)
    assert offsets[9] > offsets[6]
    assert 2500 < offsets[6] < 5000
