"""Figure 4: how far initial-context characters travel, by type.

Paper protocol: decompress a FASTQ file from an offset inside it with
an undetermined context; count the characters copied from the initial
context in 32 KiB sliding windows, annotated by the type of the true
byte at that context position (DNA / quality / header / '+').

Paper findings (top: normal compression, bottom: highest):

* normal level: DNA-origin characters disappear by ~2 MB (position
  2^21) while some quality values linger and header characters survive
  to the end of the file;
* highest level: parts of the DNA sequences remain in matches until
  the end of the file.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import context_types_for_offset, origin_counts_by_type
from repro.analysis.origins import TYPE_ORDER
from repro.core.marker_inflate import marker_inflate
from repro.core.sync import find_block_start
from repro.data import gzip_zlib
from repro.deflate.inflate import inflate


def _decode_from_quarter(gz: bytes, text: bytes):
    """Sync at 1/4 of the file, marker-decode, build origin series."""
    sync = find_block_start(gz, start_bit=8 * (len(gz) // 4))
    full = inflate(gz, start_bit=80, max_blocks=None, max_output=len(text))
    target = next(b for b in full.blocks if b.start_bit == sync.bit_offset)
    res = marker_inflate(gz, start_bit=sync.bit_offset)
    ctx_types = context_types_for_offset(text, target.out_start)
    return origin_counts_by_type(res.symbols, ctx_types)


@pytest.mark.parametrize("level,label", [(6, "normal"), (9, "highest")])
def test_fig4(benchmark, level, label, fastq_cross_4m, reporter):
    text = fastq_cross_4m
    gz = gzip_zlib(text, level)

    series = benchmark.pedantic(
        lambda: _decode_from_quarter(gz, text), rounds=1, iterations=1
    )

    counts = series.counts
    n = counts.shape[0]
    picks = [0, 1, 2, 4, 8, 16, 32, n - 1]
    picks = sorted({min(p, n - 1) for p in picks})
    lines = [f"{'window':>7}" + "".join(f"{t:>9}" for t in TYPE_ORDER)]
    for w in picks:
        lines.append(f"{w:>7}" + "".join(f"{counts[w, i]:>9}" for i in range(len(TYPE_ORDER))))
    last = {t: series.last_window_with_type(t) for t in ("dna", "quality", "header")}
    lines += [
        "",
        f"last window containing each type: {last} (of {n} windows)",
        f"paper ({label}): DNA gone by ~2 MB at normal level; headers",
        "persist to the end; at highest level DNA persists too.",
    ]
    reporter(f"Figure 4 ({label} compression): context propagation by type", lines)
    benchmark.extra_info["totals"] = series.totals_by_type()
    benchmark.extra_info["last_window"] = {k: (v if v is None else int(v)) for k, v in last.items()}

    # Shape assertions.
    assert counts.sum() > 0
    # Early windows carry the most context characters.
    assert counts[:2].sum() > counts[n // 2 : n // 2 + 2].sum()
    # Header characters persist deep into the stream (ultra-repetitive
    # headers keep matching each other) — the paper's headline effect.
    assert last["header"] is not None and last["header"] > n // 2


def test_fig4_level_contrast(benchmark, fastq_cross_4m, reporter):
    """Highest compression keeps context characters alive longer than
    normal (total surviving copies and persistence horizon)."""
    text = fastq_cross_4m

    def run():
        out = {}
        for level in (6, 9):
            gz = gzip_zlib(text, level)
            series = _decode_from_quarter(gz, text)
            n = series.counts.shape[0]
            half = series.counts[n // 2 :].sum()
            out[level] = (int(series.counts.sum()), int(half))
        return out

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"level {lvl}: total surviving copies {tot}, in the late half {half}"
        for lvl, (tot, half) in totals.items()
    ]
    reporter("Figure 4 contrast: normal vs highest", lines)
    assert totals[9][1] >= totals[6][1] * 0.5  # 9 persists at least comparably
