"""Figure 5: decompression speed vs thread count (2-32), log scale.

Paper protocol: pugz at 2-32 threads vs gzip, libdeflate and ``cat``
(upper bound); mean +- stdev over files/repetitions.

Modelled through the calibrated testbed simulator (this machine has one
core; DESIGN.md).  Shapes asserted:

* near-linear scaling up to the core count, flattening after;
* pugz crosses libdeflate between 4 and 8 threads;
* everything stays below ``cat``.

A companion measurement runs the *real* pugz at several chunk counts
to document the single-core behaviour (no speedup expected, exactness
checked).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.pugz import pugz_decompress
from repro.data import gzip_zlib, synthetic_fastq
from repro.perf import PAPER_MODEL, simulate_cat, simulate_sequential, sweep_threads

THREADS = (1, 2, 4, 6, 8, 12, 18, 20, 24, 28, 32)


def test_fig5_modelled_sweep(benchmark, reporter):
    sizes = [3000.0, 5000.0, 7500.0]

    def run():
        return sweep_threads(PAPER_MODEL, sizes, list(THREADS), reps=3, seed=42)

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)

    cat = simulate_cat(PAPER_MODEL, 5000).speed_mbps
    gzip_speed = simulate_sequential(PAPER_MODEL, "gunzip", 5000).speed_mbps
    libdeflate = simulate_sequential(PAPER_MODEL, "libdeflate", 5000).speed_mbps

    lines = [f"{'threads':>8}{'pugz MB/s':>12}{'stdev':>8}"]
    for n in THREADS:
        mean, std = sweep[n]
        lines.append(f"{n:>8}{mean:>12.0f}{std:>8.1f}")
    lines += [
        "",
        f"baselines: cat {cat:.0f}  gzip {gzip_speed:.0f}  libdeflate {libdeflate:.0f}",
        "paper figure: pugz reaches ~611 MB/s at 32 threads, crossing",
        "libdeflate in the 4-8 thread range, all below cat.",
    ]
    reporter("Figure 5 (modelled): thread scaling", lines)
    benchmark.extra_info["sweep"] = {str(k): v for k, v in sweep.items()}

    means = {n: sweep[n][0] for n in THREADS}
    # Monotone up to 24 cores.
    up_to_cores = [means[n] for n in THREADS if n <= 24]
    assert all(a < b for a, b in zip(up_to_cores, up_to_cores[1:]))
    # Saturation past the core count (jitter makes n=24 the max-of-24
    # chunks regime, slightly below the smoothed n=32 regime).
    assert abs(means[32] - means[24]) / means[24] < 0.15
    # Crossover with libdeflate between 4 and 8 threads.
    assert means[4] < libdeflate * 1.2
    assert means[8] > libdeflate
    # cat dominates; gzip is dominated from 2 threads on.
    assert all(means[n] < cat for n in THREADS)
    assert means[2] > gzip_speed
    # Near-linear early scaling: 2->8 threads gives >= 3x.
    assert means[8] / means[2] > 3.0


def test_fig5_measured_chunk_counts(benchmark, reporter):
    """Real pugz at increasing chunk counts on this 1-core machine."""
    text = synthetic_fastq(5000, read_length=150, seed=21, quality_profile="safe")
    gz = gzip_zlib(text, 6)
    counts = (1, 2, 4, 8)

    def run():
        rows = {}
        for n in counts:
            t0 = time.perf_counter()
            out, rep = pugz_decompress(gz, n_chunks=n, executor="serial",
                                       return_report=True)
            dt = time.perf_counter() - t0
            assert out == text
            rows[n] = (len(gz) / 1e6 / dt, rep.sync_seconds / max(dt, 1e-9))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'chunks':>7}{'MB/s (1 core, serial)':>23}{'sync share':>12}"]
    for n, (r, sync_frac) in rows.items():
        lines.append(f"{n:>7}{r:>23.2f}{sync_frac:>12.0%}")
    lines.append("expected: decreasing with chunk count — each boundary costs a")
    lines.append("pure-Python bit-probing search that C amortises to ~0.2s;")
    lines.append("exactness asserted for every run.")
    reporter("Figure 5 (measured, 1 core)", lines)
    benchmark.extra_info.update({str(k): v[0] for k, v in rows.items()})

    # The chunked runs slow down due to sync costs, boundedly (a wide
    # bound: pure-Python probing under possible CPU contention).
    assert rows[8][0] > rows[1][0] / 60
