"""Discussion / future work: guessing the undetermined characters.

The paper: "It did not escape our attention that guessing those
undetermined characters could be possible, but we did not yet explore
this direction."  We explore it and quantify the (largely negative)
result:

* constraint classification is *sound* — the candidate set virtually
  always contains the true byte;
* DNA guesses approach the 25 % information-theoretic cap of uniform
  random DNA (the paper's own model says reads are random-like), so
  guessing cannot rescue ambiguous sequences;
* header bytes are unrecoverable in principle: Figure 4 shows they
  survive as context copies precisely because they are never re-emitted
  as literals, so the stream contains no sample of them to learn from.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.guess import classify_marker_contexts, guess_markers
from repro.core.marker import MARKER_BASE
from repro.core.marker_inflate import marker_inflate
from repro.core.sync import find_block_start
from repro.data import classify_fastq_bytes, gzip_zlib
from repro.deflate.inflate import inflate


def test_guessing_accuracy(benchmark, fastq_cross_4m, reporter):
    text = fastq_cross_4m
    gz = gzip_zlib(text, 6)

    def run():
        sync = find_block_start(gz, start_bit=8 * (len(gz) // 3))
        full = inflate(gz, start_bit=80)
        target = next(b for b in full.blocks if b.start_bit == sync.bit_offset)
        res = marker_inflate(gz, start_bit=sync.bit_offset)
        truth = np.frombuffer(text[target.out_start :], np.uint8).astype(np.int32)
        types = classify_fastq_bytes(text)[target.out_start :]
        rep = guess_markers(res.symbols)

        # Candidate-set soundness on a sample.
        cands = classify_marker_contexts(res.symbols)
        sample = rep.guessed_positions[:5000]
        sound = total = 0
        for pos in sample.tolist():
            j = int(res.symbols[pos]) - MARKER_BASE
            cand = cands.get(j, set())
            if cand:
                total += 1
                sound += int(truth[pos]) in cand
        acc = {}
        for code, name in ((1, "dna"), (3, "quality"), (0, "header")):
            mask = rep.guessed_positions[types[rep.guessed_positions] == code]
            if len(mask):
                acc[name] = float((rep.symbols[mask] == truth[mask]).mean())
        return sound / max(1, total), acc, len(rep.guessed_positions)

    soundness, acc, n = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"markers guessed: {n:,}",
        f"candidate-set soundness: {soundness:.1%}",
        f"accuracy by true type: "
        + ", ".join(f"{k} {v:.1%}" for k, v in acc.items()),
        "",
        "interpretation: DNA ~ its 25% random cap; headers ~0% —",
        "their bytes never appear as literals (cf. Figure 4), so no",
        "amount of modelling can recover them from the stream alone.",
    ]
    reporter("Future work: guessing undetermined characters", lines)
    benchmark.extra_info["soundness"] = soundness
    benchmark.extra_info["accuracy"] = acc

    assert soundness > 0.95
    assert 0.15 < acc["dna"] < 0.35
    assert acc["header"] < 0.10
