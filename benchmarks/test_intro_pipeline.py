"""Section I: the storage-vs-decompression bottleneck argument.

The paper's motivation: gunzip's ~37 MB/s is 1-2 orders of magnitude
below device read bandwidth (SATA SSD 500, HDD 100-200, NVMe up to
3000 MB/s), so decompression throttles every pipeline that reads
.fastq.gz; pugz moves the bottleneck back to storage.
"""

from __future__ import annotations

import pytest

from repro.perf import (
    PAPER_MODEL,
    PRESETS,
    bottleneck,
    pipeline_throughput,
    simulate_pugz,
    simulate_sequential,
)


def test_intro_bottleneck_table(benchmark, reporter):
    def run():
        gunzip = simulate_sequential(PAPER_MODEL, "gunzip", 1000).speed_mbps
        pugz = simulate_pugz(PAPER_MODEL, 5000, 32).speed_mbps
        rows = []
        for key in ("hdd", "sata_ssd", "nvme", "nas"):
            dev = PRESETS[key]
            rows.append(
                (
                    dev.name,
                    dev.read_mbps,
                    pipeline_throughput(dev, gunzip),
                    bottleneck(dev, gunzip),
                    pipeline_throughput(dev, pugz),
                    bottleneck(dev, pugz),
                )
            )
        return gunzip, pugz, rows

    gunzip, pugz, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{'device':<28}{'read':>7}{'gunzip pipe':>12}{'limit':>15}"
        f"{'pugz pipe':>10}{'limit':>15}"
    ]
    for name, read, g_pipe, g_lim, p_pipe, p_lim in rows:
        lines.append(
            f"{name:<28}{read:>7.0f}{g_pipe:>12.0f}{g_lim:>15}{p_pipe:>10.0f}{p_lim:>15}"
        )
    lines.append("paper Section I: a 1-2 order-of-magnitude slowdown sits at")
    lines.append("the head of every pipeline reading compressed FASTQ.")
    reporter("Section I: storage vs decompression", lines)

    # gunzip is decompression-bound on every device.
    for _, _, _, g_lim, _, _ in rows:
        assert g_lim == "decompression"
    # pugz flips HDD/SATA/NAS to storage-bound.
    flipped = [p_lim for name, _, _, _, _, p_lim in rows if "NVMe" not in name]
    assert all(l == "storage" for l in flipped)
    # NVMe headroom: >= 50x gunzip.
    assert PRESETS["nvme"].read_mbps / gunzip > 50
