"""Discussion section: memory-bounded decompression.

The paper: "the current implementation requires the whole decompressed
file to reside in memory, yet further engineering efforts could lift
this limitation with little projected impact on performance."

This bench runs the striped implementation across stripe sizes and
measures (a) the peak in-memory symbol count vs the file size, and
(b) the throughput cost relative to the all-in-memory run — verifying
the "little projected impact" claim for the algorithmic part (the
per-stripe barrier only idles threads at stripe edges).
"""

from __future__ import annotations

import time

import pytest

from repro.core.pugz import pugz_decompress
from repro.core.windowed import pugz_decompress_windowed
from repro.data import gzip_zlib


def test_memory_vs_stripe_size(benchmark, fastq_4m, reporter):
    text = fastq_4m
    gz = gzip_zlib(text, 6)

    def run():
        rows = {}
        t0 = time.perf_counter()
        out = pugz_decompress(gz, n_chunks=12)
        full_time = time.perf_counter() - t0
        assert out == text
        rows["all-in-memory"] = (len(text), full_time)
        for stripe in (12, 4, 2, 1):
            sink_total = [0]

            def sink(b, _t=sink_total):
                _t[0] += len(b)

            t0 = time.perf_counter()
            report = pugz_decompress_windowed(
                gz, sink, n_chunks=12, stripe_chunks=stripe
            )
            dt = time.perf_counter() - t0
            assert sink_total[0] == len(text)
            rows[f"stripe={stripe}"] = (report.peak_stripe_symbols, dt)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    base_mem, base_time = rows["all-in-memory"]
    lines = [f"{'mode':<16}{'peak symbols':>14}{'vs file':>9}{'time s':>8}{'vs full':>9}"]
    for name, (mem, dt) in rows.items():
        lines.append(
            f"{name:<16}{mem:>14,}{mem / base_mem:>9.0%}{dt:>8.2f}"
            f"{dt / base_time:>9.2f}x"
        )
    lines.append("")
    lines.append("paper: striping 'could lift this limitation with little")
    lines.append("projected impact on performance' — the overhead measured")
    lines.append("here is sync amortisation, not the striping itself.")
    reporter("Discussion: memory-bounded decompression", lines)

    # Peak memory drops with stripe size...
    mems = [rows[f"stripe={s}"][0] for s in (12, 4, 2, 1)]
    assert mems[-1] <= mems[0]
    assert rows["stripe=1"][0] < 0.5 * base_mem
    # ...with bounded throughput cost (generous bound: pure-Python
    # timing noise on a busy 1-core box).
    assert rows["stripe=1"][1] < 3.0 * base_time
