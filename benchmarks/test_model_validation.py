"""Section V-C/V-D: the non-greedy model's quoted quantities, and the
model-vs-gzip fit on real token streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import payload_token_stats, undetermined_window_series
from repro.data import gzip_zlib, random_dna
from repro.deflate.inflate import inflate
from repro.models import (
    expected_literals,
    literal_probability,
    literal_rate,
    log10_miss_probability,
    undetermined_series,
    windows_until_determined,
)


def test_paper_quantities(benchmark, reporter):
    def run():
        return {
            "log10(1-p3)": log10_miss_probability(3),
            "p_l": literal_probability(),
            "E_l": expected_literals(),
            "L1": literal_rate(),
            "vanish@1%": windows_until_determined(literal_rate(), 0.01),
        }

    vals = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"log10(1 - p_3)      = {vals['log10(1-p3)']:8.1f}   (paper: <= -225)",
        f"p_l                 = {vals['p_l']:8.4f}",
        f"E_l                 = {vals['E_l']:8.1f}   (paper: ~1283)",
        f"L_1 = E_l / W       = {vals['L1']:8.4f}   (paper: ~4%)",
        f"windows to <1%      = {vals['vanish@1%']:8d}   (paper figure: ~150)",
    ]
    reporter("Section V-C: non-greedy model quantities", lines)
    benchmark.extra_info.update(vals)

    assert vals["log10(1-p3)"] < -220
    assert vals["E_l"] == pytest.approx(1283, rel=0.05)
    assert 0.034 < vals["L1"] < 0.046
    assert 90 < vals["vanish@1%"] < 160


def test_model_fit_on_real_gzip_stream(benchmark, reporter):
    """Section V-D: overlay (1-L_i) on the measured undetermined decay
    of zlib-compressed random DNA and quantify the fit."""
    dna = random_dna(1_000_000, seed=190517)
    gz = gzip_zlib(dna, 6)

    def run():
        full = inflate(gz, start_bit=80, max_blocks=2)
        stats = payload_token_stats(gz, start_bit=80, skip_blocks=1).stats
        oa = int(stats.mean_offset)
        series = undetermined_window_series(gz, full.blocks[1].start_bit, oa)
        return stats, series

    stats, series = benchmark.pedantic(run, rounds=1, iterations=1)
    measured = series.fractions
    L1 = literal_rate(mean_match_length=stats.mean_length)
    model = undetermined_series(len(measured), L1)

    mask = (model > 0.05) & (model < 0.9)
    log_err = np.abs(np.log(measured[mask] + 1e-4) - np.log(model[mask] + 1e-4))
    lines = [
        f"l_a measured = {stats.mean_length:.2f} -> model L1 = {L1:.4f}",
        f"fit windows: {int(mask.sum())}, median |log err| = {np.median(log_err):.3f}",
        "paper Fig 2: 'the model fits reasonably well the actual",
        "behavior of gzip at the default compression level'.",
    ]
    reporter("Section V-D: model vs measurement", lines)
    benchmark.extra_info["median_log_err"] = float(np.median(log_err))

    assert np.median(log_err) < np.log(2.5), "model off by > 2.5x in mid-range"
