"""Supplementary: match-offset distributions behind o_a and o_a'.

Section V-D reports single means (o_a = 3602 at default, o_a' = 12755
at -9); this bench shows the whole distribution those means summarise,
and how the level's search effort (chain depth / nice length) shifts
mass toward far offsets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import offset_histogram, payload_token_stats
from repro.data import gzip_zlib, random_dna


def test_offset_distribution_by_level(benchmark, dna_1m, reporter):
    levels = (1, 4, 6, 9)

    def run():
        out = {}
        for level in levels:
            gz = gzip_zlib(dna_1m, level)
            stats = payload_token_stats(gz, start_bit=80, skip_blocks=1)
            counts, edges = offset_histogram(stats.tokens, bins=8)
            out[level] = (stats.stats.mean_offset, counts, edges)
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'level':>6}{'o_a':>9}  offset-octile shares (1..32768)"]
    for level, (oa, counts, edges) in rows.items():
        shares = counts / max(1, counts.sum())
        lines.append(
            f"{level:>6}{oa:>9.0f}  " + " ".join(f"{s:.2f}" for s in shares)
        )
    lines.append("paper: o_a(-6)=3602, o_a'(-9)=12755 — higher levels push")
    lines.append("match mass toward far offsets (deeper chain search).")
    reporter("Supplementary: offset distributions by level", lines)
    for level, (oa, _counts, _edges) in rows.items():
        benchmark.extra_info[f"oa_L{level}"] = oa

    # Mean offsets ordered by level effort (1 < 6 < 9).
    assert rows[1][0] < rows[6][0] < rows[9][0]
    # Level 9 places more mass in the far half of the window.
    far6 = rows[6][1][4:].sum() / rows[6][1].sum()
    far9 = rows[9][1][4:].sum() / rows[9][1].sum()
    assert far9 > far6
