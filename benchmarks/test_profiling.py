"""Where a pure-Python DEFLATE decoder spends its time.

Grounds the cost model's stage constants: symbol decoding dominates,
table building is per-block noise, CRC is the gunzip-role surcharge
(the reason the "gunzip" persona is slower than the "libdeflate" one
in Table II's measured column).
"""

from __future__ import annotations

import pytest

from repro.data import gzip_zlib
from repro.perf.profiling import profile_inflate


def test_decode_profile(benchmark, fastq_4m, reporter):
    gz = gzip_zlib(fastq_4m[:2_000_000], 6)

    profile = benchmark.pedantic(lambda: profile_inflate(gz), rounds=1, iterations=1)

    lines = [f"{'stage':<24}{'seconds':>9}{'share':>8}"]
    for name, secs, frac in profile.rows():
        lines.append(f"{name:<24}{secs:>9.3f}{frac:>8.1%}")
    lines += [
        "",
        f"blocks: {profile.blocks}, output {profile.output_bytes / 1e6:.1f} MB, "
        f"decode {profile.decode_mbps:.2f} MB/s (output)",
    ]
    reporter("Profiling: pure-Python inflate cost centres", lines)
    benchmark.extra_info["decode_mbps"] = profile.decode_mbps

    # Symbol decoding must dominate; tables are a small share.
    rows = dict((name, frac) for name, _, frac in profile.rows())
    assert rows["symbol decode + copies"] > 0.5
    assert rows["huffman tables"] < 0.2
    # CRC adds measurable but sub-dominant cost.
    assert 0.0 < rows["crc32"] < 0.5
