"""Section II quantified: the random-access alternatives, compared.

The paper positions pugz against the related work:

* **bgzip/BGZF** [12] — blocked files: free random access and parallel
  decode, but "worse compression ratios" and most archive files are
  not blocked;
* **checkpoint index** [11] — solves random access "except that the
  technique [...] requires a separate file [...] and does not apply
  when one only needs to read a given compressed file once";
* **pugz / marker probing** — works on unmodified gzip, no index, at
  the cost of probing + a second pass.

This bench builds all three on the same FASTQ content and measures the
dimensions of the trade-off: compression ratio, index/footprint
overhead, random-access cost, and whether exactness holds at every
compression level.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bgzf import BgzfReader, bgzf_compress
from repro.core.random_access import random_access_sequences
from repro.data import gzip_zlib
from repro.index import build_index


def test_related_work_tradeoffs(benchmark, fastq_4m, reporter):
    text = fastq_4m

    def run():
        rows = {}
        # Plain gzip + pugz-style probing access.
        gz = gzip_zlib(text, 6)
        t0 = time.perf_counter()
        probe = random_access_sequences(gz, len(gz) // 2, max_output=400_000)
        probe_time = time.perf_counter() - t0
        rows["gzip + probing"] = {
            "file_bytes": len(gz),
            "sidecar_bytes": 0,
            "access_s": probe_time,
            "exact": probe.residual_markers == 0,
        }

        # Plain gzip + checkpoint index (256 KiB span, a typical zran
        # density: access cost is bounded by one span of decoding).
        t0 = time.perf_counter()
        idx = build_index(gz, span=1 << 18)
        build_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        out = idx.read_at(gz, len(text) // 2, 400_000)
        rows["gzip + index [11]"] = {
            "file_bytes": len(gz),
            "sidecar_bytes": len(idx.to_bytes()),
            "access_s": time.perf_counter() - t0,
            "exact": out == text[len(text) // 2 : len(text) // 2 + 400_000],
            "build_s": build_time,
        }

        # Plain gzip + the parallel index builder (our synthesis: the
        # two-pass decompressor's by-products ARE an index).
        from repro.core.parallel_index import pugz_build_index

        t0 = time.perf_counter()
        _, pidx = pugz_build_index(gz, n_chunks=8)
        pbuild = time.perf_counter() - t0
        t0 = time.perf_counter()
        out = pidx.read_at(gz, len(text) // 2, 400_000)
        rows["gzip + pugz-index"] = {
            "file_bytes": len(gz),
            "sidecar_bytes": len(pidx.to_bytes()),
            "access_s": time.perf_counter() - t0,
            "exact": out == text[len(text) // 2 : len(text) // 2 + 400_000],
            "build_s": pbuild,
        }

        # BGZF.
        bg = bgzf_compress(text, 6)
        reader = BgzfReader(bg)
        t0 = time.perf_counter()
        out = reader.read_at(len(text) // 2, 400_000)
        rows["BGZF [12]"] = {
            "file_bytes": len(bg),
            "sidecar_bytes": 0,
            "access_s": time.perf_counter() - t0,
            "exact": out == text[len(text) // 2 : len(text) // 2 + 400_000],
        }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    base = rows["gzip + probing"]["file_bytes"]
    lines = [
        f"{'method':<20}{'file bytes':>11}{'vs gzip':>9}{'sidecar':>9}"
        f"{'access s':>10}{'exact':>7}"
    ]
    for name, r in rows.items():
        lines.append(
            f"{name:<20}{r['file_bytes']:>11,}{r['file_bytes'] / base:>9.3f}"
            f"{r['sidecar_bytes']:>9,}{r['access_s']:>10.2f}{str(r['exact']):>7}"
        )
    lines += [
        "",
        f"index build cost (one full sequential pass): "
        f"{rows['gzip + index [11]'].get('build_s', 0):.1f}s",
        "paper Section II: blocked files trade ratio for access;",
        "indexes need a sidecar + an initial full pass; probing needs",
        "neither but is approximate at high compression levels.",
    ]
    reporter("Section II: random-access alternatives", lines)

    # The paper's claims, asserted:
    # 1. BGZF costs compression ratio.
    assert rows["BGZF [12]"]["file_bytes"] > rows["gzip + probing"]["file_bytes"]
    # 2. The index needs a sidecar; block/index access is exact.
    assert rows["gzip + index [11]"]["sidecar_bytes"] > 0
    assert rows["gzip + index [11]"]["exact"]
    assert rows["BGZF [12]"]["exact"]
    # 3. Index/BGZF access is much faster than probing + marker decode.
    assert rows["BGZF [12]"]["access_s"] < rows["gzip + probing"]["access_s"]
    assert rows["gzip + index [11]"]["access_s"] < rows["gzip + probing"]["access_s"]
    # 4. Our synthesis: the pugz-built index is exact too, and its
    # build parallelises (on real hardware) unlike the sequential [11].
    assert rows["gzip + pugz-index"]["exact"]
    assert rows["gzip + pugz-index"]["access_s"] < rows["gzip + probing"]["access_s"]
