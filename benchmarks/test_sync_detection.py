"""Section VI-A: block-start detection robustness and latency.

Paper: the probe finds the next block start in 100-300 ms (C++ on the
Xeon testbed).  We measure the pure-Python search latency and candidate
throughput (same order as the paper's, because candidates die on the
first few header bits in both implementations); robustness (exact hit,
zero false positives) is asserted directly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sync import find_block_start, probe_block
from repro.data import gzip_zlib
from repro.deflate.inflate import inflate


@pytest.fixture(scope="module")
def stream(fastq_4m):
    gz = gzip_zlib(fastq_4m, 6)
    full = inflate(gz, start_bit=80)
    return gz, full


def test_sync_latency(benchmark, stream, reporter):
    """Time the probe from arbitrary byte offsets (the pugz chunking
    workload)."""
    gz, full = stream
    offsets = [len(gz) // 4, len(gz) // 3, len(gz) // 2]

    def run():
        return [find_block_start(gz, start_bit=8 * off) for off in offsets]

    results = benchmark(run)
    mean_ms = 1e3 * float(np.mean([r.elapsed for r in results]))
    cand_rate = float(
        np.mean([r.candidates_tried / max(r.elapsed, 1e-9) for r in results])
    )
    lines = [
        f"mean search latency: {mean_ms:.0f} ms (pure Python)",
        f"candidate throughput: {cand_rate / 1e3:.0f}k bit-offsets/s",
        f"candidates per search: {[r.candidates_tried for r in results]}",
        "paper: 100-300 ms per search (optimised C++).",
    ]
    reporter("Section VI-A: block-start detection", lines)
    benchmark.extra_info["mean_ms"] = mean_ms
    benchmark.extra_info["candidates_per_s"] = cand_rate

    starts = {b.start_bit for b in full.blocks}
    for r in results:
        assert r.bit_offset in starts


def test_sync_no_false_positives_exhaustive(benchmark, stream, reporter):
    """Every bit offset in a window around a true boundary is probed;
    only the true boundary may pass."""
    gz, full = stream
    b = full.blocks[2]

    def run():
        hits = []
        for bit in range(b.start_bit - 2000, b.start_bit + 50):
            if probe_block(gz, bit):
                hits.append(bit)
        return hits

    hits = benchmark.pedantic(run, rounds=1, iterations=1)
    reporter(
        "Section VI-A: probe specificity",
        [f"2050 offsets probed around a boundary; accepted: {hits} "
         f"(true: {b.start_bit})"],
    )
    assert hits == [b.start_bit]
