"""Table I: random access to sequences across compression-level strata.

Paper protocol: 100 ENA FASTQ files stratified as lowest (26) / normal
(68) / highest (6); random-access decompression at 1/4, 1/3, 1/2 and
2/3 of each file; report the mean delay to the first sequence-resolved
block and the mean percentage of unambiguous sequences after it.

Paper values:
    lowest   delay  52.4 +- 55.8 MB    unambiguous 100.0 +- 0.0 %
    normal   delay 387.5 +- 731.6 MB   unambiguous  72.5 +- 37.6 %
    highest  delay 1292.6 +- 1531.9 MB unambiguous  36.8 +- 45.2 %

Scale substitution (DESIGN.md): MB-scale synthetic corpus.  The
paper's delays exceed our file sizes for the normal/highest strata, so
accesses that find no sequence-resolved block within the file count as
"delay > remaining file" — exactly what happens in the paper's data
when the delay column exceeds typical file sizes (387 MB +- 731!).
The reproduced *shape*: lowest resolves fast at ~100 %, normal is
bimodal/partial, highest worst.
"""

from __future__ import annotations

import gzip as stdlib_gzip

import numpy as np
import pytest

from repro.core.random_access import random_access_sequences
from repro.data import CorpusSpec, build_corpus

FRACTIONS = (1 / 4, 1 / 3, 1 / 2, 2 / 3)


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(
        CorpusSpec(
            n_lowest=2,
            n_normal=5,
            n_highest=2,
            reads_per_file=6000,
            read_length=150,
        )
    )


def test_table1(benchmark, corpus, reporter):
    def run():
        rows = {}
        for f in corpus:
            size = len(f.gz)
            for frac in FRACTIONS:
                rep = random_access_sequences(f.gz, int(size * frac))
                delay = rep.delay_bytes
                unresolved = delay is None
                if unresolved:
                    delay = rep.decompressed  # lower bound: whole tail
                unam = rep.unambiguous_fraction
                rows.setdefault(f.stratum, []).append(
                    (f.name, frac, delay, unresolved, unam)
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"{'stratum':<9}{'files':>6}{'accesses':>9}{'resolved':>9}"
        f"{'delay MB (resolved)':>21}{'unambiguous %':>15}",
    ]
    summary = {}
    for stratum in ("lowest", "normal", "highest"):
        entries = rows.get(stratum, [])
        n_files = len({e[0] for e in entries})
        resolved = [e for e in entries if not e[3]]
        delays = np.array([e[2] for e in resolved], dtype=float) / 1e6
        unams = np.array([e[4] for e in resolved if e[4] is not None], dtype=float) * 100
        delay_str = (
            f"{delays.mean():.2f} +- {delays.std():.2f}" if len(delays) else "> file size"
        )
        unam_str = f"{unams.mean():5.1f} +- {unams.std():4.1f}" if len(unams) else "  n/a"
        lines.append(
            f"{stratum:<9}{n_files:>6}{len(entries):>9}{len(resolved):>9}"
            f"{delay_str:>21}{unam_str:>15}"
        )
        summary[stratum] = (len(entries), len(resolved), delays, unams)
    lines += [
        "",
        "paper:   lowest 52.4+-55.8 MB, 100.0%  |  normal 387.5+-731.6 MB, 72.5%",
        "         highest 1292.6+-1531.9 MB, 36.8%   (GB-scale files; see DESIGN.md)",
    ]
    reporter("Table I: random access to sequences", lines)

    low = summary["lowest"]
    norm = summary["normal"]
    high = summary["highest"]

    # Lowest stratum: every access resolves, ~100 % unambiguous.
    assert low[1] == low[0], "lowest stratum must always resolve"
    assert low[3].mean() > 99.0
    # Lowest delay is small relative to the file.
    assert low[2].mean() < 1.0  # < 1 MB at this scale

    # Ordering: resolution rate degrades with compression level.
    low_rate = low[1] / low[0]
    norm_rate = norm[1] / max(1, norm[0])
    high_rate = high[1] / max(1, high[0])
    assert low_rate >= norm_rate >= high_rate
    assert high_rate < 1.0, "highest stratum should not fully resolve at MB scale"

    benchmark.extra_info["resolve_rates"] = {
        "lowest": low_rate, "normal": norm_rate, "highest": high_rate
    }


def test_table1_corpus_stats(benchmark, corpus, reporter):
    """The dataset-description half of Table I: counts, sizes, ratios."""

    def run():
        return {
            s: [f for f in corpus if f.stratum == s]
            for s in ("lowest", "normal", "highest")
        }

    groups = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'stratum':<9}{'files':>6}{'total MB':>10}{'ratio':>8}"]
    for s, files in groups.items():
        total = sum(f.uncompressed_size for f in files) / 1e6
        ratio = np.mean([f.ratio for f in files])
        lines.append(f"{s:<9}{len(files):>6}{total:>10.1f}{ratio:>8.2f}")
    lines.append("paper: 26 / 68 / 6 files, 53.8 / 111.8 / 27.2 GB")
    reporter("Table I (dataset): corpus composition", lines)

    # Compression ratio sanity: FASTQ compresses ~3x with gzip
    # (paper Section II); the weak persona compresses less.
    for f in groups["normal"]:
        assert 0.25 < f.ratio < 0.55
    # All members decompress exactly.
    for files in groups.values():
        for f in files:
            assert len(stdlib_gzip.decompress(f.gz)) == f.uncompressed_size
