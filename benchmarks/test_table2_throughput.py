"""Table II: decompression speeds of gunzip / libdeflate / pugz-32t.

Paper protocol: 3 FASTQ files (3-7.5 GB, normal level) preloaded in
memory, decompressed 3x each; mean compressed-MB/s reported:

    gunzip 37   libdeflate 118   pugz (32 threads) 611

Two reproductions side by side (DESIGN.md):

* **modelled testbed** — the calibrated cost model + schedule
  simulator predicts the parallel numbers from the two sequential
  anchors (the headline check: ratios 16.5x and 5.2x);
* **measured (this machine, pure Python)** — our actual decoders
  timed on an in-memory synthetic FASTQ; single-core, so the parallel
  row uses the serial executor and reports algorithmic overheads, not
  speedup.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.pugz import pugz_decompress
from repro.data import gzip_zlib, synthetic_fastq
from repro.deflate.gzipfmt import parse_gzip_header
from repro.deflate.inflate import inflate
from repro.perf import PAPER_MODEL, simulate_pugz, simulate_sequential

PAPER = {"gunzip": 37.0, "libdeflate": 118.0, "pugz32": 611.0}


@pytest.fixture(scope="module")
def files():
    """Three in-memory FASTQ.gz files (the paper used 3 files x 3 reps)."""
    out = []
    for seed in (11, 12, 13):
        text = synthetic_fastq(4000, read_length=150, seed=seed, quality_profile="safe")
        out.append((text, gzip_zlib(text, 6)))
    return out


def test_table2_modelled(benchmark, reporter):
    """The calibrated testbed model regenerates Table II."""
    sizes = [3000.0, 5000.0, 7500.0]  # the paper's 3-7.5 GB in MB

    def run():
        rng = np.random.default_rng(0)
        gunzip = np.mean([simulate_sequential(PAPER_MODEL, "gunzip", s).speed_mbps
                          for s in sizes for _ in range(3)])
        libdeflate = np.mean([simulate_sequential(PAPER_MODEL, "libdeflate", s).speed_mbps
                              for s in sizes for _ in range(3)])
        pugz32 = np.mean([simulate_pugz(PAPER_MODEL, s, 32, rng=rng).speed_mbps
                          for s in sizes for _ in range(3)])
        return gunzip, libdeflate, pugz32

    gunzip, libdeflate, pugz32 = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"{'method':<22}{'modelled MB/s':>14}{'paper MB/s':>12}",
        f"{'gunzip':<22}{gunzip:>14.0f}{PAPER['gunzip']:>12.0f}",
        f"{'libdeflate':<22}{libdeflate:>14.0f}{PAPER['libdeflate']:>12.0f}",
        f"{'pugz, 32 threads':<22}{pugz32:>14.0f}{PAPER['pugz32']:>12.0f}",
        "",
        f"speedup vs gunzip:     {pugz32 / gunzip:5.1f}x  (paper 16.5x)",
        f"speedup vs libdeflate: {pugz32 / libdeflate:5.1f}x  (paper  5.2x)",
    ]
    reporter("Table II (modelled testbed)", lines)
    benchmark.extra_info.update(
        {"gunzip": gunzip, "libdeflate": libdeflate, "pugz32": pugz32}
    )

    assert gunzip == pytest.approx(PAPER["gunzip"], rel=0.02)
    assert libdeflate == pytest.approx(PAPER["libdeflate"], rel=0.02)
    assert pugz32 == pytest.approx(PAPER["pugz32"], rel=0.12)
    assert 14.0 < pugz32 / gunzip < 19.0
    assert 4.5 < pugz32 / libdeflate < 6.0


def test_table2_measured_python(benchmark, files, reporter):
    """Measured pure-Python decoder speeds on this machine.

    The roles: our token-capturing inflate plays gunzip (it does the
    bookkeeping gunzip does), the plain inflate plays libdeflate (the
    fastest sequential path), pugz runs its real two-pass algorithm.
    """

    def run():
        rates = {"gunzip": [], "libdeflate": [], "pugz": []}
        for text, gz in files:
            mb = len(gz) / 1e6
            start, *_ = parse_gzip_header(gz)

            t0 = time.perf_counter()
            out = inflate(gz, start_bit=8 * start, capture_tokens=True)
            rates["gunzip"].append(mb / (time.perf_counter() - t0))
            assert out.data == text

            t0 = time.perf_counter()
            out = inflate(gz, start_bit=8 * start)
            rates["libdeflate"].append(mb / (time.perf_counter() - t0))
            assert out.data == text

            t0 = time.perf_counter()
            res = pugz_decompress(gz, n_chunks=4, executor="serial")
            rates["pugz"].append(mb / (time.perf_counter() - t0))
            assert res == text
        return {k: float(np.mean(v)) for k, v in rates.items()}

    rates = benchmark.pedantic(run, rounds=1, iterations=1)

    # Project the measured stage ratios onto the paper's testbed: an
    # independent sanity check of the calibrated model (it uses OUR
    # measured gunzip:libdeflate:pass1 ratios, only anchoring the
    # absolute libdeflate speed).
    from repro.perf import CostModel, projected_speedup_report

    text0, gz0 = files[0]
    measured_model = CostModel.measure_python(gz0, text0)
    projection = projected_speedup_report(measured_model)

    lines = [
        f"{'method':<26}{'measured MB/s':>14}",
        f"{'inflate+tokens (gunzip)':<26}{rates['gunzip']:>14.2f}",
        f"{'inflate (libdeflate)':<26}{rates['libdeflate']:>14.2f}",
        f"{'pugz 4 chunks, serial':<26}{rates['pugz']:>14.2f}",
        "",
        "single-core machine: pugz serial shows the algorithm's",
        "overhead vs the plain decoder; speedups are modelled above.",
        "",
        "projection of measured stage ratios onto the testbed:",
        f"  pugz-32t {projection['pugz_mbps']:.0f} MB/s, "
        f"{projection['speedup_vs_gunzip']:.1f}x vs gunzip, "
        f"{projection['speedup_vs_libdeflate']:.1f}x vs libdeflate "
        "(paper: 611 / 16.5x / 5.2x)",
    ]
    reporter("Table II (measured, pure Python, 1 core)", lines)
    benchmark.extra_info.update(rates)
    benchmark.extra_info["projection"] = projection

    # The projection built purely from OUR measured stage ratios must
    # land in the paper's ballpark (same parallel structure).
    assert projection["speedup_vs_gunzip"] > 3.0

    # Plain decode must beat the token-capturing decode; the two-pass
    # algorithm run serially costs more than one sequential decode but
    # within a small factor (marker domain + translation).
    assert rates["libdeflate"] >= rates["gunzip"] * 0.95
    assert rates["pugz"] > rates["libdeflate"] / 8


def test_table2_output_sync_overhead(benchmark, reporter):
    """Paper footnote: synchronising/piping output costs 10-20 %."""

    def run():
        base = simulate_pugz(PAPER_MODEL, 5000, 32).speed_mbps
        synced = simulate_pugz(PAPER_MODEL.with_output_sync(0.15), 5000, 32).speed_mbps
        return base, synced

    base, synced = benchmark.pedantic(run, rounds=1, iterations=1)
    loss = 1 - synced / base
    reporter(
        "Table II footnote: output synchronisation",
        [f"/dev/null: {base:.0f} MB/s   synced: {synced:.0f} MB/s   loss {loss:.0%}"],
    )
    assert 0.10 < loss < 0.20
