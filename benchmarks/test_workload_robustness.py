"""Table I robustness: how read-level structure shifts random access.

The paper's footnote flags two dataset confounders (low GC, adapters)
as *more compressible than random*; PCR duplicates are a third common
one.  More compressible reads mean longer matches and fewer literals —
which should *hurt* undetermined-context resolution.  This bench
quantifies the effect, extending Table I along the content axis the
paper only touches in the footnote.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.marker import MARKER_BASE
from repro.core.marker_inflate import marker_inflate
from repro.core.sync import find_block_start
from repro.data import (
    adapter_contaminated_reads,
    duplicated_reads,
    gzip_zlib,
    low_gc_fastq,
    synthetic_fastq,
)


def residual_marker_fraction(gz: bytes) -> float:
    """Undetermined fraction over the last quarter of a 1/4-offset decode."""
    sync = find_block_start(gz, start_bit=8 * (len(gz) // 4))
    res = marker_inflate(gz, start_bit=sync.bit_offset)
    tail = res.symbols[3 * len(res.symbols) // 4 :]
    return float((tail >= MARKER_BASE).mean())


def test_content_structure_vs_resolution(benchmark, reporter):
    n = 5000

    def run():
        workloads = {
            "random reads": synthetic_fastq(n, read_length=100, seed=7,
                                            quality_profile="safe"),
            "50% duplicates": duplicated_reads(n // 2, duplication_rate=0.5,
                                               read_length=100, seed=7),
            "adapters 60%": adapter_contaminated_reads(n, read_length=100,
                                                       adapter_fraction=0.6, seed=7),
            "low GC (0.2)": low_gc_fastq(n, read_length=100,
                                         gc_content=0.2, seed=7),
        }
        rows = {}
        for name, text in workloads.items():
            gz = gzip_zlib(text, 6)
            rows[name] = (
                len(gz) / len(text),
                residual_marker_fraction(gz),
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'workload':<16}{'ratio':>8}{'late undetermined':>19}"]
    for name, (ratio, frac) in rows.items():
        lines.append(f"{name:<16}{ratio:>8.3f}{frac:>19.3f}")
    lines += [
        "",
        "finding: all confounders compress better than random reads (the",
        "footnote's measurement), but their effect on resolution differs:",
        "duplicates *accelerate* determination (their long matches copy",
        "already-determined text around), while the undetermined mass",
        "concentrates where literals are scarce.  Compressibility and",
        "resolvability are not simply opposed.",
    ]
    reporter("Table I robustness: content structure vs resolution", lines)
    benchmark.extra_info.update({k: v[1] for k, v in rows.items()})

    base_ratio, base_frac = rows["random reads"]
    # The footnote's claim, asserted: every confounder compresses
    # better than random reads.
    for name, (ratio, frac) in rows.items():
        if name != "random reads":
            assert ratio < base_ratio, name
    # All workloads retain *some* undetermined mass at this scale, and
    # none collapses to zero or explodes to one (sanity envelope).
    for name, (_, frac) in rows.items():
        assert 0.0 <= frac < 0.9, name
