#!/usr/bin/env python3
"""Full pipeline-head demo: parallel decompression into merged analyzers.

The integration the paper's introduction motivates: a .fastq.gz flows
through pugz into order-independent analyzers (k-mers, quality by
cycle, GC profile), each running per chunk and merged at the end::

    python examples/fastq_analysis_pipeline.py
"""

from repro.data import gzip_zlib, synthetic_fastq
from repro.pipeline import GcProfile, KmerCounter, LengthHistogram, QualityStats, run_fastq_pipeline


def main() -> None:
    text = synthetic_fastq(4000, read_length=100, seed=123)
    gz = gzip_zlib(text, level=6)
    print(f"input: {len(gz):,} bytes compressed FASTQ")

    result = run_fastq_pipeline(
        gz,
        [lambda: KmerCounter(k=12), QualityStats, GcProfile, LengthHistogram],
        n_chunks=4,
    )
    kmers, quality, gc, lengths = result.analyzers

    print(f"processed {result.reads:,} reads in {result.chunks} parallel chunks\n")
    print(f"k-mers (k=12): {kmers.distinct:,} distinct / {kmers.total:,} total")
    top = kmers.most_common(3)
    print("  most frequent: " + ", ".join(f"{k.decode()}x{v}" for k, v in top))
    mq = quality.mean_by_cycle()
    print(f"quality: mean Q{quality.mean_quality:.1f}; "
          f"cycle 1 Q{mq[0]:.1f} -> cycle {len(mq)} Q{mq[-1]:.1f} "
          "(the 3' degradation profile)")
    print(f"GC content: mean {gc.mean_gc:.1%}")
    print(f"read length: modal {lengths.modal_length} bp over {lengths.reads:,} reads")


if __name__ == "__main__":
    main()
