#!/usr/bin/env python3
"""Reproduce the paper's Figure 1 as terminal output.

After a random access into a gzip-compressed FASTQ file, the 32 KiB
context is unknown ('?'); successive blocks contain fewer and fewer
undetermined characters as literals accumulate::

    python examples/fig1_undetermined_blocks.py
"""

from repro.core.marker import MARKER_BASE, to_bytes
from repro.core.marker_inflate import marker_inflate
from repro.core.sync import find_block_start
from repro.data import gzip_zlib, synthetic_fastq


def main() -> None:
    text = synthetic_fastq(
        12000, read_length=150, seed=103,
        quality_profile="illumina", barcode="ATCACG",
    )
    gz = gzip_zlib(text, level=6)

    offset = len(gz) // 5
    print(f"random access at compressed byte {offset:,}")
    sync = find_block_start(gz, start_bit=8 * offset)
    print(f"block start found at bit {sync.bit_offset} "
          f"({sync.candidates_tried:,} candidates, {sync.elapsed * 1e3:.0f} ms)\n")

    res = marker_inflate(gz, start_bit=sync.bit_offset)
    for idx in (0, 1, 10, 50):
        if idx >= len(res.blocks):
            break
        b = res.blocks[idx]
        segment = res.symbols[b.out_start : b.out_start + 192]
        whole = res.symbols[b.out_start : b.out_end]
        frac = float((whole >= MARKER_BASE).mean())
        print(f"Block {idx}  ({frac:.1%} undetermined)")
        rendered = to_bytes(segment, placeholder=ord("?")).decode("ascii", "replace")
        for k in range(0, len(rendered), 64):
            print("   " + rendered[k : k + 64].replace("\n", "↵"))
        print()


if __name__ == "__main__":
    main()
