#!/usr/bin/env python3
"""Render the paper's Figure 3 — the two-pass schedule — as ASCII.

Figure 3 illustrates pugz's structure: a parallel first pass with
undetermined windows, a (cheap, sequential) resolution step, and a
parallel translation pass.  This example renders the simulated
schedule of the calibrated testbed model as a Gantt chart::

    python examples/fig3_two_pass_schedule.py
"""

from repro.perf import PAPER_MODEL, simulate_pugz

GLYPH = {"sync": "s", "pass1": "#", "resolve": "R", "pass2": "="}
WIDTH = 68


def main() -> None:
    n_threads = 6
    result = simulate_pugz(PAPER_MODEL, 1000, n_threads, timeline=True)
    events = result.events
    t_max = max(e[3] for e in events)

    print(f"two-pass decompression of a 1 GB gzip file, {n_threads} threads")
    print(f"(simulated on the paper's testbed model; wall {result.wall_seconds:.1f}s)\n")
    print("  s = boundary sync   # = pass 1 (marker decode)")
    print("  R = context resolve = = pass 2 (translate)\n")

    workers = sorted({e[0] for e in events})
    for w in workers:
        row = [" "] * WIDTH
        for worker, stage, t0, t1 in events:
            if worker != w:
                continue
            a = int(t0 / t_max * (WIDTH - 1))
            b = max(a + 1, int(t1 / t_max * (WIDTH - 1)))
            for i in range(a, min(b, WIDTH)):
                row[i] = GLYPH[stage]
        print(f"thread {w}: |{''.join(row)}|")
    print(f"\n0{'':>{WIDTH - 6}}{t_max:.1f}s")
    print(
        f"\nstage totals: sync {result.sync_seconds:.2f}s, "
        f"pass1 {result.pass1_seconds:.2f}s, "
        f"resolve {result.resolve_seconds * 1e3:.1f}ms, "
        f"pass2 {result.pass2_seconds:.2f}s"
    )
    print("the paper's point: resolution is negligible, translation is")
    print("cheap, so the parallel pass-1 decode dominates end to end.")


if __name__ == "__main__":
    main()
