#!/usr/bin/env python3
"""Recover DNA reads from a corrupted gzip-compressed FASTQ.

Section VI-B notes the random-access machinery "is suitable for
forensics applications, e.g. when dealing with data corruption in
compressed FASTQ files".  The :mod:`repro.core.recovery` API does the
work: clean-decode the head, probe for the first intact block after the
damage, marker-decode the tail, salvage unambiguous reads::

    python examples/forensics_recovery.py
"""

import gzip as stdlib_gzip

import numpy as np

from repro.core.marker import to_bytes
from repro.core.recovery import fastq_block_validator, locate_corruption, recover
from repro.data import gzip_zlib, parse_fastq, synthetic_fastq


def main() -> None:
    text = synthetic_fastq(8000, read_length=150, seed=101, quality_profile="safe")
    gz = bytearray(gzip_zlib(text, level=6))
    total_reads = len(parse_fastq(text))

    # Vandalise 512 bytes in the middle of the compressed stream.
    hole = len(gz) // 2
    rng = np.random.default_rng(0)
    gz[hole : hole + 512] = rng.integers(0, 256, 512).astype(np.uint8).tobytes()
    gz = bytes(gz)
    print(f"corrupted bytes {hole:,}..{hole + 512:,} of a {len(gz):,}-byte "
          f"gzip file holding {total_reads:,} reads")

    try:
        stdlib_gzip.decompress(gz)
        raise AssertionError("corruption should break standard decompression")
    except Exception as exc:
        print(f"gzip/zlib gives up entirely: {type(exc).__name__}\n")

    # Locate the damage (content-aware: FASTQ record discipline).
    bit = locate_corruption(gz, validator=fastq_block_validator)
    print(f"corruption located near compressed byte {bit // 8:,} "
          f"(true hole at {hole:,})")

    # Full recovery.
    report = recover(gz, min_read_length=140, validator=fastq_block_validator)
    head_reads = report.head.count(b"\n@") + 1
    print(f"clean head: {len(report.head):,} bytes (~{head_reads:,} reads)")
    if report.resync_bit is None:
        print("no intact block found after the damage")
        return
    print(f"resynced at bit {report.resync_bit:,} "
          f"(byte {report.resync_bit // 8:,})")
    print(f"tail: {len(report.tail_symbols):,} symbols, "
          f"{report.tail_undetermined:,} undetermined")

    truth = {r.sequence for r in parse_fastq(text)}
    verified = sum(
        1
        for s in report.sequences
        if to_bytes(report.tail_symbols[s.start : s.end]) in truth
    )
    print(f"salvaged {len(report.sequences):,} unambiguous reads; "
          f"{verified:,} verified against the original "
          f"({(head_reads + verified) / total_reads:.0%} of the file recovered)")


if __name__ == "__main__":
    main()
