#!/usr/bin/env python3
"""Compare the three random-access strategies on the same FASTQ content.

Section II of the paper, as running code: blocked files (BGZF), a
checkpoint index, and pugz-style probing each solve random access with
a different trade-off::

    python examples/indexed_access.py
"""

import time

from repro.bgzf import BgzfReader, bgzf_compress
from repro.core import random_access_sequences
from repro.data import gzip_zlib, synthetic_fastq
from repro.index import build_index


def main() -> None:
    text = synthetic_fastq(6000, read_length=150, seed=101, quality_profile="safe")
    target = len(text) // 2
    want = text[target : target + 200]
    print(f"content: {len(text):,} bytes; extracting 200 bytes at {target:,}\n")

    # Strategy 1: BGZF — pay compression ratio, get O(1) access.
    bg = bgzf_compress(text, 6)
    t0 = time.perf_counter()
    reader = BgzfReader(bg)
    got = reader.read_at(target, 200)
    t_bgzf = time.perf_counter() - t0
    assert got == want
    print(f"BGZF:    file {len(bg):,} B, access {t_bgzf * 1e3:6.1f} ms, exact")

    # Strategy 2: checkpoint index — plain gzip + a sidecar built by
    # one full sequential pass.
    gz = gzip_zlib(text, 6)
    t0 = time.perf_counter()
    idx = build_index(gz, span=1 << 20)
    t_build = time.perf_counter() - t0
    t0 = time.perf_counter()
    got = idx.read_at(gz, target, 200)
    t_idx = time.perf_counter() - t0
    assert got == want
    print(
        f"index:   file {len(gz):,} B + sidecar {len(idx.to_bytes()):,} B, "
        f"build {t_build:.1f} s, access {t_idx * 1e3:6.1f} ms, exact"
    )

    # Strategy 3: pugz-style probing — nothing but the gzip file.
    t0 = time.perf_counter()
    report = random_access_sequences(gz, len(gz) // 2)
    t_probe = time.perf_counter() - t0
    frac = report.unambiguous_fraction
    print(
        f"probing: file {len(gz):,} B only, access {t_probe:6.1f} s, "
        f"{'no resolved block' if frac is None else f'{frac:.0%} of sequences unambiguous'}"
    )
    print("\ntrade-off (paper Section II): blocked formats and indexes buy")
    print("exact fast access with format/sidecar costs; probing works on")
    print("any gzip file you are handed, approximately at high levels.")


if __name__ == "__main__":
    main()
