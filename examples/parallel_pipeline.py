#!/usr/bin/env python3
"""A bioinformatics pipeline head: parallel decompression into k-mer counting.

The paper's motivation (Section I): "virtually every tool that
processes large amounts of raw sequencing data begins by reading large
.fastq.gz file(s)".  This example builds that pipeline head — pugz
chunks feed a k-mer counter — and exploits the property the paper
highlights for Table II: when read order is irrelevant (as in k-mer
counting), chunk outputs can be consumed without any synchronisation::

    python examples/parallel_pipeline.py
"""

from collections import Counter

from repro.core import pugz_decompress
from repro.data import gzip_zlib, parse_fastq, synthetic_fastq
from repro.perf import PAPER_MODEL, PRESETS, pipeline_throughput, simulate_pugz


def count_kmers(reads: list[bytes], k: int = 8) -> Counter:
    counts: Counter = Counter()
    for read in reads:
        for i in range(len(read) - k + 1):
            counts[read[i : i + k]] += 1
    return counts


def main() -> None:
    text = synthetic_fastq(2000, read_length=100, seed=99)
    gz = gzip_zlib(text, level=6)
    print(f"input: {len(gz):,} bytes compressed FASTQ")

    # Head of the pipeline: exact parallel decompression.
    out = pugz_decompress(gz, n_chunks=4, executor="serial")
    records = parse_fastq(out)
    print(f"decompressed and parsed {len(records):,} reads")

    # Body: k-mer counting (order-independent, so in a multi-core
    # deployment each pugz chunk would feed a counter thread directly).
    counts = count_kmers([r.sequence for r in records], k=8)
    top = counts.most_common(3)
    print(f"distinct 8-mers: {len(counts):,}; most frequent: "
          + ", ".join(f"{k.decode()}x{v}" for k, v in top))

    # What this buys at production scale (the paper's testbed model):
    print("\nprojected pipeline head throughput (compressed MB/s):")
    for dev_key in ("hdd", "sata_ssd", "nvme"):
        dev = PRESETS[dev_key]
        seq = pipeline_throughput(dev, PAPER_MODEL.gunzip_mbps)
        par = pipeline_throughput(dev, simulate_pugz(PAPER_MODEL, 5000, 32).speed_mbps)
        print(f"  {dev.name:<22} gunzip-fed {seq:6.0f}   pugz-fed {par:6.0f}"
              f"   ({par / seq:.1f}x)")


if __name__ == "__main__":
    main()
