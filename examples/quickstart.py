#!/usr/bin/env python3
"""Quickstart: compress with the from-scratch codec, decompress in parallel.

Runs in a few seconds::

    python examples/quickstart.py
"""

import gzip as stdlib_gzip
import time

from repro.core import pugz_decompress
from repro.data import synthetic_fastq
from repro.deflate import gzip_compress, gzip_unwrap


def main() -> None:
    # 1. Make a workload: a synthetic Illumina-style FASTQ file.
    text = synthetic_fastq(3000, read_length=100, seed=7)
    print(f"workload: {len(text):,} bytes of FASTQ")

    # 2. Compress with our own DEFLATE (gzip level 6) — the output is a
    #    standard gzip file every other tool can read.
    gz = gzip_compress(text, level=6, filename=b"reads.fastq")
    print(f"compressed: {len(gz):,} bytes ({len(gz) / len(text):.1%})")
    assert stdlib_gzip.decompress(gz) == text, "stdlib agrees with our compressor"

    # 3. Decompress sequentially with our own inflate (CRC verified).
    assert gzip_unwrap(gz) == text

    # 4. Decompress in parallel with the paper's two-pass algorithm:
    #    chunk at detected block boundaries, first pass with marker
    #    contexts, second pass resolves and translates.
    t0 = time.perf_counter()
    out, report = pugz_decompress(gz, n_chunks=4, executor="serial",
                                  verify=True, return_report=True)
    assert out == text
    print(
        f"pugz: {len(report.chunks)} chunks, exact output, "
        f"{time.perf_counter() - t0:.2f}s "
        f"(sync {report.sync_seconds:.2f}s, pass1 {report.pass1_seconds:.2f}s, "
        f"pass2 {report.pass2_seconds:.3f}s)"
    )
    print(
        "markers resolved per chunk:",
        report.chunk_marker_counts,
    )
    print("OK — see examples/random_access_fastq.py for the random-access API")


if __name__ == "__main__":
    main()
