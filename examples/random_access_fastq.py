#!/usr/bin/env python3
"""Random access to DNA sequences inside a gzip-compressed FASTQ file.

Demonstrates the paper's Section VI-B pipeline: pick a compressed byte
offset, detect the next DEFLATE block start, decompress forward with an
undetermined context, and extract DNA sequences once blocks become
"sequence-resolved"::

    python examples/random_access_fastq.py
"""

from repro.core import random_access_sequences
from repro.core.marker import to_bytes
from repro.core.marker_inflate import marker_inflate
from repro.data import gzip_zlib, synthetic_fastq


def main() -> None:
    # A resolvable workload: quality alphabet disjoint from DNA letters
    # (see DESIGN.md on what makes FASTQ files resolve).
    text = synthetic_fastq(8000, read_length=150, seed=101, quality_profile="safe")
    gz = gzip_zlib(text, level=6)
    print(f"file: {len(gz):,} compressed / {len(text):,} uncompressed bytes")

    offset = len(gz) // 4
    print(f"random access at compressed byte {offset:,} (1/4 of the file)...")
    report = random_access_sequences(gz, offset)

    print(f"  synced at bit {report.sync_bit} after {report.sync_candidates:,} candidates")
    print(f"  decompressed {report.decompressed:,} bytes with undetermined context")
    if report.first_resolved_block is None:
        print("  no sequence-resolved block found (try a lower compression level)")
        return
    print(
        f"  first sequence-resolved block after {report.delay_bytes:,} bytes "
        f"(the paper's 'delay')"
    )
    frac = report.unambiguous_fraction
    print(f"  {len(report.sequences):,} sequences extracted, {frac:.1%} unambiguous")

    # Show a few recovered sequences (re-decode to render them).
    res = marker_inflate(gz, start_bit=report.sync_bit)
    print("  first recovered reads:")
    for seq in report.sequences[:3]:
        rendered = to_bytes(res.symbols[seq.start : seq.end], placeholder=ord("?"))
        print(f"    {rendered.decode()}")

    # Cross-check against the ground truth.
    truth_reads = set()
    for i, line in enumerate(text.split(b"\n")):
        if i % 4 == 1:
            truth_reads.add(line)
    hits = sum(
        1
        for seq in report.sequences
        if seq.is_unambiguous
        and to_bytes(res.symbols[seq.start : seq.end]) in truth_reads
    )
    print(f"  verified {hits:,} recovered reads against the original file")


if __name__ == "__main__":
    main()
