"""Legacy-path shim so ``pip install -e .`` works offline (no wheel pkg).

All metadata lives in pyproject.toml; setuptools >= 61 reads it from
there.  This file only exists to enable the non-PEP-660 editable
install route.
"""

from setuptools import setup

setup()
