"""Reproduction of "Parallel decompression of gzip-compressed files and
random access to DNA sequences" (Kerbiriou & Chikhi, IPPS 2019).

Top-level convenience API; see the subpackages for the full surface:

* :mod:`repro.deflate` — from-scratch DEFLATE/gzip codec substrate;
* :mod:`repro.core` — the paper's contributions: marker-domain
  decompression, block-start detection, the two-pass parallel
  decompressor (pugz), random access to FASTQ sequences;
* :mod:`repro.models` — the Section V analytic models;
* :mod:`repro.data` — DNA/FASTQ workload generators;
* :mod:`repro.perf` — calibrated performance model of the pipeline;
* :mod:`repro.analysis` — window/origin analyses behind the figures.
"""

from repro._version import __version__

__all__ = ["__version__"]
