"""Analyses behind the paper's figures: window counts, origins, stats."""

from repro.analysis.blockstats import BlockStats, stream_block_stats
from repro.analysis.origins import OriginSeries, context_types_for_offset, origin_counts_by_type
from repro.analysis.stats import (
    StreamStats,
    literal_positions,
    literal_rate_by_window,
    offset_histogram,
    payload_token_stats,
    tokens_of_zlib,
)
from repro.analysis.windows import (
    UndeterminedWindowCounter,
    WindowSeries,
    undetermined_window_series,
)

__all__ = [
    "tokens_of_zlib",
    "payload_token_stats",
    "offset_histogram",
    "literal_positions",
    "literal_rate_by_window",
    "StreamStats",
    "undetermined_window_series",
    "UndeterminedWindowCounter",
    "WindowSeries",
    "origin_counts_by_type",
    "context_types_for_offset",
    "OriginSeries",
    "stream_block_stats",
    "BlockStats",
]
