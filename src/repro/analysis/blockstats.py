"""Per-block structural statistics of DEFLATE streams.

Feeds the probe-bounds validation: the Appendix X-A checks reject
candidate blocks whose decompressed size falls outside [1 KiB, 4 MiB].
This module measures the actual block-size distribution gzip produces
(driven by its 16K-token buffer), confirming those bounds are safe for
real streams, plus per-block token mixes and compression ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.deflate.inflate import inflate

__all__ = ["BlockStats", "stream_block_stats"]


@dataclass
class BlockStats:
    """Columnar per-block measurements of one DEFLATE stream."""

    #: Decompressed size of each block.
    out_sizes: np.ndarray
    #: Compressed size (bits) of each block.
    bit_sizes: np.ndarray
    #: Block type codes (0 stored / 1 fixed / 2 dynamic).
    btypes: np.ndarray

    @property
    def count(self) -> int:
        return len(self.out_sizes)

    @property
    def ratios(self) -> np.ndarray:
        """Per-block compressed/uncompressed ratios."""
        return (self.bit_sizes / 8.0) / np.maximum(self.out_sizes, 1)

    def within_probe_bounds(self, lo: int = 1024, hi: int = 4 * 1024 * 1024) -> float:
        """Fraction of non-final blocks inside the probe size bounds."""
        if self.count <= 1:
            return 1.0
        interior = self.out_sizes[:-1]  # the probe never sees the final block
        ok = (interior >= lo) & (interior <= hi)
        return float(ok.mean())


def stream_block_stats(payload, start_bit: int = 0) -> BlockStats:
    """Decode a payload and collect its per-block statistics."""
    result = inflate(payload, start_bit=start_bit)
    out_sizes = np.array([b.out_end - b.out_start for b in result.blocks], dtype=np.int64)
    bit_sizes = np.array([b.end_bit - b.start_bit for b in result.blocks], dtype=np.int64)
    btypes = np.array([b.btype for b in result.blocks], dtype=np.int8)
    return BlockStats(out_sizes=out_sizes, bit_sizes=bit_sizes, btypes=btypes)
