"""Initial-context propagation by character type (Figure 4).

The paper instruments decompression-from-a-random-location to see *how
far characters of the initial 32 KiB context travel* along chains of
back-references, and annotates each surviving character by what it
actually was: DNA, quality value, sequence header, or the '+' quality
header.

The marker alphabet gives us this for free: after a marker-domain
decode, every surviving marker ``U_j`` names initial-context position
``j``; classifying position ``j`` in the *true* stream (which we have,
since we generated the file) yields the per-type counts per output
window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.marker import MARKER_BASE
from repro.deflate.constants import WINDOW_SIZE
from repro.data.fastq import CHAR_TYPES, classify_fastq_bytes

__all__ = ["OriginSeries", "origin_counts_by_type", "context_types_for_offset"]

#: Row order of the per-type matrix.
TYPE_ORDER = ("header", "dna", "plus", "quality", "newline")


@dataclass
class OriginSeries:
    """Per-window counts of surviving initial-context characters."""

    #: shape (n_windows, len(TYPE_ORDER)) counts.
    counts: np.ndarray
    window_size: int
    #: Output position (relative to the decode start) of each window start.
    window_starts: np.ndarray

    def totals_by_type(self) -> dict[str, int]:
        return {
            name: int(self.counts[:, i].sum()) for i, name in enumerate(TYPE_ORDER)
        }

    def last_window_with_type(self, name: str) -> int | None:
        """Index of the last window still containing this type, if any."""
        col = self.counts[:, TYPE_ORDER.index(name)]
        nz = np.flatnonzero(col > 0)
        return int(nz[-1]) if len(nz) else None


def context_types_for_offset(text: bytes, output_offset: int) -> np.ndarray:
    """Character types of the 32 KiB of true text before ``output_offset``.

    ``text`` is the full uncompressed file; the decode starts at
    uncompressed position ``output_offset``, so its initial context is
    ``text[output_offset - 32768 : output_offset]``.  Position ``j`` of
    the returned array aligns with marker ``U_j``.
    """
    if output_offset < WINDOW_SIZE:
        raise ValueError("need at least 32 KiB of preceding text")
    types = classify_fastq_bytes(text[: output_offset])
    return types[output_offset - WINDOW_SIZE : output_offset]


def origin_counts_by_type(
    symbols: np.ndarray,
    context_types: np.ndarray,
    window_size: int = WINDOW_SIZE,
) -> OriginSeries:
    """Count surviving initial-context characters per window and type.

    Parameters
    ----------
    symbols:
        Marker-domain output of a decode seeded with the undetermined
        context.
    context_types:
        Per-position type codes of the true initial context (length
        32768, from :func:`context_types_for_offset`).
    window_size:
        Paper uses 32 KiB windows.
    """
    symbols = np.asarray(symbols, dtype=np.int32)
    context_types = np.asarray(context_types, dtype=np.uint8)
    if context_types.shape != (WINDOW_SIZE,):
        raise ValueError(
            f"context_types must have exactly {WINDOW_SIZE} entries"
        )

    n_windows = max(1, -(-len(symbols) // window_size))
    counts = np.zeros((n_windows, len(TYPE_ORDER)), dtype=np.int64)

    marker_idx = np.flatnonzero(symbols >= MARKER_BASE)
    if len(marker_idx):
        origin_pos = symbols[marker_idx] - MARKER_BASE
        types = context_types[origin_pos]
        windows = marker_idx // window_size
        np.add.at(counts, (windows, types), 1)

    return OriginSeries(
        counts=counts,
        window_size=window_size,
        window_starts=np.arange(n_windows, dtype=np.int64) * window_size,
    )
