"""Token statistics of gzip streams (the Section IV-C quantities).

Computes the paper's ``o_a`` (mean match offset) and ``l_a`` (mean
match length) by decoding a DEFLATE payload with token capture, plus
offset/length histograms and literal-rate curves over the stream.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.deflate.constants import WINDOW_SIZE
from repro.deflate.inflate import inflate
from repro.deflate.tokens import TokenStats, TokenStream

__all__ = [
    "tokens_of_zlib",
    "payload_token_stats",
    "offset_histogram",
    "literal_positions",
    "literal_rate_by_window",
    "StreamStats",
]


@dataclass
class StreamStats:
    """Token statistics plus where in the output literals fall."""

    stats: TokenStats
    tokens: TokenStream


def tokens_of_zlib(data: bytes, level: int) -> TokenStream:
    """Token stream gzip (the system zlib) produces for ``data``.

    Compresses with zlib at ``level`` and decodes our own way with
    token capture — the authentic gzip parsing the paper analyses.
    """
    comp = zlib.compress(data, level)
    result = inflate(comp, start_bit=16, capture_tokens=True)
    return result.tokens


def payload_token_stats(payload, start_bit: int = 0, skip_blocks: int = 0) -> StreamStats:
    """Decode a DEFLATE payload and return its token statistics.

    ``skip_blocks`` drops the first blocks from the statistics (the
    paper starts measuring from block 2, past the warm-up region where
    the window is not yet full).
    """
    result = inflate(payload, start_bit=start_bit, capture_tokens=True)
    tokens = result.tokens
    if skip_blocks and len(result.blocks) > skip_blocks:
        # Rebuild a token stream for the tail by re-decoding from the
        # block boundary with the accumulated window.
        boundary = result.blocks[skip_blocks]
        window = result.data[: boundary.out_start][-WINDOW_SIZE:]
        tail = inflate(
            payload,
            start_bit=boundary.start_bit,
            window=window,
            capture_tokens=True,
        )
        tokens = tail.tokens
    return StreamStats(stats=tokens.stats(), tokens=tokens)


def offset_histogram(tokens: TokenStream, bins: int = 32, max_offset: int = WINDOW_SIZE) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of match offsets: ``(counts, bin_edges)``."""
    offsets = tokens.offsets()
    offsets = offsets[offsets > 0]
    return np.histogram(offsets, bins=bins, range=(1, max_offset))


def literal_positions(tokens: TokenStream) -> np.ndarray:
    """Output positions at which literal bytes were emitted."""
    offsets = tokens.offsets()
    values = tokens.values()
    lengths = np.where(offsets == 0, 1, values).astype(np.int64)
    starts = np.concatenate([[0], np.cumsum(lengths)[:-1]])
    return starts[offsets == 0]


def literal_rate_by_window(tokens: TokenStream, window: int = WINDOW_SIZE) -> np.ndarray:
    """Fraction of literal bytes in consecutive output windows."""
    offsets = tokens.offsets()
    values = tokens.values()
    lengths = np.where(offsets == 0, 1, values).astype(np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0)
    starts = np.concatenate([[0], np.cumsum(lengths)[:-1]])
    lit_starts = starts[offsets == 0]
    n_windows = -(-total // window)
    counts = np.bincount(lit_starts // window, minlength=n_windows)
    sizes = np.full(n_windows, window, dtype=np.int64)
    sizes[-1] = total - window * (n_windows - 1)
    return counts / sizes
