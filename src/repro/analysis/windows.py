"""Undetermined-character window counting (Figure 2, Section IV-C).

The paper decompresses from block 2 with a fully undetermined context
and counts undetermined characters in non-overlapping windows of size
``o_a`` (the stream's mean match offset).  This module does the same
over the marker-domain decoder, in a *streaming* fashion so the
FASTQ-like experiment (tens of MB) never materialises its output.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.marker import MARKER_BASE
from repro.core.marker_inflate import marker_inflate

__all__ = ["UndeterminedWindowCounter", "undetermined_window_series", "WindowSeries"]


class UndeterminedWindowCounter:
    """Streaming sink: tally undetermined symbols per fixed-size window.

    ``position_filter``, if given, restricts the count to a subset of
    output positions: it receives an ``int64`` array of *global* output
    positions and returns a boolean mask.  The fraction denominator is
    then the number of eligible positions per window.  The Figure 2
    (bottom) reproduction uses this to count only the DNA phase of the
    FASTQ-like string (the 'x' spacers form unbroken back-reference
    lineages that never resolve, so the paper's decaying curves track
    the DNA content).
    """

    def __init__(self, window_size: int, position_filter=None) -> None:
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        self.window_size = window_size
        self.position_filter = position_filter
        self._counts: dict[int, int] = {}
        self._eligible: dict[int, int] = {}
        self._total = 0

    def __call__(self, symbols: list[int], start_position: int) -> None:
        """Sink interface for :func:`marker_inflate` streaming mode."""
        arr = np.asarray(symbols, dtype=np.int32)
        self._total = max(self._total, start_position + len(arr))
        positions = np.arange(start_position, start_position + len(arr), dtype=np.int64)
        if self.position_filter is not None:
            eligible = self.position_filter(positions)
            for w, c in zip(*np.unique(positions[eligible] // self.window_size,
                                       return_counts=True)):
                self._eligible[int(w)] = self._eligible.get(int(w), 0) + int(c)
            undet_mask = (arr >= MARKER_BASE) & eligible
        else:
            undet_mask = arr >= MARKER_BASE
        undet = positions[undet_mask]
        if len(undet):
            for w, c in zip(*np.unique(undet // self.window_size, return_counts=True)):
                self._counts[int(w)] = self._counts.get(int(w), 0) + int(c)

    def fractions(self) -> np.ndarray:
        """Undetermined fraction per window (window 0 first)."""
        if self._total == 0:
            return np.zeros(0)
        n_windows = -(-self._total // self.window_size)
        out = np.zeros(n_windows, dtype=np.float64)
        for w, c in self._counts.items():
            out[w] = c
        if self.position_filter is not None:
            sizes = np.zeros(n_windows, dtype=np.float64)
            for w, c in self._eligible.items():
                sizes[w] = c
            sizes[sizes == 0] = np.inf  # windows with no eligible chars
        else:
            sizes = np.full(n_windows, self.window_size, dtype=np.float64)
            sizes[-1] = self._total - self.window_size * (n_windows - 1)
        return out / sizes

    @property
    def total_symbols(self) -> int:
        return self._total


@dataclass
class WindowSeries:
    """Result of a Figure 2-style run."""

    #: Undetermined fraction per non-overlapping window.
    fractions: np.ndarray
    #: Window size used (the stream's ``o_a`` in the paper).
    window_size: int
    #: Total symbols decompressed.
    total: int
    #: First window index with zero undetermined characters and none
    #: after it (the "vanishing point"); ``None`` if never vanishes.
    vanish_index: int | None


def undetermined_window_series(
    payload,
    start_bit: int,
    window_size: int,
    max_output: int | None = None,
    position_filter=None,
) -> WindowSeries:
    """Decompress with an undetermined context, counting per window.

    ``start_bit`` should be the start of block 2 (or any block) of the
    stream — obtain it from the block list of a byte-domain decode or
    from :func:`repro.core.sync.find_block_start`.
    """
    counter = UndeterminedWindowCounter(window_size, position_filter=position_filter)
    marker_inflate(
        payload,
        start_bit=start_bit,
        window=None,
        sink=counter,
        max_output=max_output,
    )
    fr = counter.fractions()
    vanish = None
    nz = np.flatnonzero(fr > 0)
    if len(fr) and (len(nz) == 0 or nz[-1] < len(fr) - 1):
        vanish = 0 if len(nz) == 0 else int(nz[-1]) + 1
    return WindowSeries(
        fractions=fr,
        window_size=window_size,
        total=counter.total_symbols,
        vanish_index=vanish,
    )
