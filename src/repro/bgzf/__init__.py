"""BGZF blocked-gzip format (paper related work, ref [12])."""

from repro.bgzf.format import (
    BGZF_EOF,
    MAX_BLOCK_INPUT,
    BgzfBlock,
    bgzf_compress,
    bgzf_decompress,
    blocks_from_bytes,
    blocks_to_bytes,
    load_block_index,
    load_or_scan_blocks,
    make_virtual_offset,
    read_block,
    save_block_index,
    scan_blocks,
    split_virtual_offset,
)
from repro.bgzf.reader import BgzfReader, bgzf_decompress_parallel

__all__ = [
    "bgzf_compress",
    "bgzf_decompress",
    "bgzf_decompress_parallel",
    "BgzfReader",
    "BgzfBlock",
    "scan_blocks",
    "read_block",
    "make_virtual_offset",
    "split_virtual_offset",
    "BGZF_EOF",
    "MAX_BLOCK_INPUT",
    "blocks_to_bytes",
    "blocks_from_bytes",
    "save_block_index",
    "load_block_index",
    "load_or_scan_blocks",
]
