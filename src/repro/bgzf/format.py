"""BGZF: blocked gzip (the SAMtools/HTSlib format, paper ref [12]).

The paper's related work: ``tabix``/``bgzip`` create "blocked files that
are indexed and gzip-compatible" — a sequence of independent gzip
members of at most 64 KiB of input each, every member carrying its own
compressed size in a ``BC`` extra field, terminated by a fixed EOF
member.  Any gzip reader decompresses a BGZF file; a BGZF-aware reader
gets free random access and trivially parallel decompression — the
contrast that motivates pugz (most archive files are *not* blocked).

This module implements the format from scratch on top of our DEFLATE
codec: writer, reader, virtual offsets (``coffset << 16 | uoffset``)
and the EOF sentinel.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.deflate.constants import GZIP_MAGIC
from repro.deflate.crc32 import crc32
from repro.deflate.deflate import deflate_compress
from repro.deflate.inflate import inflate
from repro.errors import GzipFormatError, IndexIntegrityError
from repro.index.integrity import atomic_write_bytes, seal, unseal
from repro.io.source import ByteSource

__all__ = [
    "BGZF_EOF",
    "MAX_BLOCK_INPUT",
    "BgzfBlock",
    "bgzf_compress",
    "bgzf_decompress",
    "scan_blocks",
    "scan_blocks_source",
    "read_block",
    "read_block_source",
    "make_virtual_offset",
    "split_virtual_offset",
    "blocks_to_bytes",
    "blocks_from_bytes",
    "save_block_index",
    "load_block_index",
    "load_or_scan_blocks",
]

#: Largest input chunk per BGZF block (the format caps BSIZE at 2^16).
MAX_BLOCK_INPUT = 65280

#: The fixed 28-byte empty block that terminates every BGZF file.
BGZF_EOF = bytes.fromhex(
    "1f8b08040000000000ff0600424302001b0003000000000000000000"
)

_XLEN_BC = b"\x42\x43\x02\x00"  # SI1='B', SI2='C', SLEN=2


@dataclass(frozen=True)
class BgzfBlock:
    """One BGZF member located within a file."""

    #: Byte offset of the member's gzip header.
    coffset: int
    #: Total compressed size of the member (the BSIZE field + 1).
    csize: int
    #: Uncompressed payload size (ISIZE).
    usize: int

    @property
    def is_eof(self) -> bool:
        return self.usize == 0


def make_virtual_offset(coffset: int, uoffset: int) -> int:
    """BGZF virtual offset: compressed block offset + in-block offset."""
    if not 0 <= uoffset < 65536:
        raise ValueError("uoffset must fit in 16 bits")
    if coffset < 0 or coffset >= 1 << 48:
        raise ValueError("coffset must fit in 48 bits")
    return (coffset << 16) | uoffset


def split_virtual_offset(voffset: int) -> tuple[int, int]:
    """Inverse of :func:`make_virtual_offset`."""
    return voffset >> 16, voffset & 0xFFFF


def _block_bytes(chunk: bytes, level: int) -> bytes:
    """Frame one <= 64 KiB chunk as a BGZF member."""
    payload = deflate_compress(chunk, level)
    bsize = 12 + 6 + len(payload) + 8  # header+extra, payload, trailer
    if bsize > 65536:
        # Incompressible pathological chunk: store it instead.
        payload = deflate_compress(chunk, 0)
        bsize = 12 + 6 + len(payload) + 8
        if bsize > 65536:
            raise GzipFormatError("chunk does not fit a BGZF block even stored", stage="bgzf")
    header = (
        GZIP_MAGIC + b"\x08\x04"    # magic, deflate, FEXTRA
        + b"\x00\x00\x00\x00"        # mtime
        + b"\x00\xff"                # XFL, OS
        + b"\x06\x00"                # XLEN = 6
        + _XLEN_BC
        + struct.pack("<H", bsize - 1)
    )
    trailer = struct.pack("<II", crc32(chunk), len(chunk))
    return header + payload + trailer


def bgzf_compress(data: bytes, level: int = 6, block_input: int = MAX_BLOCK_INPUT) -> bytes:
    """Compress ``data`` into a BGZF file (with the EOF sentinel)."""
    if not 1 <= block_input <= MAX_BLOCK_INPUT:
        raise ValueError(f"block_input must be in [1, {MAX_BLOCK_INPUT}]")
    out = bytearray()
    for start in range(0, len(data), block_input):
        out += _block_bytes(data[start : start + block_input], level)
    out += BGZF_EOF
    return bytes(out)


def _parse_bsize(data: bytes, offset: int) -> int:
    """Read the BC extra field of the member at ``offset``; returns csize."""
    if data[offset : offset + 4] != GZIP_MAGIC + b"\x08\x04":
        raise GzipFormatError(f"not a BGZF member at offset {offset}", stage="bgzf")
    xlen = struct.unpack_from("<H", data, offset + 10)[0]
    pos = offset + 12
    end = pos + xlen
    while pos + 4 <= end:
        si1, si2, slen = data[pos], data[pos + 1], struct.unpack_from("<H", data, pos + 2)[0]
        if si1 == 0x42 and si2 == 0x43 and slen == 2:
            return struct.unpack_from("<H", data, pos + 4)[0] + 1
        pos += 4 + slen
    raise GzipFormatError(f"BGZF member at {offset} lacks the BC field", stage="bgzf")


def scan_blocks(data: bytes) -> list[BgzfBlock]:
    """Enumerate the blocks of a BGZF file without decompressing them.

    This is the structural advantage over plain gzip: block boundaries
    come from the BC size fields in O(#blocks), no bit probing needed.
    """
    blocks = []
    offset = 0
    n = len(data)
    while offset < n:
        csize = _parse_bsize(data, offset)
        if offset + csize > n:
            raise GzipFormatError("truncated BGZF block", stage="bgzf")
        isize = struct.unpack_from("<I", data, offset + csize - 4)[0]
        blocks.append(BgzfBlock(coffset=offset, csize=csize, usize=isize))
        offset += csize
    if not blocks or not blocks[-1].is_eof:
        raise GzipFormatError("BGZF file lacks the EOF sentinel block", stage="bgzf")
    return blocks


def read_block(data: bytes, block: BgzfBlock, verify: bool = True) -> bytes:
    """Decompress one block independently (the random-access primitive)."""
    xlen = struct.unpack_from("<H", data, block.coffset + 10)[0]
    payload_start = block.coffset + 12 + xlen
    result = inflate(data, start_bit=8 * payload_start)
    out = result.data
    if verify:
        stored_crc, stored_isize = struct.unpack_from(
            "<II", data, block.coffset + block.csize - 8
        )
        if stored_isize != len(out):
            raise GzipFormatError("BGZF block ISIZE mismatch", stage="bgzf")
        if stored_crc != crc32(out):
            raise GzipFormatError("BGZF block CRC mismatch", stage="bgzf")
    return out


def scan_blocks_source(source) -> list[BgzfBlock]:
    """Ranged-I/O variant of :func:`scan_blocks`: enumerate blocks by
    hopping header-to-header with ``pread``, never holding more than one
    member's metadata in memory.  ``source`` may be bytes, a path, a
    binary file object, or a :class:`~repro.io.source.ByteSource`.
    """
    src = ByteSource.wrap(source)
    if src.is_in_memory:
        return scan_blocks(src.read_all())
    blocks = []
    n = src.size()
    offset = 0
    while offset < n:
        head = src.pread(offset, 12)
        if len(head) < 12:
            raise GzipFormatError("truncated BGZF block", stage="bgzf")
        xlen = struct.unpack_from("<H", head, 10)[0]
        csize = _parse_bsize(head + src.pread(offset + 12, xlen), 0)
        if offset + csize > n:
            raise GzipFormatError("truncated BGZF block", stage="bgzf")
        isize = struct.unpack("<I", src.pread(offset + csize - 4, 4))[0]
        blocks.append(BgzfBlock(coffset=offset, csize=csize, usize=isize))
        offset += csize
    if not blocks or not blocks[-1].is_eof:
        raise GzipFormatError("BGZF file lacks the EOF sentinel block", stage="bgzf")
    return blocks


def read_block_source(source, block: BgzfBlock, verify: bool = True) -> bytes:
    """Ranged-I/O variant of :func:`read_block`: reads exactly the
    block's ``csize`` compressed bytes at its ``coffset``."""
    src = ByteSource.wrap(source)
    member = src.pread(block.coffset, block.csize)
    if len(member) < block.csize:
        raise GzipFormatError("truncated BGZF block", stage="bgzf")
    shifted = BgzfBlock(coffset=0, csize=block.csize, usize=block.usize)
    return read_block(member, shifted, verify)


def bgzf_decompress(data: bytes, verify: bool = True) -> bytes:
    """Decompress a whole BGZF file (sequentially)."""
    return b"".join(
        read_block(data, b, verify) for b in scan_blocks(data) if not b.is_eof
    )


# -- block-table persistence (crash-safe sidecar) -------------------------

_INDEX_KIND = b"BGZF"
_BLOCK_STRUCT = struct.Struct("<QII")  # coffset, csize, usize


def blocks_to_bytes(blocks: list[BgzfBlock]) -> bytes:
    """Serialise a block table (the scan result worth caching for huge
    files: O(#blocks) structs instead of re-walking the BC fields)."""
    out = bytearray(struct.pack("<I", len(blocks)))
    for b in blocks:
        out += _BLOCK_STRUCT.pack(b.coffset, b.csize, b.usize)
    return bytes(out)


def blocks_from_bytes(payload: bytes) -> list[BgzfBlock]:
    """Inverse of :func:`blocks_to_bytes` (integrity-checked)."""
    try:
        (n,) = struct.unpack_from("<I", payload, 0)
        expected = 4 + n * _BLOCK_STRUCT.size
        if len(payload) != expected:
            raise IndexIntegrityError(
                f"BGZF block table payload is {len(payload)} bytes, "
                f"expected {expected} for {n} blocks",
                stage="bgzf",
            )
        return [
            BgzfBlock(*_BLOCK_STRUCT.unpack_from(payload, 4 + i * _BLOCK_STRUCT.size))
            for i in range(n)
        ]
    except struct.error as exc:
        raise IndexIntegrityError(
            f"malformed BGZF block table: {exc}", stage="bgzf"
        ) from exc


def save_block_index(path: str, blocks: list[BgzfBlock]) -> None:
    """Persist a block table crash-safely (sealed + atomic rename)."""
    atomic_write_bytes(path, seal(_INDEX_KIND, blocks_to_bytes(blocks)))


def load_block_index(path: str) -> list[BgzfBlock]:
    """Load a persisted block table; raises
    :class:`~repro.errors.IndexIntegrityError` if damaged."""
    with open(path, "rb") as fh:
        blob = fh.read()
    return blocks_from_bytes(unseal(blob, _INDEX_KIND))


def load_or_scan_blocks(path: str, data: bytes) -> tuple[list[BgzfBlock], bool]:
    """Load the block table at ``path``, re-scanning ``data`` and
    atomically replacing the sidecar if it is missing or damaged.

    Returns ``(blocks, rebuilt)``.
    """
    try:
        return load_block_index(path), False
    except (FileNotFoundError, IndexIntegrityError):
        blocks = scan_blocks(data)
        save_block_index(path, blocks)
        return blocks, True
