"""BGZF random access and parallel decompression.

With block boundaries explicit in the format, both of the paper's hard
problems become trivial for BGZF files — which is exactly the paper's
point about why the format exists, and why pugz matters for the
majority of archive files that are *not* blocked.
"""

from __future__ import annotations

from repro.bgzf.format import (
    BgzfBlock,
    make_virtual_offset,
    read_block,
    read_block_source,
    scan_blocks,
    scan_blocks_source,
    split_virtual_offset,
)
from repro.errors import GzipFormatError, RandomAccessError
from repro.io.source import ByteSource
from repro.parallel.executor import Executor, make_executor

__all__ = ["BgzfReader", "bgzf_decompress_parallel"]


class BgzfReader:
    """Random-access reader over a BGZF file.

    Provides uncompressed-offset addressing (via the cumulative block
    table) and virtual-offset addressing (the htslib convention).
    ``data`` may be the file as bytes (the historical signature), a
    filesystem path, a seekable binary file object, or a
    :class:`~repro.io.source.ByteSource` — non-bytes sources are read
    one block at a time with ranged I/O, never fully materialised.
    """

    def __init__(
        self,
        data,
        verify: bool = True,
        blocks: list[BgzfBlock] | None = None,
    ) -> None:
        """``blocks`` may supply a pre-scanned block table (e.g. from a
        persisted sidecar via
        :func:`repro.bgzf.format.load_or_scan_blocks`), skipping the
        O(#blocks) header walk on open."""
        self._source = ByteSource.wrap(data)
        self._verify = verify
        if blocks is None:
            blocks = scan_blocks_source(self._source)
        self.blocks: list[BgzfBlock] = [b for b in blocks if not b.is_eof]
        self._starts = []  # uncompressed start of each block
        total = 0
        for b in self.blocks:
            self._starts.append(total)
            total += b.usize
        self._total = total
        self._cache: tuple[int, bytes] | None = None

    def __len__(self) -> int:
        """Total uncompressed size."""
        return self._total

    def _block_bytes(self, index: int) -> bytes:
        if self._cache is not None and self._cache[0] == index:
            return self._cache[1]
        out = read_block_source(self._source, self.blocks[index], self._verify)
        self._cache = (index, out)
        return out

    def _find_block(self, uoffset: int) -> int:
        """Index of the block containing uncompressed offset ``uoffset``."""
        if not 0 <= uoffset < self._total:
            raise RandomAccessError(
                f"offset {uoffset} outside uncompressed size {self._total}",
                stage="bgzf",
            )
        lo, hi = 0, len(self.blocks) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._starts[mid] <= uoffset:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def read_at(self, uoffset: int, size: int) -> bytes:
        """Read ``size`` bytes at an uncompressed offset — O(blocks hit)."""
        if size < 0:
            raise ValueError("size must be non-negative")
        out = bytearray()
        remaining = size
        while remaining > 0 and uoffset < self._total:
            i = self._find_block(uoffset)
            block_data = self._block_bytes(i)
            skip = uoffset - self._starts[i]
            take = block_data[skip : skip + remaining]
            out += take
            uoffset += len(take)
            remaining -= len(take)
        return bytes(out)

    def virtual_offset_for(self, uoffset: int) -> int:
        """Virtual offset addressing byte ``uoffset``."""
        i = self._find_block(uoffset)
        return make_virtual_offset(self.blocks[i].coffset, uoffset - self._starts[i])

    def read_at_virtual(self, voffset: int, size: int) -> bytes:
        """Read from a BGZF virtual offset."""
        coffset, skip = split_virtual_offset(voffset)
        index = next(
            (i for i, b in enumerate(self.blocks) if b.coffset == coffset), None
        )
        if index is None:
            raise RandomAccessError(f"no block at compressed offset {coffset}", stage="bgzf")
        return self.read_at(self._starts[index] + skip, size)


def _read_one(args) -> bytes:
    data, block, verify = args
    return read_block(data, block, verify)


def bgzf_decompress_parallel(
    data: bytes,
    executor: Executor | str = "serial",
    n_workers: int = 4,
    verify: bool = True,
) -> bytes:
    """Decompress a BGZF file with one task per block.

    The blocked-format counterpart of pugz: no probing, no markers, no
    second pass — the comparison benchmark quantifies what the format
    buys (and what its extra per-block overhead costs in ratio).
    """
    if isinstance(executor, str):
        executor = make_executor(executor, n_workers)
    blocks = [b for b in scan_blocks(data) if not b.is_eof]
    parts = executor.map(_read_one, [(data, b, verify) for b in blocks])
    return b"".join(parts)
