"""Command-line interface: ``python -m repro`` / ``repro-gzip``.

Subcommands mirror the tools the paper discusses:

* ``compress``   — gzip-compress a file with our own DEFLATE (levels 0-9);
* ``decompress`` — sequential decompression with our own inflate;
* ``pugz``       — exact two-pass parallel decompression;
* ``sync``       — find the first DEFLATE block start after an offset;
* ``random-access`` — extract DNA sequences from a compressed FASTQ
  starting at an arbitrary compressed offset;
* ``info``       — member/block structure of a gzip file.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro._version import __version__


def _cmd_compress(args) -> int:
    from repro.deflate import gzip_compress

    data = _read(args.input)
    t0 = time.perf_counter()
    out = gzip_compress(data, level=args.level)
    dt = time.perf_counter() - t0
    _write(args.output or (args.input + ".gz" if args.input != "-" else "-"), out)
    print(
        f"compressed {len(data)} -> {len(out)} bytes "
        f"({len(out) / max(1, len(data)):.1%}) in {dt:.2f}s",
        file=sys.stderr,
    )
    return 0


def _cmd_decompress(args) -> int:
    from repro.deflate import gzip_unwrap

    data = _read(args.input)
    t0 = time.perf_counter()
    out = gzip_unwrap(data, verify=not args.no_verify, kernel=args.kernel)
    dt = time.perf_counter() - t0
    _write(args.output or "-", out)
    print(
        f"decompressed {len(data)} -> {len(out)} bytes "
        f"({len(data) / max(dt, 1e-9) / 1e6:.2f} MB/s compressed)",
        file=sys.stderr,
    )
    return 0


def _cmd_pugz(args) -> int:
    from repro.core import pugz_decompress
    from repro.robustness.limits import ResourceBudget

    data = _read(args.input)
    budget = None
    if args.max_output_bytes is not None or args.max_expansion is not None:
        budget = ResourceBudget(
            max_output_bytes=args.max_output_bytes,
            max_expansion_ratio=args.max_expansion,
        )
    t0 = time.perf_counter()
    out, report = pugz_decompress(
        data,
        n_chunks=args.threads,
        executor=args.executor,
        verify=args.verify,
        return_report=True,
        on_error=args.on_error,
        allow_trailing_garbage=args.allow_trailing_garbage,
        max_resync_search_bits=args.max_resync_search_bits,
        deadline_s=args.deadline,
        max_retries=args.max_retries,
        budget=budget,
        kernel=args.kernel,
    )
    dt = time.perf_counter() - t0
    _write(args.output or "-", out)
    print(
        f"pugz: {len(data)} -> {len(out)} bytes, {len(report.chunks)} chunks, "
        f"{dt:.2f}s (sync {report.sync_seconds:.2f} / pass1 {report.pass1_seconds:.2f} "
        f"/ resolve {report.resolve_seconds:.3f} / pass2 {report.pass2_seconds:.2f})",
        file=sys.stderr,
    )
    if report.trailing_garbage_offset is not None:
        print(
            f"pugz: ignored trailing garbage at byte {report.trailing_garbage_offset}",
            file=sys.stderr,
        )
    data_lost = bool(
        report.holes or report.unresolved_markers or report.verify_failures
    )
    if not data_lost:
        # Explicitly-allowed trailing garbage alone is not a failure:
        # every decompressed byte is present and exact.
        if report.trailing_garbage_offset is None or args.allow_trailing_garbage:
            return 0
        return 3
    # Partial output: say exactly what was lost, and exit non-zero so
    # pipelines notice, while still having written everything salvaged.
    for hole in report.holes:
        print(
            f"pugz: hole in chunk {hole.chunk_index}: compressed bytes "
            f"{hole.start_byte}..{hole.end_byte} lost ({hole.error})",
            file=sys.stderr,
        )
    if report.unresolved_markers:
        print(
            f"pugz: {report.unresolved_markers} output bytes unresolved "
            "(written as '?')",
            file=sys.stderr,
        )
    for failure in report.verify_failures:
        print(f"pugz: verification failed: {failure}", file=sys.stderr)
    print("pugz: output is PARTIAL", file=sys.stderr)
    return 3


def _cmd_sync(args) -> int:
    from repro.core import find_block_start

    data = _read(args.input)
    sync = find_block_start(data, start_bit=8 * args.offset)
    print(
        f"block start at bit {sync.bit_offset} "
        f"(byte {sync.bit_offset // 8} + {sync.bit_offset % 8} bits); "
        f"{sync.candidates_tried} candidates in {sync.elapsed * 1e3:.0f} ms"
    )
    return 0


def _cmd_random_access(args) -> int:
    from repro.core import random_access_sequences

    data = _read(args.input)
    report = random_access_sequences(
        data,
        args.offset,
        min_read_length=args.min_read_length,
        max_output=args.max_output,
    )
    print(f"synced at bit {report.sync_bit} ({report.sync_candidates} candidates)")
    print(f"decompressed {report.decompressed} bytes")
    if report.first_resolved_block is None:
        print("no sequence-resolved block found")
        return 1
    print(f"first sequence-resolved block after {report.delay_bytes} bytes")
    frac = report.unambiguous_fraction
    print(
        f"{len(report.sequences)} sequences, "
        f"{frac:.1%} unambiguous" if frac is not None else "no sequences"
    )
    return 0


def _cmd_stream(args) -> int:
    from repro.core.windowed import WindowedReport, iter_pugz

    data = _read(args.input)
    report = WindowedReport()
    t0 = time.perf_counter()
    out = sys.stdout.buffer if not args.output else open(args.output, "wb")
    try:
        for piece in iter_pugz(
            data,
            n_chunks=args.chunks,
            stripe_chunks=args.stripe,
            executor=args.executor,
            report=report,
        ):
            out.write(piece)
    finally:
        if args.output:
            out.close()
    print(
        f"stream: {report.output_size} bytes in {report.stripes} stripes "
        f"(peak {report.peak_stripe_symbols} symbols in memory, "
        f"{time.perf_counter() - t0:.2f}s)",
        file=sys.stderr,
    )
    return 0


def _cmd_pigz(args) -> int:
    from repro.core.pigz import pigz_compress

    data = _read(args.input)
    t0 = time.perf_counter()
    out = pigz_compress(
        data,
        level=args.level,
        chunk_size=args.chunk_size,
        executor=args.executor,
        n_workers=args.threads,
    )
    dt = time.perf_counter() - t0
    _write(args.output or (args.input + ".gz" if args.input != "-" else "-"), out)
    print(
        f"pigz: {len(data)} -> {len(out)} bytes "
        f"({len(out) / max(1, len(data)):.1%}) in {dt:.2f}s",
        file=sys.stderr,
    )
    return 0


def _cmd_recover(args) -> int:
    from repro.core.recovery import recover

    data = _read(args.input)
    report = recover(data, guess=args.guess)
    print(f"clean head: {len(report.head)} bytes", file=sys.stderr)
    if report.resync_bit is None:
        print("no resync point found after the damage", file=sys.stderr)
        if args.output:
            _write(args.output, report.head)
        return 1
    print(
        f"resynced at bit {report.resync_bit}; tail has "
        f"{report.tail_undetermined} undetermined chars; "
        f"{len(report.sequences)} unambiguous sequences salvaged",
        file=sys.stderr,
    )
    if args.output:
        _write(args.output, report.head + b"\n" + (report.tail_bytes_best_effort or b""))
    return 0


def _source_arg(path: str):
    """CLI input as a ranged-I/O source: stdin is slurped, a file path
    is passed through so readers fetch only the ranges they need."""
    if path == "-":
        return sys.stdin.buffer.read()
    return path


def _cmd_index(args) -> int:
    from repro.index import GzipIndex, build_index, load_or_rebuild

    if args.mode == "info":
        idx = GzipIndex.load(args.index_file)
        kinds: dict[str, int] = {}
        for cp in idx.checkpoints:
            kinds[cp.kind] = kinds.get(cp.kind, 0) + 1
        print(f"index file:      {args.index_file}")
        print(f"checkpoints:     {len(idx.checkpoints)}")
        for kind in sorted(kinds):
            print(f"  {kind + ':':<14} {kinds[kind]}")
        print(f"uncompressed:    {idx.usize} bytes")
        print(f"compressed:      {idx.csize or 'unknown (v1 index)'} bytes")
        print(f"span:            {idx.span} bytes")
        return 0

    source = _source_arg(args.input)
    if args.mode == "extract":
        if args.auto_rebuild:
            idx, rebuilt = load_or_rebuild(args.index_file, source, span=args.span)
            if rebuilt:
                print(
                    f"index: {args.index_file} was missing or damaged; "
                    "rebuilt and replaced atomically",
                    file=sys.stderr,
                )
        else:
            idx = GzipIndex.load(args.index_file)
        out = idx.read_at(source, args.extract, args.size)
        _write(args.output or "-", out)
        return 0

    t0 = time.perf_counter()
    if args.builder == "pugz":
        from repro.core.parallel_index import pugz_build_index

        _, idx = pugz_build_index(
            source, n_chunks=args.threads, executor=args.executor
        )
    else:
        idx = build_index(source, span=args.span)
    idx.save(args.index_file)
    print(
        f"index: {len(idx.checkpoints)} checkpoints over "
        f"{idx.members} member(s), built in {time.perf_counter() - t0:.1f}s "
        "(sealed + checksummed, written atomically)",
        file=sys.stderr,
    )
    return 0


def _cmd_cat(args) -> int:
    from repro.index.seekable import SeekableGzipReader

    reader = SeekableGzipReader(
        _source_arg(args.input),
        index_path=args.index,
        span=args.span,
        backend=args.backend,
        n_chunks=args.threads,
        executor=args.executor,
    )
    if args.range:
        start_s, sep, end_s = args.range.partition(":")
        start = int(start_s) if start_s else 0
        if sep and end_s:
            end = int(end_s)
            if end < start:
                raise SystemExit(f"--range end {end} precedes start {start}")
            out = reader.pread(start, end - start)
        else:
            reader.seek(start)
            out = reader.read()
    else:
        out = reader.read()
    _write(args.output or "-", out)
    if args.stats:
        s = reader.stats
        print(
            f"cat: backend={s.backend} inflate_calls={s.inflate_calls} "
            f"decoded={s.decoded_bytes} compressed_read={s.compressed_bytes_read} "
            f"index_builds={s.index_builds} index_loaded={s.index_loaded}",
            file=sys.stderr,
        )
    return 0


def _cmd_bgzf(args) -> int:
    from repro.bgzf import BgzfReader, bgzf_compress, bgzf_decompress

    data = _read(args.input)
    if args.mode == "compress":
        _write(args.output or "-", bgzf_compress(data, level=args.level))
    elif args.mode == "decompress":
        _write(args.output or "-", bgzf_decompress(data))
    else:  # extract
        reader = BgzfReader(data)
        _write(args.output or "-", reader.read_at(args.offset, args.size))
    return 0


def _cmd_fuzz(args) -> int:
    from repro.robustness import run_campaign

    progress = None
    if args.verbose:
        def progress(case):
            print(f"  {case.case_id}: {case.outcome}", file=sys.stderr)

    report = run_campaign(
        n_seeds=args.seeds,
        base_seed=args.base_seed,
        n_chunks=args.threads,
        max_resync_search_bits=args.max_resync_search_bits,
        progress=progress,
    )
    if args.json:
        _write(args.json, report.to_json(indent=2).encode())
    print(f"fuzz: {report.summary()}", file=sys.stderr)
    for case in report.crashes:
        print(
            f"fuzz: CRASH {case.case_id}: {case.error_type} {case.error_context}",
            file=sys.stderr,
        )
    return 1 if report.crashes else 0


def _cmd_lint(args) -> int:
    from repro.lint import run_lint
    from repro.lint.runner import explain_rule, prove_pragmas

    if args.explain:
        return explain_rule(args.explain)
    if not args.paths:
        print("repro lint: no paths given (or use --explain REPxxx)",
              file=sys.stderr)
        return 2
    if args.prove_pragmas:
        return prove_pragmas(args.paths, summary_store=args.summary_store)
    return run_lint(
        args.paths,
        fmt=args.format,
        baseline_path=args.baseline,
        update_baseline=args.update_baseline,
        select=args.select,
        ignore=args.ignore,
        verbose=args.verbose,
        jobs=args.jobs,
        summary_store=args.summary_store,
    )


def _cmd_info(args) -> int:
    from repro.deflate import split_members
    from repro.deflate.inflate import inflate

    data = _read(args.input)
    members = split_members(data)
    print(f"{len(members)} member(s)")
    for i, m in enumerate(members):
        print(
            f"  member {i}: header@{m.header_start} payload@{m.payload_start}"
            f"..{m.payload_end} isize={m.isize} crc={m.crc:#010x}"
            + (f" name={m.filename!r}" if m.filename else "")
        )
        if args.blocks:
            result = inflate(data, start_bit=m.payload_start_bit)
            kinds = {0: "stored", 1: "fixed", 2: "dynamic"}
            for b in result.blocks:
                print(
                    f"    block @bit {b.start_bit}: {kinds[b.btype]}, "
                    f"{b.out_end - b.out_start} bytes"
                    + (" (final)" if b.bfinal else "")
                )
    return 0


def _read(path: str) -> bytes:
    if path == "-":
        return sys.stdin.buffer.read()
    with open(path, "rb") as fh:
        return fh.read()


def _write(path: str, data: bytes) -> None:
    if path == "-":
        sys.stdout.buffer.write(data)
    else:
        with open(path, "wb") as fh:
            fh.write(data)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-gzip",
        description="Parallel gzip decompression & random access (IPPS 2019 reproduction)",
    )
    p.add_argument("--version", action="version", version=__version__)
    sub = p.add_subparsers(dest="command", required=True)

    c = sub.add_parser("compress", help="gzip-compress with our DEFLATE")
    c.add_argument("input")
    c.add_argument("-o", "--output")
    c.add_argument("-l", "--level", type=int, default=6, choices=range(0, 10))
    c.set_defaults(func=_cmd_compress)

    d = sub.add_parser("decompress", help="sequential decompression")
    d.add_argument("input")
    d.add_argument("-o", "--output")
    d.add_argument("--no-verify", action="store_true", help="skip CRC check")
    d.add_argument("--kernel", choices=("pure", "numpy"), default=None,
                   help="decode kernel (default: $REPRO_KERNEL or auto)")
    d.set_defaults(func=_cmd_decompress)

    z = sub.add_parser("pugz", help="two-pass parallel decompression")
    z.add_argument("input")
    z.add_argument("-o", "--output")
    z.add_argument("-t", "--threads", type=int, default=4)
    z.add_argument("--executor", choices=("serial", "thread", "process"), default="process")
    z.add_argument("--verify", action="store_true", help="check CRC32/ISIZE")
    z.add_argument("--on-error", choices=("raise", "recover"), default="raise",
                   help="recover: salvage around corrupted chunks, report holes, "
                        "exit 3 with partial output")
    z.add_argument("--allow-trailing-garbage", action="store_true",
                   help="warn and stop at non-gzip bytes after the last member")
    z.add_argument("--max-resync-search-bits", type=int, default=None,
                   help="bound each recover-mode resync search")
    z.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                   help="per-chunk deadline: a worker past it is killed and "
                        "the chunk retried (supervision)")
    z.add_argument("--max-retries", type=int, default=0,
                   help="bounded retries per chunk for hung/crashed workers")
    z.add_argument("--max-output-bytes", type=int, default=None,
                   help="resource budget: abort with a structured error once "
                        "resident output would exceed this many bytes")
    z.add_argument("--kernel", choices=("pure", "numpy"), default=None,
                   help="decode kernel for both passes "
                        "(default: $REPRO_KERNEL or auto)")
    z.add_argument("--max-expansion", type=float, default=None, metavar="RATIO",
                   help="resource budget: abort when output exceeds RATIO x "
                        "the compressed input consumed (zip-bomb guard)")
    z.set_defaults(func=_cmd_pugz)

    s = sub.add_parser("sync", help="find a DEFLATE block start")
    s.add_argument("input")
    s.add_argument("--offset", type=int, default=0, help="start searching at this byte")
    s.set_defaults(func=_cmd_sync)

    r = sub.add_parser("random-access", help="extract sequences from an offset")
    r.add_argument("input")
    r.add_argument("--offset", type=int, required=True, help="compressed byte offset")
    r.add_argument("--min-read-length", type=int, default=20)
    r.add_argument("--max-output", type=int, default=None)
    r.set_defaults(func=_cmd_random_access)

    i = sub.add_parser("info", help="show gzip member/block structure")
    i.add_argument("input")
    i.add_argument("--blocks", action="store_true", help="also list DEFLATE blocks")
    i.set_defaults(func=_cmd_info)

    st = sub.add_parser("stream", help="memory-bounded parallel decompression")
    st.add_argument("input")
    st.add_argument("-o", "--output")
    st.add_argument("--chunks", type=int, default=16)
    st.add_argument("--stripe", type=int, default=4)
    st.add_argument("--executor", choices=("serial", "thread", "process"), default="serial")
    st.set_defaults(func=_cmd_stream)

    g = sub.add_parser("pigz", help="chunk-parallel gzip compression")
    g.add_argument("input")
    g.add_argument("-o", "--output")
    g.add_argument("-l", "--level", type=int, default=6, choices=range(1, 10))
    g.add_argument("-t", "--threads", type=int, default=4)
    g.add_argument("--chunk-size", type=int, default=131072)
    g.add_argument("--executor", choices=("serial", "thread", "process"), default="process")
    g.set_defaults(func=_cmd_pigz)

    rec = sub.add_parser("recover", help="salvage data from a corrupted gzip file")
    rec.add_argument("input")
    rec.add_argument("-o", "--output")
    rec.add_argument("--guess", action="store_true",
                     help="fill undetermined characters with best guesses")
    rec.set_defaults(func=_cmd_recover)

    x = sub.add_parser("index", help="build or use a checkpoint index (ref [11])")
    xsub = x.add_subparsers(dest="mode", required=True)
    xb = xsub.add_parser("build", help="build and export an index sidecar")
    xb.add_argument("input")
    xb.add_argument("index_file", help="index sidecar path")
    xb.add_argument("--span", type=int, default=1 << 20,
                    help="bytes between checkpoints (sequential builder)")
    xb.add_argument("--builder", choices=("sequential", "pugz"),
                    default="sequential",
                    help="sequential: exact --span spacing; pugz: checkpoints "
                         "from the parallel first pass (denser with -t)")
    xb.add_argument("-t", "--threads", type=int, default=8,
                    help="pugz builder: number of chunks")
    xb.add_argument("-e", "--executor", choices=("serial", "thread", "process"),
                    default="serial", help="pugz builder: executor backend")
    xb.set_defaults(func=_cmd_index)
    xi = xsub.add_parser("info", help="describe an exported index sidecar")
    xi.add_argument("index_file")
    xi.set_defaults(func=_cmd_index)
    xe = xsub.add_parser("extract", help="ranged read through an index")
    xe.add_argument("input")
    xe.add_argument("index_file", help="index sidecar path")
    xe.add_argument("--extract", "--offset", type=int, required=True,
                    dest="extract", help="uncompressed offset to extract")
    xe.add_argument("--size", type=int, default=1024)
    xe.add_argument("--span", type=int, default=1 << 20,
                    help="checkpoint spacing if --auto-rebuild rebuilds")
    xe.add_argument("--auto-rebuild", action="store_true",
                    help="if the index file is missing or fails its "
                         "integrity check, rebuild it in place (atomic rename)")
    xe.add_argument("-o", "--output")
    xe.set_defaults(func=_cmd_index)

    ct = sub.add_parser(
        "cat", help="seekable ranged read (auto backend: bgzf / zran / pugz cold start)"
    )
    ct.add_argument("input")
    ct.add_argument("--range", default=None, metavar="START:END",
                    help="uncompressed byte range (END exclusive; omit END "
                         "to read to EOF)")
    ct.add_argument("--index", default=None,
                    help="zran index sidecar: loaded when intact, written "
                         "after a cold start")
    ct.add_argument("--backend", choices=("bgzf", "zran"), default=None,
                    help="force a backend instead of sniffing the stream")
    ct.add_argument("--span", type=int, default=1 << 20)
    ct.add_argument("-t", "--threads", type=int, default=8,
                    help="cold start: number of pugz chunks")
    ct.add_argument("-e", "--executor", choices=("serial", "thread", "process"),
                    default="serial")
    ct.add_argument("--stats", action="store_true",
                    help="print seek-cost counters to stderr")
    ct.add_argument("-o", "--output")
    ct.set_defaults(func=_cmd_cat)

    f = sub.add_parser("fuzz", help="seeded fault-injection campaign")
    f.add_argument("--seeds", type=int, default=9, help="seeds per (corpus, injector) cell")
    f.add_argument("--base-seed", type=int, default=1000)
    f.add_argument("-t", "--threads", type=int, default=2)
    f.add_argument("--max-resync-search-bits", type=int, default=20000)
    f.add_argument("--json", help="write the full machine-readable report here")
    f.add_argument("-v", "--verbose", action="store_true", help="print each case")
    f.set_defaults(func=_cmd_fuzz)

    lnt = sub.add_parser(
        "lint",
        help="AST + dataflow invariant checker (REP001-REP021)",
        description="Enforce the codebase's decode-safety, error-context "
                    "and parallelism contracts, plus flow-sensitive "
                    "bit/byte-unit and taint rules and interprocedural "
                    "call-graph analyses. Exit 0 clean, "
                    "1 findings, 2 internal error.",
    )
    lnt.add_argument("paths", nargs="*", help="files or directories to check")
    lnt.add_argument("--format", choices=("text", "json", "sarif"),
                     default="text")
    lnt.add_argument("--baseline", default=None,
                     help="baseline JSON: suppress known findings (ratchet)")
    lnt.add_argument("--update-baseline", action="store_true",
                     help="rewrite the baseline from current findings and exit 0")
    lnt.add_argument("--select", default=None,
                     help="comma-separated rule ids to run (default: all)")
    lnt.add_argument("--ignore", default=None,
                     help="comma-separated rule ids to skip")
    lnt.add_argument("-v", "--verbose", action="store_true",
                     help="also list baselined findings")
    lnt.add_argument("-j", "--jobs", type=int, default=1,
                     help="process-pool workers for the per-module rule "
                          "phase (the interprocedural phase stays serial)")
    lnt.add_argument("--summary-store", default=None, metavar="PATH",
                     help="JSON cache for interprocedural function "
                          "summaries, keyed on a project-wide source hash")
    lnt.add_argument("--explain", metavar="REPxxx", default=None,
                     help="print one rule's doc, example violation and "
                          "pragma slug, then exit")
    lnt.add_argument("--prove-pragmas", action="store_true",
                     help="report which allow-unbudgeted-alloc pragmas the "
                          "interval engine discharges (proved spec-constant "
                          "size bounds), then exit 0")
    lnt.set_defaults(func=_cmd_lint)

    b = sub.add_parser("bgzf", help="blocked gzip (BGZF) operations (ref [12])")
    b.add_argument("mode", choices=("compress", "decompress", "extract"))
    b.add_argument("input")
    b.add_argument("-o", "--output")
    b.add_argument("-l", "--level", type=int, default=6, choices=range(0, 10))
    b.add_argument("--offset", type=int, default=0, help="extract: uncompressed offset")
    b.add_argument("--size", type=int, default=1024, help="extract: byte count")
    b.set_defaults(func=_cmd_bgzf)

    return p


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if (
        len(argv) >= 2
        and argv[0] == "index"
        and argv[1] not in ("build", "info", "extract")
        and not argv[1].startswith("-")
    ):
        # Legacy form: `index INPUT IDX [--extract N ...]` predates the
        # build/info/extract modes — route it to the matching mode.
        argv.insert(1, "extract" if "--extract" in argv else "build")
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
