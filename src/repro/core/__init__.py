"""The paper's core contributions.

* :mod:`repro.core.marker` / :mod:`repro.core.marker_inflate` —
  undetermined-context decompression over a marker alphabet
  (Sections IV-B and VI-C);
* :mod:`repro.core.sync` — DEFLATE block-start detection by exhaustive
  bit probing with the Appendix X-A checks (Section VI-A);
* :mod:`repro.core.chunking` / :mod:`repro.core.pugz` /
  :mod:`repro.core.translate` — the exact two-pass parallel
  decompressor (Section VI-C, Figure 3);
* :mod:`repro.core.sequences` / :mod:`repro.core.random_access` —
  heuristic random access to DNA sequences in FASTQ files
  (Sections VI-B, VII-A, Appendix X-B).
"""

from repro.core.batch import BatchResult, FileOutcome, decompress_batch
from repro.core.guess import GuessReport, guess_markers
from repro.core.marker_inflate import MarkerInflateResult, marker_inflate
from repro.core.parallel_index import pugz_build_index
from repro.core.pigz import pigz_compress
from repro.core.recovery import RecoveryReport, locate_corruption, recover
from repro.core.pugz import PugzHole, PugzReport, pugz_decompress, pugz_decompress_payload
from repro.core.random_access import RandomAccessReport, random_access_sequences
from repro.core.seqstream import StreamingSequenceExtractor
from repro.core.sequences import ExtractedSequence, extract_sequences
from repro.core.sync import SyncResult, find_block_start, probe_block
from repro.core.windowed import WindowedReport, iter_pugz, pugz_decompress_windowed

__all__ = [
    "marker_inflate",
    "MarkerInflateResult",
    "pugz_decompress",
    "pugz_decompress_payload",
    "PugzReport",
    "PugzHole",
    "pugz_decompress_windowed",
    "iter_pugz",
    "WindowedReport",
    "random_access_sequences",
    "RandomAccessReport",
    "extract_sequences",
    "ExtractedSequence",
    "StreamingSequenceExtractor",
    "find_block_start",
    "probe_block",
    "SyncResult",
    "guess_markers",
    "GuessReport",
    "pigz_compress",
    "pugz_build_index",
    "recover",
    "locate_corruption",
    "RecoveryReport",
    "decompress_batch",
    "BatchResult",
    "FileOutcome",
]
