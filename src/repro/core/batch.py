"""Multi-file batch decompression (the 100-file dataset workflow).

The paper's evaluation sweeps a corpus of archives; this driver runs
the parallel decompressor over many files with one shared executor,
collecting per-file reports — the shape of a real re-processing job
over an archive directory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pugz import PugzReport, pugz_decompress
from repro.errors import ReproError
from repro.parallel.executor import Executor, make_executor

__all__ = ["BatchResult", "FileOutcome", "decompress_batch"]


@dataclass
class FileOutcome:
    """One file's result within a batch."""

    name: str
    ok: bool
    output_size: int = 0
    error: str = ""
    report: PugzReport | None = None


@dataclass
class BatchResult:
    outcomes: list[FileOutcome] = field(default_factory=list)

    @property
    def succeeded(self) -> list[FileOutcome]:
        return [o for o in self.outcomes if o.ok]

    @property
    def failed(self) -> list[FileOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def total_output(self) -> int:
        return sum(o.output_size for o in self.succeeded)


def decompress_batch(
    files: list[tuple[str, bytes]],
    sink,
    n_chunks: int = 4,
    executor: Executor | str = "serial",
    verify: bool = False,
    stop_on_error: bool = False,
) -> BatchResult:
    """Decompress ``(name, gz_bytes)`` pairs, streaming each output to
    ``sink(name, data)``.

    Failures are collected per file (a corrupt archive in a 100-file
    sweep must not abort the other 99) unless ``stop_on_error``.
    """
    if isinstance(executor, str):
        executor = make_executor(executor, n_chunks)
    result = BatchResult()
    for name, gz in files:
        try:
            out, report = pugz_decompress(
                gz, n_chunks=n_chunks, executor=executor,
                verify=verify, return_report=True,
            )
        except ReproError as exc:
            outcome = FileOutcome(name=name, ok=False, error=str(exc))
            result.outcomes.append(outcome)
            if stop_on_error:
                raise
            continue
        sink(name, out)
        result.outcomes.append(
            FileOutcome(name=name, ok=True, output_size=len(out), report=report)
        )
    return result
