"""Splitting a DEFLATE payload into chunks at confirmed block starts.

The two-pass decompressor breaks the compressed payload into ``n``
roughly equal parts ``C_1..C_n`` (Section VI-C).  Chunk 0 starts at the
payload start (a known block start); every other boundary is located by
running block-start detection from an evenly spaced byte target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.sync import find_block_start
from repro.errors import SyncError

__all__ = ["Chunk", "plan_chunks"]


@dataclass(frozen=True)
class Chunk:
    """One compressed chunk: decode blocks in ``[start_bit, stop_bit)``."""

    index: int
    start_bit: int
    #: Bit offset at which the next chunk begins (decode stops at the
    #: block boundary reaching it); ``None`` for the last chunk.
    stop_bit: int | None


def plan_chunks(
    data,
    payload_start_bit: int,
    payload_end_bit: int,
    n_chunks: int,
    *,
    confirm_blocks: int = 5,
) -> list[Chunk]:
    """Split ``[payload_start_bit, payload_end_bit)`` into up to ``n_chunks``.

    Boundaries land on confirmed block starts; targets that sync to the
    same block (tiny payloads) are merged, so fewer chunks than
    requested may be returned.  Chunk 0 always starts exactly at
    ``payload_start_bit``.
    """
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    payload_bits = payload_end_bit - payload_start_bit
    starts = [payload_start_bit]
    for k in range(1, n_chunks):
        target = payload_start_bit + (payload_bits * k) // n_chunks
        # Search on byte granularity targets like pugz (it splits the
        # file into byte ranges); bit-level targets work identically.
        try:
            sync = find_block_start(
                data,
                start_bit=max(target, starts[-1] + 1),
                confirm_blocks=confirm_blocks,
                end_bit=payload_end_bit,
            )
        except SyncError:
            # No further block start (e.g. the tail is one huge block);
            # the previous chunk simply extends to the end.
            break
        if sync.bit_offset > starts[-1]:
            starts.append(sync.bit_offset)

    chunks = []
    for i, start in enumerate(starts):
        stop = starts[i + 1] if i + 1 < len(starts) else None
        chunks.append(Chunk(index=i, start_bit=start, stop_bit=stop))
    return chunks
