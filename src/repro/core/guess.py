"""Guessing undetermined characters (the paper's future work).

Discussion section: *"It did not escape our attention that guessing
those undetermined characters could be possible, but we did not yet
explore this direction."*  This module explores it.

Two sources of information constrain a marker ``U_j``:

1. **Type constraints** — in a FASTQ file the surrounding characters
   usually pin down the line type of an undetermined position: a
   marker flanked by nucleotides inside a read line must be one of
   A/C/G/T/N; one inside a quality line must come from the file's
   quality alphabet.
2. **Consistency constraints** — the *same* marker ``U_j`` may surface
   at many output positions (every back-reference chain from context
   position ``j``).  All its occurrences are the same byte, so their
   type constraints intersect, and any occurrence whose local context
   fully determines the byte (e.g. a length-1 gap in an otherwise
   repeated header) fixes every other occurrence.

The guesser combines both: per-marker candidate sets from intersected
local classifications, then a per-position maximum-likelihood fill from
an order-2 context model trained on the *determined* part of the same
stream.  Accuracy is evaluated against ground truth in the benchmarks
(``benchmarks/test_future_guessing.py``).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

import numpy as np

from repro.core.marker import MARKER_BASE
from repro.units import ByteOffset

__all__ = ["GuessReport", "classify_marker_contexts", "guess_markers"]

_DNA = frozenset(b"ACGTN")
_NEWLINE = 10


@dataclass
class GuessReport:
    """Outcome of a guessing pass."""

    #: Symbols with markers replaced by guesses (int32, byte domain).
    symbols: np.ndarray
    #: Output positions that were guessed.
    guessed_positions: np.ndarray
    #: Per-marker candidate-set sizes (marker position j -> #candidates).
    candidates: dict[int, int]
    #: Markers whose constraints were contradictory (left as 'N').
    contradictions: int


def _line_type_of_run(symbols: np.ndarray, pos: ByteOffset) -> str:
    """Classify the line containing ``pos``: dna / quality / other.

    Scans to the nearest newlines (bounded) and votes on the concrete
    characters in between.
    """
    n = len(symbols)
    lo = pos
    steps = 0
    while lo > 0 and symbols[lo - 1] != _NEWLINE and steps < 400:
        lo -= 1
        steps += 1
    hi = pos
    steps = 0
    while hi + 1 < n and symbols[hi + 1] != _NEWLINE and steps < 400:
        hi += 1
        steps += 1
    line = symbols[lo : hi + 1]
    concrete = line[line < MARKER_BASE]
    if len(concrete) == 0:
        return "unknown"
    first = int(line[0]) if line[0] < MARKER_BASE else -1
    if first == ord("@"):
        return "header"
    if first == ord("+") and len(line) <= 2:
        return "plus"
    # Headers are recognisable by their field separators even when
    # their first byte is undetermined.
    if int((concrete == ord(":")).sum()) >= 3:
        return "header"
    dna_frac = float(np.isin(concrete, list(_DNA)).mean())
    if dna_frac > 0.95:
        return "dna"
    if dna_frac < 0.5:
        return "quality"
    return "unknown"


def classify_marker_contexts(symbols: np.ndarray) -> dict[int, set]:
    """Candidate byte sets per marker index, from intersected contexts.

    For every occurrence of marker ``U_j``, the local line type implies
    an alphabet; the candidate set for ``j`` is the intersection over
    all its occurrences (FASTQ alphabets: DNA letters vs the quality
    range vs anything printable).
    """
    symbols = np.asarray(symbols, dtype=np.int32)
    alphabet = {
        "dna": set(_DNA),
        "quality": set(range(33, 127)) - _DNA,
        "header": set(range(32, 127)),
        "plus": {ord("+")},
        "unknown": set(range(9, 127)),
    }
    occurrences: dict[int, list[int]] = defaultdict(list)
    for pos in np.flatnonzero(symbols >= MARKER_BASE):
        occurrences[int(symbols[pos]) - MARKER_BASE].append(int(pos))

    candidates: dict[int, set] = {}
    for j, positions in occurrences.items():
        cand = set(range(9, 127))
        # Sampling a few occurrences is enough: constraints repeat.
        for pos in positions[:8]:
            cand &= alphabet[_line_type_of_run(symbols, pos)]
            if len(cand) <= 1:
                break
        candidates[j] = cand
    return candidates


def _train_order2(symbols: np.ndarray) -> dict[tuple[int, int], Counter]:
    """Order-2 byte model over the determined regions of the stream."""
    model: dict[tuple[int, int], Counter] = defaultdict(Counter)
    # Vectorised triple extraction over concrete positions.
    a = symbols[:-2]
    b = symbols[1:-1]
    c = symbols[2:]
    ok = (a < MARKER_BASE) & (b < MARKER_BASE) & (c < MARKER_BASE)
    for x, y, z in zip(a[ok].tolist(), b[ok].tolist(), c[ok].tolist()):
        model[(x, y)][z] += 1
    return model


def _train_header_columns(symbols: np.ndarray) -> list[Counter]:
    """Per-column byte distributions of determined header lines.

    FASTQ headers are near-identical templates ("@SIM001:42:FCX:...");
    a marker at header column k is almost always the column's majority
    byte.  This is the consistency constraint at its strongest.
    """
    columns: list[Counter] = []
    n = len(symbols)
    pos = 0
    at = ord("@")
    while pos < n:
        end = pos
        while end < n and symbols[end] != _NEWLINE:
            end += 1
        line = symbols[pos:end]
        if len(line) and line[0] == at:
            for k, v in enumerate(line.tolist()):
                if v < MARKER_BASE:
                    while len(columns) <= k:
                        columns.append(Counter())
                    columns[k][v] += 1
        pos = end + 1
    return columns


def _header_line_start(symbols: np.ndarray, pos: ByteOffset) -> ByteOffset | None:
    """Start index of the header line containing ``pos`` (or None).

    Accepts lines whose leading '@' is itself undetermined, using the
    field-separator heuristic of :func:`_line_type_of_run`.
    """
    lo = pos
    steps = 0
    while lo > 0 and symbols[lo - 1] != _NEWLINE and steps < 400:
        lo -= 1
        steps += 1
    if lo >= len(symbols):
        return None
    if symbols[lo] == ord("@"):
        return lo
    if _line_type_of_run(symbols, pos) == "header":
        return lo
    return None


def guess_markers(symbols: np.ndarray, train: bool = True) -> GuessReport:
    """Replace every marker with its best guess.

    Constraint propagation first (singleton candidate sets are exact);
    remaining markers get the order-2 model's most likely byte among
    their candidates, falling back to ``N`` for DNA / ``I`` for quality
    / ``?`` otherwise.
    """
    symbols = np.asarray(symbols, dtype=np.int32)
    out = symbols.copy()
    marker_pos = np.flatnonzero(symbols >= MARKER_BASE)
    if len(marker_pos) == 0:
        return GuessReport(out, marker_pos, {}, 0)

    candidates = classify_marker_contexts(symbols)
    model = _train_order2(symbols) if train else {}
    header_cols = _train_header_columns(symbols) if train else []
    # Global byte frequencies over determined positions (fallback prior).
    concrete = symbols[symbols < MARKER_BASE]
    global_freq = Counter(concrete.tolist())

    contradictions = 0
    resolved: dict[int, int] = {}
    for j, cand in candidates.items():
        if len(cand) == 1:
            resolved[j] = next(iter(cand))
        elif len(cand) == 0:
            contradictions += 1

    def best_in(cand: set, counter: Counter) -> int | None:
        for byte, _count in counter.most_common():
            if not cand or byte in cand:
                return byte
        return None

    for pos in marker_pos.tolist():
        j = int(symbols[pos]) - MARKER_BASE
        if j in resolved:
            out[pos] = resolved[j]
            continue
        cand = candidates.get(j, set())

        # 1. Header template voting: strongest signal, headers are
        #    near-constant column-wise.
        guess = None
        line_start = _header_line_start(symbols, pos)
        if line_start is not None:
            col = pos - line_start
            if col < len(header_cols) and header_cols[col]:
                guess = best_in(cand, header_cols[col])

        # 2. Order-2 context model, conditioning on already-guessed
        #    left neighbours (out[], not symbols[]).
        if guess is None and pos >= 2 and out[pos - 2] < 256 and out[pos - 1] < 256:
            ctx = (int(out[pos - 2]), int(out[pos - 1]))
            if ctx in model:
                guess = best_in(cand, model[ctx])

        # 3. Global frequency prior within the candidate set.
        if guess is None:
            guess = best_in(cand, global_freq)
        if guess is None:
            guess = next(iter(sorted(cand))) if cand else ord("?")
        out[pos] = guess

    return GuessReport(
        symbols=out,
        guessed_positions=marker_pos,
        candidates={j: len(c) for j, c in candidates.items()},
        contradictions=contradictions,
    )
