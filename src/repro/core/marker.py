"""The marker symbol alphabet for undetermined-context decompression.

Section VI-C of the paper: instead of a context of identical '?'
characters, pugz seeds decompression with a window of *unique* symbols
``wˆ = [U_0, ..., U_32767]``, so that every back-reference into the
unknown context can later be resolved once the true context is known.

We represent the extended alphabet as ``int32`` codes:

* ``0..255`` — concrete bytes;
* ``MARKER_BASE + j`` (``j`` in ``[0, 32768)``) — the marker ``U_j``,
  i.e. "whatever byte sits at position ``j`` of the initial window".

Position ``j = 0`` is the *oldest* byte of the initial context (32768
bytes before the decompression start point) and ``j = 32767`` the byte
immediately preceding it.
"""

from __future__ import annotations

import numpy as np

from repro.deflate.constants import WINDOW_SIZE
from repro.errors import ReproError

__all__ = [
    "MARKER_BASE",
    "NUM_SYMBOLS",
    "undetermined_window",
    "is_marker",
    "marker_positions",
    "count_markers",
    "resolve",
    "to_bytes",
    "from_bytes",
]

#: First marker code; codes below are plain bytes.
MARKER_BASE = 256

#: Total alphabet size (bytes + one marker per window position).
NUM_SYMBOLS = MARKER_BASE + WINDOW_SIZE


def undetermined_window() -> list[int]:
    """The fully-undetermined initial context ``[U_0, ..., U_32767]``.

    Returned as a Python list because the decoder's window/output buffer
    is list-based (see :mod:`repro.core.marker_inflate`).
    """
    return list(range(MARKER_BASE, MARKER_BASE + WINDOW_SIZE))


def is_marker(symbols: np.ndarray) -> np.ndarray:
    """Boolean mask: which entries of a symbol array are markers."""
    return np.asarray(symbols) >= MARKER_BASE


def marker_positions(symbols: np.ndarray) -> np.ndarray:
    """Initial-window positions referenced by the marker entries.

    Non-marker entries map to -1.
    """
    symbols = np.asarray(symbols)
    out = np.full(symbols.shape, -1, dtype=np.int32)
    mask = symbols >= MARKER_BASE
    out[mask] = symbols[mask] - MARKER_BASE
    return out


def count_markers(symbols: np.ndarray) -> int:
    """Number of undetermined characters in a symbol array."""
    return int((np.asarray(symbols) >= MARKER_BASE).sum())


#: Identity prefix of the resolution LUT: byte codes map to themselves.
#: Relies on the alphabet layout ``MARKER_BASE == 256`` putting marker
#: ``U_j`` at LUT index ``256 + j``.
_BYTE_IDENTITY = np.arange(MARKER_BASE, dtype=np.int32)


def resolve(symbols: np.ndarray, window) -> np.ndarray:
    """Replace every marker ``U_j`` with ``window[j]``.

    ``window`` is the resolved context (bytes or symbol codes) of length
    32768; if it still contains markers they propagate into the output
    (this is exactly the sequential resolution step of the second pass:
    resolving ``w_{i+1}`` with a *partially* resolved ``w_i`` chains the
    references one link back).

    Implemented as a single vectorized gather: the LUT is the identity
    over byte codes concatenated with the window, so ``lut[symbols]``
    translates bytes and markers in one :func:`numpy.take` pass with no
    boolean masking or per-symbol branching (pass 2 of the two-pass
    decompressor spends essentially all its time here).
    """
    symbols = np.asarray(symbols, dtype=np.int32)
    window = np.asarray(window, dtype=np.int32)
    if window.shape != (WINDOW_SIZE,):
        raise ReproError(
            f"resolution window must have {WINDOW_SIZE} entries, got {window.shape}",
            stage="marker",
        )
    lut = np.concatenate([_BYTE_IDENTITY, window])
    return np.take(lut, symbols)


def to_bytes(symbols: np.ndarray, placeholder: int | None = None) -> bytes:
    """Convert a symbol array to bytes.

    Remaining markers are an error unless ``placeholder`` (e.g.
    ``ord('?')``) is given, in which case they render as that byte —
    the paper's '?' display convention (Figure 1).
    """
    symbols = np.asarray(symbols, dtype=np.int32)
    # max() is one branch-free pass; the boolean mask (two more passes)
    # is only materialised on the rare marker-bearing path.
    if symbols.size and int(symbols.max()) >= MARKER_BASE:
        mask = symbols >= MARKER_BASE
        if placeholder is None:
            raise ReproError(
                f"{int(mask.sum())} unresolved markers in symbol stream",
                stage="marker",
            )
        symbols = np.where(mask, np.int32(placeholder), symbols)
    return symbols.astype(np.uint8).tobytes()


def from_bytes(data: bytes) -> np.ndarray:
    """Lift concrete bytes into the symbol domain."""
    return np.frombuffer(data, dtype=np.uint8).astype(np.int32)
