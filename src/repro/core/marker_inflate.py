"""DEFLATE decompression over the marker alphabet.

This is Algorithm 2 of the paper run with the *undetermined context*
``wˆ = [U_0..U_32767]`` of Section VI-C: literals decode to concrete
bytes; matches copy symbols — possibly markers — from the window.  The
output is a stream over the extended alphabet of
:mod:`repro.core.marker`, in which every surviving marker records
exactly which initial-context position it came from.

Two consumption modes:

* **full output** (default): the whole symbol stream is returned as an
  ``int32`` array — used by the parallel decompressor's first pass and
  by the random-access analyses;
* **streaming** (``sink=...``): symbols are flushed to a callback in
  large chunks and only the 32 KiB window is retained — used for the
  Figure 2 scale experiments (tens of MB) where materialising the
  output would dominate memory.

The block-header machinery is shared with the byte-domain decoder
(:func:`repro.deflate.inflate.read_block_header`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import marker
from repro.deflate import constants as C
from repro.deflate.bitio import BitReader
from repro.deflate.inflate import BlockInfo, read_block_header
from repro.errors import BitstreamError, HuffmanError, BackrefError, ResourceLimitError

# Mirrors repro.robustness.limits.UNLIMITED_CAP without importing the
# robustness package (which transitively imports this module); the
# ``budget`` parameter is duck-typed for the same reason.
_UNLIMITED_CAP = 1 << 62
from repro.units import BitOffset

__all__ = ["MarkerInflateResult", "marker_inflate"]


@dataclass
class MarkerInflateResult:
    """Output of :func:`marker_inflate`."""

    #: Full symbol stream (``None`` in streaming mode).
    symbols: np.ndarray | None
    #: Bit position just past the last decoded block.
    end_bit: BitOffset
    #: True if a BFINAL=1 block was decoded.
    final_seen: bool
    #: True if decoding stopped because of ``max_output``.
    truncated: bool
    #: Total symbols produced (counting flushed ones).
    total_output: int
    #: Final 32 KiB window (symbol domain) — ``w_{i+1}`` of the paper.
    window: np.ndarray
    blocks: list[BlockInfo] = field(default_factory=list)


def _seed_window(window) -> list[int]:
    """Build the initial 32 KiB symbol window from caller input.

    ``None`` -> fully undetermined; bytes/array shorter than 32 KiB are
    right-aligned (they are the *most recent* history) with markers
    filling the unknown older positions.
    """
    if window is None:
        return marker.undetermined_window()
    if isinstance(window, (bytes, bytearray, memoryview)):
        vals = list(bytes(window)[-C.WINDOW_SIZE:])
    else:
        vals = [int(v) for v in window][-C.WINDOW_SIZE:]
    for v in vals:
        if not 0 <= v < marker.NUM_SYMBOLS:
            raise ValueError(f"symbol {v} outside marker alphabet")
    missing = C.WINDOW_SIZE - len(vals)
    if missing:
        vals = list(range(marker.MARKER_BASE, marker.MARKER_BASE + missing)) + vals
    return vals


def marker_inflate(
    data,
    start_bit: BitOffset = BitOffset(0),
    window=None,
    *,
    sink=None,
    flush_symbols: int = 1 << 20,
    max_output: int | None = None,
    max_blocks: int | None = None,
    stop_bit: BitOffset | None = None,
    stop_at_final: bool = True,
    budget=None,
    kernel=None,
) -> MarkerInflateResult:
    """Decompress a DEFLATE stream into the marker symbol domain.

    Parameters
    ----------
    data:
        Compressed buffer.
    start_bit:
        Bit offset of the first block header (e.g. from
        :func:`repro.core.sync.find_block_start`).
    window:
        Initial context; ``None`` means fully undetermined.
    sink:
        Streaming callback ``sink(symbols_list, start_position)``; when
        given, ``result.symbols`` is ``None``.
    flush_symbols:
        Streaming granularity.
    max_output:
        Stop (mid-block) once this many symbols were produced.
    max_blocks:
        Stop after this many complete blocks.
    stop_bit:
        Stop at the block boundary at/after this bit position — the
        first pass of the parallel decompressor stops where the next
        thread's chunk begins.
    stop_at_final:
        Stop after a BFINAL=1 block.
    budget:
        Optional :class:`repro.robustness.limits.ResourceBudget`
        (duck-typed).  Unlike the *soft* ``max_output`` truncation,
        exceeding the budget raises a structured
        :class:`~repro.errors.ResourceLimitError`: block boundaries
        check output size, expansion ratio and resident marker-buffer
        bytes, and the in-block match path refuses any copy that would
        push the symbol count past ``budget.marker_symbol_cap()``
        *before* copying (one int comparison per match).
    kernel:
        Decode-kernel selection (see :mod:`repro.perf.kernels`); the
        vectorized kernel runs Algorithm 2 as token decode plus an
        int32 symbol replay, falling back to this pure loop per block
        (and for exact soft/hard limit truncation), so symbol streams,
        errors, and bit positions are kernel-independent.
    """
    from repro.perf.kernels import resolve_kernel

    spec = resolve_kernel(kernel)
    if spec.use_vectorized(len(data)):
        return _marker_inflate_numpy(
            data, start_bit, window,
            sink=sink, flush_symbols=flush_symbols,
            max_output=max_output, max_blocks=max_blocks,
            stop_bit=stop_bit, stop_at_final=stop_at_final, budget=budget,
        )
    reader = BitReader(data, start_bit)
    out: list[int] = _seed_window(window)
    hist0 = len(out)  # 32768
    out_offset = -hist0  # output position of out[0]
    emitted = 0  # symbols already flushed to sink
    blocks: list[BlockInfo] = []
    final_seen = False
    truncated = False

    lbase = C.LENGTH_BASE
    lextra = C.LENGTH_EXTRA_BITS
    dbase = C.DIST_BASE
    dextra = C.DIST_EXTRA_BITS
    sym_cap = budget.marker_symbol_cap() if budget is not None else _UNLIMITED_CAP

    def _flush(final: bool = False) -> None:
        nonlocal out, out_offset, emitted
        if sink is None:
            return
        start_k = emitted - out_offset
        chunk = out[start_k:]
        if chunk:
            sink(chunk, emitted)
            emitted += len(chunk)
        if not final and len(out) > C.WINDOW_SIZE:
            drop = len(out) - C.WINDOW_SIZE
            out = out[drop:]
            out_offset += drop

    while True:
        total = out_offset + len(out)
        if max_blocks is not None and len(blocks) >= max_blocks:
            break
        if max_output is not None and total >= max_output:
            truncated = True
            break
        if stop_bit is not None and reader.tell_bits() >= stop_bit:
            break
        if reader.bits_remaining() < 3:
            break

        block_start_bit = reader.tell_bits()
        header = read_block_header(reader)
        out_start = out_offset + len(out)

        if header.btype == C.BTYPE_STORED:
            chunk = reader.read_bytes(header.stored_len)
            out.extend(chunk)
        else:
            truncated = _decode_block_symbols(
                reader, header, out,
                lbase, lextra, dbase, dextra,
                soft_limit=None if max_output is None else max_output - out_start,
                hard_limit=sym_cap - out_start,
            )

        out_end = out_offset + len(out)
        if budget is not None:
            budget.check_block(
                out_end,
                reader.tell_bits() - start_bit,
                stage="marker_inflate",
                bit_offset=block_start_bit,
                marker_buffer_bytes=4 * len(out),
            )
        blocks.append(
            BlockInfo(
                start_bit=block_start_bit,
                end_bit=reader.tell_bits(),
                out_start=out_start,
                out_end=out_end,
                btype=header.btype,
                bfinal=header.bfinal,
            )
        )
        if sink is not None and len(out) - (emitted - out_offset) >= flush_symbols:
            _flush()
        if truncated:
            break
        if header.bfinal:
            final_seen = True
            if stop_at_final:
                break

    total_output = out_offset + len(out)
    window_arr = np.asarray(out[-C.WINDOW_SIZE:], dtype=np.int32)
    if sink is not None:
        _flush(final=True)
        symbols = None
    else:
        symbols = np.asarray(out[hist0:], dtype=np.int32)
    return MarkerInflateResult(
        symbols=symbols,
        end_bit=reader.tell_bits(),
        final_seen=final_seen,
        truncated=truncated,
        total_output=total_output,
        window=window_arr,
        blocks=blocks,
    )


def _marker_inflate_numpy(
    data,
    start_bit,
    window,
    *,
    sink,
    flush_symbols: int,
    max_output: int | None,
    max_blocks: int | None,
    stop_bit,
    stop_at_final: bool,
    budget,
) -> MarkerInflateResult:
    """Vectorized-kernel twin of :func:`marker_inflate`'s main loop.

    Compressed blocks run through the two-stage kernel: stage 1 token
    decode (identical to the byte domain — the bitstream does not
    change between domains), stage 2 an **int32** symbol replay seeded
    with the current marker window, so markers survive match copies
    untouched.  Three events drop a block to the pure loop for exact
    reference behaviour: the kernel declining it (:class:`Fallback`),
    the block crossing the soft ``max_output`` truncation point (the
    pure loop stops mid-block at the exact token and reader position),
    and the block crossing the budget's symbol cap (the pure loop
    raises at the exact match copy).  Output accumulates as immutable
    int32 chunks; sinks still receive plain lists.
    """
    import numpy as np  # noqa: F811 - local alias mirrors module import

    from repro.perf import npkernel

    reader = BitReader(data, start_bit)
    win = np.asarray(_seed_window(window), dtype=np.int32)
    blocks: list[BlockInfo] = []
    final_seen = False
    truncated = False
    sym_cap = budget.marker_symbol_cap() if budget is not None else _UNLIMITED_CAP

    kern = npkernel.StreamKernel(data)
    chunks: list[np.ndarray] = []  # all produced symbols (sink=None) or pending flush
    produced = 0
    emitted = 0

    def _flush_np(final: bool = False) -> None:
        nonlocal chunks, emitted
        if sink is None:
            return
        if chunks:
            pending = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
            chunks = []
            sink(pending.tolist(), emitted)
            emitted += len(pending)

    while True:
        if max_blocks is not None and len(blocks) >= max_blocks:
            break
        if max_output is not None and produced >= max_output:
            truncated = True
            break
        if stop_bit is not None and reader.tell_bits() >= stop_bit:
            break
        if reader.bits_remaining() < 3:
            break

        block_start_bit = reader.tell_bits()
        header = read_block_header(reader)
        out_start = produced

        if header.btype == C.BTYPE_STORED:
            raw = reader.read_bytes(header.stored_len)
            block_sym = np.frombuffer(raw, np.uint8).astype(np.int32)
        else:
            soft_rem = None if max_output is None else max_output - out_start
            hard_rem = sym_cap - out_start
            try:
                offs, vals, _fp, end_bit = kern.decode_block(
                    reader.tell_bits(), header.litlen, header.dist,
                    max_out=min(
                        hard_rem,
                        _UNLIMITED_CAP if soft_rem is None
                        else soft_rem + C.MAX_MATCH,
                    ),
                )
                total = int(np.where(offs > 0, vals, 1).sum())
                if (soft_rem is not None and total >= soft_rem) or total > hard_rem:
                    raise npkernel.Fallback("block crosses an output limit")
                block_sym = npkernel.replay_symbols(offs, vals, win)
            except npkernel.Fallback:
                local = win.tolist()
                lprefix = len(local)
                truncated = _decode_block_symbols(
                    reader, header, local,
                    C.LENGTH_BASE, C.LENGTH_EXTRA_BITS,
                    C.DIST_BASE, C.DIST_EXTRA_BITS,
                    soft_limit=soft_rem,
                    hard_limit=hard_rem,
                )
                block_sym = np.asarray(local[lprefix:], dtype=np.int32)
            else:
                reader.seek_bits(BitOffset(end_bit))

        chunks.append(block_sym)
        produced += len(block_sym)
        if len(block_sym) >= C.WINDOW_SIZE:
            win = block_sym[-C.WINDOW_SIZE:]
        else:
            win = np.concatenate([win, block_sym])[-C.WINDOW_SIZE:]

        if budget is not None:
            resident = C.WINDOW_SIZE + (produced - emitted if sink is not None else produced)
            budget.check_block(
                produced,
                reader.tell_bits() - start_bit,
                stage="marker_inflate",
                bit_offset=block_start_bit,
                marker_buffer_bytes=4 * resident,
            )
        blocks.append(
            BlockInfo(
                start_bit=block_start_bit,
                end_bit=reader.tell_bits(),
                out_start=out_start,
                out_end=produced,
                btype=header.btype,
                bfinal=header.bfinal,
            )
        )
        if sink is not None and produced - emitted >= flush_symbols:
            _flush_np()
        if truncated:
            break
        if header.bfinal:
            final_seen = True
            if stop_at_final:
                break

    if sink is not None:
        _flush_np(final=True)
        symbols = None
    else:
        if chunks:
            symbols = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
        else:
            symbols = np.empty(0, dtype=np.int32)
    return MarkerInflateResult(
        symbols=symbols,
        end_bit=reader.tell_bits(),
        final_seen=final_seen,
        truncated=truncated,
        total_output=produced,
        window=win,
        blocks=blocks,
    )


def _decode_block_symbols(
    reader: BitReader,
    header,
    out: list[int],
    lbase,
    lextra,
    dbase,
    dextra,
    soft_limit: int | None,
    hard_limit: int = _UNLIMITED_CAP,
) -> bool:
    """Decode one compressed block into the symbol list.

    Returns ``True`` if decoding stopped early because ``soft_limit``
    symbols were produced (the caller then reports truncation).
    ``hard_limit`` is the resource-budget symbol cap for this block
    (absolute symbols it may still produce): a match copy that would
    exceed it raises :class:`~repro.errors.ResourceLimitError` *before*
    copying, the in-block half of the zip-bomb guard.

    Hot path: the reader's bit-buffer state is mirrored into locals and
    written back on exit (the documented ``_bitbuf``/``_bitcount``
    protocol), with lazy bulk refills (top-up only when the buffer
    cannot satisfy the next table lookup or extra-bits read) and
    slice-batched match copies — the same structure as the byte-domain
    fast loop in :func:`repro.deflate.inflate._decode_huffman_block_fast`.
    """
    litlen = header.litlen
    dist = header.dist
    lit_table = litlen.table
    lit_bits = litlen.max_bits
    lit_mask = (1 << lit_bits) - 1
    dist_table = dist.table if dist is not None else None
    dist_bits = dist.max_bits if dist is not None else 0
    dist_mask = (1 << dist_bits) - 1
    end_of_block = C.END_OF_BLOCK
    max_litlen = C.MAX_USED_LITLEN
    max_dist = C.MAX_USED_DIST
    # A soft limit of None never triggers truncation: compare against an
    # unreachable int bound so the loop keeps one cheap comparison.
    limit = _UNLIMITED_CAP if soft_limit is None else soft_limit

    data = reader._data
    nbytes = reader._nbytes
    pos = reader._pos
    bitbuf = reader._bitbuf
    bitcount = reader._bitcount
    from_bytes = int.from_bytes
    out_append = out.append
    out_extend = out.extend

    produced = 0

    try:
        while True:
            if produced >= limit:
                return True

            if bitcount < lit_bits:
                take = (64 - bitcount) >> 3
                rest = nbytes - pos
                if take > rest:
                    take = rest
                if take > 0:
                    bitbuf |= from_bytes(data[pos : pos + take], "little") << bitcount
                    bitcount += take << 3
                    pos += take
                if bitcount < lit_bits:
                    # Input exhausted: only here can a code claim more
                    # bits than remain (litlen tables are complete, so
                    # every index is a valid code and the main path
                    # needs no per-symbol validation).
                    if lit_table[bitbuf & lit_mask][0] > bitcount:
                        reader._pos, reader._bitbuf, reader._bitcount = pos, bitbuf, bitcount
                        raise BitstreamError(
                            "litlen code past end of stream",
                            bit_offset=reader.tell_bits(), stage="marker_inflate",
                        )

            nbits, sym = lit_table[bitbuf & lit_mask]
            bitbuf >>= nbits
            bitcount -= nbits

            if sym < 256:
                out_append(sym)
                produced += 1
                continue
            if sym == end_of_block:
                return False
            if sym > max_litlen:
                reader._pos, reader._bitbuf, reader._bitcount = pos, bitbuf, bitcount
                raise HuffmanError(
                    f"invalid length symbol {sym}",
                    bit_offset=reader.tell_bits(), stage="marker_inflate",
                )

            idx = sym - 257
            extra = lextra[idx]
            if extra:
                if extra > bitcount:
                    take = min((64 - bitcount) >> 3, nbytes - pos)
                    if take > 0:
                        bitbuf |= from_bytes(data[pos : pos + take], "little") << bitcount
                        bitcount += take << 3
                        pos += take
                    if extra > bitcount:
                        reader._pos, reader._bitbuf, reader._bitcount = pos, bitbuf, bitcount
                        raise BitstreamError(
                            f"requested {extra} bits with only {bitcount} available",
                            bit_offset=reader.tell_bits(), stage="marker_inflate",
                        )
                length = lbase[idx] + (bitbuf & ((1 << extra) - 1))
                bitbuf >>= extra
                bitcount -= extra
            else:
                length = lbase[idx]

            if dist_table is None:
                reader._pos, reader._bitbuf, reader._bitcount = pos, bitbuf, bitcount
                raise BackrefError(
                    "match in block that declared no distance codes",
                    bit_offset=reader.tell_bits(), stage="marker_inflate",
                )
            if bitcount < dist_bits:
                take = min((64 - bitcount) >> 3, nbytes - pos)
                if take > 0:
                    bitbuf |= from_bytes(data[pos : pos + take], "little") << bitcount
                    bitcount += take << 3
                    pos += take
                if bitcount < dist_bits:
                    # Input exhausted mid-match (distance tables may be
                    # incomplete, so nbits==0 stays checked below).
                    if dist_table[bitbuf & dist_mask][0] > bitcount:
                        reader._pos, reader._bitbuf, reader._bitcount = pos, bitbuf, bitcount
                        raise BitstreamError(
                            "distance code past end of stream",
                            bit_offset=reader.tell_bits(), stage="marker_inflate",
                        )
            nbits, dsym = dist_table[bitbuf & dist_mask]
            if nbits == 0:
                reader._pos, reader._bitbuf, reader._bitcount = pos, bitbuf, bitcount
                raise HuffmanError(
                    "invalid distance code",
                    bit_offset=reader.tell_bits(), stage="marker_inflate",
                )
            bitbuf >>= nbits
            bitcount -= nbits
            if dsym > max_dist:
                reader._pos, reader._bitbuf, reader._bitcount = pos, bitbuf, bitcount
                raise HuffmanError(
                    f"invalid distance symbol {dsym}",
                    bit_offset=reader.tell_bits(), stage="marker_inflate",
                )
            dex = dextra[dsym]
            if dex:
                if dex > bitcount:
                    take = min((64 - bitcount) >> 3, nbytes - pos)
                    if take > 0:
                        bitbuf |= from_bytes(data[pos : pos + take], "little") << bitcount
                        bitcount += take << 3
                        pos += take
                    if dex > bitcount:
                        reader._pos, reader._bitbuf, reader._bitcount = pos, bitbuf, bitcount
                        raise BitstreamError(
                            f"requested {dex} bits with only {bitcount} available",
                            bit_offset=reader.tell_bits(), stage="marker_inflate",
                        )
                distance = dbase[dsym] + (bitbuf & ((1 << dex) - 1))
                bitbuf >>= dex
                bitcount -= dex
            else:
                distance = dbase[dsym]

            start = len(out) - distance
            if start < 0:
                reader._pos, reader._bitbuf, reader._bitcount = pos, bitbuf, bitcount
                raise BackrefError(
                    f"distance {distance} exceeds seeded window + history",
                    bit_offset=reader.tell_bits(), stage="marker_inflate",
                )
            if produced + length > hard_limit:
                reader._pos, reader._bitbuf, reader._bitcount = pos, bitbuf, bitcount
                raise ResourceLimitError(
                    f"match copy would grow marker output past the "
                    f"resource budget ({hard_limit} more symbols allowed)",
                    limit="marker_symbols",
                    bit_offset=reader.tell_bits(), stage="marker_inflate",
                )
            if distance >= length:
                out_extend(out[start : start + length])
            else:
                pattern = out[start:]
                reps = -(-length // distance)
                out_extend((pattern * reps)[:length])
            produced += length
    finally:
        reader._pos = pos
        reader._bitbuf = bitbuf
        reader._bitcount = bitcount
