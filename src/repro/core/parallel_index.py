"""Parallel construction of a random-access index — a synthesis.

Ref [11]'s checkpoint index requires "an initial sequential
decompression of the whole file".  But the two-pass decompressor
produces, as a by-product, everything an index needs — confirmed block
starts at every chunk boundary and their fully *resolved* 32 KiB
contexts.  So on a multi-core machine the index can be built at pugz
speed rather than gunzip speed, with zero extra decompression work.

This module glues :mod:`repro.core.pugz` to :mod:`repro.index`.
"""

from __future__ import annotations

from repro.core.pugz import PugzReport, pugz_decompress
from repro.deflate.constants import WINDOW_SIZE
from repro.deflate.gzipfmt import parse_gzip_header
from repro.errors import ReproError
from repro.index.zran import Checkpoint, GzipIndex
from repro.parallel.executor import Executor
from repro.units import ByteOffset

__all__ = ["pugz_build_index"]


def pugz_build_index(
    gz_data: bytes,
    n_chunks: int = 8,
    executor: Executor | str = "serial",
) -> tuple[bytes, GzipIndex]:
    """Decompress in parallel and return (data, index) together.

    The index checkpoints are the chunk boundaries the planner found;
    their windows come from the decompressed output, which the caller
    gets anyway.  More chunks = denser index.
    """
    out, report = pugz_decompress(
        gz_data, n_chunks=n_chunks, executor=executor, return_report=True
    )
    if report.members != 1:
        # Multi-member files don't need this index: members are
        # natural checkpoints already (see repro.bgzf).
        raise ReproError(
            f"pugz_build_index expects a single-member file, got {report.members}",
            stage="parallel_index",
        )
    payload_start, *_ = parse_gzip_header(gz_data, 0)

    checkpoints = [Checkpoint(bit_offset=8 * payload_start, uoffset=0, window=b"")]
    uoffset: ByteOffset = ByteOffset(0)
    for chunk, size in zip(report.chunks, report.chunk_output_sizes):
        if chunk.index == 0:
            uoffset += size
            continue
        checkpoints.append(
            Checkpoint(
                bit_offset=chunk.start_bit,
                uoffset=uoffset,
                window=out[max(0, uoffset - WINDOW_SIZE) : uoffset],
            )
        )
        uoffset += size

    span = max(1, (len(out) // max(1, len(checkpoints))))
    return out, GzipIndex(checkpoints=checkpoints, usize=len(out), span=span)
