"""Parallel construction of a random-access index — a synthesis.

Ref [11]'s checkpoint index requires "an initial sequential
decompression of the whole file".  But the two-pass decompressor
produces, as a by-product, everything an index needs — confirmed block
starts at every chunk boundary and their fully *resolved* 32 KiB
contexts.  So on a multi-core machine the index can be built at pugz
speed rather than gunzip speed, with zero extra decompression work.

This is the "cold start" path of
:class:`repro.index.seekable.SeekableGzipReader`: the first touch of an
un-indexed plain gzip file runs the pugz first pass anyway, and this
module turns that pass into checkpoints — so the *second* touch is
already checkpoint-driven.

Multi-member ("blocked") files are walked member by member; every
member start becomes a ``"member"`` checkpoint (empty context by
construction) and ``uoffset`` stays continuous across boundaries, so
the resulting index addresses the file as one uncompressed stream.

This module glues :mod:`repro.core.pugz` to :mod:`repro.index`.
"""

from __future__ import annotations

from repro.core.pugz import PugzReport, pugz_decompress_payload
from repro.deflate.constants import WINDOW_SIZE
from repro.deflate.gzipfmt import parse_gzip_header
from repro.errors import GzipFormatError
from repro.index.zran import CHECKPOINT_BLOCK, CHECKPOINT_MEMBER, Checkpoint, GzipIndex
from repro.io.source import ByteSource
from repro.parallel.executor import Executor, make_executor
from repro.units import BitOffset, ByteOffset

__all__ = ["pugz_build_index"]


def pugz_build_index(
    gz_data,
    n_chunks: int = 8,
    executor: Executor | str = "serial",
    kernel: str | None = None,
) -> tuple[bytes, GzipIndex]:
    """Decompress in parallel and return ``(data, index)`` together.

    The index checkpoints are the chunk boundaries the planner found;
    their windows come from the decompressed output, which the caller
    gets anyway.  More chunks = denser index.  ``gz_data`` may be
    bytes, a path, a binary file object, or a
    :class:`~repro.io.source.ByteSource` (the build decodes every byte
    once by definition, so the whole stream is read either way).
    """
    src = ByteSource.wrap(gz_data)
    data = src.read_all()
    if not data:
        raise GzipFormatError("empty input", bit_offset=0, stage="parallel_index")
    if isinstance(executor, str):
        executor = make_executor(executor, n_chunks)

    out_parts: list[bytes] = []
    checkpoints: list[Checkpoint] = []
    uoffset = 0
    offset = 0
    n = len(data)
    while offset < n:
        payload_start, *_ = parse_gzip_header(data, offset)
        checkpoints.append(
            Checkpoint(
                bit_offset=BitOffset(8 * payload_start),
                uoffset=ByteOffset(uoffset),
                window=b"",
                kind=CHECKPOINT_MEMBER,
            )
        )
        # Fresh report per member: pugz_decompress_payload overwrites
        # the chunk tables on each call, so a shared report would only
        # describe the last member.
        report = PugzReport(n_chunks_requested=n_chunks)
        member_out = pugz_decompress_payload(
            data,
            8 * payload_start,
            8 * (n - 8),
            n_chunks,
            executor,
            report=report,
            kernel=kernel,
        )
        rel = 0
        for chunk, size in zip(report.chunks, report.chunk_output_sizes):
            if chunk.index > 0:
                # A confirmed block start whose 32 KiB context pass 2a
                # just resolved — a free checkpoint.
                checkpoints.append(
                    Checkpoint(
                        bit_offset=chunk.start_bit,
                        uoffset=ByteOffset(uoffset + rel),
                        window=member_out[max(0, rel - WINDOW_SIZE) : rel],
                        kind=CHECKPOINT_BLOCK,
                    )
                )
            rel += size
        uoffset += len(member_out)
        out_parts.append(member_out)
        payload_end = (report.end_bit + 7) // 8
        if n - payload_end < 8:
            raise GzipFormatError(
                "truncated gzip trailer",
                bit_offset=8 * payload_end,
                stage="trailer",
            )
        offset = payload_end + 8

    out = b"".join(out_parts)
    # The densest honest span: the largest output gap any seek can land
    # in, i.e. between consecutive checkpoints or after the last one.
    offs = [cp.uoffset for cp in checkpoints] + [len(out)]
    span = max(
        (b - a for a, b in zip(offs, offs[1:])),
        default=len(out),
    )
    index = GzipIndex(
        checkpoints=checkpoints, usize=len(out), span=max(1, span), csize=n
    )
    return out, index
