"""pigz-style parallel gzip *compression*.

Section I of the paper: "There exist parallel programs for speeding-up
gzip compression, e.g. pigz.  The underlying compression algorithm of
gzip, DEFLATE, easily lends itself to processing of blocks of data
concurrently."  This module demonstrates exactly how, completing the
compression side of the story:

* the input is cut into fixed-size chunks;
* each chunk is LZ77-parsed **with the previous chunk's last 32 KiB as
  a preset dictionary** (so cross-chunk matches survive — pigz's
  trick, zlib's ``deflateSetDictionary``);
* every chunk but the last ends with an empty stored block
  (``Z_SYNC_FLUSH``), which byte-aligns its fragment so the fragments
  concatenate into one valid DEFLATE stream;
* a single gzip header/trailer wraps the whole file.

The output is a perfectly ordinary gzip file — and, notably, one whose
block structure is what makes the paper's *decompression* side hard:
no index, no member boundaries, back-references across chunk joints.
"""

from __future__ import annotations

from repro.deflate.constants import WINDOW_SIZE
from repro.deflate.crc32 import crc32, crc32_combine
from repro.deflate.deflate import compress_tokens
from repro.deflate.gzipfmt import gzip_wrap
from repro.deflate.lz77 import parse_lz77
from repro.parallel.executor import Executor, make_executor

__all__ = ["pigz_compress", "DEFAULT_CHUNK_SIZE"]

#: pigz's default chunk size (128 KiB).
DEFAULT_CHUNK_SIZE = 131072


def _compress_chunk(args) -> tuple[int, bytes, int, int]:
    """Worker: compress one chunk against its dictionary.

    Returns ``(index, fragment, crc, length)`` — the per-chunk CRC
    feeds the parallel crc32_combine at the end.
    """
    index, chunk, dictionary, level, is_last = args
    tokens = parse_lz77(chunk, level, dictionary=dictionary)
    fragment = compress_tokens(
        chunk, tokens, bfinal=is_last, sync_flush=not is_last
    )
    return index, fragment, crc32(chunk), len(chunk)


def pigz_compress(
    data: bytes,
    level: int = 6,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    executor: Executor | str = "serial",
    n_workers: int = 4,
    mtime: int = 0,
    filename: bytes | None = None,
) -> bytes:
    """Compress ``data`` into a gzip file, chunk-parallel.

    The result is byte-compatible with every gzip reader; compression
    ratio is within a fraction of a percent of the sequential encoder
    (only the sync-flush stored blocks and slightly shallower chunk-
    boundary history are lost).
    """
    if chunk_size < 1024:
        raise ValueError("chunk_size must be >= 1 KiB")
    if isinstance(executor, str):
        executor = make_executor(executor, n_workers)
    data = bytes(data)

    jobs = []
    n = len(data)
    starts = list(range(0, n, chunk_size)) or [0]
    for k, start in enumerate(starts):
        chunk = data[start : start + chunk_size]
        dictionary = data[max(0, start - WINDOW_SIZE) : start]
        jobs.append((k, chunk, dictionary, level, k == len(starts) - 1))

    results = executor.map(_compress_chunk, jobs)
    results.sort(key=lambda r: r[0])
    payload = b"".join(r[1] for r in results)

    # Parallel-friendly trailer: combine the per-chunk CRCs.
    combined = results[0][2]
    for _, _, c, length in results[1:]:
        combined = crc32_combine(combined, c, length)

    header_tail = gzip_wrap(payload, b"", mtime=mtime, filename=filename,
                            level_hint=level)
    # gzip_wrap computed CRC/ISIZE for b""; rebuild the trailer with the
    # combined values instead of re-scanning the input.
    import struct

    trailer = struct.pack("<II", combined, n & 0xFFFFFFFF)
    return header_tail[:-8] + trailer
