"""pugz: exact two-pass parallel decompression of gzip files (Section VI-C).

The algorithm, exactly as in the paper (Figure 3):

1. The compressed payload is split at confirmed DEFLATE block starts
   into ``n`` roughly equal chunks (:mod:`repro.core.chunking`).
2. **First pass** (parallel): every chunk decompresses independently.
   Chunk 0 starts from the true stream beginning (byte domain); chunks
   ``i >= 1`` start from an *undetermined* context of unique marker
   symbols ``U_0..U_32767`` (:mod:`repro.core.marker_inflate`), so the
   origin of every unknown byte is tracked through back-references.
3. **Second pass**: the 32 KiB boundary contexts are resolved
   sequentially (cheap — n × 32 KiB), then every chunk translates its
   markers in parallel (:mod:`repro.core.translate`).

The result is byte-exact for *any* input whose stream is well-formed,
with no heuristics — verified against :func:`gzip.decompress`
throughout the test suite.  Extensions over the paper's implementation:
multi-member (blocked) gzip files are handled member-by-member, and
CRC32 can be verified in a parallel-friendly way via
:func:`repro.deflate.crc32.crc32_combine` (the paper's pugz skips CRC).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core import marker
from repro.core.chunking import Chunk, plan_chunks
from repro.core.marker_inflate import marker_inflate
from repro.core.translate import resolve_contexts, translate_chunk
from repro.deflate.crc32 import crc32, crc32_combine
from repro.deflate.gzipfmt import parse_gzip_header
from repro.deflate.inflate import inflate
from repro.errors import GzipFormatError, ReproError
from repro.parallel.executor import Executor, make_executor

__all__ = ["PugzReport", "pugz_decompress", "pugz_decompress_payload"]


@dataclass
class PugzReport:
    """Instrumentation of one parallel decompression run."""

    n_chunks_requested: int
    chunks: list[Chunk] = field(default_factory=list)
    #: Output bytes produced by each chunk in pass 1.
    chunk_output_sizes: list[int] = field(default_factory=list)
    #: Markers remaining in each chunk's output after pass 1.
    chunk_marker_counts: list[int] = field(default_factory=list)
    sync_seconds: float = 0.0
    pass1_seconds: float = 0.0
    resolve_seconds: float = 0.0
    pass2_seconds: float = 0.0
    output_size: int = 0
    members: int = 0
    #: Bit offset just past the last member's BFINAL block.
    end_bit: int = 0

    @property
    def total_seconds(self) -> float:
        return (
            self.sync_seconds
            + self.pass1_seconds
            + self.resolve_seconds
            + self.pass2_seconds
        )


def _seed_window_array(tail: bytes) -> list[int]:
    """Right-align ``tail`` in a 32 KiB window, marker-padding the left."""
    vals = list(tail[-32768:])
    missing = 32768 - len(vals)
    if missing:
        vals = list(range(marker.MARKER_BASE, marker.MARKER_BASE + missing)) + vals
    return vals


def _pass1_chunk(args) -> tuple[int, np.ndarray, np.ndarray, int, bool]:
    """First-pass worker: decode one chunk into the marker domain.

    Module-level so :class:`ProcessExecutor` can pickle it.  Returns
    ``(index, symbols, final_window, end_bit, final_seen)``.
    """
    data, chunk_start, chunk_stop, index = args
    if index == 0 and chunk_stop is None:
        # Sole chunk with a fully known (empty) context: decode in the
        # byte domain, which is faster and yields a concrete window.
        result = inflate(data, start_bit=chunk_start, stop_at_final=True)
        symbols = np.frombuffer(result.data, dtype=np.uint8).astype(np.int32)
        window_syms = np.asarray(_seed_window_array(result.data[-32768:]), dtype=np.int32)
        return 0, symbols, window_syms, result.end_bit, result.final_seen
    result = marker_inflate(data, start_bit=chunk_start, window=None, stop_bit=chunk_stop)
    return index, result.symbols, result.window, result.end_bit, result.final_seen


def _pass2_chunk(args) -> bytes:
    """Second-pass worker: translate one chunk's markers to bytes."""
    symbols, context = args
    return translate_chunk(symbols, context)


def pugz_decompress_payload(
    data,
    start_bit: int,
    end_bit: int,
    n_chunks: int = 4,
    executor: Executor | str = "serial",
    confirm_blocks: int = 5,
    report: PugzReport | None = None,
) -> bytes:
    """Two-pass parallel decompression of one raw DEFLATE payload.

    ``data`` is the enclosing buffer; the payload's first block starts
    at ``start_bit`` and certainly ends by ``end_bit`` (an upper bound
    is fine — decoding stops at the BFINAL block).  ``executor``
    selects the backend (``serial`` / ``thread`` / ``process`` or an
    :class:`~repro.parallel.executor.Executor` instance).
    """
    if isinstance(executor, str):
        executor = make_executor(executor, n_chunks)
    if report is None:
        report = PugzReport(n_chunks_requested=n_chunks)

    t0 = time.perf_counter()
    chunks = plan_chunks(data, start_bit, end_bit, n_chunks, confirm_blocks=confirm_blocks)
    report.chunks = chunks
    report.sync_seconds += time.perf_counter() - t0

    # ---- pass 1: parallel marker-domain decompression -------------------
    t0 = time.perf_counter()
    jobs = []
    for c in chunks:
        stop = c.stop_bit if c.stop_bit is not None else None
        jobs.append((data, c.start_bit, stop, c.index))
    results = executor.map(_pass1_chunk, jobs)
    results.sort(key=lambda r: r[0])
    # A chunk that decoded a BFINAL block marks the true stream end
    # (the planner's end_bit is only an upper bound): drop any chunks
    # planned past it — their block starts belong to whatever follows
    # (e.g. the next member of a multi-member file).
    for k, r in enumerate(results):
        if r[4]:
            results = results[: k + 1]
            report.chunks = chunks[: k + 1]
            break
    symbol_arrays = [r[1] for r in results]
    windows = [r[2] for r in results]
    report.end_bit = results[-1][3]
    report.pass1_seconds += time.perf_counter() - t0
    report.chunk_output_sizes = [len(s) for s in symbol_arrays]
    report.chunk_marker_counts = [marker.count_markers(s) for s in symbol_arrays]

    if report.chunk_marker_counts[0]:
        raise ReproError(
            "chunk 0 produced markers: stream references data before its start"
        )

    # ---- pass 2a: sequential context resolution (cheap) ------------------
    t0 = time.perf_counter()
    contexts = resolve_contexts(windows)
    report.resolve_seconds += time.perf_counter() - t0

    # ---- pass 2b: parallel marker translation ----------------------------
    t0 = time.perf_counter()
    first_bytes = symbol_arrays[0].astype(np.uint8).tobytes()
    rest_jobs = [(symbol_arrays[i], contexts[i - 1]) for i in range(1, len(symbol_arrays))]
    rest_bytes = executor.map(_pass2_chunk, rest_jobs) if rest_jobs else []
    out = first_bytes + b"".join(rest_bytes)
    report.pass2_seconds += time.perf_counter() - t0
    report.output_size += len(out)
    return out


def pugz_decompress(
    gz_data: bytes,
    n_chunks: int = 4,
    executor: Executor | str = "serial",
    *,
    verify: bool = False,
    confirm_blocks: int = 5,
    return_report: bool = False,
):
    """Parallel decompression of a gzip file (the paper's ``pugz``).

    Handles single- and multi-member files: a multi-member ("blocked")
    file is decompressed member-by-member, each member internally
    chunked — members are already independent decompression units.

    Parameters
    ----------
    gz_data:
        Complete gzip file contents.
    n_chunks:
        Number of parallel chunks ("threads" in the paper's terms).
    executor:
        ``serial`` / ``thread`` / ``process`` or an Executor instance.
    verify:
        Check each member's CRC32/ISIZE trailer; per-part CRCs are
        computed through the executor and folded with
        :func:`crc32_combine`, keeping verification parallel-friendly.
    return_report:
        Also return the :class:`PugzReport` instrumentation.
    """
    if isinstance(executor, str):
        executor = make_executor(executor, n_chunks)
    report = PugzReport(n_chunks_requested=n_chunks)
    out_parts: list[bytes] = []
    offset = 0
    n = len(gz_data)
    while offset < n:
        payload_start, *_ = parse_gzip_header(gz_data, offset)
        member_out = pugz_decompress_payload(
            gz_data,
            8 * payload_start,
            8 * (n - 8),
            n_chunks,
            executor,
            confirm_blocks=confirm_blocks,
            report=report,
        )
        payload_end = (report.end_bit + 7) // 8
        if n - payload_end < 8:
            raise GzipFormatError("truncated gzip trailer")
        if verify:
            _verify_member(gz_data, payload_end, member_out, executor)
        out_parts.append(member_out)
        offset = payload_end + 8
        report.members += 1
    out = b"".join(out_parts)
    if return_report:
        return out, report
    return out


def _verify_member(gz_data: bytes, payload_end: int, member_out: bytes, executor: Executor) -> None:
    stored_crc = int.from_bytes(gz_data[payload_end : payload_end + 4], "little")
    stored_isize = int.from_bytes(gz_data[payload_end + 4 : payload_end + 8], "little")
    parts = _split_for_crc(member_out, executor.parallelism)
    crcs = executor.map(crc32, parts)
    combined = crcs[0]
    for part, c in zip(parts[1:], crcs[1:]):
        combined = crc32_combine(combined, c, len(part))
    if combined != stored_crc:
        raise GzipFormatError(
            f"CRC mismatch: stored {stored_crc:#010x}, computed {combined:#010x}"
        )
    if stored_isize != len(member_out) & 0xFFFFFFFF:
        raise GzipFormatError(
            f"ISIZE mismatch: stored {stored_isize}, actual {len(member_out)}"
        )


def _split_for_crc(data: bytes, n: int) -> list[bytes]:
    """Split bytes into n near-equal parts for parallel checksumming."""
    if not data:
        return [b""]
    n = max(1, min(n, len(data)))
    step = -(-len(data) // n)
    return [data[i : i + step] for i in range(0, len(data), step)]
