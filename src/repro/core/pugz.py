"""pugz: exact two-pass parallel decompression of gzip files (Section VI-C).

The algorithm, exactly as in the paper (Figure 3):

1. The compressed payload is split at confirmed DEFLATE block starts
   into ``n`` roughly equal chunks (:mod:`repro.core.chunking`).
2. **First pass** (parallel): every chunk decompresses independently.
   Chunk 0 starts from the true stream beginning (byte domain); chunks
   ``i >= 1`` start from an *undetermined* context of unique marker
   symbols ``U_0..U_32767`` (:mod:`repro.core.marker_inflate`), so the
   origin of every unknown byte is tracked through back-references.
3. **Second pass**: the 32 KiB boundary contexts are resolved
   sequentially (cheap — n × 32 KiB), then every chunk translates its
   markers in parallel (:mod:`repro.core.translate`).

The result is byte-exact for *any* input whose stream is well-formed,
with no heuristics — verified against :func:`gzip.decompress`
throughout the test suite.  Extensions over the paper's implementation:
multi-member (blocked) gzip files are handled member-by-member, and
CRC32 can be verified in a parallel-friendly way via
:func:`repro.deflate.crc32.crc32_combine` (the paper's pugz skips CRC).

Fault tolerance (``on_error="recover"``)
----------------------------------------

The paper pitches the machinery for forensics on corrupted FASTQ
archives (Section VI-B).  In the default ``on_error="raise"`` mode a
corrupted chunk aborts the whole run; in ``"recover"`` mode the engine
degrades gracefully instead:

* per-chunk failures are captured (:meth:`Executor.map_outcomes`)
  rather than aborting the pool;
* a failed chunk is re-decoded block by block up to the fault, then
  resynced past it with :func:`repro.core.sync.find_block_start` and
  decoded to its end — so everything decodable on both sides of the
  damage is salvaged;
* data after a fault whose 32 KiB context fell inside a hole renders as
  ``?`` placeholders (the paper's Figure 1 convention) instead of
  failing translation;
* every lost compressed region is recorded as a :class:`PugzHole` in
  the :class:`PugzReport`, and trailer verification failures are
  recorded instead of raised.

The output is then *best effort*: all clean chunks byte-exact, holes
explicit, and the report says precisely what is missing.
"""

from __future__ import annotations

import time
import warnings
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.core import marker
from repro.core.chunking import Chunk, plan_chunks
from repro.core.marker_inflate import marker_inflate
from repro.core.sync import find_block_start
from repro.core.translate import translate_chunk_counted
from repro.deflate.constants import WINDOW_SIZE
from repro.deflate.crc32 import crc32, crc32_combine
from repro.deflate.gzipfmt import parse_gzip_header
from repro.deflate.inflate import inflate
from repro.errors import GzipFormatError, ReproError, annotate
from repro.parallel.executor import Executor, make_executor
from repro.parallel.supervision import SupervisionPolicy, is_execution_fault
from repro.units import BitOffset, ByteOffset

__all__ = [
    "ChunkOutcome",
    "PugzHole",
    "PugzReport",
    "pugz_decompress",
    "pugz_decompress_payload",
]

#: Rendering of undecodable positions in recovered output.
HOLE_BYTE = ord("?")


@dataclass(frozen=True)
class PugzHole:
    """One compressed region whose decompressed bytes were lost.

    ``[start_bit, end_bit)`` is the compressed span that produced no
    output: from where clean decoding stopped to where it resynced (or
    to the end of the chunk's region if no resync succeeded).
    """

    chunk_index: int
    start_bit: BitOffset
    end_bit: BitOffset
    #: Message of the error that opened the hole.
    error: str

    @property
    def start_byte(self) -> ByteOffset:
        return ByteOffset(self.start_bit >> 3)

    @property
    def end_byte(self) -> ByteOffset:
        return ByteOffset((self.end_bit + 7) >> 3)

    def to_dict(self) -> dict:
        return {
            "chunk_index": self.chunk_index,
            "start_bit": self.start_bit,
            "end_bit": self.end_bit,
            "error": self.error,
        }


@dataclass(frozen=True)
class ChunkOutcome:
    """Supervision record of one chunk of pass 1.

    ``status`` mirrors the corresponding ``chunk_outcomes`` string
    (``ok`` / ``salvaged`` / ``lost``); ``degraded_to`` names the rung
    of the degradation ladder that produced the result (``None`` for a
    clean parallel decode, else ``serial`` / ``zlib`` / ``salvage`` /
    ``hole``); ``retries`` counts supervised re-attempts and
    ``wall_time`` the in-worker seconds of the decisive attempt.
    """

    index: int
    status: str
    retries: int = 0
    degraded_to: str | None = None
    wall_time: float = 0.0
    #: Message of the error that forced degradation (``None`` if clean).
    error: str | None = None

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "status": self.status,
            "retries": self.retries,
            "degraded_to": self.degraded_to,
            "wall_time": self.wall_time,
            "error": self.error,
        }


@dataclass
class PugzReport:
    """Instrumentation of one parallel decompression run."""

    n_chunks_requested: int
    chunks: list[Chunk] = field(default_factory=list)
    #: Output bytes produced by each chunk in pass 1.
    chunk_output_sizes: list[int] = field(default_factory=list)
    #: Markers remaining in each chunk's output after pass 1.
    chunk_marker_counts: list[int] = field(default_factory=list)
    #: Per-chunk outcome of the last member: ``ok`` / ``salvaged`` / ``lost``.
    chunk_outcomes: list[str] = field(default_factory=list)
    #: Per-chunk supervision detail of the last member (retries,
    #: degradation rung, wall time) — parallel to ``chunk_outcomes``.
    chunk_details: list[ChunkOutcome] = field(default_factory=list)
    #: Compressed regions lost to corruption (recover mode; all members).
    holes: list[PugzHole] = field(default_factory=list)
    #: Output positions rendered as ``?`` because their context fell in
    #: a hole (recover mode; all members).
    unresolved_markers: int = 0
    #: Trailer verification failures recorded instead of raised
    #: (recover mode with ``verify=True``).
    verify_failures: list[str] = field(default_factory=list)
    #: Byte offset of ignored trailing garbage after the last member.
    trailing_garbage_offset: int | None = None
    sync_seconds: float = 0.0
    pass1_seconds: float = 0.0
    resolve_seconds: float = 0.0
    pass2_seconds: float = 0.0
    output_size: int = 0
    members: int = 0
    #: Bit offset just past the last member's BFINAL block.
    end_bit: int = 0

    @property
    def total_seconds(self) -> float:
        return (
            self.sync_seconds
            + self.pass1_seconds
            + self.resolve_seconds
            + self.pass2_seconds
        )

    @property
    def is_complete(self) -> bool:
        """True when nothing was lost: no holes, no placeholder bytes,
        no recorded verification failure, no ignored trailing garbage."""
        return (
            not self.holes
            and not self.unresolved_markers
            and not self.verify_failures
            and self.trailing_garbage_offset is None
        )


@dataclass
class _Segment:
    """A contiguous marker-domain piece of pass-1 output.

    A clean chunk is one chained segment; a corrupted chunk salvages
    into several, with ``chained=False`` on each piece whose 32 KiB
    context fell inside a hole (its markers can never be resolved).
    """

    chunk_index: int
    symbols: np.ndarray
    window: np.ndarray
    end_bit: int
    final_seen: bool
    chained: bool


def _undetermined_window_array() -> np.ndarray:
    return np.arange(
        marker.MARKER_BASE, marker.MARKER_BASE + WINDOW_SIZE, dtype=np.int32
    )


def _seed_window_array(tail: bytes) -> list[int]:
    """Right-align ``tail`` in a 32 KiB window, marker-padding the left."""
    vals = list(tail[-WINDOW_SIZE:])
    missing = WINDOW_SIZE - len(vals)
    if missing:
        vals = list(range(marker.MARKER_BASE, marker.MARKER_BASE + missing)) + vals
    return vals


def _pass1_chunk(args) -> tuple[int, np.ndarray, np.ndarray, int, bool, int]:
    """First-pass worker: decode one chunk into the marker domain.

    Module-level so :class:`ProcessExecutor` can pickle it.  Returns
    ``(index, symbols, final_window, end_bit, final_seen, n_blocks)``.
    A failure is annotated with the chunk index before propagating, so
    captured outcomes name the chunk that died.
    """
    data, chunk_start, chunk_stop, index, budget, kernel = args
    try:
        if index == 0 and chunk_stop is None:
            # Sole chunk with a fully known (empty) context: decode in the
            # byte domain, which is faster and yields a concrete window.
            result = inflate(
                data, start_bit=chunk_start, stop_at_final=True, budget=budget,
                kernel=kernel,
            )
            symbols = np.frombuffer(result.data, dtype=np.uint8).astype(np.int32)
            window_syms = np.asarray(
                _seed_window_array(result.data[-WINDOW_SIZE:]), dtype=np.int32
            )
            return 0, symbols, window_syms, result.end_bit, result.final_seen, len(result.blocks)
        result = marker_inflate(
            data, start_bit=chunk_start, window=None, stop_bit=chunk_stop,
            budget=budget, kernel=kernel,
        )
        return (
            index,
            result.symbols,
            result.window,
            result.end_bit,
            result.final_seen,
            len(result.blocks),
        )
    except ReproError as exc:
        annotate(exc, chunk_index=index, stage="pass1", bit_offset=chunk_start)
        raise


def _pass2_chunk(args) -> tuple[bytes, int]:
    """Second-pass worker: translate one segment's markers to bytes."""
    symbols, context, placeholder = args
    return translate_chunk_counted(symbols, context, placeholder=placeholder)


def _decode_chunk_prefix(
    data, start_bit: BitOffset, stop_bit: BitOffset | None, budget=None,
    kernel=None,
):
    """Marker-decode block by block from ``start_bit`` until the first
    failure (or the chunk boundary / BFINAL block).

    Returns ``(symbols, window, end_bit, final_seen)`` where ``end_bit``
    is the boundary of the last *cleanly* decoded block — the precise
    start of the damage when decoding stopped early.  A ``budget``
    bounds the salvage the same way it bounds the clean path: each
    block is decoded under it, the cumulative symbol count is checked
    between blocks, and a budget trip simply ends the prefix (recover
    mode must stay recover mode, but resident memory stays capped).
    """
    window = None  # undetermined initial context
    parts: list[np.ndarray] = []
    total_symbols = 0
    sym_cap = budget.marker_symbol_cap() if budget is not None else None
    bit = start_bit
    final = False
    while stop_bit is None or bit < stop_bit:
        try:
            res = marker_inflate(
                data, start_bit=bit, window=window, max_blocks=1, stop_bit=stop_bit,
                budget=budget, kernel=kernel,
            )
        except ReproError:
            break
        if not res.blocks or res.end_bit <= bit:
            break
        parts.append(res.symbols)
        total_symbols += len(res.symbols)
        window = res.window
        bit = res.end_bit
        if res.final_seen:
            final = True
            break
        if sym_cap is not None and total_symbols >= sym_cap:
            # Per-block budgets cannot see across blocks; this check
            # makes the cap cumulative over the salvaged prefix.
            break
    symbols = (
        np.concatenate(parts) if parts else np.zeros(0, dtype=np.int32)
    )
    if window is None:
        window_arr = _undetermined_window_array()
    else:
        window_arr = np.asarray(window, dtype=np.int32)
    return symbols, window_arr, bit, final


def _salvage_chunk(
    data,
    chunk: Chunk,
    region_end: int,
    confirm_blocks: int,
    max_resync_search_bits: int | None,
    err: BaseException,
    budget=None,
    kernel=None,
) -> tuple[list[_Segment], list[PugzHole]]:
    """Best-effort decode of a chunk that failed in pass 1.

    Alternates clean block-by-block decoding with block-start resync
    (the Section VI-A machinery) until the chunk's compressed region is
    exhausted, producing zero or more salvaged segments and one hole
    per undecodable span.  The final segment's window hands the correct
    (possibly partially unknown) context to the next chunk.  A
    ``budget`` caps the *cumulative* salvaged symbols: once spent, the
    rest of the region becomes one hole instead of more output.
    """
    segments: list[_Segment] = []
    holes: list[PugzHole] = []
    total_symbols = 0
    sym_cap = budget.marker_symbol_cap() if budget is not None else None
    bit = chunk.start_bit
    chained = True  # the first piece continues the previous chunk's context
    while bit < region_end:
        if sym_cap is not None and total_symbols >= sym_cap:
            holes.append(PugzHole(chunk.index, bit, region_end, str(err)))
            break
        symbols, window, end, final = _decode_chunk_prefix(
            data, bit, chunk.stop_bit, budget, kernel
        )
        total_symbols += len(symbols)
        if len(symbols):
            segments.append(
                _Segment(chunk.index, symbols, window, end, final, chained)
            )
        if final or end >= region_end:
            return segments, holes
        if chunk.stop_bit is not None and end >= chunk.stop_bit:
            return segments, holes
        # Damage at `end`: resync past it within this chunk's region.
        try:
            sync = find_block_start(
                data,
                start_bit=end + 1,
                end_bit=region_end,
                confirm_blocks=confirm_blocks,
                max_search_bits=max_resync_search_bits,
            )
        except ReproError:
            holes.append(PugzHole(chunk.index, end, region_end, str(err)))
            break
        holes.append(PugzHole(chunk.index, end, sync.bit_offset, str(err)))
        bit = sync.bit_offset
        chained = False  # context before the resync point is gone
    # The region ended inside a hole: the next chunk's context is unknown.
    segments.append(
        _Segment(
            chunk.index,
            np.zeros(0, dtype=np.int32),
            _undetermined_window_array(),
            region_end,
            False,
            False,
        )
    )
    return segments, holes


def _zlib_fallback(data, start_byte: int, budget=None):
    """Reference-decoder rung of the degradation ladder.

    Decode the whole raw DEFLATE stream at ``start_byte`` with zlib.
    Only chunk 0 can use this: it is the only chunk whose context is
    fully known and whose start is byte-aligned, which is all zlib can
    consume.  Useful when *our* decoder rejects a stream that is in
    fact valid (a reproduction bug or unsupported construct) — zlib's
    verdict is the ground truth the test suite pins everything to.

    Returns ``(bytes, end_bit)`` on success, ``None`` when zlib also
    rejects the stream (real corruption), finds it truncated, or the
    output would exceed ``budget`` (a zip bomb must not bypass the
    resource budget by riding the fallback rung).
    """
    buf = bytes(data[start_byte:])
    d = zlib.decompressobj(wbits=-zlib.MAX_WBITS)
    out = bytearray()
    cap = budget.output_cap() if budget is not None else None
    pending = buf
    try:
        # Bounded: every iteration either emits output (capped) or hits
        # a terminal branch below.
        while True:
            chunk = d.decompress(pending, 1 << 20)
            out += chunk
            if cap is not None and len(out) > cap:
                return None
            if d.eof:
                break
            pending = d.unconsumed_tail
            if not chunk and not pending:
                return None  # stream truncated: zlib wants more input
    except zlib.error:
        return None
    end_bit = 8 * (start_byte + len(buf) - len(d.unused_data))
    return bytes(out), end_bit


def pugz_decompress_payload(
    data,
    start_bit: int,
    end_bit: int,
    n_chunks: int = 4,
    executor: Executor | str = "serial",
    confirm_blocks: int = 5,
    report: PugzReport | None = None,
    *,
    on_error: str = "raise",
    max_resync_search_bits: int | None = None,
    placeholder: int = HOLE_BYTE,
    budget=None,
    supervision: SupervisionPolicy | None = None,
    kernel: str | None = None,
) -> bytes:
    """Two-pass parallel decompression of one raw DEFLATE payload.

    ``data`` is the enclosing buffer; the payload's first block starts
    at ``start_bit`` and certainly ends by ``end_bit`` (an upper bound
    is fine — decoding stops at the BFINAL block).  ``executor``
    selects the backend (``serial`` / ``thread`` / ``process`` or an
    :class:`~repro.parallel.executor.Executor` instance).

    ``on_error="recover"`` salvages around corrupted regions instead of
    raising (see the module docstring); lost spans are recorded in the
    report's ``holes`` and unknown output positions render as
    ``placeholder``.

    ``budget`` (a :class:`~repro.robustness.limits.ResourceBudget`)
    bounds each chunk's resident output; ``supervision`` (a
    :class:`~repro.parallel.supervision.SupervisionPolicy`) adds
    per-task deadlines and bounded retries to both passes.  A chunk
    whose *execution* failed terminally (deadline, dead worker) is
    re-decoded serially in-process — an exact, merely slower result —
    before the lossy salvage rungs are considered; the rung used is
    recorded per chunk in the report's ``chunk_details``.

    ``kernel`` selects the decode kernel by *name* (``"pure"`` /
    ``"numpy"``; ``None`` = environment/auto, see
    :mod:`repro.perf.kernels`) in every rung of both passes — it rides
    the job tuples into workers, so it must stay a picklable string for
    the process executor.  Kernels are output-identical; this only
    moves the speed/robustness trade-off.
    """
    if on_error not in ("raise", "recover"):
        raise ValueError(f"on_error must be 'raise' or 'recover', got {on_error!r}")
    if isinstance(executor, str):
        executor = make_executor(executor, n_chunks)
    if report is None:
        report = PugzReport(n_chunks_requested=n_chunks)
    if end_bit <= start_bit or start_bit >= 8 * len(data):
        raise GzipFormatError(
            f"empty DEFLATE payload region [{start_bit}, {end_bit})",
            bit_offset=start_bit,
            stage="plan",
        )

    t0 = time.perf_counter()
    chunks = plan_chunks(data, start_bit, end_bit, n_chunks, confirm_blocks=confirm_blocks)
    report.chunks = chunks
    report.sync_seconds += time.perf_counter() - t0

    # ---- pass 1: parallel marker-domain decompression -------------------
    t0 = time.perf_counter()
    jobs = []
    for c in chunks:
        stop = c.stop_bit if c.stop_bit is not None else None
        jobs.append((data, c.start_bit, stop, c.index, budget, kernel))
    outcomes = executor.map_outcomes(_pass1_chunk, jobs, supervision)

    per_chunk: list[tuple[list[_Segment], list[PugzHole], str]] = []
    details: list[ChunkOutcome] = []
    total_blocks = 0
    for c, oc in zip(chunks, outcomes):
        region_end = c.stop_bit if c.stop_bit is not None else end_bit
        value = oc.value if oc.ok else None
        err = None if oc.ok else oc.error
        degraded: str | None = None
        if err is not None and is_execution_fault(err):
            # Ladder rung 2: the *execution* failed, not the data — a
            # serial in-process re-decode is exact, just slower, so it
            # applies in both error modes.
            try:
                value = _pass1_chunk(
                    (data, c.start_bit, c.stop_bit, c.index, budget, kernel)
                )
                degraded = "serial"
                err = None
            except ReproError as exc:
                err = exc
        if value is not None:
            index, symbols, window, seg_end, final_seen, n_blocks = value
            total_blocks += n_blocks
            per_chunk.append(
                (
                    [_Segment(index, symbols, window, seg_end, final_seen, True)],
                    [],
                    "ok",
                )
            )
            details.append(
                ChunkOutcome(c.index, "ok", oc.retries, degraded, oc.wall_time)
            )
            continue
        if on_error == "raise" or not isinstance(err, ReproError):
            raise err
        if c.index == 0 and c.start_bit % 8 == 0:
            # Ladder rung 3 (chunk 0 only — the one chunk with known
            # context and byte alignment): ask the zlib reference
            # decoder for the whole payload.  Success means the stream
            # was valid all along and the output is exact.
            fallback = _zlib_fallback(data, c.start_bit // 8, budget)
            if fallback is not None:
                fb_out, fb_end = fallback
                report.chunks = [c]
                report.chunk_outcomes = ["ok"]
                report.chunk_details = [
                    ChunkOutcome(
                        0, "ok", oc.retries, "zlib", oc.wall_time, error=str(err)
                    )
                ]
                report.chunk_output_sizes = [len(fb_out)]
                report.chunk_marker_counts = [0]
                report.end_bit = fb_end
                report.output_size += len(fb_out)
                report.pass1_seconds += time.perf_counter() - t0
                return fb_out
        # Ladder rung 4: block-by-block salvage with resync; whatever
        # stays undecodable becomes an explicit hole.
        segments, holes = _salvage_chunk(
            data, c, region_end, confirm_blocks, max_resync_search_bits, err,
            budget, kernel,
        )
        total_blocks += sum(1 for s in segments if len(s.symbols))
        status = "salvaged" if any(len(s.symbols) for s in segments) else "lost"
        per_chunk.append((segments, holes, status))
        details.append(
            ChunkOutcome(
                c.index,
                status,
                oc.retries,
                "salvage" if status == "salvaged" else "hole",
                oc.wall_time,
                error=str(err),
            )
        )

    # A chunk that decoded a BFINAL block marks the true stream end
    # (the planner's end_bit is only an upper bound): drop any chunks
    # planned past it — their block starts belong to whatever follows
    # (e.g. the next member of a multi-member file).
    for k, (segs, _, _) in enumerate(per_chunk):
        if any(s.final_seen for s in segs):
            per_chunk = per_chunk[: k + 1]
            chunks = chunks[: k + 1]
            details = details[: k + 1]
            report.chunks = chunks
            break

    segments = [s for segs, _, _ in per_chunk for s in segs]
    report.chunk_outcomes = [outcome for _, _, outcome in per_chunk]
    report.chunk_details = details
    for _, holes, _ in per_chunk:
        report.holes.extend(holes)
    report.pass1_seconds += time.perf_counter() - t0

    report.chunk_output_sizes = [
        sum(len(s.symbols) for s in segs) for segs, _, _ in per_chunk
    ]
    report.chunk_marker_counts = [
        sum(marker.count_markers(s.symbols) for s in segs) for segs, _, _ in per_chunk
    ]
    final_any = any(s.final_seen for s in segments)
    report.end_bit = segments[-1].end_bit if segments else start_bit

    if total_blocks == 0 and not final_any:
        raise GzipFormatError(
            "no DEFLATE blocks decodable in payload",
            bit_offset=start_bit,
            stage="pass1",
        )
    if on_error == "raise" and report.chunk_marker_counts[0]:
        raise ReproError(
            "chunk 0 produced markers: stream references data before its start",
            chunk_index=0,
            stage="pass1",
        )

    # ---- pass 2a: sequential context resolution (cheap) ------------------
    t0 = time.perf_counter()
    undetermined = _undetermined_window_array()
    contexts: list[np.ndarray] = []
    resolved_prev: np.ndarray | None = None
    for seg in segments:
        ctx = resolved_prev if (seg.chained and resolved_prev is not None) else undetermined
        contexts.append(ctx)
        resolved_prev = marker.resolve(seg.window, ctx)
    report.resolve_seconds += time.perf_counter() - t0

    # ---- pass 2b: parallel marker translation ----------------------------
    t0 = time.perf_counter()
    hole_byte = placeholder if on_error == "recover" else None
    pass2_jobs = [
        (seg.symbols, ctx, hole_byte) for seg, ctx in zip(segments, contexts)
    ]
    if not pass2_jobs:
        translated = []
    elif supervision is not None and supervision.active:
        # Translation is deterministic, so any post-retry failure here
        # is an unrecoverable execution fault: raise it.
        p2 = executor.map_outcomes(_pass2_chunk, pass2_jobs, supervision)
        for p2_oc in p2:
            if not p2_oc.ok:
                raise p2_oc.error
        translated = [p2_oc.value for p2_oc in p2]
    else:
        translated = executor.map(_pass2_chunk, pass2_jobs)
    out = b"".join(piece for piece, _ in translated)
    report.unresolved_markers += sum(count for _, count in translated)
    report.pass2_seconds += time.perf_counter() - t0
    report.output_size += len(out)
    return out


def pugz_decompress(
    gz_data: bytes,
    n_chunks: int = 4,
    executor: Executor | str = "serial",
    *,
    verify: bool = False,
    confirm_blocks: int = 5,
    return_report: bool = False,
    on_error: str = "raise",
    allow_trailing_garbage: bool = False,
    max_resync_search_bits: int | None = None,
    deadline_s: float | None = None,
    max_retries: int = 0,
    budget=None,
    supervision: SupervisionPolicy | None = None,
    kernel: str | None = None,
):
    """Parallel decompression of a gzip file (the paper's ``pugz``).

    Handles single- and multi-member files: a multi-member ("blocked")
    file is decompressed member-by-member, each member internally
    chunked — members are already independent decompression units.

    Parameters
    ----------
    gz_data:
        Complete gzip file contents.
    n_chunks:
        Number of parallel chunks ("threads" in the paper's terms).
    executor:
        ``serial`` / ``thread`` / ``process`` or an Executor instance.
    verify:
        Check each member's CRC32/ISIZE trailer; per-part CRCs are
        computed through the executor and folded with
        :func:`crc32_combine`, keeping verification parallel-friendly.
    return_report:
        Also return the :class:`PugzReport` instrumentation.
    on_error:
        ``"raise"`` (default) aborts on the first corrupted chunk;
        ``"recover"`` salvages everything decodable, records lost spans
        as :class:`PugzHole` entries, and downgrades verification
        failures to report entries.
    allow_trailing_garbage:
        Tolerate non-gzip bytes after the last member (common in
        real-world truncated downloads and tar-like concatenations):
        warn, record the offset in the report, and stop instead of
        raising.  Implied by ``on_error="recover"``.
    max_resync_search_bits:
        Bound on each recover-mode resync search (bits past the fault).
    deadline_s / max_retries:
        Supervision shorthand: bound the wait for each chunk's result
        and retry execution faults (hung/dead workers) that many times
        with seeded exponential backoff.  ``supervision`` accepts a
        full :class:`~repro.parallel.supervision.SupervisionPolicy`
        instead (mutually exclusive with the shorthand).
    budget:
        A :class:`~repro.robustness.limits.ResourceBudget` bounding
        each chunk's resident output (zip-bomb defense); exceeding it
        raises :class:`~repro.errors.ResourceLimitError`.
    kernel:
        Decode-kernel name (``"pure"`` / ``"numpy"``; ``None`` =
        environment/auto selection, see :mod:`repro.perf.kernels`).
        Applies to every chunk in both passes and to all recovery
        rungs; output is kernel-independent.
    """
    if on_error not in ("raise", "recover"):
        raise ValueError(f"on_error must be 'raise' or 'recover', got {on_error!r}")
    if supervision is not None and (deadline_s is not None or max_retries):
        raise ValueError(
            "pass either supervision= or the deadline_s/max_retries shorthand, not both"
        )
    if supervision is None and (deadline_s is not None or max_retries):
        supervision = SupervisionPolicy(deadline_s=deadline_s, max_retries=max_retries)
    if isinstance(executor, str):
        executor = make_executor(executor, n_chunks)
    report = PugzReport(n_chunks_requested=n_chunks)
    if not gz_data:
        raise GzipFormatError("empty input", bit_offset=0, stage="container")
    out_parts: list[bytes] = []
    offset = 0
    n = len(gz_data)
    while offset < n:
        try:
            payload_start, *_ = parse_gzip_header(gz_data, offset)
        except GzipFormatError as exc:
            if offset == 0:
                raise
            if allow_trailing_garbage or on_error == "recover":
                warnings.warn(
                    f"ignoring {n - offset} bytes of trailing garbage after the "
                    f"last gzip member (byte offset {offset}): {exc.message}",
                    stacklevel=2,
                )
                report.trailing_garbage_offset = offset
                break
            raise GzipFormatError(
                f"trailing garbage after last gzip member: {n - offset} bytes "
                f"at byte offset {offset} are not a gzip header ({exc.message})",
                bit_offset=8 * offset,
                stage="container",
            ) from exc
        member_out = pugz_decompress_payload(
            gz_data,
            8 * payload_start,
            8 * (n - 8),
            n_chunks,
            executor,
            confirm_blocks=confirm_blocks,
            report=report,
            on_error=on_error,
            max_resync_search_bits=max_resync_search_bits,
            budget=budget,
            supervision=supervision,
            kernel=kernel,
        )
        payload_end = (report.end_bit + 7) // 8
        if n - payload_end < 8:
            if on_error == "recover":
                report.verify_failures.append(
                    f"member {report.members}: truncated trailer at byte {payload_end}"
                )
                out_parts.append(member_out)
                report.members += 1
                break
            raise GzipFormatError(
                "truncated gzip trailer",
                bit_offset=8 * payload_end,
                stage="trailer",
            )
        if verify:
            try:
                _verify_member(gz_data, payload_end, member_out, executor)
            except GzipFormatError as exc:
                if on_error != "recover":
                    raise
                report.verify_failures.append(
                    f"member {report.members}: {exc}"
                )
        out_parts.append(member_out)
        offset = payload_end + 8
        report.members += 1
    out = b"".join(out_parts)
    if return_report:
        return out, report
    return out


def _verify_member(gz_data: bytes, payload_end: int, member_out: bytes, executor: Executor) -> None:
    stored_crc = int.from_bytes(gz_data[payload_end : payload_end + 4], "little")
    stored_isize = int.from_bytes(gz_data[payload_end + 4 : payload_end + 8], "little")
    parts = _split_for_crc(member_out, executor.parallelism)
    crcs = executor.map(crc32, parts)
    combined = crcs[0]
    for part, c in zip(parts[1:], crcs[1:]):
        combined = crc32_combine(combined, c, len(part))
    if combined != stored_crc:
        raise GzipFormatError(
            f"CRC mismatch: stored {stored_crc:#010x}, computed {combined:#010x}",
            bit_offset=8 * payload_end,
            stage="trailer",
        )
    if stored_isize != len(member_out) & 0xFFFFFFFF:
        raise GzipFormatError(
            f"ISIZE mismatch: stored {stored_isize}, actual {len(member_out)}",
            bit_offset=8 * (payload_end + 4),
            stage="trailer",
        )


def _split_for_crc(data: bytes, n: int) -> list[bytes]:
    """Split bytes into n near-equal parts for parallel checksumming."""
    if not data:
        return [b""]
    n = max(1, min(n, len(data)))
    step = -(-len(data) // n)
    return [data[i : i + step] for i in range(0, len(data), step)]
