"""Random access to DNA sequences in gzip-compressed FASTQ (Section VI-B).

Pipeline, as in the paper's ``fqgz`` prototype:

1. pick a byte offset in the compressed file;
2. find the first confirmed DEFLATE block start at/after it
   (:mod:`repro.core.sync`);
3. decompress forward with a fully undetermined context
   (:mod:`repro.core.marker_inflate`);
4. per decompressed block, run the heuristic sequence extractor
   (:mod:`repro.core.sequences`) and declare a block
   *sequence-resolved* once it yields at least ``resolved_threshold``
   sequences, none containing an undetermined character;
5. report the "delay" (bytes decompressed before the first
   sequence-resolved block) and, from there on, the fraction of
   unambiguous sequences — the two quantities of the paper's Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.marker import count_markers
from repro.core.marker_inflate import marker_inflate
from repro.core.sequences import ExtractedSequence, extract_sequences
from repro.core.sync import find_block_start
from repro.deflate.gzipfmt import parse_gzip_header
from repro.errors import RandomAccessError

__all__ = ["RandomAccessReport", "random_access_sequences", "random_access_payload"]


@dataclass
class RandomAccessReport:
    """Outcome of one random-access decompression."""

    #: Compressed byte offset requested.
    requested_offset: int
    #: Bit offset of the confirmed block start used.
    sync_bit: int
    #: Candidate bit offsets tried by the probe.
    sync_candidates: int
    #: Total bytes decompressed.
    decompressed: int
    #: Index (into ``block_sequences``) of the first sequence-resolved
    #: block, or ``None`` if none was found.
    first_resolved_block: int | None
    #: Bytes decompressed before the first sequence-resolved block
    #: (the paper's "delay to sequence-resolved block").
    delay_bytes: int | None
    #: All sequences extracted after (and including) the first
    #: sequence-resolved block.
    sequences: list[ExtractedSequence] = field(default_factory=list)
    #: Per-block sequence counts: (total, ambiguous).
    block_sequences: list[tuple[int, int]] = field(default_factory=list)
    #: Undetermined characters remaining in the whole analysed span.
    residual_markers: int = 0

    @property
    def unambiguous_fraction(self) -> float | None:
        """The paper's "Unambiguous sequences (%)" (as a 0-1 fraction)."""
        if self.first_resolved_block is None or not self.sequences:
            return None
        good = sum(1 for s in self.sequences if s.is_unambiguous)
        return good / len(self.sequences)


def random_access_payload(
    data,
    start_bit: int,
    *,
    min_read_length: int = 20,
    resolved_threshold: int = 10,
    max_output: int | None = None,
    confirm_blocks: int = 5,
    end_bit: int | None = None,
    streaming: bool = False,
) -> RandomAccessReport:
    """Random access into a raw DEFLATE payload at a bit offset.

    ``streaming=True`` runs the decode through the streaming sequence
    extractor instead of materialising the symbol stream — O(32 KiB)
    memory, for GB-scale scans (the paper's Table I protocol at full
    size).
    """
    sync = find_block_start(data, start_bit=start_bit, confirm_blocks=confirm_blocks, end_bit=end_bit)

    if streaming:
        return _random_access_streaming(
            data, sync, min_read_length, resolved_threshold, max_output, start_bit
        )

    result = marker_inflate(data, start_bit=sync.bit_offset, window=None, max_output=max_output)
    symbols = result.symbols

    report = RandomAccessReport(
        requested_offset=start_bit // 8,
        sync_bit=sync.bit_offset,
        sync_candidates=sync.candidates_tried,
        decompressed=len(symbols),
        first_resolved_block=None,
        delay_bytes=None,
        residual_markers=count_markers(symbols),
    )

    # Extract sequences over the whole span once (the grammar spans
    # block boundaries naturally), then attribute them to blocks by
    # their start position.
    sequences = extract_sequences(symbols, min_length=min_read_length)
    seq_idx = 0
    first_resolved = None
    for bi, block in enumerate(result.blocks):
        total = 0
        ambiguous = 0
        while seq_idx < len(sequences) and sequences[seq_idx].start < block.out_end:
            seq = sequences[seq_idx]
            if seq.start >= block.out_start:
                total += 1
                if not seq.is_unambiguous:
                    ambiguous += 1
            seq_idx += 1
        report.block_sequences.append((total, ambiguous))
        if first_resolved is None and total >= resolved_threshold and ambiguous == 0:
            first_resolved = bi
    report.first_resolved_block = first_resolved

    if first_resolved is not None:
        resolved_start = result.blocks[first_resolved].out_start
        report.delay_bytes = resolved_start
        report.sequences = [s for s in sequences if s.start >= resolved_start]
    return report


def _random_access_streaming(
    data,
    sync,
    min_read_length: int,
    resolved_threshold: int,
    max_output: int | None,
    start_bit: int,
) -> RandomAccessReport:
    """Streaming variant: composed sinks, no symbol materialisation."""
    from repro.core.marker import MARKER_BASE
    from repro.core.seqstream import StreamingSequenceExtractor

    import numpy as np

    extractor = StreamingSequenceExtractor(min_length=min_read_length)
    marker_total = [0]

    def sink(symbols, start_position):
        arr = np.asarray(symbols, dtype=np.int32)
        marker_total[0] += int((arr >= MARKER_BASE).sum())
        extractor(symbols, start_position)

    result = marker_inflate(
        data, start_bit=sync.bit_offset, window=None,
        sink=sink, max_output=max_output,
    )
    extractor.finish()
    sequences = extractor.sequences

    report = RandomAccessReport(
        requested_offset=start_bit // 8,
        sync_bit=sync.bit_offset,
        sync_candidates=sync.candidates_tried,
        decompressed=result.total_output,
        first_resolved_block=None,
        delay_bytes=None,
        residual_markers=marker_total[0],
    )
    seq_idx = 0
    first_resolved = None
    for bi, block in enumerate(result.blocks):
        total = ambiguous = 0
        while seq_idx < len(sequences) and sequences[seq_idx].start < block.out_end:
            seq = sequences[seq_idx]
            if seq.start >= block.out_start:
                total += 1
                if not seq.is_unambiguous:
                    ambiguous += 1
            seq_idx += 1
        report.block_sequences.append((total, ambiguous))
        if first_resolved is None and total >= resolved_threshold and ambiguous == 0:
            first_resolved = bi
    report.first_resolved_block = first_resolved
    if first_resolved is not None:
        resolved_start = result.blocks[first_resolved].out_start
        report.delay_bytes = resolved_start
        report.sequences = [s for s in sequences if s.start >= resolved_start]
    return report


def _member_bounds_from_index(index, byte_offset: int, file_size: int):
    """Payload bounds of the member containing compressed ``byte_offset``.

    Uses the index's ``"member"`` checkpoints (their bit offsets are
    the members' payload starts).  The member's payload certainly ends
    before the *next* member's gzip header, i.e. at least 8 trailer
    bytes plus a 10-byte minimum header before the next payload start.
    """
    members = [cp for cp in index.checkpoints if cp.kind == "member"]
    if not members:
        return None
    chosen = members[0]
    nxt = None
    for i, cp in enumerate(members):
        if cp.byte_offset <= byte_offset:
            chosen = cp
            nxt = members[i + 1] if i + 1 < len(members) else None
        else:
            break
    if nxt is not None:
        end_bit = 8 * (nxt.byte_offset - 18)
    else:
        end_bit = 8 * (file_size - 8)
    return chosen.byte_offset, end_bit


def random_access_sequences(
    gz_data: bytes,
    byte_offset: int,
    *,
    min_read_length: int = 20,
    resolved_threshold: int = 10,
    max_output: int | None = None,
    confirm_blocks: int = 5,
    streaming: bool = False,
    index=None,
) -> RandomAccessReport:
    """Random access into a gzip file at a compressed byte offset.

    ``byte_offset`` is relative to the start of the file.  Without an
    ``index`` it is clamped into the *first* member's DEFLATE payload
    (the paper's dataset is single-member files).  With an ``index`` (a
    :class:`~repro.index.zran.GzipIndex` whose member checkpoints
    locate every member), the offset is resolved into whichever member
    contains it, so multi-member files are addressable throughout.
    """
    if index is not None:
        bounds = _member_bounds_from_index(index, byte_offset, len(gz_data))
    else:
        bounds = None
    if bounds is not None:
        payload_start, payload_end_bit = bounds
    else:
        payload_start, *_ = parse_gzip_header(gz_data, 0)
        payload_end_bit = 8 * (len(gz_data) - 8)
    offset = max(byte_offset, payload_start)
    if 8 * offset >= payload_end_bit:
        raise RandomAccessError(
            f"offset {byte_offset} is beyond the compressed payload",
            stage="random_access",
        )
    return random_access_payload(
        gz_data,
        8 * offset,
        min_read_length=min_read_length,
        resolved_threshold=resolved_threshold,
        max_output=max_output,
        confirm_blocks=confirm_blocks,
        end_bit=payload_end_bit,
        streaming=streaming,
    )
