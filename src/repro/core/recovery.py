"""Forensic recovery of corrupted gzip files (Section VI-B application).

The paper notes the random-access machinery "is suitable for forensics
applications, e.g. when dealing with data corruption in compressed
FASTQ files".  This module turns the machinery into an API:

* :func:`recover` — decode everything before a corrupted region, find
  the first intact block after it, decode the tail with an
  undetermined context, and (for FASTQ content) salvage every
  unambiguous read;
* :func:`locate_corruption` — bisect for the first undecodable block
  when the damage location is unknown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.guess import guess_markers
from repro.core.marker import MARKER_BASE, to_bytes
from repro.core.marker_inflate import marker_inflate
from repro.core.sequences import ExtractedSequence, extract_sequences
from repro.core.sync import find_block_start
from repro.deflate.constants import ASCII_MASK, WINDOW_SIZE
from repro.deflate.gzipfmt import parse_gzip_header
from repro.deflate.inflate import inflate
from repro.errors import DeflateError, SyncError


def _block_looks_clean(data: bytes) -> bool:
    """Default corruption detector: non-text bytes in a decoded block.

    Caveat discovered while testing: damage confined to the *symbol
    data* of a block whose Huffman alphabet contains only text bytes
    decodes into valid-ASCII garbage — undetectable by any of the
    Appendix X-A style checks; only the CRC (or a content-aware
    validator, see :func:`recover`'s ``validator``) catches it."""
    if not data:
        return True
    arr = np.frombuffer(data, dtype=np.uint8)
    return bool(ASCII_MASK[arr].all())


def fastq_block_validator(window_tail: bytes, block: bytes) -> bool:
    """Content-aware validator for FASTQ files.

    Checks the 4-line record discipline over the block (tolerating the
    partial records at its edges): line lengths of sequence/quality
    pairs must agree and '+' separators must appear on schedule.
    ``window_tail`` supplies left context so the first partial record
    can be phased.
    """
    text = window_tail[-2048:] + block
    lines = text.split(b"\n")
    # Find a phase: a line starting '@' followed two lines later by '+'.
    for phase in range(min(8, len(lines))):
        if (
            phase + 2 < len(lines)
            and lines[phase].startswith(b"@")
            and lines[phase + 2].startswith(b"+")
        ):
            break
    else:
        return len(lines) < 8  # too little structure to judge
    # Validate whole records from the phase onward.
    i = phase
    while i + 3 < len(lines) - 1:  # last line may be partial
        header, seq, plus, qual = lines[i : i + 4]
        if not header.startswith(b"@") or not plus.startswith(b"+"):
            return False
        if len(seq) != len(qual):
            return False
        i += 4
    return True

__all__ = ["RecoveryReport", "recover", "locate_corruption"]


@dataclass
class RecoveryReport:
    """What could be saved from a damaged file."""

    #: Bytes decoded cleanly before the first undecodable block.
    head: bytes = b""
    #: Bit offset where clean decoding stopped.
    head_end_bit: int = 0
    #: Bit offset of the first intact block after the damage (None if
    #: no resync succeeded).
    resync_bit: int | None = None
    #: Tail symbols (marker domain; unknown context chars marked).
    tail_symbols: np.ndarray | None = None
    #: Undetermined characters in the tail.
    tail_undetermined: int = 0
    #: Salvaged DNA sequences (unambiguous only), if FASTQ extraction
    #: was requested.
    sequences: list[ExtractedSequence] = field(default_factory=list)

    @property
    def tail_bytes_best_effort(self) -> bytes | None:
        """Tail rendered with '?' placeholders (display form)."""
        if self.tail_symbols is None:
            return None
        return to_bytes(self.tail_symbols, placeholder=ord("?"))


def _clean_decode(gz_data: bytes, start_bit: int, validator=None) -> tuple[bytes, int, bool]:
    """Decode block by block until the first block that raises, produces
    non-text output, or fails ``validator`` (the shared engine of
    :func:`recover` and :func:`locate_corruption`).

    Returns ``(clean_bytes, end_bit, final_seen)`` where ``end_bit`` is
    the start of the first suspect block — or the stream's end bit when
    everything decoded (no corruption found by the available detectors;
    see the silent-corruption caveat on :func:`_block_looks_clean`).
    """
    bit = start_bit
    window = b""
    head = bytearray()
    while True:
        try:
            result = inflate(gz_data, start_bit=bit, window=window, max_blocks=1)
        except DeflateError:
            return bytes(head), bit, False  # lint: allow-unbudgeted-alloc(converts the already-decoded prefix; each step is bounded by the max_blocks=1 inflate call)
        if not result.blocks or not _block_looks_clean(result.data):
            return bytes(head), bit, False
        if validator is not None and not validator(window, result.data):
            return bytes(head), bit, False
        head += result.data
        window = (window + result.data)[-WINDOW_SIZE:]
        bit = result.end_bit
        if result.final_seen:
            return bytes(head), bit, True


def locate_corruption(gz_data: bytes, validator=None) -> int:
    """Bit offset at which clean decoding first fails.

    Decodes block by block from the member start; returns the start
    bit of the first block that raises or fails validation (or the end
    bit of the stream if everything decodes — i.e. no corruption found
    by the available detectors; see the silent-corruption caveat on
    :func:`_block_looks_clean`).
    """
    payload_start, *_ = parse_gzip_header(gz_data, 0)
    _, bit, _ = _clean_decode(gz_data, 8 * payload_start, validator)
    return bit


def recover(
    gz_data: bytes,
    *,
    extract_fastq: bool = True,
    min_read_length: int = 30,
    guess: bool = False,
    max_resync_search_bits: int | None = None,
    validator=None,
) -> RecoveryReport:
    """Best-effort recovery of a damaged gzip member.

    ``validator(window_tail, block_bytes) -> bool`` optionally adds a
    content-aware corruption detector (e.g.
    :func:`fastq_block_validator`) on top of the structural and ASCII
    checks — necessary because damage inside a text-alphabet block can
    decode to valid-looking garbage.  With ``guess=True`` the tail's
    undetermined characters are filled by
    :func:`repro.core.guess.guess_markers` before sequence extraction
    (display/forensics use only — guesses are not exact).
    """
    report = RecoveryReport()
    payload_start, *_ = parse_gzip_header(gz_data, 0)

    # Phase 1: clean decode until the first broken block (format error
    # or non-text output — corrupted Huffman data often still decodes,
    # into garbage bytes).
    head, bit, _ = _clean_decode(gz_data, 8 * payload_start, validator)
    report.head = head
    report.head_end_bit = bit

    # Phase 2: resync after the damage.
    try:
        sync = find_block_start(
            gz_data,
            start_bit=bit + 8,  # skip at least one byte into the damage
            max_search_bits=max_resync_search_bits,
            end_bit=8 * (len(gz_data) - 8),
        )
    except SyncError:
        return report
    report.resync_bit = sync.bit_offset

    # Phase 3: undetermined-context decode of the tail.
    tail = marker_inflate(gz_data, start_bit=sync.bit_offset)
    symbols = tail.symbols
    report.tail_undetermined = int((symbols >= MARKER_BASE).sum())
    if guess and report.tail_undetermined:
        symbols = guess_markers(symbols).symbols
    report.tail_symbols = symbols

    # Phase 4: salvage sequences.
    if extract_fastq:
        seqs = extract_sequences(tail.symbols, min_length=min_read_length)
        report.sequences = [s for s in seqs if s.is_unambiguous]
    return report
