"""Streaming sequence extraction (Appendix X-B at unbounded scale).

The batch extractor (:mod:`repro.core.sequences`) needs the whole
symbol stream in memory.  This sink-based variant plugs into
:func:`repro.core.marker_inflate.marker_inflate`'s streaming mode and
handles the paper's "special case ... to handle sequences that span two
blocks" — here, spans across *flush chunks* — by carrying the active
partial match between chunks.  Memory is O(longest sequence), so
Table I-style scans can run over arbitrarily large files.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.sequences import ExtractedSequence, _SEQ_RE, classify_symbols

__all__ = ["StreamingSequenceExtractor"]


@dataclass
class StreamingSequenceExtractor:
    """Sink object: feed symbol chunks, collect extracted sequences.

    Usage::

        extractor = StreamingSequenceExtractor(min_length=30)
        marker_inflate(gz, start_bit=..., sink=extractor)
        extractor.finish()
        extractor.sequences  # positions are global stream offsets
    """

    min_length: int = 20
    max_length: int | None = None
    sequences: list[ExtractedSequence] = field(default_factory=list)
    _carry: bytes = b""          # class-string tail that may continue
    _carry_start: int = 0        # global position of the carry's first char
    _total: int = 0
    _finished: bool = False

    def __call__(self, symbols: list[int], start_position: int) -> None:
        if self._finished:
            raise RuntimeError("extractor already finished")
        classes = classify_symbols(np.asarray(symbols, dtype=np.int32))
        if self._carry:
            if start_position != self._carry_start + len(self._carry):
                raise ValueError("chunks must arrive contiguously")
            buf = self._carry + classes
            buf_start = self._carry_start
        else:
            buf = classes
            buf_start = start_position
        self._total = start_position + len(classes)

        # A match is *final* iff the D/U run at its trailing lookahead
        # terminates inside the buffer — equivalently, iff it ends
        # before the buffer's trailing maximal D/U run (which might
        # still extend into the next chunk).  Everything from one
        # character before that run (its potential leading terminator)
        # onwards is carried.
        tail_start = self._tail_run_start(buf)
        self._extract(buf, buf_start, keep_end_before=tail_start)
        carry_from = max(0, tail_start - 1)
        self._carry = buf[carry_from:]
        self._carry_start = buf_start + carry_from
        # Bound the carry: anything longer than max_length (or a
        # generous default) cannot be a read; keep only the tail that
        # could still matter.
        cap = (self.max_length or 100_000) + 2
        if len(self._carry) > cap:
            drop = len(self._carry) - cap
            self._carry = self._carry[drop:]
            self._carry_start += drop

    @staticmethod
    def _tail_run_start(buf: bytes) -> int:
        """Start index of the buffer's trailing maximal D/U run.

        ``len(buf)`` when the buffer ends with a terminator or other
        character (no trailing run).
        """
        i = len(buf)
        while i > 0 and buf[i - 1 : i] in (b"D", b"U"):
            i -= 1
        return i

    def _extract(self, classes: bytes, global_start: int, keep_end_before: int | None = None) -> None:
        for m in _SEQ_RE.finditer(classes):
            start, end = m.span()
            if keep_end_before is not None and end >= keep_end_before:
                continue  # provisional: may extend into the next chunk
            if end - start < self.min_length:
                continue
            if self.max_length is not None and end - start > self.max_length:
                continue
            self.sequences.append(
                ExtractedSequence(
                    start=global_start + start,
                    end=global_start + end,
                    undetermined=m.group().count(b"U"),
                )
            )

    def finish(self) -> None:
        """Flush the carried tail (terminated by end-of-stream)."""
        if self._finished:
            return
        # End of stream acts as a terminator: append a virtual 'T'.
        if self._carry:
            self._extract(self._carry + b"T", self._carry_start)
        self._carry = b""
        self._finished = True

    @property
    def total_symbols(self) -> int:
        return self._total
