"""Heuristic extraction of DNA sequences from marker-domain output.

Appendix X-B of the paper: given a decompressed block that may still
contain undetermined characters, return all maximal non-overlapping
substrings matching the grammar::

    T D+ (U+ D+)* T

where ``T`` is a newline or an undetermined character, ``D`` a
nucleotide (A, C, G, T, N) and ``U`` an undetermined character.  The
leading/trailing ``T`` are trimmed from the results (but are required,
to filter out DNA-looking fragments of quality strings); matches
shorter than a minimum read length are discarded.

The implementation classifies every symbol into a 1-byte class code and
runs a compiled regex over the class string — O(n) and fast enough for
multi-megabyte streams.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.core.marker import MARKER_BASE
from repro.deflate.constants import WINDOW_SIZE

__all__ = ["ExtractedSequence", "extract_sequences", "classify_symbols"]

#: Class codes.
_CLS_OTHER = ord(".")
_CLS_D = ord("D")
_CLS_U = ord("U")
_CLS_NL = ord("T")


def _build_class_table() -> np.ndarray:
    table = np.full(MARKER_BASE + WINDOW_SIZE, _CLS_OTHER, dtype=np.uint8)
    for b in b"ACGTN":
        table[b] = _CLS_D
    table[ord("\n")] = _CLS_NL
    table[ord("\r")] = _CLS_NL
    table[MARKER_BASE:] = _CLS_U
    return table


_CLASS_TABLE = _build_class_table()
_CLASS_TABLE.setflags(write=False)

# T D+ (U+ D+)* T with the terminators as zero-width context, so that
# adjacent sequences can share a terminator.  A marker (U) can serve as
# a terminator too, hence the [TU] classes on both sides.
_SEQ_RE = re.compile(rb"(?<=[TU])D+(?:U+D+)*(?=[TU])")


@dataclass(frozen=True)
class ExtractedSequence:
    """One heuristically extracted DNA sequence."""

    #: Start offset within the analysed symbol array.
    start: int
    #: End offset (exclusive).
    end: int
    #: Number of undetermined characters inside the sequence.
    undetermined: int

    @property
    def length(self) -> int:
        return self.end - self.start

    @property
    def is_unambiguous(self) -> bool:
        """True if the sequence contains no undetermined character."""
        return self.undetermined == 0


def classify_symbols(symbols: np.ndarray) -> bytes:
    """Map a symbol array to the class string the grammar runs over."""
    symbols = np.asarray(symbols, dtype=np.int32)
    return _CLASS_TABLE[symbols].tobytes()


def extract_sequences(
    symbols: np.ndarray,
    min_length: int = 20,
    max_length: int | None = None,
) -> list[ExtractedSequence]:
    """Run the Appendix X-B grammar over a symbol stream.

    Parameters
    ----------
    symbols:
        Marker-domain symbols (``int32``), e.g. from
        :func:`repro.core.marker_inflate.marker_inflate`.
    min_length:
        Matches shorter than this are discarded (the paper's
        "minimum read length" filter).
    max_length:
        Optionally discard implausibly long matches (e.g. quality
        strings that happen to look like DNA for kilobytes).
    """
    classes = classify_symbols(symbols)
    out: list[ExtractedSequence] = []
    for m in _SEQ_RE.finditer(classes):
        start, end = m.span()
        if end - start < min_length:
            continue
        if max_length is not None and end - start > max_length:
            continue
        undet = m.group().count(b"U")
        out.append(ExtractedSequence(start=start, end=end, undetermined=undet))
    return out
