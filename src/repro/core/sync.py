"""Detection of DEFLATE block start positions (Section VI-A).

DEFLATE blocks are neither indexed nor byte-aligned, so the only way to
find one is to *try every bit offset*: attempt to decode a block there
and fail fast on any inconsistency.  The checks are the stringent set
from Appendix X-A of the paper, implemented by the strict mode of
:func:`repro.deflate.inflate.inflate`:

1. BFINAL must be 0 (we never seek to the last block);
2. BTYPE must not be the reserved value 3;
3. a dynamic Huffman header must be internally valid (lengths neither
   over- nor under-subscribed, repeats in range, ...);
4. decompressed bytes must be valid ASCII text;
5. back-references must stay within the 32 KiB window plus history;
6. a decompressed block must be between 1 KiB and 4 MiB.

A candidate that decodes one block is *confirmed* by decoding
``confirm_blocks`` further blocks (the paper uses 5); a confirmation
failure backtracks to the bit after the candidate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.deflate.inflate import inflate
from repro.errors import DeflateError, SyncError
from repro.units import BitOffset

__all__ = ["SyncResult", "find_block_start", "probe_block", "prescreen"]


def prescreen(data: bytes, bit: BitOffset) -> bool:
    """Cheap header screen before the full strict decode of a candidate.

    Implements the paper's "fail early and as quickly as possible" with
    direct integer arithmetic (the Python analogue of pugz's branch
    hints): BFINAL must be 0; BTYPE must be valid; a stored block must
    satisfy LEN == ~NLEN; a dynamic block's code-length code must not
    be over- or under-subscribed.  Rejects ~97 % of random bit offsets
    in ~1 microsecond; survivors go to the full probe.
    """
    byte = bit >> 3
    # 18 bytes cover BFINAL+BTYPE+HLIT/HDIST/HCLEN+19 x 3-bit lengths.
    window = int.from_bytes(data[byte : byte + 18], "little") >> (bit & 7)
    if window & 1:
        return False  # BFINAL=1
    btype = (window >> 1) & 3
    if btype == 3:
        return False  # reserved
    if btype == 0:
        # Stored: LEN/NLEN complement check at the next byte boundary.
        pos = ((bit + 3 + 7) >> 3)  # aligned byte after the 3 header bits
        if pos + 4 > len(data):
            return False
        length = data[pos] | (data[pos + 1] << 8)
        nlen = data[pos + 2] | (data[pos + 3] << 8)
        return (length ^ nlen) == 0xFFFF and length >= 1
    if btype == 1:
        return True  # fixed code: nothing cheap to check
    # Dynamic: validate the code-length code's Kraft sum.
    hdr = window >> 3
    hlit = hdr & 31
    hdist = (hdr >> 5) & 31
    if hlit > 29 or hdist > 29:
        return False
    hclen = ((hdr >> 10) & 15) + 4
    lengths_bits = hdr >> 14
    kraft = 0
    for i in range(hclen):
        l = (lengths_bits >> (3 * i)) & 7
        if l:
            kraft += 1 << (7 - l)
    # The code-length code must be exactly complete (zlib always emits
    # complete codes; the strict decoder rejects anything else).
    return kraft == 128


@dataclass
class SyncResult:
    """A confirmed block start."""

    #: Absolute bit offset of the confirmed block header.
    bit_offset: BitOffset
    #: Number of candidate bit offsets tried (including the winner).
    candidates_tried: int
    #: Blocks decoded to confirm the winner.
    blocks_confirmed: int
    #: Wall-clock seconds spent searching.
    elapsed: float


def probe_block(data, bit_offset: BitOffset, confirm_blocks: int = 5) -> bool:
    """Check whether a DEFLATE block plausibly starts at ``bit_offset``.

    Decodes up to ``1 + confirm_blocks`` blocks in strict mode; any
    format violation means "no block here".
    """
    try:
        result = inflate(
            data,
            start_bit=bit_offset,
            strict=True,
            max_blocks=1 + confirm_blocks,
        )
    except DeflateError:
        return False
    return len(result.blocks) >= 1 + confirm_blocks


def find_block_start(
    data,
    start_bit: BitOffset = BitOffset(0),
    *,
    confirm_blocks: int = 5,
    max_search_bits: int | None = None,
    end_bit: BitOffset | None = None,
) -> SyncResult:
    """Find the first confirmed DEFLATE block start at/after ``start_bit``.

    Parameters
    ----------
    data:
        Buffer containing (at least) the compressed stream.
    start_bit:
        First candidate bit offset.
    confirm_blocks:
        Number of *additional* blocks that must decode after the
        candidate (the paper's implementation uses 5).
    max_search_bits:
        Give up after trying this many candidates.
    end_bit:
        Do not try candidates at or beyond this bit offset.

    Raises
    ------
    SyncError
        If the search region is exhausted without a confirmed block.
    """
    t0 = time.perf_counter()
    total_bits = 8 * len(data)
    limit = total_bits if end_bit is None else min(end_bit, total_bits)
    if max_search_bits is not None:
        limit = min(limit, start_bit + max_search_bits)

    bit = start_bit
    tried = 0
    while bit < limit:
        tried += 1
        if not prescreen(data, bit):
            bit += 1
            continue
        try:
            result = inflate(
                data,
                start_bit=bit,
                strict=True,
                max_blocks=1 + confirm_blocks,
            )
        except DeflateError:
            bit += 1
            continue
        confirmed = (
            len(result.blocks) >= 1 + confirm_blocks
            # Near the end of the stream, running into the genuine
            # BFINAL block (or the end of data) while confirming is
            # the best possible confirmation.
            or (len(result.blocks) >= 1 and result.hit_final_probe)
            or (len(result.blocks) >= 1 and result.end_bit >= total_bits - 7)
        )
        if confirmed:
            return SyncResult(
                bit_offset=bit,
                candidates_tried=tried,
                blocks_confirmed=len(result.blocks),
                elapsed=time.perf_counter() - t0,
            )
        bit += 1

    raise SyncError(
        f"no confirmed block start in bits [{start_bit}, {limit})"
        f" after {tried} candidates",
        bit_offset=start_bit,
        stage="sync",
    )
