"""Second pass of the two-pass decompressor: context resolution.

Given the per-chunk symbol streams ``D_0..D_{n-1}`` from the first
pass, the paper's second pass (Section VI-C, Figure 3) is:

1. *Sequential window resolution* — cheap, O(n · 32 KiB): the final
   window of chunk ``i`` becomes the initial context of chunk ``i+1``;
   since that window may itself contain markers, it is resolved with
   chunk ``i``'s (already resolved) context first.
2. *Parallel translation* — each chunk independently replaces marker
   ``U_j`` with ``w_i[j]``.

This module implements both steps over the numpy symbol arrays.
"""

from __future__ import annotations

import numpy as np

from repro.core import marker
from repro.deflate.constants import WINDOW_SIZE
from repro.errors import ReproError

__all__ = [
    "resolve_contexts",
    "translate_chunk",
    "translate_chunk_counted",
    "final_window",
]


def final_window(symbols: np.ndarray, initial_window: np.ndarray | None = None) -> np.ndarray:
    """Last 32 KiB of a chunk's symbol stream (its successor's context).

    If the chunk produced fewer than 32 KiB of output, the remainder
    comes from its *own* initial context (which must then be supplied).
    """
    symbols = np.asarray(symbols, dtype=np.int32)
    if len(symbols) >= WINDOW_SIZE:
        return symbols[-WINDOW_SIZE:]
    if initial_window is None:
        raise ReproError(
            f"chunk produced {len(symbols)} < {WINDOW_SIZE} symbols and no "
            "initial window was provided",
            stage="translate",
        )
    initial_window = np.asarray(initial_window, dtype=np.int32)
    return np.concatenate([initial_window, symbols])[-WINDOW_SIZE:]


def resolve_contexts(windows: list[np.ndarray]) -> list[np.ndarray]:
    """Sequentially resolve the chain of chunk contexts.

    ``windows[i]`` is the *unresolved* final window of chunk ``i`` (the
    initial context handed to chunk ``i+1``).  Chunk 0 decompresses
    from the true stream start, so for any input large enough to be
    chunked its window is already marker-free (for tiny chunk-0 outputs
    the unknowable left padding stays marked; a valid stream never
    references it, and :func:`translate_chunk` raises loudly if one
    does).

    Returns the resolved context for each chunk boundary:
    ``resolved[i]`` is the true 32 KiB of text preceding chunk ``i+1``.
    """
    if not windows:
        return []
    resolved = [np.asarray(windows[0], dtype=np.int32)]
    for w in windows[1:]:
        resolved.append(marker.resolve(w, resolved[-1]))
    return resolved


def translate_chunk(
    symbols: np.ndarray, context: np.ndarray, placeholder: int | None = None
) -> bytes:
    """Pass-2 translation of one chunk: ``U_j -> context[j]``, to bytes.

    With the default ``placeholder=None`` any marker that survives
    resolution (a reference into genuinely unknown data) raises; the
    fault-tolerant decompressor passes ``ord('?')`` to render such
    positions as holes instead.

    Fully vectorized: one LUT gather (:func:`repro.core.marker.resolve`)
    plus one ``astype(uint8)`` pass — no per-symbol branching.
    """
    resolved = marker.resolve(symbols, context)
    return marker.to_bytes(resolved, placeholder=placeholder)


def translate_chunk_counted(
    symbols: np.ndarray, context: np.ndarray, placeholder: int | None = None
) -> tuple[bytes, int]:
    """Like :func:`translate_chunk`, also reporting how many symbols
    stayed unresolved (0 for any well-formed stream)."""
    resolved = marker.resolve(symbols, context)
    unresolved = marker.count_markers(resolved)
    return marker.to_bytes(resolved, placeholder=placeholder), unresolved
