"""Memory-bounded parallel decompression (the paper's projected fix).

Discussion section: *"the current implementation requires the whole
decompressed file to reside in memory, yet further engineering efforts
could lift this limitation with little projected impact on
performance. [...] The memory requirements can be reduced by processing
in parallel only a portion of the file at a time."*

This module implements that engineering: the compressed payload is cut
into *stripes* of ``stripe_chunks`` chunks; each stripe runs the full
two-pass algorithm, emits its output to a consumer callback, and only
the 32 KiB boundary context crosses from one stripe to the next.  Peak
memory is O(stripe size), independent of file size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import marker
from repro.core.chunking import plan_chunks
from repro.core.pugz import _pass1_chunk
from repro.core.translate import resolve_contexts
from repro.deflate.gzipfmt import parse_gzip_header
from repro.errors import GzipFormatError, ReproError
from repro.parallel.executor import Executor, make_executor

__all__ = ["WindowedReport", "pugz_decompress_windowed", "iter_pugz"]


@dataclass
class WindowedReport:
    """Instrumentation of a windowed run."""

    stripes: int = 0
    chunks: int = 0
    output_size: int = 0
    #: Largest number of symbols held in memory at once (across one
    #: stripe's arrays) — the memory bound being demonstrated.
    peak_stripe_symbols: int = 0


def iter_pugz(
    gz_data: bytes,
    n_chunks: int = 16,
    stripe_chunks: int = 4,
    executor: Executor | str = "serial",
    confirm_blocks: int = 5,
    report: WindowedReport | None = None,
    kernel: str | None = None,
):
    """Generator form: yield decompressed chunks in stream order.

    Single-member files only (multi-member files are already blocked;
    use :func:`repro.core.pugz.pugz_decompress`).  Pass a
    :class:`WindowedReport` to collect instrumentation.  ``kernel``
    selects the decode kernel by name (must stay picklable for process
    executors); ``None`` defers to ``$REPRO_KERNEL`` or the auto gate.
    """
    if isinstance(executor, str):
        executor = make_executor(executor, stripe_chunks)
    if stripe_chunks < 1:
        raise ValueError("stripe_chunks must be >= 1")
    if report is None:
        report = WindowedReport()

    payload_start, *_ = parse_gzip_header(gz_data, 0)
    start_bit = 8 * payload_start
    end_bit = 8 * (len(gz_data) - 8)
    chunks = plan_chunks(gz_data, start_bit, end_bit, n_chunks,
                         confirm_blocks=confirm_blocks)
    report.chunks = len(chunks)

    # The resolved 32 KiB of text preceding the next stripe.
    carry_context: np.ndarray | None = None  # None = true stream start

    for stripe_start in range(0, len(chunks), stripe_chunks):
        stripe = chunks[stripe_start : stripe_start + stripe_chunks]
        jobs = [(gz_data, c.start_bit, c.stop_bit, c.index, None, kernel)
                for c in stripe]
        results = executor.map(_pass1_chunk, jobs)
        results.sort(key=lambda r: r[0])
        symbol_arrays = [r[1] for r in results]
        windows = [r[2] for r in results]

        report.stripes += 1
        report.peak_stripe_symbols = max(
            report.peak_stripe_symbols, sum(len(s) for s in symbol_arrays)
        )

        # Resolve the stripe's contexts.  The first stripe's chunk 0
        # starts at the true stream start (no markers possible); later
        # stripes seed from the carried context.
        if carry_context is None:
            if marker.count_markers(symbol_arrays[0]):
                raise ReproError("stream references data before its start", stage="windowed")
            contexts = resolve_contexts(windows)
            stripe_ctxs = [None] + contexts[:-1]
            carry_context = contexts[-1]
        else:
            resolved = [marker.resolve(windows[0], carry_context)]
            for w in windows[1:]:
                resolved.append(marker.resolve(w, resolved[-1]))
            stripe_ctxs = [carry_context] + resolved[:-1]
            carry_context = resolved[-1]

        for symbols, ctx in zip(symbol_arrays, stripe_ctxs):
            if ctx is None:
                out = symbols.astype(np.uint8).tobytes()  # lint: allow-marker-escape(first stripe: count_markers verified zero above)
            else:
                out = marker.to_bytes(marker.resolve(symbols, ctx))
            report.output_size += len(out)
            yield out

        # A BFINAL chunk ends the member.
        if any(r[4] for r in results):
            break


def pugz_decompress_windowed(
    gz_data: bytes,
    sink,
    n_chunks: int = 16,
    stripe_chunks: int = 4,
    executor: Executor | str = "serial",
    confirm_blocks: int = 5,
    kernel: str | None = None,
) -> WindowedReport:
    """Decompress a gzip file stripe by stripe, streaming to ``sink``.

    ``sink(data: bytes)`` receives the output in order; peak memory is
    O(stripe), not O(file).  See :func:`iter_pugz` for the generator
    form this wraps.
    """
    report = WindowedReport()
    for piece in iter_pugz(
        gz_data,
        n_chunks=n_chunks,
        stripe_chunks=stripe_chunks,
        executor=executor,
        confirm_blocks=confirm_blocks,
        report=report,
        kernel=kernel,
    ):
        sink(piece)
    return report
