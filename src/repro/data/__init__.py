"""Workload generators: DNA, FASTQ-like strings, synthetic FASTQ, corpora."""

from repro.data.corpus import CorpusFile, CorpusSpec, build_corpus, gzip_zlib, level_stratum
from repro.data.dna import mutate_dna, random_dna
from repro.data.fastq import (
    CHAR_TYPES,
    FastqRecord,
    classify_fastq_bytes,
    parse_fastq,
    synthetic_fastq,
)
from repro.data.fasta import FastaRecord, parse_fasta, synthetic_fasta, wrap_sequence
from repro.data.fastq_like import fastq_like
from repro.data.randomness import entropy_bits_per_char, is_random_like, window_entropies
from repro.data.sra import (
    ILLUMINA_ADAPTER,
    adapter_contaminated_reads,
    duplicated_reads,
    low_gc_fastq,
    paired_end_fastq,
)

__all__ = [
    "random_dna",
    "mutate_dna",
    "fastq_like",
    "synthetic_fastq",
    "parse_fastq",
    "classify_fastq_bytes",
    "FastqRecord",
    "CHAR_TYPES",
    "build_corpus",
    "CorpusFile",
    "CorpusSpec",
    "gzip_zlib",
    "level_stratum",
    "entropy_bits_per_char",
    "is_random_like",
    "window_entropies",
    "synthetic_fasta",
    "parse_fasta",
    "FastaRecord",
    "wrap_sequence",
    "adapter_contaminated_reads",
    "duplicated_reads",
    "low_gc_fastq",
    "paired_end_fastq",
    "ILLUMINA_ADAPTER",
]
