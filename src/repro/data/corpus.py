"""Synthetic corpus builder mimicking the paper's ENA dataset (Table I).

The paper downloaded 100 FASTQ files (192.8 GB) from the European
Nucleotide Archive and stratified them by the compression level that
``file(1)`` reports: 26 "lowest", 68 "normal", 6 "highest".  Their own
caveat applies: *"other gzip-compatible compressors may report a
compression level that does not match the performance of gzip"* — the
"lowest" stratum of public archives is dominated by fast encoders
(Intel ISA-L igzip and friends) whose weak matchers (minimum match
length 8, shallow search) emit literal-rich streams, which is exactly
why those files are trivially random-accessible (Table I: 100 %
unambiguous, small delay).

We reproduce the corpus *structure* at laptop scale:

* **lowest** — our own DEFLATE at level 1 with the weak-compressor
  persona (``min_match=8``), modelling the igzip class;
* **normal** — system zlib level 6 (gzip's engine, the paper's "usually
  -6"), with heterogeneous content: some files with DNA-free quality
  alphabets (these resolve ~100 %, like the paper's 48 % of files at
  99.9-100 %) and some with Illumina-range qualities + DNA barcodes in
  headers (DNA-quality/header cross-matches keep a fraction of
  sequences ambiguous — the paper's explanation for the rest);
* **highest** — system zlib level 9 with cross-matching content.

See DESIGN.md ("substitutions") for why this preserves the Table I
phenomena at MB scale.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.data.fastq import synthetic_fastq

__all__ = ["CorpusFile", "CorpusSpec", "build_corpus", "gzip_zlib", "level_stratum"]

#: The paper's Table I strata.
STRATA = ("lowest", "normal", "highest")


def level_stratum(level: int) -> str:
    """Map a gzip level onto the paper's Table I stratum names."""
    if level <= 1:
        return "lowest"
    if level >= 9:
        return "highest"
    return "normal"


def gzip_zlib(data: bytes, level: int, mtime: int = 0) -> bytes:
    """gzip-container compression via the system zlib (gzip's engine).

    Produces the same DEFLATE token statistics as ``gzip -<level>``;
    used to build experiment inputs quickly (our own compressor is
    interoperable but pure Python, so large inputs go through zlib).
    """
    co = zlib.compressobj(level, zlib.DEFLATED, 31)  # wbits 31 = gzip container
    return co.compress(data) + co.flush()


@dataclass(frozen=True)
class CorpusFile:
    """One synthetic corpus member."""

    name: str
    level: int
    stratum: str
    uncompressed_size: int
    gz: bytes
    #: Content persona: "safe" or "crossmatch" (see module docstring).
    persona: str = "safe"

    @property
    def compressed_size(self) -> int:
        return len(self.gz)

    @property
    def ratio(self) -> float:
        return self.compressed_size / self.uncompressed_size


@dataclass
class CorpusSpec:
    """Shape of the corpus to synthesise.

    Defaults scale the paper's 26/68/6 stratification down to a corpus
    a pure-Python analysis pass can sweep in minutes.
    """

    n_lowest: int = 2
    n_normal: int = 5
    n_highest: int = 2
    reads_per_file: int = 6000
    read_length: int = 150
    seed: int = 20190517  # the paper's arXiv date
    #: Fraction of normal-stratum files given cross-matching content.
    normal_crossmatch_fraction: float = 0.4

    def plan(self) -> list[tuple[int, str]]:
        """(level, persona) per file."""
        plan: list[tuple[int, str]] = []
        plan += [(1, "safe")] * self.n_lowest
        n_cross = round(self.n_normal * self.normal_crossmatch_fraction)
        plan += [(6, "safe")] * (self.n_normal - n_cross)
        plan += [(6, "crossmatch")] * n_cross
        plan += [(9, "crossmatch")] * self.n_highest
        return plan


def _generate_text(spec: CorpusSpec, index: int, persona: str) -> bytes:
    if persona == "safe":
        profile, barcode = "safe", None
    elif persona == "crossmatch":
        profile, barcode = "illumina", "ATCACG"
    else:
        raise ValueError(f"unknown persona {persona!r}")
    return synthetic_fastq(
        spec.reads_per_file,
        read_length=spec.read_length,
        seed=spec.seed + index,
        run=spec.seed % 1000 + index,
        quality_profile=profile,
        barcode=barcode,
    )


def build_corpus(spec: CorpusSpec | None = None) -> list[CorpusFile]:
    """Synthesise the corpus: distinct FASTQ content per file."""
    spec = spec or CorpusSpec()
    files = []
    for i, (level, persona) in enumerate(spec.plan()):
        text = _generate_text(spec, i, persona)
        if level <= 1:
            # Weak-compressor persona (igzip-class "fastest" encoder).
            from repro.deflate import gzip_compress

            gz = gzip_compress(text, level=1, min_match=8)
        else:
            gz = gzip_zlib(text, level)
        files.append(
            CorpusFile(
                name=f"SYN{i:03d}_L{level}_{persona}.fastq.gz",
                level=level,
                stratum=level_stratum(level),
                uncompressed_size=len(text),
                gz=gz,
                persona=persona,
            )
        )
    return files
