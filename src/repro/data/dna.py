"""Random DNA generation (the Section IV-C / V workload).

The paper's models treat short sequencing reads as random DNA (their
footnote validates this on real Illumina data); these generators
produce the synthetic equivalents at configurable GC content.
"""

from __future__ import annotations

import numpy as np

__all__ = ["random_dna", "mutate_dna", "NUCLEOTIDES"]

NUCLEOTIDES = b"ACGT"


def _rng(seed) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_dna(length: int, seed=None, gc_content: float = 0.5) -> bytes:
    """Uniform (or GC-biased) random DNA of ``length`` bases.

    ``gc_content`` is the combined probability of G and C; 0.5 gives
    the uniform model of Section V-A.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    if not 0.0 <= gc_content <= 1.0:
        raise ValueError("gc_content must be in [0, 1]")
    rng = _rng(seed)
    at = (1.0 - gc_content) / 2.0
    gc = gc_content / 2.0
    probs = [at, gc, gc, at]  # A, C, G, T
    idx = rng.choice(4, size=length, p=probs)
    return np.frombuffer(NUCLEOTIDES, dtype=np.uint8)[idx].tobytes()


def mutate_dna(dna: bytes, rate: float, seed=None) -> bytes:
    """Point-mutate a DNA string at the given per-base rate.

    Used to build low-complexity / repeat-rich workloads (each mutation
    site breaks matches, raising the literal rate).
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be in [0, 1]")
    rng = _rng(seed)
    arr = np.frombuffer(dna, dtype=np.uint8).copy()
    sites = rng.random(len(arr)) < rate
    n = int(sites.sum())
    if n:
        arr[sites] = np.frombuffer(NUCLEOTIDES, dtype=np.uint8)[rng.integers(0, 4, size=n)]
    return arr.tobytes()
