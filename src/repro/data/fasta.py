"""FASTA format support (the other ubiquitous DNA text format).

The paper's machinery is FASTQ-centred, but the title's claim —
"random access to DNA sequences" — extends naturally to FASTA
(reference genomes, assemblies).  FASTA's structure is friendlier to
random access than FASTQ's: no quality lines, so decompressed windows
are mostly nucleotides and the Appendix X-B grammar needs only the
newline terminators.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.dna import random_dna
from repro.errors import ReproError

__all__ = ["FastaRecord", "synthetic_fasta", "parse_fasta", "wrap_sequence"]


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA record (unwrapped sequence)."""

    header: bytes  # without the '>' prefix
    sequence: bytes

    def encode(self, width: int = 70) -> bytes:
        return b">" + self.header + b"\n" + wrap_sequence(self.sequence, width)


def wrap_sequence(seq: bytes, width: int = 70) -> bytes:
    """Wrap a sequence to fixed-width lines (trailing newline included)."""
    if width < 1:
        raise ValueError("width must be >= 1")
    lines = [seq[i : i + width] for i in range(0, len(seq), width)] or [b""]
    return b"\n".join(lines) + b"\n"


def synthetic_fasta(
    n_contigs: int,
    contig_length: int = 50_000,
    line_width: int = 70,
    seed=None,
    gc_content: float = 0.5,
) -> bytes:
    """Generate an assembly-like multi-FASTA file."""
    import numpy as np

    rng = np.random.default_rng(seed)
    parts = []
    for i in range(n_contigs):
        seq = random_dna(contig_length, seed=rng, gc_content=gc_content)
        rec = FastaRecord(
            header=f"contig_{i:04d} length={contig_length}".encode(),
            sequence=seq,
        )
        parts.append(rec.encode(line_width))
    return b"".join(parts)


def parse_fasta(data: bytes) -> list[FastaRecord]:
    """Strict FASTA parser (unwraps sequence lines)."""
    records: list[FastaRecord] = []
    header: bytes | None = None
    seq_parts: list[bytes] = []
    for line in data.split(b"\n"):
        if line.startswith(b">"):
            if header is not None:
                records.append(FastaRecord(header, b"".join(seq_parts)))
            header = line[1:]
            seq_parts = []
        elif line:
            if header is None:
                raise ReproError("sequence data before the first '>' header", stage="fasta")
            seq_parts.append(line)
    if header is not None:
        records.append(FastaRecord(header, b"".join(seq_parts)))
    return records
