"""Synthetic Illumina-style FASTQ generation and strict FASTQ parsing.

The generator mimics the structural features of real ENA files that
drive the paper's phenomena:

* 4-line records: ``@header``, DNA sequence, ``+``, quality string;
* highly redundant headers (instrument/run/flowcell constant, tile and
  coordinates increasing) — gzip compresses these with long matches,
  which is why header characters from the initial context survive far
  into the stream in Figure 4;
* random DNA sequences (reads are near-incompressible, per the paper's
  Section V-A footnote);
* quality strings drawn from a small alphabet with position-dependent
  bias (realistic Illumina profiles degrade toward the read's 3' end).

The parser is a strict byte-domain FASTQ reader used by tests and
examples (unlike the heuristic marker-domain extractor of
:mod:`repro.core.sequences`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dna import random_dna
from repro.errors import ReproError

__all__ = ["FastqRecord", "synthetic_fastq", "parse_fastq", "classify_fastq_bytes", "CHAR_TYPES"]

#: Character-type codes for the Figure 4 analysis.
CHAR_TYPES = {"header": 0, "dna": 1, "plus": 2, "quality": 3, "newline": 4}

#: Phred+33 quality alphabet used by the generator ('!' .. 'I').
_QUAL_MIN = 33
_QUAL_MAX = 73


@dataclass(frozen=True)
class FastqRecord:
    """One FASTQ record (bytes fields, newline-free)."""

    header: bytes
    sequence: bytes
    plus: bytes
    quality: bytes

    def encode(self) -> bytes:
        return b"\n".join((self.header, self.sequence, self.plus, self.quality)) + b"\n"


def synthetic_fastq(
    n_reads: int,
    read_length: int = 100,
    seed=None,
    instrument: str = "SIM001",
    run: int = 42,
    flowcell: str = "HFCX7",
    lane: int = 1,
    quality_profile: str = "illumina",
    barcode: str | None = None,
) -> bytes:
    """Generate a synthetic FASTQ file with ``n_reads`` records.

    ``quality_profile`` selects the quality-string statistics, which in
    turn decide how much DNA-quality cross-matching gzip produces (the
    driver of the paper's Table I ambiguity):

    * ``"illumina"`` — position-dependent, skewed toward high quality;
      the alphabet reaches into ``A..I``, i.e. it *contains DNA
      letters*, enabling the cross-matches the paper blames for
      ambiguous sequences;
    * ``"safe"`` — uniform over ``!..@`` (no DNA letters), isolating
      DNA from quality in the match space;
    * ``"uniform"`` — uniform over the full ``!..I`` range, maximum
      quality entropy.

    ``barcode`` appends a DNA-letter index tag to every header (e.g.
    ``"ATCACG"``) — another cross-matching channel real headers have.
    """
    if n_reads < 0 or read_length <= 0:
        raise ValueError("n_reads must be >= 0 and read_length > 0")
    rng = np.random.default_rng(seed)

    dna = random_dna(n_reads * read_length, seed=rng)
    quals = _quality_matrix(rng, n_reads, read_length, quality_profile)
    tag = barcode if barcode is not None else "7"

    parts = []
    tile = 1101
    x, y = 1000, 1000
    for i in range(n_reads):
        # Advance coordinates like a real flowcell scan.
        x += int(rng.integers(1, 50))
        if x > 30000:
            x = 1000 + int(rng.integers(0, 50))
            y += int(rng.integers(1, 40))
            if y > 30000:
                y = 1000
                tile += 1
        header = (
            f"@{instrument}:{run}:{flowcell}:{lane}:{tile}:{x}:{y} 1:N:0:{tag}"
        ).encode()
        seq = dna[i * read_length : (i + 1) * read_length]
        qual = quals[i].tobytes()
        parts.append(header + b"\n" + seq + b"\n+\n" + qual + b"\n")
    return b"".join(parts)


def _quality_matrix(rng, n_reads: int, read_length: int, profile: str) -> np.ndarray:
    if profile == "uniform":
        return rng.integers(_QUAL_MIN, _QUAL_MAX + 1, size=(n_reads, read_length)).astype(np.uint8)
    if profile == "safe":
        # '!'..'@' (33..64): disjoint from the nucleotide letters.
        return rng.integers(33, 65, size=(n_reads, read_length)).astype(np.uint8)
    if profile != "illumina":
        raise ValueError(f"unknown quality profile {profile!r}")
    # Mean quality decays along the read; small per-base noise; values
    # drawn from a handful of discrete bins like real Illumina RTA.
    pos = np.arange(read_length)
    mean_q = 38.0 - 8.0 * (pos / max(1, read_length - 1)) ** 2
    noise = rng.normal(0.0, 2.0, size=(n_reads, read_length))
    q = np.clip(np.round((mean_q + noise) / 2) * 2, 2, 40).astype(np.uint8)
    return (q + 33).astype(np.uint8)


def parse_fastq(data: bytes) -> list[FastqRecord]:
    """Strict FASTQ parser (4-line records, validated)."""
    records = []
    lines = data.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    if len(lines) % 4:
        raise ReproError(f"FASTQ line count {len(lines)} is not a multiple of 4", stage="fastq")
    for i in range(0, len(lines), 4):
        header, seq, plus, qual = lines[i : i + 4]
        if not header.startswith(b"@"):
            raise ReproError(f"record {i // 4}: header does not start with '@'", stage="fastq")
        if not plus.startswith(b"+"):
            raise ReproError(f"record {i // 4}: third line does not start with '+'", stage="fastq")
        if len(seq) != len(qual):
            raise ReproError(
                f"record {i // 4}: sequence/quality length mismatch "
                f"({len(seq)} vs {len(qual)})",
                stage="fastq",
            )
        records.append(FastqRecord(header, seq, plus, qual))
    return records


def classify_fastq_bytes(data: bytes) -> np.ndarray:
    """Per-byte character-type codes (see :data:`CHAR_TYPES`).

    Newlines get their own class; the Figure 4 analysis attributes each
    surviving initial-context character to the type of the byte at that
    context position in the *actual* stream.
    """
    out = np.empty(len(data), dtype=np.uint8)
    pos = 0
    line_idx = 0
    for line in data.split(b"\n"):
        n = len(line)
        if n:
            code = (
                CHAR_TYPES["header"],
                CHAR_TYPES["dna"],
                CHAR_TYPES["plus"],
                CHAR_TYPES["quality"],
            )[line_idx % 4]
            out[pos : pos + n] = code
        pos += n
        if pos < len(data):
            out[pos] = CHAR_TYPES["newline"]
            pos += 1
        line_idx += 1
    return out
