"""The paper's "FASTQ-like" synthetic workload (Section IV-D).

    "We created a FASTQ-like string of length 150 MB by repeating 150
     random DNA characters followed by 300 'x' characters."

The 'x' spacers push DNA match offsets beyond what gzip's low levels
favour, which is what makes literals reappear — the key structural
difference between plain DNA files and FASTQ files.
"""

from __future__ import annotations

from repro.data.dna import random_dna

__all__ = ["fastq_like"]


def fastq_like(
    total_length: int,
    dna_length: int = 150,
    spacer_length: int = 300,
    spacer: bytes = b"x",
    seed=None,
) -> bytes:
    """Generate the repeating ``[DNA | spacer]`` string of Section IV-D.

    Each repetition carries *fresh* random DNA (the paper repeats the
    pattern, not the bases) followed by ``spacer_length`` copies of the
    spacer byte; the output is truncated to ``total_length``.
    """
    if total_length < 0:
        raise ValueError("total_length must be non-negative")
    if dna_length <= 0 or spacer_length < 0:
        raise ValueError("dna_length must be positive, spacer_length non-negative")
    unit = dna_length + spacer_length
    n_units = -(-total_length // unit)
    dna = random_dna(n_units * dna_length, seed=seed)
    spacer_block = spacer * spacer_length
    parts = []
    for u in range(n_units):
        parts.append(dna[u * dna_length : (u + 1) * dna_length])
        parts.append(spacer_block)
    return b"".join(parts)[:total_length]
