"""Compression-based randomness testing of DNA windows.

The paper (Section V-A footnote) checks that real sequencing reads
behave like random DNA by compressing 32 KiB windows with ``bzip2 -9``
and comparing against the naive 2 bits/character bound: windows above
~2.1 bits/char are effectively random.

``bzip2`` is not available as a from-scratch dependency here, so we
substitute an adaptive order-2 context model with add-one smoothing —
like bzip2's BWT+MTF stage it exploits short-range correlations, and
on DNA it gives the same verdicts (random DNA measures ~2.0+ bits/char,
repetitive DNA well below; validated in the test suite).  See DESIGN.md
("substitutions").
"""

from __future__ import annotations

import math

import numpy as np

from repro.deflate.constants import WINDOW_SIZE

__all__ = ["entropy_bits_per_char", "is_random_like", "window_entropies"]


def entropy_bits_per_char(data: bytes, order: int = 2) -> float:
    """Adaptive order-``k`` context-model code length, in bits/char.

    Each byte is coded with probability ``(count(ctx, byte) + 1) /
    (count(ctx) + alphabet)`` under its preceding ``order``-byte
    context, counts updating online — i.e. the ideal code length of a
    simple PPM-style compressor, no compressed output materialised.
    """
    if not data:
        return 0.0
    if order < 0:
        raise ValueError("order must be >= 0")
    # Map bytes to a dense alphabet for small contexts.
    arr = np.frombuffer(data, dtype=np.uint8)
    symbols, dense = np.unique(arr, return_inverse=True)
    k = len(symbols)

    counts: dict[tuple, np.ndarray] = {}
    total_bits = 0.0
    ctx: tuple = ()
    log2 = math.log2
    dense_list = dense.tolist()
    for sym in dense_list:
        table = counts.get(ctx)
        if table is None:
            table = np.zeros(k, dtype=np.int64)
            counts[ctx] = table
        seen = int(table.sum())
        p = (int(table[sym]) + 1) / (seen + k)
        total_bits -= log2(p)
        table[sym] += 1
        if order:
            ctx = (ctx + (sym,))[-order:]
    return total_bits / len(data)


def is_random_like(data: bytes, threshold: float = 2.1, order: int = 2) -> bool:
    """The paper's verdict: window compresses above ``threshold`` bits/char.

    For 4-letter DNA the naive bound is 2 bits/char; measuring at or
    above ~2.1 with a context model means no exploitable structure.
    """
    return entropy_bits_per_char(data, order) >= threshold


def window_entropies(data: bytes, window: int = WINDOW_SIZE, order: int = 2) -> np.ndarray:
    """bits/char of each non-overlapping ``window``-byte slice."""
    out = []
    for start in range(0, len(data), window):
        chunk = data[start : start + window]
        if len(chunk) < window // 4:
            break
        out.append(entropy_bits_per_char(chunk, order))
    return np.asarray(out, dtype=np.float64)
