"""Richer sequencing-workload models (the paper's footnote datasets).

The Section V-A footnote validates the random-DNA assumption on 10
Illumina datasets and notes two exceptions: one with **low GC content**
and one with **adapter sequences** — both more compressible than random
DNA.  This module generates those confounders (plus PCR duplicates and
paired-end layouts) so robustness tests can probe how structure in the
reads shifts the paper's phenomena.
"""

from __future__ import annotations

import numpy as np

from repro.data.dna import NUCLEOTIDES, random_dna
from repro.data.fastq import synthetic_fastq, _quality_matrix  # reuse profiles

__all__ = [
    "adapter_contaminated_reads",
    "duplicated_reads",
    "low_gc_fastq",
    "paired_end_fastq",
    "ILLUMINA_ADAPTER",
]

#: The standard Illumina TruSeq R1 adapter prefix.
ILLUMINA_ADAPTER = b"AGATCGGAAGAGCACACGTCTGAACTCCAGTCA"


def _records(reads: list[bytes], seed: int, quality_profile: str = "illumina") -> bytes:
    rng = np.random.default_rng(seed)
    if not reads:
        return b""
    read_length = len(reads[0])
    quals = _quality_matrix(rng, len(reads), read_length, quality_profile)
    parts = []
    for i, (seq, q) in enumerate(zip(reads, quals)):
        parts.append(
            f"@SRA{seed}:{i // 1000}:{i % 1000} 1:N:0:7\n".encode()
            + seq + b"\n+\n" + q.tobytes()[: len(seq)] + b"\n"
        )
    return b"".join(parts)


def adapter_contaminated_reads(
    n_reads: int,
    read_length: int = 100,
    adapter_fraction: float = 0.3,
    seed: int = 0,
) -> bytes:
    """FASTQ where a fraction of reads run into the adapter.

    Adapter-bearing reads share a long common suffix — highly
    compressible, exactly the structure the footnote flags (one dataset
    compressed to 1.9 bits/char because of adapters).
    """
    if not 0.0 <= adapter_fraction <= 1.0:
        raise ValueError("adapter_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    reads = []
    for i in range(n_reads):
        insert = random_dna(read_length, seed=rng)
        if rng.random() < adapter_fraction:
            # Short insert: the read runs into the adapter.
            keep = int(rng.integers(read_length // 4, 3 * read_length // 4))
            read = insert[:keep] + (ILLUMINA_ADAPTER * 4)[: read_length - keep]
        else:
            read = insert
        reads.append(read)
    return _records(reads, seed)


def duplicated_reads(
    n_unique: int,
    duplication_rate: float = 0.5,
    read_length: int = 100,
    seed: int = 0,
) -> bytes:
    """FASTQ with PCR duplicates: repeated reads compress with long
    matches, accelerating context propagation."""
    if not 0.0 <= duplication_rate < 1.0:
        raise ValueError("duplication_rate must be in [0, 1)")
    rng = np.random.default_rng(seed)
    unique = [random_dna(read_length, seed=rng) for _ in range(n_unique)]
    reads = list(unique)
    n_dups = int(n_unique * duplication_rate / (1 - duplication_rate))
    for _ in range(n_dups):
        reads.append(unique[int(rng.integers(0, n_unique))])
    order = rng.permutation(len(reads))
    return _records([reads[i] for i in order], seed)


def low_gc_fastq(
    n_reads: int,
    read_length: int = 100,
    gc_content: float = 0.2,
    seed: int = 0,
) -> bytes:
    """FASTQ of AT-rich reads (the footnote's low-GC dataset): a skewed
    base distribution compresses below 2 bits/char."""
    rng = np.random.default_rng(seed)
    reads = [
        random_dna(read_length, seed=rng, gc_content=gc_content)
        for _ in range(n_reads)
    ]
    return _records(reads, seed)


def paired_end_fastq(
    n_pairs: int,
    read_length: int = 100,
    seed: int = 0,
) -> tuple[bytes, bytes]:
    """R1/R2 files from the same inserts (reverse-complemented mates)."""
    rng = np.random.default_rng(seed)
    comp = bytes.maketrans(b"ACGT", b"TGCA")
    r1, r2 = [], []
    for _ in range(n_pairs):
        insert = random_dna(read_length * 2, seed=rng)
        r1.append(insert[:read_length])
        r2.append(insert[-read_length:].translate(comp)[::-1])
    return _records(r1, seed), _records(r2, seed + 1)
