"""From-scratch DEFLATE / gzip / zlib codec (RFC 1950/1951/1952).

This subpackage is the substrate the paper's algorithms run on: a
complete, interoperable implementation of the compression format,
including the bit-level reader that makes arbitrary-bit-offset decoding
possible and the token capture the analysis layers use.

Public entry points:

* :func:`repro.deflate.deflate.deflate_compress` /
  :func:`repro.deflate.inflate.inflate` — raw streams;
* :func:`repro.deflate.deflate.gzip_compress` /
  :func:`repro.deflate.gzipfmt.gzip_unwrap` — gzip containers;
* :func:`repro.deflate.lz77.parse_lz77` — the LZ77 token stream alone
  (greedy levels 1-3, lazy 4-9, mirroring gzip).
"""

from repro.deflate.deflate import deflate_compress, gzip_compress, zlib_compress
from repro.deflate.gzipfmt import (
    GzipMember,
    gzip_unwrap,
    member_payload,
    split_members,
    zlib_unwrap,
)
from repro.deflate.inflate import InflateResult, inflate, inflate_bytes
from repro.deflate.lz77 import parse_lz77
from repro.deflate.streaming import (
    FINISH,
    FULL_FLUSH,
    SYNC_FLUSH,
    DeflateCompressor,
    InflateDecompressor,
)
from repro.deflate.tokens import Token, TokenStats, TokenStream

__all__ = [
    "deflate_compress",
    "gzip_compress",
    "zlib_compress",
    "gzip_unwrap",
    "zlib_unwrap",
    "member_payload",
    "split_members",
    "GzipMember",
    "inflate",
    "inflate_bytes",
    "InflateResult",
    "parse_lz77",
    "Token",
    "TokenStream",
    "TokenStats",
    "DeflateCompressor",
    "InflateDecompressor",
    "SYNC_FLUSH",
    "FULL_FLUSH",
    "FINISH",
]
