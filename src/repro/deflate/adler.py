"""Adler-32 checksum (RFC 1950), used by the zlib container format."""

from __future__ import annotations

__all__ = ["adler32"]

_MOD = 65521
# Largest n such that 255*n*(n+1)/2 + (n+1)*(MOD-1) stays under 2**32:
# lets us defer the modulo reduction for speed.
_NMAX = 5552


def adler32(data: bytes, value: int = 1) -> int:
    """Update an Adler-32 checksum with ``data``.

    Matches :func:`zlib.adler32` (initial value 1), verified by tests.
    """
    a = value & 0xFFFF
    b = (value >> 16) & 0xFFFF
    pos = 0
    n = len(data)
    while pos < n:
        chunk = data[pos : pos + _NMAX]
        pos += _NMAX
        for byte in chunk:
            a += byte
            b += a
        a %= _MOD
        b %= _MOD
    return (b << 16) | a
