"""LSB-first bit stream reader/writer (RFC 1951 packing).

DEFLATE packs data elements starting from the least-significant bit of
each byte, while Huffman codes are packed starting from the
most-significant bit *of the code* (i.e. the code must be bit-reversed
before LSB-first emission; the decoder tables in :mod:`repro.deflate.huffman`
are built over reversed patterns so the reader side never reverses).

:class:`BitReader` supports addressing arbitrary *bit* positions, which
is what makes exhaustive block-start probing (Section VI-A of the paper)
possible: a probe simply constructs a reader at bit offset ``b`` and
attempts to decode a block.

Performance notes (this is the innermost layer of a pure-Python inflate):

* the reader keeps up to 64 buffered bits in a Python int and refills
  in bulk (up to 8 bytes per ``int.from_bytes`` call), so a single
  refill from any buffer level tops the buffer up to at least 57 bits
  whenever that much data remains — one refill per DEFLATE symbol
  (litlen code + extra + dist code + extra needs at most 48 bits);
* hot loops in :mod:`repro.deflate.inflate` and
  :mod:`repro.core.marker_inflate` mirror the ``_data`` / ``_nbytes`` /
  ``_pos`` / ``_bitbuf`` / ``_bitcount`` attributes into locals, run the
  same refill arithmetic inline, and write the attributes back before
  returning or raising — the attributes are a stable, documented
  internal API and ``tell_bits`` arithmetic
  (``8 * _pos - _bitcount``) must keep holding;
* peeking past the end of the stream zero-pads (like zlib), but
  *consuming* past the end raises :class:`~repro.errors.BitstreamError`.
"""

from __future__ import annotations

from repro.errors import BitstreamError
from repro.units import BitOffset

__all__ = ["BitReader", "BitWriter", "reverse_bits"]


def reverse_bits(value: int, width: int) -> int:
    """Reverse the lowest ``width`` bits of ``value``.

    Used to convert canonical (MSB-first) Huffman codes into the
    LSB-first patterns that appear in the byte stream.
    """
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


class BitReader:
    """Read bits LSB-first from a ``bytes``-like object.

    Parameters
    ----------
    data:
        The underlying byte buffer (``bytes``, ``bytearray`` or
        ``memoryview``).  It is not copied.
    start_bit:
        Absolute bit offset at which reading starts (bit 0 is the
        least-significant bit of ``data[0]``).
    """

    __slots__ = ("_data", "_nbytes", "_pos", "_bitbuf", "_bitcount", "_total_bits")

    def __init__(self, data, start_bit: BitOffset = BitOffset(0)) -> None:
        if isinstance(data, memoryview):
            data = data.tobytes()
        self._data = data
        self._nbytes = len(data)
        self._total_bits = 8 * self._nbytes
        if start_bit < 0 or start_bit > self._total_bits:
            raise BitstreamError(
                f"start_bit {start_bit} outside stream of {self._total_bits} bits",
                bit_offset=start_bit,
                stage="bitio",
            )
        self._pos = start_bit >> 3
        self._bitbuf = 0
        self._bitcount = 0
        skew = start_bit & 7
        if skew:
            self._refill()
            # Drop the bits below the requested offset.
            self._bitbuf >>= skew
            self._bitcount -= skew

    # -- position ----------------------------------------------------------

    @property
    def total_bits(self) -> BitOffset:
        """Total number of bits in the underlying buffer."""
        return self._total_bits

    def tell_bits(self) -> BitOffset:
        """Absolute bit position of the next unread bit."""
        return BitOffset(8 * self._pos - self._bitcount)

    def bits_remaining(self) -> BitOffset:
        """Number of bits between the cursor and the end of the buffer."""
        return self._total_bits - self.tell_bits()

    # -- refill ------------------------------------------------------------

    def _refill(self) -> None:
        """Bulk-refill the bit buffer to >= 57 bits (or to end of data).

        One call accumulates as many whole bytes as fit under the 64-bit
        ceiling, so any ``read``/``peek`` of up to 57 bits is satisfied
        by a single refill while data remains.  (The previous 63-bit
        ceiling could leave only 56 bits after a refill from empty,
        making ``peek(57)`` silently zero-pad mid-stream.)
        """
        pos = self._pos
        data = self._data
        n = self._nbytes
        bitcount = self._bitcount
        bitbuf = self._bitbuf
        take = min((64 - bitcount) >> 3, n - pos)
        if take > 0:
            chunk = int.from_bytes(data[pos : pos + take], "little")
            bitbuf |= chunk << bitcount
            bitcount += take << 3
            pos += take
        self._pos = pos
        self._bitbuf = bitbuf
        self._bitcount = bitcount

    # -- core operations ----------------------------------------------------

    def peek(self, nbits: int) -> int:
        """Return the next ``nbits`` bits (``nbits <= 57``) without consuming.

        Bits beyond the end of the stream read as zero (the caller is
        responsible for not *consuming* them): with ``k ==
        bits_remaining() < nbits`` the low ``k`` bits are real data and
        bits ``k..nbits-1`` are zero.  This is what lets the block-start
        probes in :mod:`repro.core.sync` / :mod:`repro.core.guess` peek
        a full decode-table window past the last block without
        special-casing the tail.
        """
        if self._bitcount < nbits:
            self._refill()
        return self._bitbuf & ((1 << nbits) - 1)

    def consume(self, nbits: int) -> None:
        """Discard ``nbits`` bits (which must have been peeked)."""
        if nbits > self._bitcount:
            # peek() zero-padded past the end; consuming that far is an error
            if nbits > self._bitcount + 8 * (self._nbytes - self._pos):
                raise BitstreamError(
                    "consumed past end of bit stream", bit_offset=self.tell_bits(),
                    stage="bitio",
                )
            self._refill()
        self._bitbuf >>= nbits
        self._bitcount -= nbits

    def read(self, nbits: int) -> int:
        """Read and consume ``nbits`` bits (0 <= nbits <= 57)."""
        if self._bitcount < nbits:
            self._refill()
            if self._bitcount < nbits:
                raise BitstreamError(
                    f"requested {nbits} bits with only {self._bitcount} available",
                    bit_offset=self.tell_bits(),
                    stage="bitio",
                )
        value = self._bitbuf & ((1 << nbits) - 1)
        self._bitbuf >>= nbits
        self._bitcount -= nbits
        return value

    def align_to_byte(self) -> None:
        """Discard bits up to the next byte boundary."""
        drop = self.tell_bits() & 7
        if drop:
            self.consume(8 - drop)

    def read_bytes(self, nbytes: int) -> bytes:
        """Read ``nbytes`` aligned bytes (the cursor must be byte-aligned)."""
        if self.tell_bits() & 7:
            raise BitstreamError(
                "read_bytes requires byte alignment", bit_offset=self.tell_bits(),
                stage="bitio",
            )
        # Flush buffered whole bytes back into a byte position.
        start = self.tell_bits() >> 3
        end = start + nbytes
        if end > self._nbytes:
            raise BitstreamError(
                "read_bytes past end of stream", bit_offset=self.tell_bits(),
                stage="bitio",
            )
        out = self._data[start:end]
        # Re-seat the cursor after the raw bytes.
        self._pos = end
        self._bitbuf = 0
        self._bitcount = 0
        return bytes(out)

    def seek_bits(self, bit_offset: BitOffset) -> None:
        """Reposition the cursor at an absolute bit offset."""
        if bit_offset < 0 or bit_offset > self._total_bits:
            raise BitstreamError(
                f"seek to {bit_offset} outside stream", bit_offset=bit_offset,
                stage="bitio",
            )
        self._pos = bit_offset >> 3
        self._bitbuf = 0
        self._bitcount = 0
        skew = bit_offset & 7
        if skew:
            self._refill()
            self._bitbuf >>= skew
            self._bitcount -= skew


class BitWriter:
    """Accumulate bits LSB-first into a growable byte buffer."""

    __slots__ = ("_out", "_bitbuf", "_bitcount")

    def __init__(self) -> None:
        self._out = bytearray()
        self._bitbuf = 0
        self._bitcount = 0

    def write(self, value: int, nbits: int) -> None:
        """Append the lowest ``nbits`` bits of ``value``."""
        if nbits < 0 or value >> nbits:
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        self._bitbuf |= value << self._bitcount
        self._bitcount += nbits
        while self._bitcount >= 8:
            self._out.append(self._bitbuf & 0xFF)
            self._bitbuf >>= 8
            self._bitcount -= 8

    def write_reversed(self, code: int, nbits: int) -> None:
        """Append a canonical Huffman code (MSB-first semantics)."""
        self.write(reverse_bits(code, nbits), nbits)

    def align_to_byte(self, fill: int = 0) -> None:
        """Pad with ``fill`` bits (0 or 1) to the next byte boundary."""
        if self._bitcount:
            pad = 8 - self._bitcount
            self.write((1 << pad) - 1 if fill else 0, pad)

    def write_bytes(self, data: bytes) -> None:
        """Append raw bytes (the cursor must be byte-aligned)."""
        if self._bitcount:
            raise ValueError("write_bytes requires byte alignment")
        self._out += data

    def tell_bits(self) -> BitOffset:
        """Number of bits written so far."""
        return BitOffset(8 * len(self._out) + self._bitcount)

    def getvalue(self) -> bytes:
        """Return the written stream, zero-padding the final partial byte."""
        out = bytes(self._out)
        if self._bitcount:
            out += bytes([self._bitbuf & 0xFF])
        return out
