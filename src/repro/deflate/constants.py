"""DEFLATE (RFC 1951) constant tables.

All tables here are module-level immutables shared by the compressor,
the strict decompressor, and the marker-domain decompressor.  NumPy
copies of the hot tables are provided for vectorised decoding paths.
"""

from __future__ import annotations

import numpy as np

# ---------------------------------------------------------------------------
# Window / match geometry
# ---------------------------------------------------------------------------

#: LZ77 sliding-window size (the "context" of the paper): 32 KiB.
WINDOW_SIZE = 32768

#: Shortest match DEFLATE can encode.
MIN_MATCH = 3

#: Longest match DEFLATE can encode.
MAX_MATCH = 258

#: The two-byte gzip member magic (RFC 1952): ``\\x1f\\x8b``.
GZIP_MAGIC = b"\x1f\x8b"

# ---------------------------------------------------------------------------
# Block types (2-bit BTYPE field)
# ---------------------------------------------------------------------------

BTYPE_STORED = 0
BTYPE_FIXED = 1
BTYPE_DYNAMIC = 2
BTYPE_RESERVED = 3  # invalid; probing rejects immediately

# ---------------------------------------------------------------------------
# Literal/length alphabet (symbols 0..287)
# ---------------------------------------------------------------------------

#: End-of-block symbol in the literal/length alphabet.
END_OF_BLOCK = 256

#: Number of literal/length symbols actually usable (285 is the last
#: length code; 286/287 participate in fixed-code construction only).
NUM_LITLEN_SYMBOLS = 288
MAX_USED_LITLEN = 285

#: Number of distance symbols (codes 30/31 are invalid in a stream).
NUM_DIST_SYMBOLS = 32
MAX_USED_DIST = 29

#: Dynamic-header caps (RFC 1951 section 3.2.7): HLIT encodes
#: ``hlit - 257`` in 5 bits but only values up to 286 are legal, and
#: HDIST likewise tops out at 30 usable codes.
MAX_HLIT = 286
MAX_HDIST = 30

#: Maximum Huffman code length for litlen/dist alphabets.
MAX_CODE_BITS = 15

#: Maximum Huffman code length for the code-length alphabet.
MAX_CODELEN_BITS = 7

# Length codes 257..285: (extra_bits, base_length).
# RFC 1951 section 3.2.5.
LENGTH_EXTRA_BITS = (
    0, 0, 0, 0, 0, 0, 0, 0,  # 257-264
    1, 1, 1, 1,              # 265-268
    2, 2, 2, 2,              # 269-272
    3, 3, 3, 3,              # 273-276
    4, 4, 4, 4,              # 277-280
    5, 5, 5, 5,              # 281-284
    0,                       # 285
)

LENGTH_BASE = (
    3, 4, 5, 6, 7, 8, 9, 10,
    11, 13, 15, 17,
    19, 23, 27, 31,
    35, 43, 51, 59,
    67, 83, 99, 115,
    131, 163, 195, 227,
    258,
)

# Distance codes 0..29: (extra_bits, base_distance).
DIST_EXTRA_BITS = (
    0, 0, 0, 0,
    1, 1, 2, 2,
    3, 3, 4, 4,
    5, 5, 6, 6,
    7, 7, 8, 8,
    9, 9, 10, 10,
    11, 11, 12, 12,
    13, 13,
)

DIST_BASE = (
    1, 2, 3, 4,
    5, 7, 9, 13,
    17, 25, 33, 49,
    65, 97, 129, 193,
    257, 385, 513, 769,
    1025, 1537, 2049, 3073,
    4097, 6145, 8193, 12289,
    16385, 24577,
)

#: Order in which code lengths for the code-length alphabet are stored
#: in a dynamic block header (RFC 1951 section 3.2.7).
CODELEN_ORDER = (16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15)

#: Code-length alphabet repeat symbols.
CLEN_COPY_PREV = 16   # copy previous length 3-6 times, 2 extra bits
CLEN_ZERO_SHORT = 17  # 3-10 zeros, 3 extra bits
CLEN_ZERO_LONG = 18   # 11-138 zeros, 7 extra bits

# ---------------------------------------------------------------------------
# Fixed Huffman code lengths (RFC 1951 section 3.2.6)
# ---------------------------------------------------------------------------


def fixed_litlen_lengths() -> tuple[int, ...]:
    """Code lengths of the fixed literal/length Huffman code."""
    lengths = [8] * 144 + [9] * 112 + [7] * 24 + [8] * 8
    return tuple(lengths)


def fixed_dist_lengths() -> tuple[int, ...]:
    """Code lengths of the fixed distance code (5 bits for all 32 symbols)."""
    return (5,) * NUM_DIST_SYMBOLS


# ---------------------------------------------------------------------------
# Length -> length-code lookup (for the compressor)
# ---------------------------------------------------------------------------


def _build_length_to_code() -> np.ndarray:
    table = np.zeros(MAX_MATCH + 1, dtype=np.int16)
    for code_index in range(len(LENGTH_BASE) - 1, -1, -1):
        base = LENGTH_BASE[code_index]
        extra = LENGTH_EXTRA_BITS[code_index]
        hi = min(base + (1 << extra) - 1, MAX_MATCH)
        table[base : hi + 1] = 257 + code_index
    # Length 258 is always code 285 (code 284's extra range would also
    # reach it, but 285 encodes it with zero extra bits).
    table[MAX_MATCH] = 285
    return table


def _build_dist_to_code() -> np.ndarray:
    table = np.zeros(WINDOW_SIZE + 1, dtype=np.int16)
    for code_index in range(len(DIST_BASE)):
        base = DIST_BASE[code_index]
        extra = DIST_EXTRA_BITS[code_index]
        hi = min(base + (1 << extra) - 1, WINDOW_SIZE)
        table[base : hi + 1] = code_index
    return table


#: ``LENGTH_TO_CODE[length]`` -> literal/length symbol (257..285), for
#: lengths in [3, 258].
LENGTH_TO_CODE = _build_length_to_code()
LENGTH_TO_CODE.setflags(write=False)

#: ``DIST_TO_CODE[distance]`` -> distance symbol (0..29), for distances
#: in [1, 32768].
DIST_TO_CODE = _build_dist_to_code()
DIST_TO_CODE.setflags(write=False)

# NumPy views of the decode-side tables (int32, indexed by code - 257 /
# dist code), used in the inflate hot loop.
LENGTH_BASE_NP = np.asarray(LENGTH_BASE, dtype=np.int32)
LENGTH_EXTRA_NP = np.asarray(LENGTH_EXTRA_BITS, dtype=np.int32)
DIST_BASE_NP = np.asarray(DIST_BASE, dtype=np.int32)
DIST_EXTRA_NP = np.asarray(DIST_EXTRA_BITS, dtype=np.int32)
for _arr in (LENGTH_BASE_NP, LENGTH_EXTRA_NP, DIST_BASE_NP, DIST_EXTRA_NP):
    _arr.setflags(write=False)

# ---------------------------------------------------------------------------
# Strict (probing) decode limits — Appendix X-A of the paper
# ---------------------------------------------------------------------------

#: A plausible decompressed block is at least this large...
PROBE_MIN_BLOCK = 1024

#: ...and at most this large.
PROBE_MAX_BLOCK = 4 * 1024 * 1024

#: Bytes accepted by the "valid ASCII" probing check: TAB, LF, CR and
#: the printable range.  (The paper targets ASCII text files.)
ASCII_ALLOWED = frozenset({9, 10, 13}) | set(range(32, 127))


def ascii_allowed_mask() -> np.ndarray:
    """Boolean mask of length 256, ``True`` for probe-acceptable bytes."""
    mask = np.zeros(256, dtype=bool)
    for b in ASCII_ALLOWED:
        mask[b] = True
    return mask


ASCII_MASK = ascii_allowed_mask()
ASCII_MASK.setflags(write=False)
