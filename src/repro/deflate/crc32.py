"""CRC-32 (gzip / RFC 1952 polynomial), implemented from scratch.

Provides the incremental table-driven computation used by the gzip
container code, plus ``crc32_combine`` — the GF(2) trick that lets the
parallel decompressor compute per-chunk CRCs independently and stitch
them together afterwards.  (The paper's pugz implementation skips CRC
verification entirely; supporting it in parallel is one of the
extensions this reproduction adds, see DESIGN.md.)
"""

from __future__ import annotations

__all__ = ["crc32", "crc32_combine", "Crc32"]

_POLY = 0xEDB88320  # reflected CRC-32 polynomial


def _make_table() -> tuple[int, ...]:
    table = []
    for n in range(256):
        c = n
        for _ in range(8):
            c = (c >> 1) ^ _POLY if c & 1 else c >> 1
        table.append(c)
    return tuple(table)


_TABLE = _make_table()


def crc32(data: bytes, crc: int = 0) -> int:
    """Update ``crc`` with ``data`` and return the new CRC-32 value.

    ``crc32(b"") == 0`` and chaining matches :func:`zlib.crc32` exactly
    (verified by the test suite).
    """
    table = _TABLE
    c = crc ^ 0xFFFFFFFF
    for byte in data:
        c = table[(c ^ byte) & 0xFF] ^ (c >> 8)
    return c ^ 0xFFFFFFFF


class Crc32:
    """Incremental CRC-32 accumulator with a file-like ``update`` API."""

    __slots__ = ("_crc", "_length")

    def __init__(self) -> None:
        self._crc = 0
        self._length = 0

    def update(self, data: bytes) -> None:
        """Fold ``data`` into the running checksum."""
        self._crc = crc32(data, self._crc)
        self._length += len(data)

    @property
    def value(self) -> int:
        """Current CRC-32 of all data seen so far."""
        return self._crc

    @property
    def length(self) -> int:
        """Total number of bytes folded in."""
        return self._length


# ---------------------------------------------------------------------------
# CRC combination (zlib's crc32_combine algorithm)
# ---------------------------------------------------------------------------

_GF2_DIM = 32


def _gf2_matrix_times(mat: list[int], vec: int) -> int:
    total = 0
    i = 0
    while vec:
        if vec & 1:
            total ^= mat[i]
        vec >>= 1
        i += 1
    return total


def _gf2_matrix_square(square: list[int], mat: list[int]) -> None:
    for n in range(_GF2_DIM):
        square[n] = _gf2_matrix_times(mat, mat[n])


def crc32_combine(crc1: int, crc2: int, len2: int) -> int:
    """Combine two CRCs: ``crc32_combine(crc(A), crc(B), len(B)) == crc(A+B)``.

    This makes CRC verification embarrassingly parallel: each thread of
    the two-pass decompressor checksums only its own chunk, and the
    combiner runs in O(n log len) at the end.
    """
    if len2 <= 0:
        return crc1

    even = [0] * _GF2_DIM  # even-power-of-two zero operators
    odd = [0] * _GF2_DIM   # odd-power-of-two zero operators

    # Put operator for one zero bit in odd.
    odd[0] = _POLY
    row = 1
    for n in range(1, _GF2_DIM):
        odd[n] = row
        row = (row << 1) & 0xFFFFFFFF

    # Operator for two zero bits, then four.
    _gf2_matrix_square(even, odd)
    _gf2_matrix_square(odd, even)

    # Apply len2 zeros to crc1 (first square puts operator for one zero
    # byte, eight zero bits, in even).
    while True:
        _gf2_matrix_square(even, odd)
        if len2 & 1:
            crc1 = _gf2_matrix_times(even, crc1)
        len2 >>= 1
        if len2 == 0:
            break
        _gf2_matrix_square(odd, even)
        if len2 & 1:
            crc1 = _gf2_matrix_times(odd, crc1)
        len2 >>= 1
        if len2 == 0:
            break

    return crc1 ^ crc2
