"""DEFLATE compression (RFC 1951): entropy coding and block emission.

Combines the LZ77 token stream from :mod:`repro.deflate.lz77` with
Huffman coding into a standards-compliant DEFLATE stream.  Per block it
chooses the cheapest of the three block types (stored / fixed / dynamic)
by exact bit-cost computation, like zlib's ``_tr_flush_block``.

The output interoperates with every other DEFLATE implementation: the
test suite round-trips ours -> zlib and zlib -> ours on random, DNA and
FASTQ data at every level.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.deflate import constants as C
from repro.deflate.bitio import BitWriter
from repro.deflate.gzipfmt import gzip_wrap, zlib_wrap
from repro.deflate.huffman import HuffmanEncoder, limited_code_lengths
from repro.deflate.lz77 import parse_lz77
from repro.deflate.tokens import TokenStream

__all__ = [
    "deflate_compress",
    "compress_tokens",
    "gzip_compress",
    "zlib_compress",
]

#: Tokens per block, mirroring zlib's 16 KiB ``lit_bufsize``.
DEFAULT_BLOCK_TOKENS = 16384

_FIXED_LITLEN_ENC = HuffmanEncoder(C.fixed_litlen_lengths())
_FIXED_DIST_ENC = HuffmanEncoder(C.fixed_dist_lengths())

_STORED_MAX = 65535


# ---------------------------------------------------------------------------
# Frequency accounting
# ---------------------------------------------------------------------------


def _token_frequencies(tokens: TokenStream, start: int, end: int) -> tuple[list[int], list[int]]:
    """Litlen / distance symbol frequencies for tokens[start:end]."""
    lit_freq = [0] * C.NUM_LITLEN_SYMBOLS
    dist_freq = [0] * C.NUM_DIST_SYMBOLS
    length_to_code = C.LENGTH_TO_CODE
    dist_to_code = C.DIST_TO_CODE
    offs, vals = tokens.lists()
    for i in range(start, end):
        off = offs[i]
        if off == 0:
            lit_freq[vals[i]] += 1
        else:
            lit_freq[length_to_code[vals[i]]] += 1
            dist_freq[dist_to_code[off]] += 1
    lit_freq[C.END_OF_BLOCK] += 1
    return lit_freq, dist_freq


def _body_cost_bits(lit_freq, dist_freq, lit_lengths, dist_lengths) -> int:
    """Encoded size of the block body (symbols + extra bits)."""
    bits = 0
    for sym, f in enumerate(lit_freq):
        if not f:
            continue
        l = lit_lengths[sym]
        if l == 0:
            return 1 << 60  # unencodable under this code
        bits += f * l
        if sym > C.END_OF_BLOCK:
            bits += f * C.LENGTH_EXTRA_BITS[sym - 257]
    for sym, f in enumerate(dist_freq):
        if not f:
            continue
        l = dist_lengths[sym]
        if l == 0:
            return 1 << 60
        bits += f * l
        bits += f * C.DIST_EXTRA_BITS[sym]
    return bits


# ---------------------------------------------------------------------------
# Code-length RLE (dynamic block preamble)
# ---------------------------------------------------------------------------


def _rle_code_lengths(lengths: list[int]) -> list[tuple[int, int]]:
    """Encode a code-length sequence as (symbol, extra_value) ops.

    Symbols 0-15 carry no extra value (-1); 16/17/18 carry their repeat
    count encoding.  Mirrors zlib's ``scan_tree``/``send_tree`` pair.
    """
    ops: list[tuple[int, int]] = []
    n = len(lengths)
    i = 0
    prev = -1
    while i < n:
        cur = lengths[i]
        run = 1
        while i + run < n and lengths[i + run] == cur:
            run += 1
        if cur == 0:
            left = run
            while left >= 11:
                take = min(left, 138)
                ops.append((C.CLEN_ZERO_LONG, take - 11))
                left -= take
            if left >= 3:
                ops.append((C.CLEN_ZERO_SHORT, left - 3))
                left = 0
            while left:
                ops.append((0, -1))
                left -= 1
        else:
            left = run
            if cur != prev:
                ops.append((cur, -1))
                left -= 1
            while left >= 3:
                take = min(left, 6)
                ops.append((C.CLEN_COPY_PREV, take - 3))
                left -= take
            while left:
                ops.append((cur, -1))
                left -= 1
        prev = cur
        i += run
    return ops


_CLEN_EXTRA = {C.CLEN_COPY_PREV: 2, C.CLEN_ZERO_SHORT: 3, C.CLEN_ZERO_LONG: 7}


@dataclass
class _DynamicHeader:
    """Everything needed to emit (and cost) a dynamic block preamble."""

    hlit: int
    hdist: int
    hclen: int
    clen_lengths: list[int]
    ops: list[tuple[int, int]]
    header_bits: int


def _build_dynamic_header(lit_lengths: list[int], dist_lengths: list[int]) -> _DynamicHeader:
    hlit = max(257, _last_nonzero(lit_lengths) + 1)
    hdist = max(1, _last_nonzero(dist_lengths) + 1)
    ops = _rle_code_lengths(lit_lengths[:hlit] + dist_lengths[:hdist])

    clen_freq = [0] * 19
    for sym, _ in ops:
        clen_freq[sym] += 1
    clen_lengths = limited_code_lengths(clen_freq, C.MAX_CODELEN_BITS)
    # The code-length code must contain at least one symbol; a single
    # used symbol gets length 1 from limited_code_lengths already.

    hclen = 19
    while hclen > 4 and clen_lengths[C.CODELEN_ORDER[hclen - 1]] == 0:
        hclen -= 1

    header_bits = 5 + 5 + 4 + 3 * hclen
    for sym, _ in ops:
        header_bits += clen_lengths[sym]
        header_bits += _CLEN_EXTRA.get(sym, 0)
    return _DynamicHeader(hlit, hdist, hclen, clen_lengths, ops, header_bits)


def _last_nonzero(lengths: list[int]) -> int:
    for i in range(len(lengths) - 1, -1, -1):
        if lengths[i]:
            return i
    return -1


# ---------------------------------------------------------------------------
# Block emission
# ---------------------------------------------------------------------------


def _emit_stored(writer: BitWriter, chunk: bytes, bfinal: bool) -> None:
    offset = 0
    n = len(chunk)
    first = True
    # An empty block still needs a header (e.g. empty input).
    while first or offset < n:
        first = False
        take = min(n - offset, _STORED_MAX)
        last = bfinal and offset + take >= n
        writer.write(1 if last else 0, 1)
        writer.write(C.BTYPE_STORED, 2)
        writer.align_to_byte()
        writer.write(take, 16)
        writer.write(take ^ 0xFFFF, 16)
        writer.write_bytes(chunk[offset : offset + take])
        offset += take


def _emit_tokens(
    writer: BitWriter,
    tokens: TokenStream,
    start: int,
    end: int,
    lit_enc: HuffmanEncoder,
    dist_enc: HuffmanEncoder | None,
) -> None:
    offs, vals = tokens.lists()
    length_to_code = C.LENGTH_TO_CODE
    dist_to_code = C.DIST_TO_CODE
    lbase = C.LENGTH_BASE
    lextra = C.LENGTH_EXTRA_BITS
    dbase = C.DIST_BASE
    dextra = C.DIST_EXTRA_BITS
    lit_lengths = lit_enc.lengths
    lit_codes = lit_enc.reversed_codes
    write = writer.write
    for i in range(start, end):
        off = offs[i]
        if off == 0:
            sym = vals[i]
            write(lit_codes[sym], lit_lengths[sym])
        else:
            length = vals[i]
            sym = int(length_to_code[length])
            write(lit_codes[sym], lit_lengths[sym])
            extra = lextra[sym - 257]
            if extra:
                write(length - lbase[sym - 257], extra)
            dsym = int(dist_to_code[off])
            dist_enc.write(writer, dsym)
            dex = dextra[dsym]
            if dex:
                write(off - dbase[dsym], dex)
    lit_enc.write(writer, C.END_OF_BLOCK)


def _emit_dynamic_header(writer: BitWriter, hdr: _DynamicHeader) -> None:
    writer.write(hdr.hlit - 257, 5)
    writer.write(hdr.hdist - 1, 5)
    writer.write(hdr.hclen - 4, 4)
    for i in range(hdr.hclen):
        writer.write(hdr.clen_lengths[C.CODELEN_ORDER[i]], 3)
    clen_enc = HuffmanEncoder(hdr.clen_lengths)
    for sym, extra_val in hdr.ops:
        clen_enc.write(writer, sym)
        extra_bits = _CLEN_EXTRA.get(sym, 0)
        if extra_bits:
            writer.write(extra_val, extra_bits)


def _flush_block(
    writer: BitWriter,
    tokens: TokenStream,
    start: int,
    end: int,
    raw: bytes,
    bfinal: bool,
) -> None:
    """Emit tokens[start:end] as the cheapest block type.

    ``raw`` holds the uncompressed bytes the tokens expand to (needed
    for the stored-block fallback and its cost).
    """
    lit_freq, dist_freq = _token_frequencies(tokens, start, end)

    lit_lengths = limited_code_lengths(lit_freq, C.MAX_CODE_BITS)
    if sum(1 for l in lit_lengths if l) < 2:
        # A litlen code must be complete; pad a degenerate one-symbol
        # code (only the end-of-block symbol used) to two 1-bit codes.
        lit_lengths[0 if lit_lengths[0] == 0 else 1] = 1
        lit_lengths[C.END_OF_BLOCK] = 1
    dist_lengths = limited_code_lengths(dist_freq, C.MAX_CODE_BITS)
    if not any(dist_lengths):
        # zlib always declares at least one distance code.
        dist_lengths[0] = 1

    hdr = _build_dynamic_header(lit_lengths, dist_lengths)
    dynamic_cost = hdr.header_bits + _body_cost_bits(
        lit_freq, dist_freq, lit_lengths, dist_lengths
    )
    fixed_cost = _body_cost_bits(
        lit_freq, dist_freq, _FIXED_LITLEN_ENC.lengths, _FIXED_DIST_ENC.lengths
    )
    align = (-(writer.tell_bits() + 3)) % 8
    n_stored_blocks = max(1, -(-len(raw) // _STORED_MAX))
    stored_cost = 3 + align + 40 * n_stored_blocks + 8 * len(raw)

    if stored_cost < dynamic_cost + 3 and stored_cost < fixed_cost + 3:
        _emit_stored(writer, raw, bfinal)
        return

    writer.write(1 if bfinal else 0, 1)
    if dynamic_cost < fixed_cost:
        writer.write(C.BTYPE_DYNAMIC, 2)
        _emit_dynamic_header(writer, hdr)
        lit_enc = HuffmanEncoder(lit_lengths)
        dist_enc = HuffmanEncoder(dist_lengths)
    else:
        writer.write(C.BTYPE_FIXED, 2)
        lit_enc = _FIXED_LITLEN_ENC
        dist_enc = _FIXED_DIST_ENC
    _emit_tokens(writer, tokens, start, end, lit_enc, dist_enc)


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def compress_tokens(
    data: bytes,
    tokens: TokenStream,
    block_tokens: int = DEFAULT_BLOCK_TOKENS,
    bfinal: bool = True,
    sync_flush: bool = False,
) -> bytes:
    """Entropy-code a pre-parsed token stream into a raw DEFLATE stream.

    ``data`` holds exactly the bytes the tokens expand to.
    ``bfinal=False`` leaves the stream open (no final-block flag);
    ``sync_flush=True`` appends an empty stored block, byte-aligning
    the output so independently produced fragments can be concatenated
    — zlib's ``Z_SYNC_FLUSH``, the mechanism pigz uses to parallelise
    compression.
    """
    writer = BitWriter()
    n = len(tokens)
    if n == 0:
        if bfinal:
            _emit_stored(writer, b"", bfinal=True)
        elif sync_flush:
            _emit_stored(writer, b"", bfinal=False)
        return writer.getvalue()

    # Byte offset in `data` at which each block starts (for stored fallback).
    start = 0
    byte_pos = 0
    offs, vals = tokens.lists()
    while start < n:
        end = min(start + block_tokens, n)
        block_bytes = 0
        for i in range(start, end):
            block_bytes += 1 if offs[i] == 0 else vals[i]
        raw = data[byte_pos : byte_pos + block_bytes]
        _flush_block(writer, tokens, start, end, raw, bfinal=(end == n and bfinal))
        byte_pos += block_bytes
        start = end
    if sync_flush and not bfinal:
        # Empty stored block: 3-bit header + padding + LEN/NLEN, which
        # leaves the writer byte-aligned.
        _emit_stored(writer, b"", bfinal=False)
    return writer.getvalue()


def deflate_compress(
    data: bytes,
    level: int = 6,
    block_tokens: int = DEFAULT_BLOCK_TOKENS,
    min_match: int = 3,
) -> bytes:
    """Compress ``data`` into a raw DEFLATE stream at a gzip level (0-9).

    Level 0 stores the data uncompressed (in <=64 KiB stored blocks);
    levels 1-3 use greedy parsing, 4-9 lazy parsing, matching gzip.
    ``min_match`` > 3 selects the weak-compressor (igzip-style) persona
    of :class:`repro.deflate.lz77.Lz77Parser`.
    """
    data = bytes(data)
    if level == 0:
        writer = BitWriter()
        _emit_stored(writer, data, bfinal=True)
        return writer.getvalue()
    tokens = parse_lz77(data, level, min_match=min_match)
    return compress_tokens(data, tokens, block_tokens)


def gzip_compress(
    data: bytes,
    level: int = 6,
    mtime: int = 0,
    filename: bytes | None = None,
    block_tokens: int = DEFAULT_BLOCK_TOKENS,
    min_match: int = 3,
) -> bytes:
    """Compress ``data`` into a single-member gzip file."""
    payload = deflate_compress(data, level, block_tokens, min_match=min_match)
    return gzip_wrap(payload, data, mtime=mtime, filename=filename, level_hint=level)


def zlib_compress(data: bytes, level: int = 6, block_tokens: int = DEFAULT_BLOCK_TOKENS) -> bytes:
    """Compress ``data`` into a zlib (RFC 1950) stream."""
    payload = deflate_compress(data, level, block_tokens)
    return zlib_wrap(payload, data, level_hint=level)
