"""gzip (RFC 1952) and zlib (RFC 1950) container framing.

The parallel decompressor operates on the *raw DEFLATE payload* inside
a gzip member; this module locates that payload (:func:`member_payload`),
builds and verifies containers around our own compressor/decompressor,
and understands multi-member ("blocked") gzip files — the bgzip-style
files the paper's related-work section discusses.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.deflate.adler import adler32
from repro.deflate.constants import GZIP_MAGIC as _GZIP_MAGIC
from repro.deflate.crc32 import crc32
from repro.deflate.inflate import InflateResult, inflate
from repro.errors import GzipFormatError
from repro.units import BitOffset, ByteOffset

__all__ = [
    "GzipMember",
    "parse_gzip_header",
    "gzip_wrap",
    "gzip_unwrap",
    "split_members",
    "member_payload",
    "zlib_wrap",
    "zlib_unwrap",
]

_CM_DEFLATE = 8

FTEXT = 1
FHCRC = 2
FEXTRA = 4
FNAME = 8
FCOMMENT = 16


@dataclass
class GzipMember:
    """One member of a gzip file.

    ``payload_start``/``payload_end`` delimit the raw DEFLATE stream in
    bytes; ``crc`` and ``isize`` are the trailer fields.
    """

    header_start: int
    payload_start: int
    payload_end: int
    member_end: int
    crc: int
    isize: int
    flags: int = 0
    mtime: int = 0
    filename: bytes | None = None
    comment: bytes | None = None

    @property
    def payload_start_bit(self) -> BitOffset:
        """Bit offset of the first DEFLATE block header."""
        return BitOffset(8 * self.payload_start)


def parse_gzip_header(data: bytes, offset: ByteOffset = ByteOffset(0)) -> tuple[int, int, int, bytes | None, bytes | None]:
    """Parse one gzip member header at ``offset``.

    Returns ``(payload_start, flags, mtime, filename, comment)``.
    """
    if len(data) - offset < 10:
        raise GzipFormatError(
            "truncated gzip header", bit_offset=8 * offset, stage="container"
        )
    if data[offset : offset + 2] != _GZIP_MAGIC:
        raise GzipFormatError(
            f"bad gzip magic {data[offset:offset+2]!r} at offset {offset}",
            bit_offset=8 * offset,
            stage="container",
        )
    cm = data[offset + 2]
    if cm != _CM_DEFLATE:
        raise GzipFormatError(
            f"unsupported compression method {cm}",
            bit_offset=8 * (offset + 2), stage="container",
        )
    flags = data[offset + 3]
    if flags & 0xE0:
        raise GzipFormatError(
            f"reserved FLG bits set: {flags:#04x}",
            bit_offset=8 * (offset + 3), stage="container",
        )
    mtime = struct.unpack_from("<I", data, offset + 4)[0]
    pos = offset + 10

    if flags & FEXTRA:
        if len(data) - pos < 2:
            raise GzipFormatError(
                "truncated FEXTRA length", bit_offset=8 * pos, stage="container"
            )
        xlen = struct.unpack_from("<H", data, pos)[0]
        pos += 2 + xlen
        if pos > len(data):
            raise GzipFormatError(
                "truncated FEXTRA field", bit_offset=8 * pos, stage="container"
            )

    filename = None
    if flags & FNAME:
        end = data.find(b"\x00", pos)
        if end < 0:
            raise GzipFormatError(
                "unterminated FNAME field", bit_offset=8 * pos, stage="container"
            )
        filename = bytes(data[pos:end])
        pos = end + 1

    comment = None
    if flags & FCOMMENT:
        end = data.find(b"\x00", pos)
        if end < 0:
            raise GzipFormatError(
                "unterminated FCOMMENT field", bit_offset=8 * pos, stage="container"
            )
        comment = bytes(data[pos:end])
        pos = end + 1

    if flags & FHCRC:
        if len(data) - pos < 2:
            raise GzipFormatError(
                "truncated FHCRC field", bit_offset=8 * pos, stage="container"
            )
        stored = struct.unpack_from("<H", data, pos)[0]
        computed = crc32(bytes(data[offset:pos])) & 0xFFFF
        if stored != computed:
            raise GzipFormatError(
                f"header CRC mismatch: stored {stored:#06x}, computed {computed:#06x}",
                bit_offset=8 * pos,
                stage="container",
            )
        pos += 2

    return pos, flags, mtime, filename, comment


def gzip_wrap(
    deflate_payload: bytes,
    uncompressed: bytes,
    mtime: int = 0,
    filename: bytes | None = None,
    level_hint: int = 6,
) -> bytes:
    """Frame a raw DEFLATE payload as a single-member gzip file.

    ``uncompressed`` is needed for the CRC32/ISIZE trailer.  ``level_hint``
    sets the XFL byte the way gzip does (2 = max compression, 4 = fastest).
    """
    flags = FNAME if filename else 0
    xfl = 2 if level_hint >= 9 else (4 if level_hint <= 1 else 0)
    header = _GZIP_MAGIC + bytes([_CM_DEFLATE, flags]) + struct.pack("<I", mtime)
    header += bytes([xfl, 255])  # OS = unknown
    if filename:
        header += filename + b"\x00"
    trailer = struct.pack("<II", crc32(uncompressed), len(uncompressed) & 0xFFFFFFFF)
    return header + deflate_payload + trailer


def member_payload(data: bytes, offset: ByteOffset = ByteOffset(0)) -> GzipMember:
    """Locate the DEFLATE payload of the member starting at ``offset``.

    Decodes the member's blocks (without keeping the output) to find the
    end of the payload, then reads the trailer.  Returns a fully
    populated :class:`GzipMember`.
    """
    payload_start, flags, mtime, filename, comment = parse_gzip_header(data, offset)
    result = inflate(data, start_bit=8 * payload_start)
    if not result.final_seen:
        raise GzipFormatError(
            "member payload ended without a final block",
            bit_offset=result.end_bit,
            stage="inflate",
        )
    payload_end = (result.end_bit + 7) // 8
    if len(data) - payload_end < 8:
        raise GzipFormatError(
            "truncated gzip trailer", bit_offset=8 * payload_end, stage="trailer"
        )
    crc, isize = struct.unpack_from("<II", data, payload_end)
    return GzipMember(
        header_start=offset,
        payload_start=payload_start,
        payload_end=payload_end,
        member_end=payload_end + 8,
        crc=crc,
        isize=isize,
        flags=flags,
        mtime=mtime,
        filename=filename,
        comment=comment,
    )


def split_members(data: bytes) -> list[GzipMember]:
    """Enumerate all members of a (possibly multi-member) gzip file."""
    members = []
    offset = 0
    while offset < len(data):
        member = member_payload(data, offset)
        members.append(member)
        offset = member.member_end
    return members


def gzip_unwrap(data: bytes, verify: bool = True, kernel=None) -> bytes:
    """Decompress a gzip file (all members) with our own inflate.

    With ``verify=True`` the CRC32 and ISIZE trailer fields of every
    member are checked.  ``kernel`` selects the decode kernel (see
    :mod:`repro.perf.kernels`); output is kernel-independent.
    """
    out = bytearray()
    offset = 0
    while offset < len(data):
        payload_start, *_ = parse_gzip_header(data, offset)
        result = inflate(data, start_bit=8 * payload_start, kernel=kernel)
        if not result.final_seen:
            raise GzipFormatError(
            "member payload ended without a final block",
            bit_offset=result.end_bit,
            stage="inflate",
        )
        payload_end = (result.end_bit + 7) // 8
        if len(data) - payload_end < 8:
            raise GzipFormatError(
            "truncated gzip trailer", bit_offset=8 * payload_end, stage="trailer"
        )
        crc, isize = struct.unpack_from("<II", data, payload_end)
        if verify:
            actual_crc = crc32(result.data)
            if actual_crc != crc:
                raise GzipFormatError(
                    f"CRC mismatch: stored {crc:#010x}, computed {actual_crc:#010x}",
                    bit_offset=8 * payload_end,
                    stage="trailer",
                )
            if isize != len(result.data) & 0xFFFFFFFF:
                raise GzipFormatError(
                    f"ISIZE mismatch: stored {isize}, actual {len(result.data)}",
                    bit_offset=8 * (payload_end + 4),
                    stage="trailer",
                )
        out += result.data
        offset = payload_end + 8
    return bytes(out)


# ---------------------------------------------------------------------------
# zlib container (RFC 1950)
# ---------------------------------------------------------------------------


def zlib_wrap(deflate_payload: bytes, uncompressed: bytes, level_hint: int = 6) -> bytes:
    """Frame a raw DEFLATE payload as a zlib stream."""
    cmf = 0x78  # deflate, 32 KiB window
    flevel = 3 if level_hint >= 7 else (2 if level_hint >= 5 else (1 if level_hint >= 2 else 0))
    flg = flevel << 6
    # FCHECK: make (cmf*256 + flg) divisible by 31.
    rem = (cmf * 256 + flg) % 31
    if rem:
        flg += 31 - rem
    return (
        bytes([cmf, flg])
        + deflate_payload
        + struct.pack(">I", adler32(uncompressed))
    )


def zlib_unwrap(data: bytes, verify: bool = True) -> bytes:
    """Decompress a zlib stream with our own inflate."""
    if len(data) < 6:
        raise GzipFormatError("truncated zlib stream", stage="container")
    cmf, flg = data[0], data[1]
    if cmf & 0x0F != _CM_DEFLATE:
        raise GzipFormatError(
            f"unsupported zlib method {cmf & 0x0F}", stage="container"
        )
    if (cmf * 256 + flg) % 31:
        raise GzipFormatError("zlib header check failed", stage="container")
    if flg & 0x20:
        raise GzipFormatError(
            "preset dictionaries are not supported", stage="container"
        )
    result = inflate(data, start_bit=16)
    if not result.final_seen:
        raise GzipFormatError(
            "zlib payload ended without a final block",
            bit_offset=result.end_bit, stage="inflate",
        )
    end = (result.end_bit + 7) // 8
    if len(data) - end < 4:
        raise GzipFormatError(
            "truncated adler32 trailer", bit_offset=8 * end, stage="trailer"
        )
    stored = struct.unpack_from(">I", data, end)[0]
    if verify and adler32(result.data) != stored:
        raise GzipFormatError(
            "adler32 mismatch", bit_offset=8 * end, stage="trailer"
        )
    return result.data
