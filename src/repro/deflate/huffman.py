"""Canonical Huffman coding for DEFLATE alphabets.

Three pieces live here:

* :func:`canonical_codes` — the RFC 1951 code-assignment algorithm
  (``bl_count`` / ``next_code``) with over/under-subscription checks;
* :class:`HuffmanDecoder` — a flat lookup table indexed by the next
  ``max_bits`` bits of the stream (LSB-first, i.e. over *bit-reversed*
  canonical codes), decoding any symbol with one table load; this is the
  decoder used by both the byte-domain and the marker-domain inflate;
* :func:`limited_code_lengths` — optimal length-limited Huffman code
  construction via the package-merge algorithm, used by the compressor
  (litlen/dist codes are capped at 15 bits, the code-length code at 7).
"""

from __future__ import annotations

from functools import lru_cache

from repro.deflate.bitio import BitReader, reverse_bits
from repro.deflate.constants import MAX_CODE_BITS
from repro.errors import HuffmanError

#: Shared undecodable-window entry (``length == 0``).
_INVALID = (0, 0)

__all__ = [
    "canonical_codes",
    "kraft_sum",
    "HuffmanDecoder",
    "HuffmanEncoder",
    "cached_decoder",
    "limited_code_lengths",
]


def kraft_sum(lengths) -> int:
    """Kraft sum scaled by ``2**max_bits`` over nonzero lengths.

    A complete prefix code over ``max_bits``-bit codes sums to exactly
    ``2**max_bits``; larger means over-subscribed (not a prefix code).
    """
    nonzero = [l for l in lengths if l > 0]
    if not nonzero:
        return 0, 0
    max_bits = max(nonzero)
    if max_bits > MAX_CODE_BITS:
        raise HuffmanError(
            f"code length {max_bits} exceeds the DEFLATE cap", stage="huffman"
        )
    return sum(1 << (max_bits - l) for l in nonzero), max_bits


def canonical_codes(lengths) -> list[int]:
    """Assign canonical (MSB-first) codes to symbols from code lengths.

    Returns a list aligned with ``lengths``; entries for zero-length
    symbols are 0 and must not be used.  Raises
    :class:`~repro.errors.HuffmanError` if the lengths over-subscribe
    the code space.
    """
    lengths = list(lengths)
    if not lengths:
        return []
    max_bits = max(lengths)
    if max_bits == 0:
        return [0] * len(lengths)
    if max_bits > MAX_CODE_BITS:
        raise HuffmanError(
            f"code length {max_bits} exceeds the DEFLATE cap", stage="huffman"
        )

    bl_count = [0] * (max_bits + 1)
    for l in lengths:
        if l < 0:
            raise HuffmanError(f"negative code length {l}", stage="huffman")
        bl_count[l] += 1
    bl_count[0] = 0

    code = 0
    next_code = [0] * (max_bits + 1)
    for bits in range(1, max_bits + 1):
        code = (code + bl_count[bits - 1]) << 1
        next_code[bits] = code
        if code + bl_count[bits] > (1 << bits):
            raise HuffmanError("over-subscribed code lengths", stage="huffman")

    codes = [0] * len(lengths)
    for sym, l in enumerate(lengths):
        if l:
            codes[sym] = next_code[l]
            next_code[l] += 1
    return codes


class HuffmanDecoder:
    """Flat-table decoder for a canonical Huffman code.

    The table maps every possible ``max_bits``-bit LSB-first window of
    the stream to a ``(code_length, symbol)`` tuple; the shared
    ``(0, 0)`` entry marks an undecodable pattern (possible only in
    incomplete — degenerate distance — tables).  Decoding is: peek
    ``max_bits``, index, unpack, consume ``code_length``.  Tuple
    entries unpack in one interpreter op, which is measurably cheaper
    per symbol than the classic ``(sym << 4) | len`` int packing; all
    windows sharing a code reference the *same* tuple, so the table
    costs one tuple per symbol plus C-speed slice fills to build.

    Parameters
    ----------
    lengths:
        Code length per symbol (0 = symbol absent).
    allow_incomplete:
        Accept an under-subscribed code.  RFC 1951 permits this only
        for degenerate distance codes (a single distance symbol may be
        encoded in one bit); the strict probing decoder passes ``False``
        everywhere except that case.
    """

    __slots__ = ("table", "max_bits", "num_symbols", "complete", "lengths", "np_luts")

    def __init__(self, lengths, allow_incomplete: bool = False) -> None:
        lengths = list(lengths)
        #: Lazily-built lookup tables of the vectorized kernel
        #: (:mod:`repro.perf.npkernel`); decoders built via
        #: :func:`cached_decoder` are shared, so the tables amortize
        #: across every stream reusing the same code lengths.
        self.np_luts = None
        #: Code length per symbol as given (the vectorized kernel
        #: rebuilds its canonical tables from these).
        self.lengths = lengths
        nonzero = [l for l in lengths if l > 0]
        if not nonzero:
            raise HuffmanError("no symbols in code", stage="huffman")
        self.num_symbols = len(nonzero)
        max_bits = max(nonzero)
        if max_bits > MAX_CODE_BITS:
            raise HuffmanError(
                f"code length {max_bits} exceeds the DEFLATE cap",
                stage="huffman",
            )
        self.max_bits = max_bits

        ksum, _ = kraft_sum(lengths)
        full = 1 << max_bits
        if ksum > full:
            raise HuffmanError("over-subscribed code lengths", stage="huffman")
        self.complete = ksum == full
        if not self.complete and not allow_incomplete:
            raise HuffmanError("incomplete code lengths", stage="huffman")

        codes = canonical_codes(lengths)
        size = 1 << max_bits
        table = [_INVALID] * size
        for sym, l in enumerate(lengths):
            if l == 0:
                continue
            # Every nonzero length is <= max_bits by construction; the
            # clamp states that invariant where the interval engine can
            # see it, so the fill below has a proved <= WINDOW_SIZE bound.
            l = min(l, max_bits)
            rev = reverse_bits(codes[sym], l)
            step = 1 << l
            table[rev::step] = [(l, sym)] * (size >> l)
        self.table = table

    def decode(self, reader: BitReader) -> int:
        """Decode one symbol from ``reader``."""
        length, sym = self.table[reader.peek(self.max_bits)]  # lint: allow-unvalidated-decode(peek masks to max_bits bits and table has exactly 1<<max_bits entries)
        if length == 0:
            raise HuffmanError("invalid Huffman code in stream", stage="huffman")
        reader.consume(length)
        return sym


@lru_cache(maxsize=256)
def _cached_decoder(lengths: tuple, allow_incomplete: bool) -> HuffmanDecoder:
    return HuffmanDecoder(lengths, allow_incomplete=allow_incomplete)


def cached_decoder(lengths, allow_incomplete: bool = False) -> HuffmanDecoder:
    """Build (or reuse) a :class:`HuffmanDecoder` for ``lengths``.

    Real corpora repeat block headers constantly — pigz/bgzf emit one
    dynamic header per ~32-128 KiB chunk over near-identical symbol
    statistics, and the two code-length alphabets recur even more —
    so decode tables are memoized on the code-length tuple (a small
    process-wide LRU; entries are immutable after construction and safe
    to share between readers and threads).  Invalid lengths raise
    without populating the cache (``lru_cache`` does not cache
    exceptions), so error behaviour is identical to direct
    construction.
    """
    return _cached_decoder(tuple(lengths), allow_incomplete)


class HuffmanEncoder:
    """Encoder companion: pre-reversed codes ready for LSB-first emission."""

    __slots__ = ("lengths", "reversed_codes")

    def __init__(self, lengths) -> None:
        self.lengths = list(lengths)
        codes = canonical_codes(self.lengths)
        self.reversed_codes = [
            reverse_bits(codes[sym], l) if l else 0
            for sym, l in enumerate(self.lengths)
        ]

    def write(self, writer, symbol: int) -> None:
        """Emit ``symbol``'s code into ``writer``."""
        length = self.lengths[symbol]
        if length == 0:
            raise HuffmanError(f"symbol {symbol} has no code", stage="huffman")
        writer.write(self.reversed_codes[symbol], length)

    def cost_bits(self, symbol: int) -> int:
        """Code length of ``symbol`` (0 if absent)."""
        return self.lengths[symbol]


# ---------------------------------------------------------------------------
# Length-limited Huffman (package-merge)
# ---------------------------------------------------------------------------


def _package_merge(weights: list[int], max_bits: int) -> list[int]:
    """Package-merge over pre-sorted positive weights.

    Returns the optimal code length for each weight (aligned with the
    input, which must be sorted ascending), all lengths <= ``max_bits``.
    """
    n = len(weights)
    # Leaf nodes: (weight, unique_id, symbol_rank_or_children)
    leaves = [(w, i, i) for i, w in enumerate(weights)]
    uid = n

    level = list(leaves)
    for _ in range(max_bits - 1):
        packages = []
        for k in range(0, len(level) - 1, 2):
            a, b = level[k], level[k + 1]
            packages.append((a[0] + b[0], uid, (a, b)))
            uid += 1
        # Merge leaves and packages, both already sorted by weight.
        merged = []
        i = j = 0
        while i < n and j < len(packages):
            if leaves[i][0] <= packages[j][0]:
                merged.append(leaves[i])
                i += 1
            else:
                merged.append(packages[j])
                j += 1
        merged.extend(leaves[i:])
        merged.extend(packages[j:])
        level = merged

    lengths = [0] * n
    # The optimal length-limited code corresponds to the cheapest
    # 2n - 2 items of the final level; each leaf occurrence adds one
    # bit to that symbol's code length.
    stack = list(level[: 2 * n - 2])
    while stack:
        node = stack.pop()
        payload = node[2]
        if isinstance(payload, tuple):
            stack.append(payload[0])
            stack.append(payload[1])
        else:
            lengths[payload] += 1
    return lengths


def limited_code_lengths(freqs, max_bits: int) -> list[int]:
    """Optimal prefix-code lengths with every code <= ``max_bits`` bits.

    Zero-frequency symbols get length 0.  Degenerate inputs follow the
    zlib conventions the DEFLATE format requires:

    * no used symbols -> all lengths 0 (the caller substitutes the
      degenerate one-symbol code the format demands);
    * one used symbol -> that symbol gets length 1.
    """
    freqs = list(freqs)
    used = [(f, i) for i, f in enumerate(freqs) if f > 0]
    lengths = [0] * len(freqs)
    if not used:
        return lengths
    if len(used) == 1:
        lengths[used[0][1]] = 1
        return lengths
    if (1 << max_bits) < len(used):
        raise HuffmanError(
            f"cannot code {len(used)} symbols within {max_bits} bits",
            stage="huffman",
        )
    used.sort()
    sorted_weights = [f for f, _ in used]
    sorted_lengths = _package_merge(sorted_weights, max_bits)
    for (_, sym), l in zip(used, sorted_lengths):
        lengths[sym] = l
    return lengths


def huffman_cost_bits(freqs, lengths) -> int:
    """Total encoded size in bits of ``freqs`` under ``lengths``."""
    return sum(f * l for f, l in zip(freqs, lengths) if f)
