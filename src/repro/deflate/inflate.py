"""DEFLATE decompression (RFC 1951), byte domain.

This is the reproduction's ``gunzip``-role decoder: a complete inflate
supporting stored, fixed-Huffman and dynamic-Huffman blocks, decoding
from **any bit offset** (the capability block-start probing relies on),
with optional

* a pre-seeded 32 KiB window (decompression resuming at a block
  boundary with known context — the second phase of random access);
* token-stream capture (:mod:`repro.deflate.tokens`) for the paper's
  offset/length statistics;
* strict probe checks from Appendix X-A (ASCII-only output, plausible
  block sizes), used by :mod:`repro.core.sync`.

The marker-domain decoder in :mod:`repro.core.marker_inflate` shares the
block-header machinery exported here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.deflate import constants as C
from repro.deflate.bitio import BitReader
from repro.deflate.huffman import HuffmanDecoder, cached_decoder
from repro.deflate.tokens import TokenStream
from repro.units import BitOffset, ByteOffset
from repro.errors import (
    AsciiCheckError,
    BackrefError,
    BitstreamError,
    BlockHeaderError,
    BlockSizeError,
    HuffmanError,
    ResourceLimitError,
)

# Sentinel cap for the fast loop's single-compare zip-bomb guard; kept
# local (mirroring repro.robustness.limits.UNLIMITED_CAP) because this
# module must not import the robustness package — repro.robustness
# transitively imports the decode pipeline, and a module-level import
# here would close that cycle.  The ``budget`` parameter is duck-typed
# for the same reason.
_UNLIMITED_CAP = 1 << 62

__all__ = [
    "BlockHeader",
    "BlockInfo",
    "InflateResult",
    "read_block_header",
    "inflate",
    "inflate_bytes",
]

# Fixed-code decoders are stateless; build them once.
_FIXED_LITLEN = HuffmanDecoder(C.fixed_litlen_lengths())
_FIXED_DIST = HuffmanDecoder(C.fixed_dist_lengths(), allow_incomplete=True)


@dataclass
class BlockHeader:
    """Decoded header of one DEFLATE block."""

    bfinal: bool
    btype: int
    #: Litlen decoder for compressed blocks, ``None`` for stored blocks.
    litlen: HuffmanDecoder | None = None
    #: Distance decoder; ``None`` when the block declares no distance
    #: codes (it must then contain no matches).
    dist: HuffmanDecoder | None = None
    #: For stored blocks: payload length in bytes.
    stored_len: int = 0


@dataclass
class BlockInfo:
    """Where a block sits in the compressed and decompressed streams."""

    start_bit: BitOffset
    end_bit: BitOffset
    out_start: ByteOffset
    out_end: ByteOffset
    btype: int
    bfinal: bool


@dataclass
class InflateResult:
    """Output of :func:`inflate`."""

    data: bytes
    end_bit: BitOffset
    final_seen: bool
    blocks: list[BlockInfo] = field(default_factory=list)
    tokens: TokenStream | None = None
    #: Strict (probing) mode only: the confirmation run reached the
    #: stream's BFINAL block and decoded it cleanly (content checks
    #: applied; only the minimum-size bound is waived for it) — the
    #: strongest confirmation available near the end of a stream.
    hit_final_probe: bool = False

    @property
    def window(self) -> bytes:
        """Last 32 KiB of output — the context for whatever follows."""
        return self.data[-C.WINDOW_SIZE:]


def _read_dynamic_tables(reader: BitReader, strict: bool) -> tuple[HuffmanDecoder, HuffmanDecoder | None]:
    """Decode an RFC 1951 dynamic block preamble into decoders."""
    hlit = reader.read(5) + 257
    hdist = reader.read(5) + 1
    hclen = reader.read(4) + 4
    if hlit > C.MAX_HLIT:
        raise BlockHeaderError(
            f"HLIT {hlit} exceeds {C.MAX_HLIT}",
            bit_offset=reader.tell_bits(), stage="header",
        )
    if hdist > C.MAX_HDIST:
        # Codes 30/31 can never appear in a valid stream; a header that
        # declares them is rejected (helps probing fail fast).
        raise BlockHeaderError(
            f"HDIST {hdist} exceeds {C.MAX_HDIST}",
            bit_offset=reader.tell_bits(), stage="header",
        )

    clen_lengths = [0] * 19
    for i in range(hclen):
        clen_lengths[C.CODELEN_ORDER[i]] = reader.read(3)
    clen_decoder = cached_decoder(clen_lengths)  # must be complete

    # Decode HLIT + HDIST code lengths as one run (repeats may cross
    # the litlen/dist boundary, per the RFC).
    total = hlit + hdist
    lengths = [0] * total
    i = 0
    prev = -1
    while i < total:
        sym = clen_decoder.decode(reader)
        if sym < 16:
            lengths[i] = sym
            prev = sym
            i += 1
        elif sym == C.CLEN_COPY_PREV:
            if prev < 0:
                raise BlockHeaderError(
                    "repeat code with no previous length",
                    bit_offset=reader.tell_bits(), stage="header",
                )
            count = 3 + reader.read(2)
            if i + count > total:
                raise BlockHeaderError(
                    "code length repeat overruns table",
                    bit_offset=reader.tell_bits(), stage="header",
                )
            for _ in range(count):
                lengths[i] = prev
                i += 1
        elif sym == C.CLEN_ZERO_SHORT:
            count = 3 + reader.read(3)
            if i + count > total:
                raise BlockHeaderError(
                    "zero-run overruns table",
                    bit_offset=reader.tell_bits(), stage="header",
                )
            i += count
            prev = 0
        else:  # CLEN_ZERO_LONG
            count = 11 + reader.read(7)
            if i + count > total:
                raise BlockHeaderError(
                    "zero-run overruns table",
                    bit_offset=reader.tell_bits(), stage="header",
                )
            i += count
            prev = 0

    litlen_lengths = lengths[:hlit]
    dist_lengths = lengths[hlit:]

    if litlen_lengths[C.END_OF_BLOCK] == 0:
        raise BlockHeaderError(
            "litlen code lacks end-of-block symbol",
            bit_offset=reader.tell_bits(), stage="header",
        )
    litlen = cached_decoder(litlen_lengths)  # complete required

    n_dist = sum(1 for l in dist_lengths if l)
    if n_dist == 0:
        dist = None
    else:
        # RFC permits an incomplete distance code only in the
        # one-symbol degenerate case.
        dist = cached_decoder(dist_lengths, allow_incomplete=(n_dist == 1))
    return litlen, dist


def read_block_header(reader: BitReader, strict: bool = False) -> BlockHeader:
    """Read one block header starting at the reader's current bit.

    In ``strict`` mode (block-start probing) a final block is rejected:
    the probe never targets the very last block of a stream, and real
    mid-file blocks always have BFINAL=0 (Appendix X-A).
    """
    bfinal = bool(reader.read(1))
    if strict and bfinal:
        raise BlockHeaderError(
            "probe rejects BFINAL=1", bit_offset=reader.tell_bits(), stage="header"
        )
    btype = reader.read(2)
    if btype == C.BTYPE_RESERVED:
        raise BlockHeaderError(
            "reserved BTYPE 3", bit_offset=reader.tell_bits(), stage="header"
        )

    if btype == C.BTYPE_STORED:
        reader.align_to_byte()
        if reader.bits_remaining() < 32:
            raise BitstreamError(
            "truncated stored-block header",
            bit_offset=reader.tell_bits(), stage="header",
        )
        length = reader.read(16)
        nlen = reader.read(16)
        if length ^ nlen != 0xFFFF:
            raise BlockHeaderError(
            "stored block LEN/NLEN mismatch",
            bit_offset=reader.tell_bits(), stage="header",
        )
        return BlockHeader(bfinal, btype, stored_len=length)

    if btype == C.BTYPE_FIXED:
        return BlockHeader(bfinal, btype, litlen=_FIXED_LITLEN, dist=_FIXED_DIST)

    litlen, dist = _read_dynamic_tables(reader, strict)
    return BlockHeader(bfinal, btype, litlen=litlen, dist=dist)


def inflate(
    data,
    start_bit: BitOffset = BitOffset(0),
    window: bytes = b"",
    strict: bool = False,
    capture_tokens: bool = False,
    max_blocks: int | None = None,
    max_output: int | None = None,
    stop_at_final: bool = True,
    budget=None,
    kernel=None,
) -> InflateResult:
    """Decompress a raw DEFLATE stream.

    Parameters
    ----------
    data:
        Buffer holding the compressed stream.
    start_bit:
        Bit offset of the first block header.
    window:
        Up to 32 KiB of decompressed history preceding ``start_bit``
        (used when resuming mid-stream with known context).
    strict:
        Apply the Appendix X-A probe checks: reject BFINAL=1 headers,
        non-ASCII output bytes, back-references beyond the available
        history *plus* assumed context, and implausible block sizes.
    capture_tokens:
        Record the decoded LZ77 token stream in the result.
    max_blocks / max_output:
        Stop after this many blocks / output bytes (both soft limits
        checked at block boundaries, except the strict 4 MiB in-block
        size guard).
    stop_at_final:
        Stop after a BFINAL=1 block (set ``False`` to keep decoding a
        concatenation of streams, which callers split themselves).
    budget:
        Optional :class:`repro.robustness.limits.ResourceBudget`
        (duck-typed to avoid an import cycle).  Unlike the *soft*
        ``max_output`` limit, exceeding the budget raises a structured
        :class:`~repro.errors.ResourceLimitError`: the per-block check
        bounds literal growth, and the fast loop refuses any match copy
        that would push output past ``budget.output_cap()`` *before*
        copying — so a zip bomb errors out with resident output still
        under the cap (worst-case overshoot is one literal-only block,
        itself bounded by 8x the compressed input).
    kernel:
        Decode-kernel selection (see :mod:`repro.perf.kernels`):
        ``None`` (argument > ``REPRO_KERNEL`` env > auto), a kernel
        name (``"pure"`` / ``"numpy"`` / ``"auto"``), or a resolved
        :class:`~repro.perf.kernels.KernelSpec`.  The vectorized kernel
        is only ever an *optimization*: any block it declines is
        re-decoded by the pure loop, and strict (probe) decodes always
        run pure, so outputs, errors, and bit positions are identical
        across kernels (pinned by the differential fuzz suite).

    Returns
    -------
    InflateResult
        Decompressed bytes (excluding the seeded window), the bit
        position just past the last decoded block, and per-block info.
    """
    if len(window) > C.WINDOW_SIZE:
        window = window[-C.WINDOW_SIZE:]
    # Late import: repro.perf pulls in profiling helpers that import
    # this module back (cycle is only at import time, not at call time).
    from repro.perf.kernels import resolve_kernel

    spec = resolve_kernel(kernel)
    if spec.use_vectorized(len(data)) and not strict:
        return _inflate_numpy(
            data, start_bit, window, capture_tokens,
            max_blocks, max_output, stop_at_final, budget,
        )
    reader = BitReader(data, start_bit)
    out = bytearray(window)
    prefix = len(out)
    tokens = TokenStream() if capture_tokens else None
    blocks: list[BlockInfo] = []
    final_seen = False
    hit_final_probe = False

    hard_cap = prefix + (budget.output_cap() if budget is not None else _UNLIMITED_CAP)
    ascii_mask = C.ASCII_MASK if strict else None
    lbase = C.LENGTH_BASE
    lextra = C.LENGTH_EXTRA_BITS
    dbase = C.DIST_BASE
    dextra = C.DIST_EXTRA_BITS

    while True:
        if max_blocks is not None and len(blocks) >= max_blocks:
            break
        if max_output is not None and len(out) - prefix >= max_output:
            break
        if reader.bits_remaining() < 3:
            if strict:
                raise BitstreamError(
                    "ran out of input at block header",
                    bit_offset=reader.tell_bits(), stage="inflate",
                )
            break
        final_probe_block = bool(strict and blocks and reader.peek(1) == 1)
        # The candidate block itself must not be final (a probe never
        # targets the stream's last block), but running into the final
        # block *while confirming* is a natural success — provided the
        # final block itself decodes cleanly, which we verify below
        # (content checks still apply; only the BFINAL rejection and
        # the minimum-size bound are waived for it).

        block_start_bit = reader.tell_bits()
        header = read_block_header(reader, strict=strict and not final_probe_block)
        out_start = len(out)

        if header.btype == C.BTYPE_STORED:
            chunk = reader.read_bytes(header.stored_len)
            if strict:
                if not all(C.ASCII_MASK[b] for b in chunk):
                    raise AsciiCheckError(
                        "stored block contains non-ASCII byte",
                        bit_offset=reader.tell_bits(), stage="inflate",
                    )
            out += chunk
            if tokens is not None:
                for b in chunk:
                    tokens.add_literal(b)
        elif strict or tokens is not None:
            _decode_huffman_block(
                reader, header, out, tokens, ascii_mask, lbase, lextra, dbase, dextra,
                strict=strict,
            )
        else:
            _decode_huffman_block_fast(reader, header, out, hard_cap)

        out_end = len(out)
        if budget is not None:
            budget.check_block(
                out_end - prefix,
                reader.tell_bits() - start_bit,
                stage="inflate",
                bit_offset=block_start_bit,
            )
        if strict:
            size = out_end - out_start
            # An empty stored block is a sync-flush marker (pigz emits one
            # per chunk): 32 bits of exact LEN=0/NLEN=0xFFFF structure, so
            # it cannot be a chance match and is exempt from the minimum.
            sync_flush = header.btype == C.BTYPE_STORED and header.stored_len == 0
            min_size = 0 if (final_probe_block or sync_flush) else C.PROBE_MIN_BLOCK
            if size < min_size or size > C.PROBE_MAX_BLOCK:
                raise BlockSizeError(
                    f"block size {size} outside [{min_size}, {C.PROBE_MAX_BLOCK}]",
                    bit_offset=block_start_bit, stage="inflate",
                )
        blocks.append(
            BlockInfo(
                start_bit=block_start_bit,
                end_bit=reader.tell_bits(),
                out_start=out_start - prefix,
                out_end=out_end - prefix,
                btype=header.btype,
                bfinal=header.bfinal,
            )
        )
        if header.bfinal:
            final_seen = True
            if final_probe_block:
                hit_final_probe = True
            if stop_at_final:
                break

    return InflateResult(
        data=bytes(out[prefix:]),
        end_bit=reader.tell_bits(),
        final_seen=final_seen,
        blocks=blocks,
        tokens=tokens,
        hit_final_probe=hit_final_probe,
    )


def _inflate_numpy(
    data,
    start_bit,
    window: bytes,
    capture_tokens: bool,
    max_blocks: int | None,
    max_output: int | None,
    stop_at_final: bool,
    budget,
) -> InflateResult:
    """Vectorized-kernel driver with per-block pure fallback.

    Mirrors :func:`inflate`'s non-strict loop exactly, but compressed
    blocks go through :class:`repro.perf.npkernel.StreamKernel` (token
    decode) plus :func:`repro.perf.npkernel.replay_bytes` (vectorized
    LZ77 replay seeded with the rolling 32 KiB tail).  Any block the
    kernel declines — and any block whose output would cross the
    resource budget's hard cap — is re-decoded from its header by the
    same pure loops :func:`inflate` uses, reproducing the reference
    error class and bit offset; DEFLATE distances never exceed the
    32 KiB tail, so the fallback sees exactly the history the pure
    path would.  Per-block replay keeps chains shallow and memory
    bounded: output lives as immutable chunks, not one growing
    bytearray.
    """
    import numpy as np

    from repro.perf import npkernel

    reader = BitReader(data, start_bit)
    prefix = len(window)
    tokens = TokenStream() if capture_tokens else None
    blocks: list[BlockInfo] = []
    final_seen = False
    hard_cap = prefix + (budget.output_cap() if budget is not None else _UNLIMITED_CAP)

    kern = npkernel.StreamKernel(data)
    parts: list[bytes] = []
    tail = window
    produced = 0

    while True:
        if max_blocks is not None and len(blocks) >= max_blocks:
            break
        if max_output is not None and produced >= max_output:
            break
        if reader.bits_remaining() < 3:
            break
        block_start_bit = reader.tell_bits()
        header = read_block_header(reader, strict=False)
        out_start = produced

        if header.btype == C.BTYPE_STORED:
            chunk = reader.read_bytes(header.stored_len)
            parts.append(chunk)
            produced += len(chunk)
            tail = (tail + chunk)[-C.WINDOW_SIZE:]
            if tokens is not None and chunk:
                tokens.add_columnar(
                    np.zeros(len(chunk), np.int32),
                    np.frombuffer(chunk, np.uint8).astype(np.int32),
                )
        else:
            try:
                offs, vals, _fp, end_bit = kern.decode_block(
                    reader.tell_bits(), header.litlen, header.dist,
                    max_out=hard_cap - prefix - produced,
                )
                if budget is not None:
                    total = int(np.where(offs > 0, vals, 1).sum())
                    if prefix + produced + total > hard_cap:
                        # Let the pure loop raise (match copy) or
                        # complete into the block-boundary check
                        # (literal growth) exactly as without a kernel.
                        raise npkernel.Fallback("block crosses the output cap")
                block_out = npkernel.replay_bytes(offs, vals, tail)
            except npkernel.Fallback:
                # Pure re-decode of this one block, seeded with the
                # tail: reproduces the reference error (class and bit
                # offset) if the block is truly bad, or its exact
                # bytes if the kernel merely declined it.
                body = bytearray(tail)  # lint: allow-unbudgeted-alloc(tail is trimmed to the 32 KiB window every iteration)
                lprefix = len(body)
                local_cap = hard_cap - prefix - produced + lprefix
                if tokens is not None:
                    _decode_huffman_block(
                        reader, header, body, tokens, None,
                        C.LENGTH_BASE, C.LENGTH_EXTRA_BITS,
                        C.DIST_BASE, C.DIST_EXTRA_BITS, strict=False,
                    )
                else:
                    _decode_huffman_block_fast(reader, header, body, local_cap)
                block_out = bytes(body[lprefix:])  # lint: allow-unbudgeted-alloc(block growth is capped by local_cap inside the block decoders)
            else:
                reader.seek_bits(BitOffset(end_bit))
                if tokens is not None:
                    tokens.add_columnar(offs, vals)
            parts.append(block_out)
            produced += len(block_out)
            tail = (tail + block_out)[-C.WINDOW_SIZE:]

        if budget is not None:
            budget.check_block(
                produced,
                reader.tell_bits() - start_bit,
                stage="inflate",
                bit_offset=block_start_bit,
            )
        blocks.append(
            BlockInfo(
                start_bit=block_start_bit,
                end_bit=reader.tell_bits(),
                out_start=out_start,
                out_end=produced,
                btype=header.btype,
                bfinal=header.bfinal,
            )
        )
        if header.bfinal:
            final_seen = True
            if stop_at_final:
                break

    return InflateResult(
        data=b"".join(parts),
        end_bit=reader.tell_bits(),
        final_seen=final_seen,
        blocks=blocks,
        tokens=tokens,
        hit_final_probe=False,
    )


def _decode_huffman_block(
    reader: BitReader,
    header: BlockHeader,
    out: bytearray,
    tokens: TokenStream | None,
    ascii_mask,
    lbase,
    lextra,
    dbase,
    dextra,
    strict: bool,
) -> None:
    """Decode the symbol stream of one fixed/dynamic block into ``out``.

    This is the hot loop of the whole library; it reaches into the
    reader's internals to avoid method-call overhead per symbol.
    """
    litlen = header.litlen
    dist = header.dist
    lit_table = litlen.table
    lit_bits = litlen.max_bits
    dist_table = dist.table if dist is not None else None
    dist_bits = dist.max_bits if dist is not None else 0

    block_start = len(out)
    # In strict probing mode the decoder assumes an (unknown) 32 KiB
    # context exists before the block, exactly like the paper's checks:
    # a back-reference is invalid only if it exceeds window + history.
    history_bonus = C.WINDOW_SIZE if strict else 0
    max_block = C.PROBE_MAX_BLOCK

    while True:
        # -- decode litlen symbol (inlined HuffmanDecoder.decode) --
        if reader._bitcount < lit_bits:
            reader._refill()
        nbits, sym = lit_table[reader._bitbuf & ((1 << lit_bits) - 1)]
        if nbits == 0:
            raise HuffmanError(
                "invalid litlen code", bit_offset=reader.tell_bits(), stage="inflate"
            )
        if nbits > reader._bitcount:
            raise BitstreamError(
                "litlen code past end of stream",
                bit_offset=reader.tell_bits(), stage="inflate",
            )
        reader._bitbuf >>= nbits
        reader._bitcount -= nbits

        if sym < 256:
            if ascii_mask is not None and not ascii_mask[sym]:
                raise AsciiCheckError(
                    f"non-ASCII literal {sym}",
                    bit_offset=reader.tell_bits(), stage="inflate",
                )
            out.append(sym)
            if tokens is not None:
                tokens.add_literal(sym)
            if strict and len(out) - block_start > max_block:
                raise BlockSizeError(
                "block exceeds 4 MiB probe limit",
                bit_offset=reader.tell_bits(), stage="inflate",
            )
            continue
        if sym == C.END_OF_BLOCK:
            return

        # -- match length --
        if sym > C.MAX_USED_LITLEN:
            raise HuffmanError(
                f"invalid length symbol {sym}",
                bit_offset=reader.tell_bits(), stage="inflate",
            )
        idx = sym - 257
        extra = lextra[idx]
        length = lbase[idx] + (reader.read(extra) if extra else 0)

        # -- distance --
        if dist_table is None:
            raise BackrefError(
                "match in block that declared no distance codes",
                bit_offset=reader.tell_bits(), stage="inflate",
            )
        if reader._bitcount < dist_bits:
            reader._refill()
        nbits, dsym = dist_table[reader._bitbuf & ((1 << dist_bits) - 1)]
        if nbits == 0:
            raise HuffmanError(
                "invalid distance code", bit_offset=reader.tell_bits(), stage="inflate"
            )
        if nbits > reader._bitcount:
            raise BitstreamError(
                "distance code past end of stream",
                bit_offset=reader.tell_bits(), stage="inflate",
            )
        reader._bitbuf >>= nbits
        reader._bitcount -= nbits
        if dsym > C.MAX_USED_DIST:
            raise HuffmanError(
                f"invalid distance symbol {dsym}",
                bit_offset=reader.tell_bits(), stage="inflate",
            )
        dex = dextra[dsym]
        distance = dbase[dsym] + (reader.read(dex) if dex else 0)

        avail = len(out) + history_bonus
        if distance > avail:
            raise BackrefError(
                f"distance {distance} exceeds available history {avail}",
                bit_offset=reader.tell_bits(), stage="inflate",
            )
        if tokens is not None:
            tokens.add_match(distance, length)

        pos = len(out) - distance
        if pos >= 0:
            if distance >= length:
                out += out[pos : pos + length]
            else:
                pattern = bytes(out[pos:])  # lint: allow-unbudgeted-alloc(pattern length equals distance, capped at the 32 KiB window by the history check above)
                reps = -(-length // distance)
                out += (pattern * reps)[:length]
        else:
            # Strict mode only: the reference reaches into the unknown
            # pre-block context.  Emit placeholder bytes ('?') — the
            # probe only validates structure, not content.
            # The extra MAX_MATCH clamp is a no-op (length <= 258 per the
            # length-code table) stated where the interval engine can
            # prove the allocation bound.
            unknown = min(length, -pos, C.MAX_MATCH)
            out += b"?" * unknown
            remaining = length - unknown
            for _ in range(remaining):
                out.append(out[-distance])
        if strict and len(out) - block_start > max_block:
            raise BlockSizeError(
                "block exceeds 4 MiB probe limit",
                bit_offset=reader.tell_bits(), stage="inflate",
            )


def _decode_huffman_block_fast(
    reader: BitReader,
    header: BlockHeader,
    out: bytearray,
    hard_cap: int = _UNLIMITED_CAP,
) -> None:
    """Fast-path symbol loop: non-strict decode without token capture.

    ``hard_cap`` is the absolute ``len(out)`` (window prefix included)
    that a match copy may not exceed — the in-loop half of the
    zip-bomb guard (see :func:`inflate`'s ``budget``).  It costs one
    int comparison per match; literal growth is left to the amortized
    block-boundary check, which bounds it at one block's worth.

    Semantics are identical to :func:`_decode_huffman_block` with
    ``strict=False``/``tokens=None`` (the differential fuzz suite pins
    this); the speed comes from

    * mirroring the reader's bit-buffer state into locals and writing it
      back only on exit (the documented ``_bitbuf``/``_bitcount``
      protocol of :mod:`repro.deflate.bitio`), so the per-symbol cost is
      pure local-variable arithmetic;
    * lazy bulk refills: the buffer is topped up (to >= 57 bits, 6-8
      bytes per ``int.from_bytes``) only when it cannot satisfy the
      next table lookup, so a refill happens once per ~5 symbols
      instead of once per bit-level read; the rare in-group underflows
      (extra bits / distance code crossing the low-water mark) refill
      in place and only then report truncation;
    * batched copy-match expansion: non-overlapping matches are one
      ``bytearray`` slice copy, overlapping ones one pattern-repeat
      slice; byte-wise copying never happens.
    """
    litlen = header.litlen
    dist = header.dist
    lit_table = litlen.table
    lit_bits = litlen.max_bits
    lit_mask = (1 << lit_bits) - 1
    dist_table = dist.table if dist is not None else None
    dist_bits = dist.max_bits if dist is not None else 0
    dist_mask = (1 << dist_bits) - 1
    lbase = C.LENGTH_BASE
    lextra = C.LENGTH_EXTRA_BITS
    dbase = C.DIST_BASE
    dextra = C.DIST_EXTRA_BITS
    end_of_block = C.END_OF_BLOCK
    max_litlen = C.MAX_USED_LITLEN
    max_dist = C.MAX_USED_DIST

    data = reader._data
    nbytes = reader._nbytes
    pos = reader._pos
    bitbuf = reader._bitbuf
    bitcount = reader._bitcount
    from_bytes = int.from_bytes
    out_append = out.append

    try:
        while True:
            if bitcount < lit_bits:
                take = (64 - bitcount) >> 3
                rest = nbytes - pos
                if take > rest:
                    take = rest
                if take > 0:
                    bitbuf |= from_bytes(data[pos : pos + take], "little") << bitcount
                    bitcount += take << 3
                    pos += take
                if bitcount < lit_bits:
                    # Input exhausted: only here can a code claim more
                    # bits than remain.  (The table is complete —
                    # construction rejects incomplete litlen codes — so
                    # every index is a valid code and the in-budget
                    # main path below needs no per-symbol validation.)
                    if lit_table[bitbuf & lit_mask][0] > bitcount:
                        reader._pos, reader._bitbuf, reader._bitcount = pos, bitbuf, bitcount
                        raise BitstreamError(
                            "litlen code past end of stream",
                            bit_offset=reader.tell_bits(), stage="inflate",
                        )

            nbits, sym = lit_table[bitbuf & lit_mask]
            bitbuf >>= nbits
            bitcount -= nbits

            if sym < 256:
                out_append(sym)
                continue
            if sym == end_of_block:
                return
            if sym > max_litlen:
                reader._pos, reader._bitbuf, reader._bitcount = pos, bitbuf, bitcount
                raise HuffmanError(
                    f"invalid length symbol {sym}",
                    bit_offset=reader.tell_bits(), stage="inflate",
                )

            # -- match length (extra bits read straight off the buffer) --
            idx = sym - 257
            extra = lextra[idx]
            if extra:
                if extra > bitcount:
                    take = min((64 - bitcount) >> 3, nbytes - pos)
                    if take > 0:
                        bitbuf |= from_bytes(data[pos : pos + take], "little") << bitcount
                        bitcount += take << 3
                        pos += take
                    if extra > bitcount:
                        reader._pos, reader._bitbuf, reader._bitcount = pos, bitbuf, bitcount
                        raise BitstreamError(
                            f"requested {extra} bits with only {bitcount} available",
                            bit_offset=reader.tell_bits(), stage="inflate",
                        )
                length = lbase[idx] + (bitbuf & ((1 << extra) - 1))
                bitbuf >>= extra
                bitcount -= extra
            else:
                length = lbase[idx]

            # -- distance --
            if dist_table is None:
                reader._pos, reader._bitbuf, reader._bitcount = pos, bitbuf, bitcount
                raise BackrefError(
                    "match in block that declared no distance codes",
                    bit_offset=reader.tell_bits(), stage="inflate",
                )
            if bitcount < dist_bits:
                take = min((64 - bitcount) >> 3, nbytes - pos)
                if take > 0:
                    bitbuf |= from_bytes(data[pos : pos + take], "little") << bitcount
                    bitcount += take << 3
                    pos += take
                if bitcount < dist_bits:
                    # Input exhausted mid-match (distance tables may be
                    # incomplete, so nbits==0 stays checked below).
                    if dist_table[bitbuf & dist_mask][0] > bitcount:
                        reader._pos, reader._bitbuf, reader._bitcount = pos, bitbuf, bitcount
                        raise BitstreamError(
                            "distance code past end of stream",
                            bit_offset=reader.tell_bits(), stage="inflate",
                        )
            nbits, dsym = dist_table[bitbuf & dist_mask]
            if nbits == 0:
                reader._pos, reader._bitbuf, reader._bitcount = pos, bitbuf, bitcount
                raise HuffmanError(
                    "invalid distance code",
                    bit_offset=reader.tell_bits(), stage="inflate",
                )
            bitbuf >>= nbits
            bitcount -= nbits
            if dsym > max_dist:
                reader._pos, reader._bitbuf, reader._bitcount = pos, bitbuf, bitcount
                raise HuffmanError(
                    f"invalid distance symbol {dsym}",
                    bit_offset=reader.tell_bits(), stage="inflate",
                )
            dex = dextra[dsym]
            if dex:
                if dex > bitcount:
                    take = min((64 - bitcount) >> 3, nbytes - pos)
                    if take > 0:
                        bitbuf |= from_bytes(data[pos : pos + take], "little") << bitcount
                        bitcount += take << 3
                        pos += take
                    if dex > bitcount:
                        reader._pos, reader._bitbuf, reader._bitcount = pos, bitbuf, bitcount
                        raise BitstreamError(
                            f"requested {dex} bits with only {bitcount} available",
                            bit_offset=reader.tell_bits(), stage="inflate",
                        )
                distance = dbase[dsym] + (bitbuf & ((1 << dex) - 1))
                bitbuf >>= dex
                bitcount -= dex
            else:
                distance = dbase[dsym]

            start = len(out) - distance
            if start < 0:
                reader._pos, reader._bitbuf, reader._bitcount = pos, bitbuf, bitcount
                raise BackrefError(
                    f"distance {distance} exceeds available history {len(out)}",
                    bit_offset=reader.tell_bits(), stage="inflate",
                )
            if len(out) + length > hard_cap:
                reader._pos, reader._bitbuf, reader._bitcount = pos, bitbuf, bitcount
                raise ResourceLimitError(
                    f"match copy would grow output to {len(out) + length} bytes, "
                    f"past the {hard_cap}-byte resource budget",
                    limit="output_bytes",
                    bit_offset=reader.tell_bits(), stage="inflate",
                )
            if distance >= length:
                out += out[start : start + length]
            else:
                pattern = bytes(out[start:])  # lint: allow-unbudgeted-alloc(pattern length equals distance <= 32 KiB; total growth capped by the hard_cap check above)
                reps = -(-length // distance)
                out += (pattern * reps)[:length]
    finally:
        reader._pos = pos
        reader._bitbuf = bitbuf
        reader._bitcount = bitcount


def inflate_bytes(data, start_bit: BitOffset = BitOffset(0), window: bytes = b"") -> bytes:
    """Convenience wrapper: decompress and return only the bytes."""
    return inflate(data, start_bit=start_bit, window=window).data
