"""LZ77 hash-chain matcher with zlib-compatible greedy and lazy parsing.

The paper's random-access feasibility results hinge on a specific
behaviour of gzip's parser: levels 1-3 use *greedy* parsing
(``deflate_fast``) and on random DNA emit essentially no literals after
the first window, while levels 4-9 use *lazy / non-greedy* parsing
(``deflate_slow``, Algorithm 3 in the paper) which keeps emitting ~4 %
literals forever.  To reproduce those phenomena with our own compressor
this module mirrors zlib's algorithm precisely:

* the per-level tuning table (``good_length``, ``max_lazy``,
  ``nice_length``, ``max_chain``) is zlib's ``configuration_table``;
* the maximum match distance is ``32768 - 262`` (zlib's ``MAX_DIST``),
  which shapes the offset statistics (the paper's ``o_a``);
* lazy evaluation follows ``deflate_slow``: a match at position *i* is
  deferred; if position *i+1* finds a longer one, the byte at *i* is
  emitted as a literal (exactly Algorithm 3);
* a 3-byte match further than ``TOO_FAR`` (4096) is ignored, another
  zlib rule that increases the literal rate on DNA.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.deflate import constants as C
from repro.deflate.tokens import TokenStream

__all__ = ["LevelConfig", "LEVEL_CONFIGS", "Lz77Parser", "parse_lz77"]

_HASH_BITS = 15
_HASH_SIZE = 1 << _HASH_BITS
_HASH_MASK = _HASH_SIZE - 1
_HASH_SHIFT = 5
_WMASK = C.WINDOW_SIZE - 1

#: zlib's MIN_LOOKAHEAD: matches never start closer than this to the
#: window edge, so the effective maximum distance is W - 262.
_MIN_LOOKAHEAD = C.MAX_MATCH + C.MIN_MATCH + 1
MAX_DIST = C.WINDOW_SIZE - _MIN_LOOKAHEAD

#: zlib's TOO_FAR: a minimum-length match this far back costs more bits
#: than three literals, so it is discarded.
TOO_FAR = 4096


@dataclass(frozen=True)
class LevelConfig:
    """Per-level matcher tuning (zlib's ``configuration_table``)."""

    good_length: int  #: reduce chain search when previous match >= this
    max_lazy: int     #: (lazy) don't search when previous match >= this;
                      #: (fast) don't insert hash for matches longer than this
    nice_length: int  #: stop chain search when a match >= this is found
    max_chain: int    #: maximum hash-chain positions examined
    lazy: bool        #: deflate_slow (non-greedy) vs deflate_fast (greedy)


#: zlib's tuning table; levels 1-3 are greedy, 4-9 lazy — the split the
#: paper's Section V-B highlights.
LEVEL_CONFIGS: dict[int, LevelConfig] = {
    1: LevelConfig(4, 4, 8, 4, lazy=False),
    2: LevelConfig(4, 5, 16, 8, lazy=False),
    3: LevelConfig(4, 6, 32, 32, lazy=False),
    4: LevelConfig(4, 4, 16, 16, lazy=True),
    5: LevelConfig(8, 16, 32, 32, lazy=True),
    6: LevelConfig(8, 16, 128, 128, lazy=True),
    7: LevelConfig(8, 32, 128, 256, lazy=True),
    8: LevelConfig(32, 128, C.MAX_MATCH, 1024, lazy=True),
    9: LevelConfig(32, C.MAX_MATCH, C.MAX_MATCH, 4096, lazy=True),
}


def _hash3(data, i: int) -> int:
    """zlib's 3-byte rolling hash, computed directly."""
    return ((data[i] << (2 * _HASH_SHIFT)) ^ (data[i + 1] << _HASH_SHIFT) ^ data[i + 2]) & _HASH_MASK


class Lz77Parser:
    """Single-shot LZ77 parser over an in-memory buffer.

    Produces a :class:`~repro.deflate.tokens.TokenStream`; the entropy
    coder in :mod:`repro.deflate.deflate` consumes it block by block.
    """

    def __init__(
        self,
        data: bytes,
        level: int = 6,
        min_match: int = C.MIN_MATCH,
        dictionary: bytes = b"",
    ) -> None:
        if level not in LEVEL_CONFIGS:
            raise ValueError(f"level must be 1-9, got {level}")
        if not C.MIN_MATCH <= min_match <= C.MAX_MATCH:
            raise ValueError(f"min_match must be in [3, 258], got {min_match}")
        dictionary = bytes(dictionary)[-C.WINDOW_SIZE:]
        #: Bytes of preset dictionary prepended to the parse buffer.
        #: Matches may reach into it but tokens are only emitted for
        #: the payload — this is how pigz-style parallel compression
        #: keeps cross-chunk matches (zlib's deflateSetDictionary).
        self.dict_len = len(dictionary)
        self.data = dictionary + bytes(data)
        self.config = LEVEL_CONFIGS[level]
        self.level = level
        #: Minimum accepted match length.  DEFLATE's floor is 3 (gzip,
        #: zlib); fast "compression level: fastest" encoders common in
        #: sequencing pipelines (e.g. Intel ISA-L igzip) use 8, which
        #: makes their streams literal-rich — the weak-compressor
        #: persona behind the paper's "lowest" Table I stratum.
        self.min_match = min_match
        self.head = [-1] * _HASH_SIZE
        self.prev = [0] * C.WINDOW_SIZE
        # Index the dictionary so payload positions can match into it.
        for i in range(min(self.dict_len, len(self.data) - 2)):
            self._insert(i)

    # -- hash chain ---------------------------------------------------------

    def _insert(self, i: int) -> int:
        """Insert position ``i`` into the hash chain; return the previous head."""
        h = _hash3(self.data, i)
        cand = self.head[h]
        self.prev[i & _WMASK] = cand
        self.head[h] = i
        return cand

    def _longest_match(self, i: int, cur_match: int, prev_length: int) -> tuple[int, int]:
        """zlib's ``longest_match``: best (length, distance) at ``i``.

        ``prev_length`` seeds the best-so-far (lazy parsing only beats
        the previous position's match if strictly longer).
        """
        data = self.data
        cfg = self.config
        chain = cfg.max_chain
        if prev_length >= cfg.good_length:
            chain >>= 2
        best_len = prev_length
        best_match = -1
        limit = i - MAX_DIST if i > MAX_DIST else -1
        max_len = min(C.MAX_MATCH, len(data) - i)
        nice = min(cfg.nice_length, max_len)
        if max_len < C.MIN_MATCH:
            return 0, 0

        scan_end = data[i + best_len] if best_len < max_len else -1
        first0 = data[i]
        first1 = data[i + 1]

        while True:
            m = cur_match
            # Cheap pre-checks before the full prefix comparison.
            if (
                best_len >= max_len
                or data[m + best_len] != scan_end
                or data[m] != first0
                or data[m + 1] != first1
            ):
                pass
            else:
                # Common-prefix length, widening by slice comparison.
                n = 2
                step = 16
                while n + step <= max_len and data[m + n : m + n + step] == data[i + n : i + n + step]:
                    n += step
                while n < max_len and data[m + n] == data[i + n]:
                    n += 1
                if n > best_len:
                    best_len = n
                    best_match = m
                    if n >= nice:
                        break
                    if best_len < max_len:
                        scan_end = data[i + best_len]
            chain -= 1
            if chain == 0:
                break
            cur_match = self.prev[cur_match & _WMASK]
            if cur_match <= limit or cur_match < 0 or cur_match >= m:
                break

        if best_match < 0 or best_len < C.MIN_MATCH:
            return 0, 0
        return best_len, i - best_match

    # -- parsing strategies ---------------------------------------------------

    def parse(self) -> TokenStream:
        """Run the level-appropriate strategy over the whole buffer."""
        if self.config.lazy:
            return self._parse_lazy()
        return self._parse_fast()

    def _parse_fast(self) -> TokenStream:
        """Greedy parsing (zlib ``deflate_fast``; gzip levels 1-3)."""
        data = self.data
        n = len(data)
        cfg = self.config
        tokens = TokenStream()
        hash_limit = n - 2  # last position with 3 bytes to hash
        i = self.dict_len
        while i < n:
            match_len = 0
            match_dist = 0
            if i < hash_limit:
                cand = self._insert(i)
                if cand >= 0 and i - cand <= MAX_DIST:
                    match_len, match_dist = self._longest_match(i, cand, C.MIN_MATCH - 1)
                    if match_len == C.MIN_MATCH and match_dist > TOO_FAR:
                        # zlib's deflate_fast also drops minimum-length
                        # matches that are too far back to pay off.
                        match_len = 0
                    if match_len < self.min_match:
                        match_len = 0
            if match_len >= C.MIN_MATCH:
                tokens.add_match(match_dist, match_len)
                if match_len <= cfg.max_lazy:
                    # Insert every covered position into the chains.
                    for j in range(i + 1, min(i + match_len, hash_limit)):
                        self._insert(j)
                i += match_len
            else:
                tokens.add_literal(data[i])
                i += 1
        return tokens

    def _parse_lazy(self) -> TokenStream:
        """Lazy / non-greedy parsing (zlib ``deflate_slow``; levels 4-9).

        This is Algorithm 3 of the paper: a match found at ``i`` is held
        back one position; if ``i+1`` yields a strictly longer match the
        byte at ``i`` becomes a literal.
        """
        data = self.data
        n = len(data)
        cfg = self.config
        tokens = TokenStream()
        hash_limit = n - 2

        match_available = False
        prev_length = C.MIN_MATCH - 1
        prev_dist = 0
        i = self.dict_len
        while i < n:
            match_len = C.MIN_MATCH - 1
            match_dist = 0
            if i < hash_limit:
                cand = self._insert(i)
                if cand >= 0 and prev_length < cfg.max_lazy and i - cand <= MAX_DIST:
                    match_len, match_dist = self._longest_match(i, cand, C.MIN_MATCH - 1)
                    if match_len == C.MIN_MATCH and match_dist > TOO_FAR:
                        # zlib: too-far minimum matches are worse than
                        # literals; drop them.
                        match_len = C.MIN_MATCH - 1
                    if match_len < self.min_match:
                        match_len = C.MIN_MATCH - 1

            if prev_length >= C.MIN_MATCH and match_len <= prev_length:
                # The previous position's match wins; emit it.
                tokens.add_match(prev_dist, prev_length)
                # Insert the covered positions (zlib skips the last two,
                # which were / will be inserted by the main loop).
                for j in range(i + 1, min(i + prev_length - 1, hash_limit)):
                    self._insert(j)
                i += prev_length - 1
                match_available = False
                prev_length = C.MIN_MATCH - 1
            elif match_available:
                # Previous byte loses to the new, longer match: literal.
                tokens.add_literal(data[i - 1])
                prev_length = match_len
                prev_dist = match_dist
                i += 1
            else:
                match_available = True
                prev_length = match_len
                prev_dist = match_dist
                i += 1

        if match_available:
            tokens.add_literal(data[n - 1])
        return tokens


def parse_lz77(
    data: bytes,
    level: int = 6,
    min_match: int = C.MIN_MATCH,
    dictionary: bytes = b"",
) -> TokenStream:
    """Parse ``data`` into an LZ77 token stream at the given gzip level.

    ``min_match`` > 3 selects the weak-compressor persona;
    ``dictionary`` presets up to 32 KiB of match history (see
    :class:`Lz77Parser`).
    """
    return Lz77Parser(data, level, min_match=min_match, dictionary=dictionary).parse()
