"""Incremental compression/decompression objects (zlib-object style).

``DeflateCompressor`` mirrors ``zlib.compressobj`` semantics at the
granularity the reproduction needs: buffered ``compress()`` calls, and
``flush(mode)`` with the three DEFLATE-visible modes —

* ``SYNC_FLUSH``  — close the current blocks, append an empty stored
  block, byte-align; the stream stays open (pigz's joint);
* ``FULL_FLUSH``  — ``SYNC_FLUSH`` that also resets the match history,
  making the flush point a *restartable* boundary (what "blocked
  gzip" creation uses: a decompressor can start there with an empty
  window);
* ``FINISH``      — emit the final block.

``InflateDecompressor`` is the streaming counterpart: feed compressed
bytes, read decompressed bytes out, with bounded internal state.

These are the primitives behind :mod:`repro.core.pigz` and the blocked
format discussions in the paper's Section II.
"""

from __future__ import annotations

from repro.deflate import constants as C
from repro.deflate.deflate import compress_tokens
from repro.deflate.inflate import inflate
from repro.deflate.lz77 import parse_lz77
from repro.errors import DeflateError, ReproError

__all__ = ["SYNC_FLUSH", "FULL_FLUSH", "FINISH", "DeflateCompressor", "InflateDecompressor"]

SYNC_FLUSH = "sync"
FULL_FLUSH = "full"
FINISH = "finish"


class DeflateCompressor:
    """Buffered incremental DEFLATE compressor.

    Input accumulates until a flush; each flush parses the pending
    buffer against the retained 32 KiB history (except after
    ``FULL_FLUSH``, which clears it) and emits byte-aligned output.
    """

    def __init__(self, level: int = 6) -> None:
        if not 1 <= level <= 9:
            raise ValueError("level must be 1-9")
        self.level = level
        self._pending = bytearray()
        self._history = b""
        self._finished = False

    def compress(self, data: bytes) -> bytes:
        """Buffer input; output is produced by :meth:`flush`."""
        if self._finished:
            raise ReproError("compressor already finished", stage="streaming")
        self._pending += data
        return b""

    def flush(self, mode: str = SYNC_FLUSH) -> bytes:
        """Emit all pending input as complete, byte-aligned blocks."""
        if self._finished:
            raise ReproError("compressor already finished", stage="streaming")
        if mode not in (SYNC_FLUSH, FULL_FLUSH, FINISH):
            raise ValueError(f"unknown flush mode {mode!r}")
        chunk = bytes(self._pending)
        self._pending.clear()
        tokens = parse_lz77(chunk, self.level, dictionary=self._history)
        out = compress_tokens(
            chunk,
            tokens,
            bfinal=(mode == FINISH),
            sync_flush=(mode != FINISH),
        )
        if mode == FULL_FLUSH:
            self._history = b""
        else:
            self._history = (self._history + chunk)[-C.WINDOW_SIZE:]
        if mode == FINISH:
            self._finished = True
        return out

    @property
    def finished(self) -> bool:
        return self._finished


class InflateDecompressor:
    """Streaming DEFLATE decompressor with bounded retained state.

    Feed arbitrary slices of the compressed stream; complete blocks
    decode eagerly, a trailing partial block waits for more input.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._consumed_bits = 0
        self._window = b""
        self._finished = False
        self._out = bytearray()

    def decompress(self, data: bytes) -> bytes:
        """Feed compressed bytes; return whatever decodes completely."""
        if self._finished:
            if data:
                raise ReproError("data after the final block", stage="streaming")
            out = bytes(self._out)
            self._out.clear()
            return out
        self._buffer += data
        # Decode block by block; stop at the first incomplete block.
        while not self._finished:
            try:
                result = inflate(
                    self._buffer,
                    start_bit=self._consumed_bits,
                    window=self._window,
                    max_blocks=1,
                )
            except DeflateError:
                # Partial block: wait for more input.  (A genuinely
                # corrupt stream will fail again at finish().)  Only
                # stream-format errors mean "incomplete" — anything
                # else (MemoryError, a decoder bug) must propagate
                # instead of masquerading as a short read.
                break
            if not result.blocks:
                break
            block = result.blocks[0]
            # A block is only trustworthy if it ended strictly before
            # the buffer end (otherwise it may have consumed zero-padded
            # peek bits that the next feed would change) — except that
            # a final block is always complete.
            if result.end_bit > 8 * len(self._buffer) - 8 and not result.final_seen:
                break
            self._out += result.data
            self._window = (self._window + result.data)[-C.WINDOW_SIZE:]
            self._consumed_bits = result.end_bit
            if result.final_seen:
                self._finished = True
            # Trim consumed whole bytes to keep the buffer bounded.
            whole = self._consumed_bits // 8
            if whole > 65536:
                del self._buffer[:whole]
                self._consumed_bits -= 8 * whole
        out = bytes(self._out)
        self._out.clear()
        return out

    def finish(self) -> bytes:
        """Assert stream completion and drain remaining output."""
        out = self.decompress(b"")
        if not self._finished:
            raise ReproError("stream ended before its final block", stage="streaming")
        return out

    @property
    def finished(self) -> bool:
        return self._finished
