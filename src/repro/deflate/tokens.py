"""Token-stream representation of a DEFLATE block's LZ77 content.

A *token* is either a literal byte or an (offset, length) match — the
``mixed LZ77-style parsing`` of Definition 2 in the paper.  The inflate
decoder can capture the token stream it decodes, and the analysis code
(Section IV-C / V-D reproductions) derives the paper's statistics from
it: the average match offset ``o_a``, the average match length ``l_a``,
and the literal rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Token", "TokenStream", "TokenStats"]


@dataclass(frozen=True)
class Token:
    """One LZ77 token.

    ``offset == 0`` encodes a literal whose byte value is ``value``;
    otherwise the token is a match of length ``value`` at distance
    ``offset`` behind the cursor.
    """

    offset: int
    value: int

    @property
    def is_literal(self) -> bool:
        return self.offset == 0

    @property
    def length(self) -> int:
        """Number of output bytes this token produces."""
        return 1 if self.offset == 0 else self.value

    @classmethod
    def literal(cls, byte: int) -> "Token":
        return cls(0, byte)

    @classmethod
    def match(cls, offset: int, length: int) -> "Token":
        return cls(offset, length)


@dataclass
class TokenStats:
    """Aggregate statistics of a token stream (Section IV-C quantities)."""

    num_literals: int
    num_matches: int
    total_match_length: int
    total_match_offset: int
    output_length: int

    @property
    def mean_offset(self) -> float:
        """The paper's ``o_a``: average match offset."""
        return self.total_match_offset / self.num_matches if self.num_matches else 0.0

    @property
    def mean_length(self) -> float:
        """The paper's ``l_a``: average match length."""
        return self.total_match_length / self.num_matches if self.num_matches else 0.0

    @property
    def literal_fraction(self) -> float:
        """Fraction of *output bytes* that came from literal tokens."""
        return self.num_literals / self.output_length if self.output_length else 0.0


class TokenStream:
    """Growable sequence of tokens stored as columnar (numpy) chunks.

    Two append paths feed the same storage: the pure decoder appends
    scalar tokens with :meth:`add_literal` / :meth:`add_match` (buffered
    in plain lists), and the vectorized kernel hands over whole blocks
    at once with :meth:`add_columnar` — int32 column arrays are adopted
    as chunks without a per-token Python loop.  Readers always go
    through :meth:`offsets` / :meth:`values`, which concatenate the
    chunks once and memoize the result until the next append;
    :class:`Token` objects are only materialized lazily, one at a time,
    by indexing or iteration.
    """

    __slots__ = (
        "_chunks",
        "_pend_offsets",
        "_pend_values",
        "_len",
        "_cache",
        "_list_cache",
    )

    def __init__(self) -> None:
        self._chunks: list[tuple[np.ndarray, np.ndarray]] = []
        self._pend_offsets: list[int] = []
        self._pend_values: list[int] = []
        self._len = 0
        self._cache: tuple[np.ndarray, np.ndarray] | None = None
        self._list_cache: tuple[list[int], list[int]] | None = None

    def __len__(self) -> int:
        return self._len

    def add_literal(self, byte: int) -> None:
        self._pend_offsets.append(0)
        self._pend_values.append(byte)
        self._len += 1
        self._cache = None
        self._list_cache = None

    def add_match(self, offset: int, length: int) -> None:
        self._pend_offsets.append(offset)
        self._pend_values.append(length)
        self._len += 1
        self._cache = None
        self._list_cache = None

    def add_columnar(self, offsets: np.ndarray, values: np.ndarray) -> None:
        """Adopt row-aligned offset/value arrays as one chunk.

        ``offsets[i] == 0`` marks row ``i`` a literal with byte value
        ``values[i]``, exactly as in :class:`Token`.  The arrays are
        adopted, not copied: the caller must not mutate them afterwards.
        """
        if len(offsets) != len(values):
            raise ValueError("offsets and values must be row-aligned")
        if not len(offsets):
            return
        self._flush_pending()
        self._chunks.append(
            (
                np.ascontiguousarray(offsets, dtype=np.int32),
                np.ascontiguousarray(values, dtype=np.int32),
            )
        )
        self._len += len(offsets)
        self._cache = None
        self._list_cache = None

    def _flush_pending(self) -> None:
        if self._pend_offsets:
            self._chunks.append(
                (
                    np.asarray(self._pend_offsets, dtype=np.int32),
                    np.asarray(self._pend_values, dtype=np.int32),
                )
            )
            self._pend_offsets = []
            self._pend_values = []

    def _columns(self) -> tuple[np.ndarray, np.ndarray]:
        if self._cache is None:
            self._flush_pending()
            if not self._chunks:
                empty = np.empty(0, dtype=np.int32)
                self._cache = (empty, empty)
            elif len(self._chunks) == 1:
                self._cache = self._chunks[0]
            else:
                self._cache = (
                    np.concatenate([c[0] for c in self._chunks]),
                    np.concatenate([c[1] for c in self._chunks]),
                )
                self._chunks = [self._cache]
        return self._cache

    def __getitem__(self, i: int) -> Token:
        offsets, values = self._columns()
        return Token(int(offsets[i]), int(values[i]))

    def __iter__(self):
        offsets, values = self._columns()
        for off, val in zip(offsets.tolist(), values.tolist()):
            yield Token(off, val)

    def lists(self) -> tuple[list[int], list[int]]:
        """Offset/value columns as plain Python lists (memoized).

        The compressor's per-symbol frequency loops index tokens with
        Python ints millions of times; list indexing beats numpy scalar
        indexing there, so this keeps a parallel list view cached.
        """
        if self._list_cache is None:
            offsets, values = self._columns()
            self._list_cache = (offsets.tolist(), values.tolist())
        return self._list_cache

    def offsets(self) -> np.ndarray:
        """Match offsets (0 rows are literals)."""
        return self._columns()[0]

    def values(self) -> np.ndarray:
        """Literal bytes / match lengths, row-aligned with :meth:`offsets`."""
        return self._columns()[1]

    def stats(self) -> TokenStats:
        """Compute aggregate statistics in one vectorised pass."""
        offsets = self.offsets()
        values = self.values()
        is_match = offsets > 0
        num_matches = int(is_match.sum())
        num_literals = len(offsets) - num_matches
        total_len = int(values[is_match].sum()) if num_matches else 0
        total_off = int(offsets[is_match].sum()) if num_matches else 0
        return TokenStats(
            num_literals=num_literals,
            num_matches=num_matches,
            total_match_length=total_len,
            total_match_offset=total_off,
            output_length=num_literals + total_len,
        )
