"""Token-stream representation of a DEFLATE block's LZ77 content.

A *token* is either a literal byte or an (offset, length) match — the
``mixed LZ77-style parsing`` of Definition 2 in the paper.  The inflate
decoder can capture the token stream it decodes, and the analysis code
(Section IV-C / V-D reproductions) derives the paper's statistics from
it: the average match offset ``o_a``, the average match length ``l_a``,
and the literal rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Token", "TokenStream", "TokenStats"]


@dataclass(frozen=True)
class Token:
    """One LZ77 token.

    ``offset == 0`` encodes a literal whose byte value is ``value``;
    otherwise the token is a match of length ``value`` at distance
    ``offset`` behind the cursor.
    """

    offset: int
    value: int

    @property
    def is_literal(self) -> bool:
        return self.offset == 0

    @property
    def length(self) -> int:
        """Number of output bytes this token produces."""
        return 1 if self.offset == 0 else self.value

    @classmethod
    def literal(cls, byte: int) -> "Token":
        return cls(0, byte)

    @classmethod
    def match(cls, offset: int, length: int) -> "Token":
        return cls(offset, length)


@dataclass
class TokenStats:
    """Aggregate statistics of a token stream (Section IV-C quantities)."""

    num_literals: int
    num_matches: int
    total_match_length: int
    total_match_offset: int
    output_length: int

    @property
    def mean_offset(self) -> float:
        """The paper's ``o_a``: average match offset."""
        return self.total_match_offset / self.num_matches if self.num_matches else 0.0

    @property
    def mean_length(self) -> float:
        """The paper's ``l_a``: average match length."""
        return self.total_match_length / self.num_matches if self.num_matches else 0.0

    @property
    def literal_fraction(self) -> float:
        """Fraction of *output bytes* that came from literal tokens."""
        return self.num_literals / self.output_length if self.output_length else 0.0


class TokenStream:
    """Growable sequence of tokens with columnar (numpy) export.

    The decoder appends with :meth:`add_literal` / :meth:`add_match`;
    analysis code reads the columnar views, which avoid creating one
    Python object per token for multi-million-token streams.
    """

    __slots__ = ("_offsets", "_values")

    def __init__(self) -> None:
        self._offsets: list[int] = []
        self._values: list[int] = []

    def __len__(self) -> int:
        return len(self._offsets)

    def add_literal(self, byte: int) -> None:
        self._offsets.append(0)
        self._values.append(byte)

    def add_match(self, offset: int, length: int) -> None:
        self._offsets.append(offset)
        self._values.append(length)

    def __getitem__(self, i: int) -> Token:
        return Token(self._offsets[i], self._values[i])

    def __iter__(self):
        for off, val in zip(self._offsets, self._values):
            yield Token(off, val)

    def offsets(self) -> np.ndarray:
        """Match offsets (0 rows are literals)."""
        return np.asarray(self._offsets, dtype=np.int32)

    def values(self) -> np.ndarray:
        """Literal bytes / match lengths, row-aligned with :meth:`offsets`."""
        return np.asarray(self._values, dtype=np.int32)

    def stats(self) -> TokenStats:
        """Compute aggregate statistics in one vectorised pass."""
        offsets = self.offsets()
        values = self.values()
        is_match = offsets > 0
        num_matches = int(is_match.sum())
        num_literals = len(offsets) - num_matches
        total_len = int(values[is_match].sum()) if num_matches else 0
        total_off = int(offsets[is_match].sum()) if num_matches else 0
        return TokenStats(
            num_literals=num_literals,
            num_matches=num_matches,
            total_match_length=total_len,
            total_match_offset=total_off,
            output_length=num_literals + total_len,
        )
