"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause.  The
DEFLATE-specific errors mirror the failure classes used by the block-start
probing logic (Appendix X-A of the paper): a probe treats *any*
:class:`DeflateError` raised while decoding a candidate block as "this bit
offset is not a block start".
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class DeflateError(ReproError):
    """Base class for DEFLATE stream format violations."""


class BitstreamError(DeflateError):
    """Ran off the end of the bit stream, or an invalid bit-level request."""


class HuffmanError(DeflateError):
    """Invalid Huffman code specification (over/under-subscribed lengths,

    symbol count out of range, or an undecodable bit pattern).
    """


class BlockHeaderError(DeflateError):
    """Invalid DEFLATE block header (reserved BTYPE, bad stored-block

    LEN/NLEN complement, or malformed dynamic Huffman table preamble).
    """


class BackrefError(DeflateError):
    """A match back-reference points before the start of available history

    or its distance exceeds the 32 KiB window.
    """


class AsciiCheckError(DeflateError):
    """Strict-mode decode produced a byte outside the allowed ASCII set.

    Only raised by the probing decoder (Appendix X-A check); normal
    decompression accepts arbitrary bytes.
    """


class BlockSizeError(DeflateError):
    """Strict-mode decoded block size fell outside the plausible

    [1 KiB, 4 MiB] range used to reject false-positive block starts.
    """


class GzipFormatError(ReproError):
    """Invalid gzip (RFC 1952) or zlib (RFC 1950) container framing,

    or a checksum/length mismatch in the trailer.
    """


class SyncError(ReproError):
    """Block-start detection failed: no confirmed DEFLATE block was found

    in the searched region.
    """


class RandomAccessError(ReproError):
    """Random-access decompression could not produce the requested data

    (e.g. no sequence-resolved block before end of file).
    """
