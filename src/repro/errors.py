"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause.  The
DEFLATE-specific errors mirror the failure classes used by the block-start
probing logic (Appendix X-A of the paper): a probe treats *any*
:class:`DeflateError` raised while decoding a candidate block as "this bit
offset is not a block start".

Structured context
------------------

Forensic work (Section VI-B) needs more than a message: when a 40 GB
FASTQ archive fails to decompress, *where* it failed is the useful
fact.  Every :class:`ReproError` therefore carries three optional
context fields, populated at the raise site whenever the information is
available:

* ``bit_offset`` — absolute bit position in the compressed stream at
  (or near) which the failure occurred;
* ``chunk_index`` — which parallel chunk was being decoded (two-pass
  decompressor only);
* ``stage`` — which pipeline stage raised (``header``, ``inflate``,
  ``marker_inflate``, ``sync``, ``container``, ``trailer``, ``plan``,
  ``pass1``, ...).

The fields survive pickling, so errors captured in worker processes by
:meth:`repro.parallel.executor.Executor.map_outcomes` arrive intact.
Use :func:`annotate` to fill in fields an outer layer knows but the
raise site did not (it never overwrites existing context).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DeflateError",
    "BitstreamError",
    "HuffmanError",
    "BlockHeaderError",
    "BackrefError",
    "AsciiCheckError",
    "BlockSizeError",
    "GzipFormatError",
    "SyncError",
    "RandomAccessError",
    "ResourceLimitError",
    "SupervisionError",
    "DeadlineExceededError",
    "WorkerCrashError",
    "IndexIntegrityError",
    "annotate",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`.

    Parameters
    ----------
    message:
        Human-readable description of the failure.
    bit_offset / chunk_index / stage:
        Optional structured context (see module docstring).  Keyword
        only, so every historical ``ReproError("msg")`` call site keeps
        working unchanged.
    """

    def __init__(
        self,
        message: str = "",
        *,
        bit_offset: int | None = None,
        chunk_index: int | None = None,
        stage: str | None = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.bit_offset = bit_offset
        self.chunk_index = chunk_index
        self.stage = stage

    def context(self) -> dict:
        """The populated context fields as a plain dict (for reports)."""
        out: dict = {}
        if self.stage is not None:
            out["stage"] = self.stage
        if self.chunk_index is not None:
            out["chunk_index"] = self.chunk_index
        if self.bit_offset is not None:
            out["bit_offset"] = self.bit_offset
        return out

    def __str__(self) -> str:
        parts = []
        if self.stage is not None:
            parts.append(f"stage={self.stage}")
        if self.chunk_index is not None:
            parts.append(f"chunk={self.chunk_index}")
        if self.bit_offset is not None:
            parts.append(
                f"bit {self.bit_offset}"
                f" (byte {self.bit_offset >> 3}+{self.bit_offset & 7})"
            )
        if not parts:
            return self.message
        return f"{self.message} [{', '.join(parts)}]"

    def __reduce__(self):
        # Keyword-only context would be lost by the default exception
        # pickling (which replays ``cls(*args)``); carry it as state so
        # errors cross process boundaries intact.
        return (
            type(self),
            (self.message,),
            {
                "bit_offset": self.bit_offset,
                "chunk_index": self.chunk_index,
                "stage": self.stage,
            },
        )

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


def annotate(err: BaseException, **context) -> BaseException:
    """Fill missing context fields on a :class:`ReproError` in place.

    Only ``None`` fields are filled — the raise site's own context (the
    most precise available) always wins.  Non-:class:`ReproError`
    exceptions are returned untouched, so callers can annotate
    indiscriminately in ``except`` blocks.
    """
    if isinstance(err, ReproError):
        for key, value in context.items():
            if getattr(err, key, None) is None:
                setattr(err, key, value)
    return err


class DeflateError(ReproError):
    """Base class for DEFLATE stream format violations."""


class BitstreamError(DeflateError):
    """Ran off the end of the bit stream, or an invalid bit-level request."""


class HuffmanError(DeflateError):
    """Invalid Huffman code specification (over/under-subscribed lengths,

    symbol count out of range, or an undecodable bit pattern).
    """


class BlockHeaderError(DeflateError):
    """Invalid DEFLATE block header (reserved BTYPE, bad stored-block

    LEN/NLEN complement, or malformed dynamic Huffman table preamble).
    """


class BackrefError(DeflateError):
    """A match back-reference points before the start of available history

    or its distance exceeds the 32 KiB window.
    """


class AsciiCheckError(DeflateError):
    """Strict-mode decode produced a byte outside the allowed ASCII set.

    Only raised by the probing decoder (Appendix X-A check); normal
    decompression accepts arbitrary bytes.
    """


class BlockSizeError(DeflateError):
    """Strict-mode decoded block size fell outside the plausible

    [1 KiB, 4 MiB] range used to reject false-positive block starts.
    """


class GzipFormatError(ReproError):
    """Invalid gzip (RFC 1952) or zlib (RFC 1950) container framing,

    or a checksum/length mismatch in the trailer.
    """


class SyncError(ReproError):
    """Block-start detection failed: no confirmed DEFLATE block was found

    in the searched region.
    """


class RandomAccessError(ReproError):
    """Random-access decompression could not produce the requested data

    (e.g. no sequence-resolved block before end of file).
    """


class ResourceLimitError(ReproError):
    """A configured :class:`repro.robustness.limits.ResourceBudget` was

    exceeded (output bytes, expansion ratio, or marker-buffer bytes).
    Raised *before* the offending allocation is made wherever the hot
    loops can predict it (match copies), and at the next block boundary
    otherwise, so resident memory stays bounded on hostile inputs
    (zip bombs).  Carries the standard bit_offset/chunk_index/stage
    context plus the limit that tripped.
    """

    def __init__(
        self,
        message: str = "",
        *,
        limit: str | None = None,
        bit_offset: int | None = None,
        chunk_index: int | None = None,
        stage: str | None = None,
    ) -> None:
        super().__init__(
            message, bit_offset=bit_offset, chunk_index=chunk_index, stage=stage
        )
        #: Which budget field tripped (``output_bytes`` /
        #: ``expansion_ratio`` / ``marker_buffer_bytes``).
        self.limit = limit

    def __reduce__(self):
        cls, args, state = super().__reduce__()
        state = dict(state)
        state["limit"] = self.limit
        return (cls, args, state)


class SupervisionError(ReproError):
    """Base class for *execution* failures (as opposed to data failures):

    the worker running a task misbehaved, while the input bytes may be
    perfectly fine.  The supervision layer retries these; it never
    retries deterministic data errors (:class:`DeflateError` etc.).
    """


class DeadlineExceededError(SupervisionError):
    """A supervised task did not finish within its per-task deadline.

    For process pools the hung worker is killed and the pool rebuilt;
    for thread pools the runaway thread is abandoned (threads cannot be
    killed) and its eventual result discarded.
    """


class WorkerCrashError(SupervisionError):
    """A pool worker died (``BrokenProcessPool`` / abrupt exit) while

    running a supervised task.  The pool is rebuilt before any retry.
    """


class IndexIntegrityError(ReproError):
    """A persisted index file (zran checkpoints, BGZF block table) failed

    its integrity check on load: bad magic, unsupported version,
    truncation, or checksum mismatch.  Callers can treat this as
    "rebuild the index" (see ``load_or_rebuild``).
    """
