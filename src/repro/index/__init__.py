"""Checkpoint index for gzip random access (paper related work, ref [11])."""

from repro.index.zran import Checkpoint, GzipIndex, build_index

__all__ = ["build_index", "GzipIndex", "Checkpoint"]
