"""Checkpoint index for gzip random access (paper related work, ref [11]).

Index sidecar files are persisted crash-safely: sealed with a version
and CRC32 (:mod:`repro.index.integrity`), written via atomic rename,
and self-healing on load (:func:`repro.index.zran.load_or_rebuild`).
:class:`repro.index.seekable.SeekableGzipReader` is the unified
front door: one file-like reader over the zran checkpoints, the BGZF
block table, and the pugz cold start.
"""

from repro.index.integrity import atomic_write_bytes, seal, unseal
from repro.index.seekable import SeekableGzipReader, SeekStats, detect_backend
from repro.index.zran import Checkpoint, GzipIndex, build_index, load_or_rebuild

__all__ = [
    "build_index",
    "GzipIndex",
    "Checkpoint",
    "load_or_rebuild",
    "SeekableGzipReader",
    "SeekStats",
    "detect_backend",
    "seal",
    "unseal",
    "atomic_write_bytes",
]
