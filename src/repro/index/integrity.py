"""Crash-safe persistence for index sidecar files.

A random-access index (zran checkpoints, BGZF block tables) is derived
state: losing it costs a rebuild, but *silently corrupted* index data
is far worse — a bit-flipped checkpoint window decodes garbage with no
error anywhere.  This module makes index files fail loudly instead:

* every file is a **sealed envelope**: magic, a 4-byte kind tag, a
  format version, the payload length, and a CRC32 of the payload —
  truncation, bit flips and wrong-file mistakes are all detected at
  load as a structured :class:`~repro.errors.IndexIntegrityError`;
* writes are **atomic**: the blob goes to a temp file in the target
  directory, is fsynced, then ``os.replace``d over the destination —
  a crash mid-write leaves the old index intact, never a torn file;
* loaders offer an **auto-rebuild** path: on integrity failure the
  caller's builder runs and its output is atomically written back, so
  a damaged sidecar heals itself on first use.
"""

from __future__ import annotations

import os
import struct
import tempfile
import zlib

from repro.errors import IndexIntegrityError

__all__ = [
    "ENVELOPE_MAGIC",
    "ENVELOPE_VERSION",
    "atomic_write_bytes",
    "seal",
    "unseal",
]

#: Envelope magic — distinct from any payload's own magic so that a
#: legacy (unsealed) file is recognised as such, not as corruption.
ENVELOPE_MAGIC = b"RPIDX\x00\r\n"

#: Current envelope format version (the *payload* may version itself
#: separately; this versions the sealing layer).
ENVELOPE_VERSION = 2

# magic(8) kind(4) version(H) payload_len(Q) crc32(I)
_HEADER = struct.Struct("<8s4sHQI")


def seal(kind: bytes, payload: bytes, version: int = ENVELOPE_VERSION) -> bytes:
    """Wrap ``payload`` in a checksummed, versioned envelope.

    ``kind`` is a 4-byte tag naming the payload format (``b"ZRAN"``,
    ``b"BGZF"``) so an index of one kind can never be loaded as
    another.
    """
    if len(kind) != 4:
        raise ValueError(f"kind must be exactly 4 bytes, got {kind!r}")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return _HEADER.pack(ENVELOPE_MAGIC, kind, version, len(payload), crc) + payload


def unseal(blob: bytes, kind: bytes, max_version: int = ENVELOPE_VERSION) -> bytes:
    """Validate an envelope and return its payload.

    Raises :class:`~repro.errors.IndexIntegrityError` on bad magic,
    wrong kind, unsupported version, truncation, trailing junk, or
    checksum mismatch — every way a sidecar file can rot.
    """
    if len(blob) < _HEADER.size:
        raise IndexIntegrityError(
            f"index envelope truncated: {len(blob)} bytes < {_HEADER.size}-byte header",
            stage="index",
        )
    magic, got_kind, version, length, crc = _HEADER.unpack_from(blob)
    if magic != ENVELOPE_MAGIC:
        raise IndexIntegrityError(
            f"bad index envelope magic {magic!r}", stage="index"
        )
    if got_kind != kind:
        raise IndexIntegrityError(
            f"index kind mismatch: file is {got_kind!r}, expected {kind!r}",
            stage="index",
        )
    if version > max_version:
        raise IndexIntegrityError(
            f"index envelope version {version} newer than supported {max_version}",
            stage="index",
        )
    payload = blob[_HEADER.size:]
    if len(payload) != length:
        raise IndexIntegrityError(
            f"index payload length {len(payload)} != declared {length} "
            "(truncated or torn write)",
            stage="index",
        )
    actual = zlib.crc32(payload) & 0xFFFFFFFF
    if actual != crc:
        raise IndexIntegrityError(
            f"index payload checksum mismatch: stored {crc:#010x}, "
            f"computed {actual:#010x}",
            stage="index",
        )
    return payload


def atomic_write_bytes(path: str, blob: bytes) -> None:
    """Write ``blob`` to ``path`` atomically (tmp file + ``os.replace``).

    The temp file lives in the destination directory so the final
    rename never crosses a filesystem boundary; the data is fsynced
    before the rename, so after a crash the path holds either the old
    file or the complete new one — never a prefix.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(prefix=".idx-", dir=directory)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass  # already renamed or never created
        raise
