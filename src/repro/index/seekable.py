"""One random-access story over zran / BGZF / pugz — the seekable facade.

The repo grew three disjoint random-access mechanisms, mirroring the
paper's related-work landscape: a checkpoint index needing a prior
sequential pass (ref [11], :mod:`repro.index.zran`), the blocked BGZF
format whose structure is free random access (ref [12],
:mod:`repro.bgzf`), and pugz-style first-touch parallel decompression
(the paper itself, :mod:`repro.core`).  :class:`SeekableGzipReader`
unifies them behind a file-like interface, picking a backend by
inspecting the compressed stream:

========  ===========================================================
backend   when / what a seek costs
========  ===========================================================
``bgzf``  file is BGZF (BC extra field present): block-table lookup,
          decode one <= 64 KiB block — no index file needed, ever.
``zran``  plain gzip with an index (sidecar on disk, or built on
          first touch): decode at most ``span`` bytes from the
          nearest checkpoint.
========  ===========================================================

A plain gzip file with *no* index gets the pugz cold start: the first
access runs the two-pass parallel decompressor once, and the chunk
boundaries plus resolved 32 KiB contexts of that very pass become the
checkpoints (:func:`repro.core.parallel_index.pugz_build_index`) — so
the index costs nothing beyond the decompression the first touch needed
anyway, and every later seek is checkpoint-driven.  Give ``index_path``
to persist it (sealed + atomic, see :mod:`repro.index.integrity`) and
the cold start happens once per file, not once per process.

All reads are ranged: the compressed file is never materialised for a
warm seek, whichever backend serves it.
"""

from __future__ import annotations

import io
import os
import struct
from dataclasses import dataclass

from repro.deflate.constants import GZIP_MAGIC
from repro.errors import GzipFormatError, IndexIntegrityError, RandomAccessError
from repro.index.zran import GzipIndex, build_index
from repro.io.source import ByteSource

__all__ = [
    "BACKEND_BGZF",
    "BACKEND_ZRAN",
    "SeekStats",
    "SeekableGzipReader",
    "detect_backend",
]

BACKEND_BGZF = "bgzf"
BACKEND_ZRAN = "zran"


def detect_backend(source) -> str:
    """Sniff the compressed stream: ``"bgzf"`` when the first member
    carries the BGZF ``BC`` extra field, else ``"zran"`` for any other
    gzip stream.  Raises :class:`~repro.errors.GzipFormatError` for
    data that is not gzip at all."""
    src = ByteSource.wrap(source)
    head = src.pread(0, 12)
    if len(head) < 10 or head[:2] != GZIP_MAGIC:
        raise GzipFormatError("not a gzip stream", bit_offset=0, stage="seekable")
    flags = head[3]
    if head[2] == 8 and flags & 0x04 and len(head) >= 12:
        # FEXTRA present: scan the subfields for SI1='B', SI2='C',
        # SLEN=2 (the BGZF block-size field).
        (xlen,) = struct.unpack_from("<H", head, 10)
        extra = src.pread(12, xlen)
        pos = 0
        while pos + 4 <= len(extra):
            si1, si2 = extra[pos], extra[pos + 1]
            (slen,) = struct.unpack_from("<H", extra, pos + 2)
            if si1 == 0x42 and si2 == 0x43 and slen == 2:
                return BACKEND_BGZF
            pos += 4 + slen
    return BACKEND_ZRAN


@dataclass
class SeekStats:
    """Observable cost of the reads served so far (test/bench hook)."""

    backend: str = ""
    #: Inflate invocations made on behalf of reads (zran backend).
    inflate_calls: int = 0
    #: Uncompressed bytes produced by those invocations.
    decoded_bytes: int = 0
    #: Compressed bytes fetched with ranged I/O for those invocations.
    compressed_bytes_read: int = 0
    #: Cold starts: how many times an index was built from scratch.
    index_builds: int = 0
    #: True when the index came from a sidecar instead of a build.
    index_loaded: bool = False

    def reset_counters(self) -> None:
        """Zero the per-read counters (keeps backend/provenance flags)."""
        self.inflate_calls = 0
        self.decoded_bytes = 0
        self.compressed_bytes_read = 0


class SeekableGzipReader(io.RawIOBase):
    """File-like random access over gzip, multi-member gzip, or BGZF.

    Parameters
    ----------
    source:
        The compressed file: bytes, a path, a seekable binary file
        object, or a :class:`~repro.io.source.ByteSource`.
    index_path:
        Optional sidecar path for the zran backend: loaded when
        present and intact, written (sealed + atomic rename) after a
        cold-start build.  Ignored by the BGZF backend, whose block
        table is cheap to re-scan.
    span:
        Checkpoint spacing for a cold-start sequential build — the
        warm-seek cost ceiling.  Ignored when an index is loaded (the
        loaded index's own span applies).
    backend:
        Force ``"bgzf"`` or ``"zran"`` instead of sniffing.
    index:
        Pre-built :class:`~repro.index.zran.GzipIndex` to use directly.
    cold_start:
        ``"pugz"`` (default) builds a cold index with the parallel
        two-pass decompressor — the first touch *is* the index build;
        ``"sequential"`` uses the ref-[11] sequential build with exact
        ``span`` spacing.
    n_chunks / executor / kernel:
        Cold-start pugz parameters (parallelism and decode kernel).
    verify:
        BGZF backend: verify per-block CRC32/ISIZE on decode.
    """

    def __init__(
        self,
        source,
        *,
        index_path: str | None = None,
        span: int = 1 << 20,
        backend: str | None = None,
        index: GzipIndex | None = None,
        cold_start: str = "pugz",
        n_chunks: int = 8,
        executor: str = "serial",
        kernel: str | None = None,
        verify: bool = True,
    ) -> None:
        super().__init__()
        if cold_start not in ("pugz", "sequential"):
            raise ValueError(
                f"cold_start must be 'pugz' or 'sequential', got {cold_start!r}"
            )
        self._src = ByteSource.wrap(source)
        self._index_path = index_path
        self._span = span
        self._cold_start = cold_start
        self._n_chunks = n_chunks
        self._executor = executor
        self._kernel = kernel
        self._verify = verify
        self._pos = 0
        self._bgzf = None
        self._index = index
        self.stats = SeekStats()

        self.backend = backend if backend is not None else detect_backend(self._src)
        if self.backend not in (BACKEND_BGZF, BACKEND_ZRAN):
            raise ValueError(
                f"backend must be '{BACKEND_BGZF}' or '{BACKEND_ZRAN}', "
                f"got {self.backend!r}"
            )
        self.stats.backend = self.backend
        if self.backend == BACKEND_BGZF:
            # Late import: repro.bgzf.format imports repro.index.integrity,
            # which re-enters this package while it is initialising.
            from repro.bgzf.reader import BgzfReader

            self._bgzf = BgzfReader(self._src, verify=verify)
        elif self._index is None and index_path is not None:
            try:
                self._index = GzipIndex.load(index_path)
                self.stats.index_loaded = True
            except (FileNotFoundError, IndexIntegrityError, GzipFormatError):
                # Missing or damaged sidecar: fall through to the cold
                # start, which rebuilds and atomically replaces it.
                self._index = None

    # -- index lifecycle ----------------------------------------------

    def _ensure_index(self) -> GzipIndex:
        """The zran index, building it on first need (the cold start)."""
        if self._index is None:
            if self._cold_start == "pugz":
                # Late import: repro.core.__init__ imports
                # parallel_index, which imports repro.index back.
                from repro.core.parallel_index import pugz_build_index

                _, self._index = pugz_build_index(
                    self._src,
                    n_chunks=self._n_chunks,
                    executor=self._executor,
                    kernel=self._kernel,
                )
            else:
                self._index = build_index(self._src, span=self._span)
            self.stats.index_builds += 1
            if self._index_path is not None:
                self._index.save(self._index_path)
        return self._index

    @property
    def index(self) -> GzipIndex | None:
        """The zran index, if one exists yet (``None`` before the cold
        start on the zran backend; always ``None`` on BGZF)."""
        return self._index

    @property
    def usize(self) -> int:
        """Total uncompressed size (triggers the cold start on an
        un-indexed zran source — size is not known without it)."""
        if self._bgzf is not None:
            return len(self._bgzf)
        return self._ensure_index().usize

    def __len__(self) -> int:
        return self.usize

    # -- positional reads ---------------------------------------------

    def pread(self, uoffset: int, size: int) -> bytes:
        """Read ``size`` uncompressed bytes at ``uoffset`` without
        moving the cursor.  Reads straddling EOF return short; reads
        entirely past EOF return ``b""``.
        """
        if size < 0:
            raise ValueError("size must be non-negative")
        if uoffset < 0:
            raise RandomAccessError(
                f"negative read offset {uoffset}", stage="seekable"
            )
        if self._bgzf is not None:
            return self._bgzf.read_at(uoffset, size)
        idx = self._ensure_index()
        if uoffset >= idx.usize:
            return b""
        return idx.read_at(
            self._src, uoffset, size, stats=self.stats, kernel=self._kernel
        )

    # -- io.RawIOBase interface ---------------------------------------

    def readable(self) -> bool:
        return True

    def seekable(self) -> bool:
        return True

    def seek(self, offset: int, whence: int = io.SEEK_SET) -> int:
        if whence == io.SEEK_SET:
            pos = offset
        elif whence == io.SEEK_CUR:
            pos = self._pos + offset
        elif whence == io.SEEK_END:
            pos = self.usize + offset
        else:
            raise ValueError(f"invalid whence {whence}")
        if pos < 0:
            raise RandomAccessError(
                f"seek to negative offset {pos}", stage="seekable"
            )
        self._pos = pos
        return pos

    def tell(self) -> int:
        return self._pos

    def read(self, size: int = -1) -> bytes:
        if size is None or size < 0:
            size = max(0, self.usize - self._pos)
        out = self.pread(self._pos, size)
        self._pos += len(out)
        return out

    def readinto(self, b) -> int:
        chunk = self.read(len(b))
        b[: len(chunk)] = chunk
        return len(chunk)

    def close(self) -> None:
        if not self.closed:
            self._src.close()
        super().close()
