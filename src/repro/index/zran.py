"""Decompression index for plain gzip files (paper ref [11], Heng Li).

The related-work alternative to undetermined-context random access:
*one* initial sequential decompression records checkpoints — (bit
offset, 32 KiB window, uncompressed offset) — after which any location
is reachable by decoding at most ``span`` bytes from the nearest
checkpoint with a fully *known* context.  The trade-offs the paper
names: the index must be built (full sequential pass), stored
(~32 KiB/checkpoint raw; compressed here), and shipped alongside the
file — useless when a file is read only once, which is pugz's niche.

Checkpoint kinds
----------------

* ``"block"`` — a DEFLATE block boundary inside a member, carrying the
  32 KiB of history that precedes it.  Emitted so that no two
  consecutive checkpoints are more than ``span`` output bytes apart
  (the O(1)-seek guarantee: a warm seek decodes at most ``span`` bytes
  before reaching its target).
* ``"member"`` — the first block of a gzip member, whose DEFLATE
  context is *empty* by construction.  Multi-member ("blocked") files
  get one per member, keeping ``uoffset`` continuous across member
  boundaries; extraction never decodes across a member seam with a
  stale window, because decoding from any checkpoint stops at that
  member's BFINAL block and resumes from the next member checkpoint.

Sources and ranged I/O
----------------------

``build_index`` and ``read_at`` accept ``bytes`` (the historical
signature), a filesystem path, a seekable binary file object, or a
:class:`repro.io.source.ByteSource`.  Extraction reads only the
compressed range ``[checkpoint.byte_offset, next relevant checkpoint)``
— the whole file is never materialised for a warm seek.
"""

from __future__ import annotations

import io
import struct
import zlib
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field

from repro.deflate.constants import WINDOW_SIZE
from repro.deflate.gzipfmt import parse_gzip_header
from repro.deflate.inflate import inflate
from repro.errors import (
    DeflateError,
    GzipFormatError,
    IndexIntegrityError,
    RandomAccessError,
)
from repro.index.integrity import atomic_write_bytes, seal, unseal
from repro.io.source import ByteSource
from repro.units import BitOffset, ByteOffset

__all__ = [
    "CHECKPOINT_BLOCK",
    "CHECKPOINT_MEMBER",
    "Checkpoint",
    "GzipIndex",
    "build_index",
    "load_or_rebuild",
]

#: v1 blob magic (single-member, block checkpoints only) — still read.
_MAGIC = b"RPZIDX1\x00"
#: v2 blob magic (multi-member, kind-tagged checkpoints).
_MAGIC2 = b"RPZIDX2\x00"
#: Envelope kind tags (see repro.index.integrity): v1 payloads were
#: sealed as ZRAN; v2 payloads get their own tag so a v2-unaware
#: loader fails loudly instead of misparsing.
_KIND_V1 = b"ZRAN"
_KIND_V2 = b"ZRN2"

CHECKPOINT_BLOCK = "block"
CHECKPOINT_MEMBER = "member"

_KIND_CODES = {CHECKPOINT_BLOCK: 0, CHECKPOINT_MEMBER: 1}
_KIND_NAMES = {code: name for name, code in _KIND_CODES.items()}


@dataclass(frozen=True)
class Checkpoint:
    """One random-access entry point into the compressed stream."""

    #: Bit offset of a block header in the compressed stream.
    bit_offset: BitOffset
    #: Uncompressed offset the block starts at (continuous across
    #: member boundaries).
    uoffset: ByteOffset
    #: The 32 KiB of uncompressed data preceding ``uoffset`` (empty for
    #: member-boundary checkpoints: a fresh member has no history).
    window: bytes
    #: ``"block"`` or ``"member"`` (see module docstring).
    kind: str = CHECKPOINT_BLOCK

    @property
    def byte_offset(self) -> ByteOffset:
        """Byte containing the checkpoint's first header bit."""
        return ByteOffset(self.bit_offset >> 3)

    @property
    def intra_byte_bit(self) -> int:
        """Bit position of the header within :attr:`byte_offset`."""
        return self.bit_offset & 7


@dataclass
class GzipIndex:
    """Checkpoint list for a gzip file plus addressing helpers."""

    checkpoints: list[Checkpoint]
    usize: int
    span: int
    #: Compressed file size (0 when unknown — legacy v1 indexes).
    csize: int = 0
    _uoffsets: list[int] = field(default_factory=list, repr=False, compare=False)

    def _offsets(self) -> list[int]:
        """Sorted ``uoffset`` list for bisection (cached; checkpoint
        lists are immutable after construction by convention)."""
        if len(self._uoffsets) != len(self.checkpoints):
            self._uoffsets = [cp.uoffset for cp in self.checkpoints]
        return self._uoffsets

    @property
    def members(self) -> int:
        """Number of gzip members the index covers."""
        return sum(1 for cp in self.checkpoints if cp.kind == CHECKPOINT_MEMBER)

    def nearest_index(self, uoffset: ByteOffset) -> int:
        """Index of the last checkpoint at or before ``uoffset`` — O(log n)."""
        if not self.checkpoints:
            raise RandomAccessError("index has no checkpoints", stage="zran")
        if not 0 <= uoffset < self.usize:
            raise RandomAccessError(
                f"offset {uoffset} outside uncompressed size {self.usize}",
                stage="zran",
            )
        i = bisect_right(self._offsets(), uoffset) - 1
        if i < 0:
            # Possible only for an index whose first checkpoint is not
            # at offset 0 (e.g. a deliberately truncated export); the
            # old code silently decoded from checkpoint 0 here.
            raise RandomAccessError(
                f"offset {uoffset} precedes the first checkpoint "
                f"(uoffset {self.checkpoints[0].uoffset})",
                stage="zran",
            )
        return i

    def nearest(self, uoffset: ByteOffset) -> Checkpoint:
        """Last checkpoint at or before ``uoffset`` — O(log n)."""
        return self.checkpoints[self.nearest_index(uoffset)]

    # -- extraction ---------------------------------------------------

    def _compressed_bound(self, start_index: int, target_uoffset: int, src: ByteSource) -> int:
        """Byte offset past the compressed data needed to decode from
        checkpoint ``start_index`` up to output ``target_uoffset``.

        The first checkpoint at/after the target sits at a block
        boundary no earlier than the end of the block containing the
        last needed byte, so its byte offset bounds the read.
        """
        j = bisect_left(self._offsets(), target_uoffset, lo=start_index + 1)
        if j >= len(self.checkpoints):
            if self.csize:
                return min(self.csize, src.size())
            return src.size()
        return (self.checkpoints[j].bit_offset + 7) >> 3

    def _decode_from(
        self, src: ByteSource, index: int, need: int, stats=None, kernel=None
    ) -> bytes:
        """Decode ``need`` output bytes forward from checkpoint ``index``,
        reading only the compressed range that decode requires."""
        cp = self.checkpoints[index]
        start_byte = cp.byte_offset
        end_byte = self._compressed_bound(index, cp.uoffset + need, src)
        while True:
            comp = src.pread(start_byte, max(0, end_byte - start_byte))
            try:
                result = inflate(
                    comp,
                    start_bit=cp.intra_byte_bit,
                    window=cp.window,
                    max_output=need,
                    kernel=kernel,
                )
                break
            except DeflateError:
                # The bound was short (possible only for damaged or
                # legacy indexes whose checkpoints misplace a block
                # boundary): widen geometrically, give up only at EOF.
                total = src.size()
                if end_byte >= total:
                    raise
                end_byte = min(total, start_byte + 2 * max(1, end_byte - start_byte))
        if stats is not None:
            stats.inflate_calls += 1
            stats.decoded_bytes += len(result.data)
            stats.compressed_bytes_read += len(comp)
        return result.data

    def read_at(
        self, source, uoffset: ByteOffset, size: int, *, stats=None, kernel=None
    ) -> bytes:
        """Extract ``size`` uncompressed bytes starting at ``uoffset``.

        ``source`` may be the compressed file as bytes (the historical
        signature), a path, a binary file object, or a
        :class:`~repro.io.source.ByteSource`.  Spans crossing member
        seams are stitched from per-member decodes — a member's stale
        window is never carried into the next member.
        """
        if size < 0:
            raise ValueError("size must be non-negative")
        if not 0 <= uoffset <= self.usize:
            # Exactly usize is a legal file-like read at EOF (empty
            # result); anything past it is an addressing bug.
            raise RandomAccessError(
                f"offset {uoffset} outside uncompressed size {self.usize}",
                stage="zran",
            )
        src = ByteSource.wrap(source)
        out = bytearray()
        pos = uoffset
        remaining = size
        # Bounded: every iteration either appends at least one byte
        # (remaining shrinks) or raises.
        while remaining > 0 and pos < self.usize:
            i = self.nearest_index(pos)
            cp = self.checkpoints[i]
            skip = pos - cp.uoffset
            decoded = self._decode_from(src, i, skip + remaining, stats, kernel)
            take = decoded[skip : skip + remaining]
            if not take:
                # Decoding from the best checkpoint could not reach
                # ``pos``: the index lacks a member checkpoint past a
                # seam (a damaged or hand-edited export).
                raise RandomAccessError(
                    f"index cannot reach offset {pos}: decoding from "
                    f"checkpoint at uoffset {cp.uoffset} produced only "
                    f"{len(decoded)} bytes",
                    stage="zran",
                )
            out += take
            pos += len(take)
            remaining -= len(take)
        return bytes(out)

    # -- serialisation ------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise (windows are deflate-compressed: DNA windows
        shrink ~4x, making the index ~8 KiB per checkpoint)."""
        out = io.BytesIO()
        out.write(_MAGIC2)
        out.write(
            struct.pack(
                "<QQQI", self.usize, self.span, self.csize, len(self.checkpoints)
            )
        )
        for cp in self.checkpoints:
            cw = zlib.compress(cp.window, 6)
            out.write(
                struct.pack(
                    "<BQQI", _KIND_CODES[cp.kind], cp.bit_offset, cp.uoffset, len(cw)
                )
            )
            out.write(cw)
        return out.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "GzipIndex":
        if data[: len(_MAGIC2)] == _MAGIC2:
            return cls._parse_v2(data)
        if data[: len(_MAGIC)] == _MAGIC:
            return cls._parse_v1(data)
        raise GzipFormatError("not a gzip index blob", stage="zran")

    @classmethod
    def _parse_v1(cls, data: bytes) -> "GzipIndex":
        try:
            pos = len(_MAGIC)
            usize, span, n = struct.unpack_from("<QQI", data, pos)
            pos += 20
            cps = []
            for _ in range(n):
                bit_offset, uoffset, clen = struct.unpack_from("<QQI", data, pos)
                pos += 20
                if pos + clen > len(data):
                    raise IndexIntegrityError(
                        f"zran index truncated inside checkpoint {len(cps)}",
                        stage="zran",
                    )
                window = zlib.decompress(data[pos : pos + clen])
                pos += clen
                # v1 indexed a single member whose checkpoint 0 was the
                # member's first block with empty history — exactly a
                # member checkpoint in the v2 vocabulary.
                kind = (
                    CHECKPOINT_MEMBER
                    if not window and uoffset == 0
                    else CHECKPOINT_BLOCK
                )
                cps.append(Checkpoint(bit_offset, uoffset, window, kind))
        except (struct.error, zlib.error) as exc:
            # Malformed contents past the magic: surface as the
            # structured integrity error, not a parser crash.
            raise IndexIntegrityError(
                f"malformed zran index blob: {exc}", stage="zran"
            ) from exc
        return cls(checkpoints=cps, usize=usize, span=span)

    @classmethod
    def _parse_v2(cls, data: bytes) -> "GzipIndex":
        try:
            pos = len(_MAGIC2)
            usize, span, csize, n = struct.unpack_from("<QQQI", data, pos)
            pos += 28
            cps = []
            for _ in range(n):
                code, bit_offset, uoffset, clen = struct.unpack_from("<BQQI", data, pos)
                pos += 21
                if code not in _KIND_NAMES:
                    raise IndexIntegrityError(
                        f"unknown checkpoint kind {code} at checkpoint {len(cps)}",
                        stage="zran",
                    )
                if pos + clen > len(data):
                    raise IndexIntegrityError(
                        f"zran index truncated inside checkpoint {len(cps)}",
                        stage="zran",
                    )
                window = zlib.decompress(data[pos : pos + clen])
                pos += clen
                cps.append(Checkpoint(bit_offset, uoffset, window, _KIND_NAMES[code]))
        except (struct.error, zlib.error) as exc:
            raise IndexIntegrityError(
                f"malformed zran index blob: {exc}", stage="zran"
            ) from exc
        return cls(checkpoints=cps, usize=usize, span=span, csize=csize)

    # -- crash-safe file persistence ----------------------------------

    def save(self, path: str) -> None:
        """Write the index to ``path``: sealed (versioned + CRC32
        checksummed, see :mod:`repro.index.integrity`) and atomically
        renamed into place, so a crash mid-write can never leave a
        torn sidecar."""
        atomic_write_bytes(path, seal(_KIND_V2, self.to_bytes()))

    @classmethod
    def load(cls, path: str) -> "GzipIndex":
        """Read an index file written by :meth:`save`.

        Accepts every generation: the current sealed v2 envelope, the
        sealed v1 envelope (kind ``ZRAN``) and the bare legacy v1 blob;
        anything else that fails validation raises
        :class:`~repro.errors.IndexIntegrityError`.
        """
        with open(path, "rb") as fh:
            blob = fh.read()
        if blob[: len(_MAGIC)] == _MAGIC or blob[: len(_MAGIC2)] == _MAGIC2:
            return cls.from_bytes(blob)  # legacy unsealed file
        kind = blob[8:12]
        if kind == _KIND_V1:
            return cls.from_bytes(unseal(blob, _KIND_V1))
        return cls.from_bytes(unseal(blob, _KIND_V2))


def build_index(source, span: int = 1 << 20) -> GzipIndex:
    """Build an index with checkpoints at most ``span`` output bytes apart.

    Performs the full sequential decompression the technique requires
    (that is its cost); checkpoints land on block boundaries, so access
    never needs bit-level probing.  ``source`` may be bytes, a path, a
    binary file object, or a :class:`~repro.io.source.ByteSource`.

    Multi-member ("blocked") files are walked member by member —
    trailer-aware, with ``uoffset`` kept continuous — and every member
    start becomes a ``"member"`` checkpoint, including empty members.
    """
    if span <= 0:
        raise ValueError("span must be positive")
    src = ByteSource.wrap(source)
    # A build decodes every byte once by definition; reading the whole
    # compressed stream here costs no more than that pass itself.
    data = src.read_all()
    if not data:
        raise GzipFormatError("empty input", bit_offset=0, stage="zran")

    checkpoints: list[Checkpoint] = []
    uoffset = 0
    offset = 0
    n = len(data)
    while offset < n:
        payload_start, *_ = parse_gzip_header(data, offset)
        checkpoints.append(
            Checkpoint(
                bit_offset=BitOffset(8 * payload_start),
                uoffset=ByteOffset(uoffset),
                window=b"",
                kind=CHECKPOINT_MEMBER,
            )
        )
        result = inflate(data, start_bit=8 * payload_start)
        if not result.final_seen:
            raise GzipFormatError(
                "member payload ended without a final block",
                bit_offset=result.end_bit,
                stage="zran",
            )
        mdata = result.data
        # Emit a block checkpoint whenever finishing the next block
        # would leave the previous checkpoint more than ``span`` bytes
        # behind — so consecutive checkpoints are <= span apart as long
        # as no single block exceeds span, which is the warm-seek bound.
        last_rel = 0
        for block in result.blocks:
            if block.out_start <= last_rel:
                continue
            if block.out_end - last_rel > span:
                checkpoints.append(
                    Checkpoint(
                        bit_offset=block.start_bit,
                        uoffset=ByteOffset(uoffset + block.out_start),
                        window=mdata[
                            max(0, block.out_start - WINDOW_SIZE) : block.out_start
                        ],
                        kind=CHECKPOINT_BLOCK,
                    )
                )
                last_rel = block.out_start
        uoffset += len(mdata)
        payload_end = (result.end_bit + 7) // 8
        if n - payload_end < 8:
            raise GzipFormatError(
                "truncated gzip trailer",
                bit_offset=8 * payload_end,
                stage="trailer",
            )
        offset = payload_end + 8
    return GzipIndex(checkpoints=checkpoints, usize=uoffset, span=span, csize=n)


def load_or_rebuild(
    path: str, source, span: int = 1 << 20
) -> tuple[GzipIndex, bool]:
    """Load the index at ``path``, rebuilding it if missing or damaged.

    Returns ``(index, rebuilt)``.  A load that fails its integrity
    check (truncation, bit flip, wrong kind — any
    :class:`~repro.errors.IndexIntegrityError`) or finds no file
    triggers a fresh :func:`build_index` from ``source``; the
    replacement is sealed and atomically renamed over the damaged
    file, so the sidecar self-heals without ever being torn.
    """
    try:
        return GzipIndex.load(path), False
    except (FileNotFoundError, IndexIntegrityError, GzipFormatError):
        index = build_index(source, span=span)
        index.save(path)
        return index, True
