"""Decompression index for plain gzip files (paper ref [11], Heng Li).

The related-work alternative to undetermined-context random access:
*one* initial sequential decompression records checkpoints — (bit
offset, 32 KiB window, uncompressed offset) — after which any location
is reachable by decoding at most ``span`` bytes from the nearest
checkpoint with a fully *known* context.  The trade-offs the paper
names: the index must be built (full sequential pass), stored
(~32 KiB/checkpoint raw; compressed here), and shipped alongside the
file — useless when a file is read only once, which is pugz's niche.
"""

from __future__ import annotations

import io
import struct
import zlib
from dataclasses import dataclass

from repro.deflate.constants import WINDOW_SIZE
from repro.deflate.gzipfmt import parse_gzip_header
from repro.deflate.inflate import inflate
from repro.errors import GzipFormatError, IndexIntegrityError, RandomAccessError
from repro.index.integrity import atomic_write_bytes, seal, unseal
from repro.units import BitOffset, ByteOffset

__all__ = ["Checkpoint", "GzipIndex", "build_index", "load_or_rebuild"]

_MAGIC = b"RPZIDX1\x00"
#: Kind tag inside the sealed envelope (see repro.index.integrity).
_KIND = b"ZRAN"


@dataclass(frozen=True)
class Checkpoint:
    """One random-access entry point into the DEFLATE stream."""

    #: Bit offset of a block header in the compressed stream.
    bit_offset: BitOffset
    #: Uncompressed offset the block starts at.
    uoffset: ByteOffset
    #: The 32 KiB of uncompressed data preceding ``uoffset``.
    window: bytes


@dataclass
class GzipIndex:
    """Checkpoint list for one gzip member plus addressing helpers."""

    checkpoints: list[Checkpoint]
    usize: int
    span: int

    def nearest(self, uoffset: ByteOffset) -> Checkpoint:
        """Last checkpoint at or before ``uoffset``."""
        if not 0 <= uoffset < self.usize:
            raise RandomAccessError(
                f"offset {uoffset} outside uncompressed size {self.usize}",
                stage="zran",
            )
        best = self.checkpoints[0]
        for cp in self.checkpoints:
            if cp.uoffset <= uoffset:
                best = cp
            else:
                break
        return best

    def read_at(self, gz_data: bytes, uoffset: ByteOffset, size: int) -> bytes:
        """Extract ``size`` uncompressed bytes starting at ``uoffset``."""
        if size < 0:
            raise ValueError("size must be non-negative")
        cp = self.nearest(uoffset)
        need = uoffset - cp.uoffset + size
        result = inflate(
            gz_data,
            start_bit=cp.bit_offset,
            window=cp.window,
            max_output=need,
        )
        skip = uoffset - cp.uoffset
        return result.data[skip : skip + size]

    # -- serialisation ------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise (windows are deflate-compressed: DNA windows
        shrink ~4x, making the index ~8 KiB per checkpoint)."""
        out = io.BytesIO()
        out.write(_MAGIC)
        out.write(struct.pack("<QQI", self.usize, self.span, len(self.checkpoints)))
        for cp in self.checkpoints:
            cw = zlib.compress(cp.window, 6)
            out.write(struct.pack("<QQI", cp.bit_offset, cp.uoffset, len(cw)))
            out.write(cw)
        return out.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "GzipIndex":
        if data[: len(_MAGIC)] != _MAGIC:
            raise GzipFormatError("not a gzip index blob", stage="zran")
        try:
            pos = len(_MAGIC)
            usize, span, n = struct.unpack_from("<QQI", data, pos)
            pos += 20
            cps = []
            for _ in range(n):
                bit_offset, uoffset, clen = struct.unpack_from("<QQI", data, pos)
                pos += 20
                if pos + clen > len(data):
                    raise IndexIntegrityError(
                        f"zran index truncated inside checkpoint {len(cps)}",
                        stage="zran",
                    )
                window = zlib.decompress(data[pos : pos + clen])
                pos += clen
                cps.append(Checkpoint(bit_offset, uoffset, window))
        except (struct.error, zlib.error) as exc:
            # Malformed contents past the magic: surface as the
            # structured integrity error, not a parser crash.
            raise IndexIntegrityError(
                f"malformed zran index blob: {exc}", stage="zran"
            ) from exc
        return cls(checkpoints=cps, usize=usize, span=span)

    # -- crash-safe file persistence ----------------------------------

    def save(self, path: str) -> None:
        """Write the index to ``path``: sealed (versioned + CRC32
        checksummed, see :mod:`repro.index.integrity`) and atomically
        renamed into place, so a crash mid-write can never leave a
        torn sidecar."""
        atomic_write_bytes(path, seal(_KIND, self.to_bytes()))

    @classmethod
    def load(cls, path: str) -> "GzipIndex":
        """Read an index file written by :meth:`save`.

        Legacy files (the bare v1 blob without an envelope) are still
        accepted; anything else that fails validation raises
        :class:`~repro.errors.IndexIntegrityError`.
        """
        with open(path, "rb") as fh:
            blob = fh.read()
        if blob[: len(_MAGIC)] == _MAGIC:
            return cls.from_bytes(blob)  # legacy unsealed v1 file
        return cls.from_bytes(unseal(blob, _KIND))


def build_index(gz_data: bytes, span: int = 1 << 20) -> GzipIndex:
    """Build an index with ~one checkpoint per ``span`` output bytes.

    Performs the full sequential decompression the technique requires
    (that is its cost); checkpoints land on block boundaries, so access
    never needs bit-level probing.
    """
    if span <= 0:
        raise ValueError("span must be positive")
    payload_start, *_ = parse_gzip_header(gz_data)
    result = inflate(gz_data, start_bit=8 * payload_start)
    data = result.data

    checkpoints = [Checkpoint(bit_offset=8 * payload_start, uoffset=0, window=b"")]
    next_target = span
    for block in result.blocks[1:]:
        if block.out_start >= next_target:
            checkpoints.append(
                Checkpoint(
                    bit_offset=block.start_bit,
                    uoffset=block.out_start,
                    window=data[max(0, block.out_start - WINDOW_SIZE) : block.out_start],
                )
            )
            next_target = block.out_start + span
    return GzipIndex(checkpoints=checkpoints, usize=len(data), span=span)


def load_or_rebuild(
    path: str, gz_data: bytes, span: int = 1 << 20
) -> tuple[GzipIndex, bool]:
    """Load the index at ``path``, rebuilding it if missing or damaged.

    Returns ``(index, rebuilt)``.  A load that fails its integrity
    check (truncation, bit flip, wrong kind — any
    :class:`~repro.errors.IndexIntegrityError`) or finds no file
    triggers a fresh :func:`build_index` from ``gz_data``; the
    replacement is sealed and atomically renamed over the damaged
    file, so the sidecar self-heals without ever being torn.
    """
    try:
        return GzipIndex.load(path), False
    except (FileNotFoundError, IndexIntegrityError, GzipFormatError):
        index = build_index(gz_data, span=span)
        index.save(path)
        return index, True
