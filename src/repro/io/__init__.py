"""Streaming file-like interfaces over the parallel decompressor."""

from repro.io.streams import PugzStream, iter_fastq_records, open_pugz

__all__ = ["PugzStream", "open_pugz", "iter_fastq_records"]
