"""Streaming and random-access file interfaces over the decompressor."""

from repro.io.source import ByteSource
from repro.io.streams import PugzStream, iter_fastq_records, open_pugz, open_seekable

__all__ = [
    "ByteSource",
    "PugzStream",
    "open_pugz",
    "open_seekable",
    "iter_fastq_records",
]
