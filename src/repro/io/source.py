"""Ranged byte access over heterogeneous compressed sources.

Every random-access layer in the repo (zran checkpoints, the BGZF
block table, the seekable facade) ultimately needs the same primitive:
*read ``size`` compressed bytes at ``offset``* — without forcing the
whole file into memory first.  :class:`ByteSource` is that primitive,
normalising the three ways callers hold a compressed stream:

* ``bytes`` / ``bytearray`` / ``memoryview`` — zero-copy slicing
  (keeps every historical ``gz_data: bytes`` signature working);
* a filesystem path (``str`` / ``os.PathLike``) — opened lazily, reads
  are ``seek`` + ``read`` of exactly the requested range;
* a seekable binary file object — used in place, never closed unless
  ownership was transferred.

Reads past EOF return short (possibly empty) results, like POSIX
``pread`` — range validation is the caller's job, because only the
caller knows the uncompressed coordinate system.
"""

from __future__ import annotations

import io
import os

from repro.errors import RandomAccessError

__all__ = ["ByteSource"]


class ByteSource:
    """Uniform ``pread``-style access to bytes, a path, or a file object.

    Parameters
    ----------
    source:
        ``bytes``-like data, a path, or a seekable binary file object.
    owns_file:
        When ``source`` is a file object, whether :meth:`close` should
        close it.  Paths are always owned; bytes never need closing.
    """

    def __init__(self, source, owns_file: bool = False) -> None:
        self._data: bytes | None = None
        self._fh = None
        self._path: str | None = None
        self._owns = owns_file
        self._size: int | None = None
        if isinstance(source, (bytes, bytearray, memoryview)):
            self._data = bytes(source)
            self._size = len(self._data)
        elif isinstance(source, (str, os.PathLike)):
            self._path = os.fspath(source)
            self._owns = True
        elif hasattr(source, "read") and hasattr(source, "seek"):
            self._fh = source
        else:
            raise TypeError(
                "ByteSource needs bytes, a path, or a seekable binary "
                f"file object, got {type(source).__name__}"
            )

    @classmethod
    def wrap(cls, source) -> "ByteSource":
        """Coerce ``source`` to a :class:`ByteSource` (idempotent)."""
        if isinstance(source, ByteSource):
            return source
        return cls(source)

    # -- internals ----------------------------------------------------

    def _file(self):
        if self._fh is None:
            if self._path is None:
                raise RandomAccessError("byte source is closed", stage="io")
            self._fh = open(self._path, "rb")
        return self._fh

    # -- ranged access ------------------------------------------------

    def pread(self, offset: int, size: int) -> bytes:
        """Read up to ``size`` bytes at absolute ``offset``.

        Returns short (or empty) data at EOF; never raises for
        past-the-end ranges.
        """
        if offset < 0:
            raise RandomAccessError(
                f"negative read offset {offset}", stage="io"
            )
        if size < 0:
            raise RandomAccessError(
                f"negative read size {size}", stage="io"
            )
        if self._data is not None:
            return self._data[offset : offset + size]
        fh = self._file()
        fh.seek(offset)
        return fh.read(size)

    def size(self) -> int:
        """Total byte length of the underlying source (cached)."""
        if self._size is None:
            fh = self._file()
            pos = fh.seek(0, io.SEEK_END)
            self._size = pos
        return self._size

    def read_all(self) -> bytes:
        """The entire source as bytes (for whole-stream passes like an
        index build, which must decode everything anyway)."""
        if self._data is not None:
            return self._data
        return self.pread(0, self.size())

    @property
    def is_in_memory(self) -> bool:
        """True when the source is a bytes buffer (no file I/O)."""
        return self._data is not None

    # -- lifecycle ----------------------------------------------------

    def close(self) -> None:
        """Close the owned file handle, if any (idempotent).

        A borrowed file object (``owns_file=False``) is left open and
        usable — closing it is its owner's job."""
        if self._fh is not None and self._owns:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ByteSource":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
