"""File-like streaming interfaces over the parallel decompressor.

The adoption surface for pipelines: open a ``.fastq.gz`` (or any gzip
file) and read bytes, lines, or FASTQ records while decompression runs
stripe by stripe behind the cursor — the paper's "beginning of many
tools" integration point, with O(stripe) memory.
"""

from __future__ import annotations

import io
from collections.abc import Iterator

from repro.data.fastq import FastqRecord
from repro.errors import ReproError
from repro.io.source import ByteSource

__all__ = ["PugzStream", "open_pugz", "open_seekable", "iter_fastq_records", "ByteSource"]


class PugzStream(io.RawIOBase):
    """Read-only binary stream decompressing a gzip buffer on demand."""

    def __init__(
        self,
        gz_data: bytes,
        n_chunks: int = 16,
        stripe_chunks: int = 4,
        executor: str = "serial",
    ) -> None:
        super().__init__()
        # Late import: repro.core reaches back into repro.index (whose
        # modules use ByteSource from this package), so the decompressor
        # is bound at construction time, not import time.
        from repro.core.windowed import WindowedReport, iter_pugz

        self.report = WindowedReport()
        self._source = iter_pugz(
            gz_data,
            n_chunks=n_chunks,
            stripe_chunks=stripe_chunks,
            executor=executor,
            report=self.report,
        )
        self._buffer = bytearray()
        self._exhausted = False
        self._pos = 0

    # -- io.RawIOBase interface ---------------------------------------

    def readable(self) -> bool:
        return True

    def _fill(self, need: int) -> None:
        while len(self._buffer) < need and not self._exhausted:
            try:
                self._buffer += next(self._source)
            except StopIteration:
                self._exhausted = True

    def read(self, size: int = -1) -> bytes:
        if size is None or size < 0:
            self._fill(1 << 62)
            out = bytes(self._buffer)
            self._buffer.clear()
        else:
            self._fill(size)
            out = bytes(self._buffer[:size])
            del self._buffer[:size]
        self._pos += len(out)
        return out

    def readinto(self, b) -> int:
        chunk = self.read(len(b))
        b[: len(chunk)] = chunk
        return len(chunk)

    def tell(self) -> int:
        return self._pos

    # -- line iteration -------------------------------------------------

    def readline(self, size: int = -1) -> bytes:
        while True:
            nl = self._buffer.find(b"\n")
            if nl >= 0:
                out = bytes(self._buffer[: nl + 1])  # lint: allow-unbudgeted-alloc(converts data already admitted into the read buffer; no new growth)
                del self._buffer[: nl + 1]
                self._pos += len(out)
                return out
            if self._exhausted:
                out = bytes(self._buffer)  # lint: allow-unbudgeted-alloc(converts data already admitted into the read buffer; no new growth)
                self._buffer.clear()
                self._pos += len(out)
                return out
            self._fill(len(self._buffer) + 65536)

    def __iter__(self) -> Iterator[bytes]:
        while True:
            line = self.readline()
            if not line:
                return
            yield line


def open_pugz(path, n_chunks: int = 16, stripe_chunks: int = 4,
              executor: str = "serial") -> PugzStream:
    """Open a gzip file from disk as a parallel-decompressing stream."""
    with open(path, "rb") as fh:
        data = fh.read()
    return PugzStream(data, n_chunks=n_chunks, stripe_chunks=stripe_chunks,
                      executor=executor)


def open_seekable(source, **kwargs):
    """Open a gzip/BGZF source for random access.

    Convenience front door for
    :class:`repro.index.seekable.SeekableGzipReader`: accepts a path,
    bytes, or binary file object plus that class's keyword arguments
    (``index_path``, ``span``, ``backend``, ...) and returns the
    reader.  Unlike :func:`open_pugz`, reads go through ranged file
    I/O — the compressed file is never materialised for warm seeks.
    """
    from repro.index.seekable import SeekableGzipReader

    return SeekableGzipReader(source, **kwargs)


def iter_fastq_records(stream) -> Iterator[FastqRecord]:
    """Iterate FASTQ records from a readline-capable binary stream
    (a :class:`PugzStream`, a :class:`SeekableGzipReader`, any
    buffered binary file)."""
    while True:
        header = stream.readline()
        if not header:
            return
        seq = stream.readline()
        plus = stream.readline()
        qual = stream.readline()
        if not qual:
            raise ReproError("truncated FASTQ record at end of stream", stage="streams")
        header, seq, plus, qual = (
            header.rstrip(b"\n"), seq.rstrip(b"\n"),
            plus.rstrip(b"\n"), qual.rstrip(b"\n"),
        )
        if not header.startswith(b"@") or not plus.startswith(b"+"):
            raise ReproError(f"malformed FASTQ record near {header[:40]!r}", stage="streams")
        if len(seq) != len(qual):
            raise ReproError("FASTQ sequence/quality length mismatch", stage="streams")
        yield FastqRecord(header, seq, plus, qual)
