"""``repro.lint`` — AST-based invariant checker for this codebase.

A domain-specific static-analysis pass enforcing the contracts the
repository's correctness story depends on but ordinary linters cannot
see: structured error context at every ``ReproError`` raise site
(REP001), no broad exception handlers in the decode path (REP002),
process-pool pickle safety for executor-bound callables (REP003),
seeded-only randomness (REP004), explicit width masking in the bit-level
hot paths (REP005), no mutable default arguments (REP006), no
module-level mutable state in fork-sensitive packages (REP007),
``__all__``/export agreement in package ``__init__`` files (REP008),
the flow-sensitive unit/taint/marker analyses (REP009–REP011), pragma
hygiene and bounded retries (REP012–REP013), and the interprocedural
call-graph rules — cross-function unit confusion, cross-function decode
taint, executor race/fork-safety (REP014–REP016) — plus the interval
abstract interpretation layer (:mod:`repro.lint.intervals`): proved
shift widths (REP018), proved index bounds (REP019), budget-or-proved
allocations (REP020, superseding REP017) and spec-literal provenance
(REP021), built on :mod:`repro.lint.callgraph` and
:mod:`repro.lint.summaries`.

Three front doors:

* ``repro lint src/repro`` — the CLI subcommand (see :mod:`repro.lint.runner`);
* ``make lint`` — the same run with the repo baseline, part of ``make check``;
* ``tests/lint/test_self_clean.py`` — tier-1 pytest gate.

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue, the pragma
syntax (``# lint: allow-<slug>(<reason>)``) and the baseline workflow.
"""

from repro.lint.baseline import Baseline
from repro.lint.engine import (
    Linter,
    LintResult,
    lint_paths,
    lint_source,
    lint_sources,
)
from repro.lint.findings import Finding
from repro.lint.registry import (
    LintConfigError,
    ProjectRule,
    Rule,
    all_rules,
    resolve_rules,
)
from repro.lint.runner import run_lint

__all__ = [
    "Baseline",
    "Finding",
    "LintConfigError",
    "LintResult",
    "Linter",
    "ProjectRule",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "resolve_rules",
    "run_lint",
]
