"""Baseline: ratchet pre-existing findings without blocking the build.

The baseline file records fingerprints (line-insensitive identities) of
known findings with a per-fingerprint count.  A lint run then reports
only *new* findings: for each fingerprint, up to the baselined count is
suppressed and anything beyond it (or any unknown fingerprint) fails
the run.  Fixing a violation never breaks the build — the stale entry
is simply unused; ``--update-baseline`` rewrites the file from the
current findings, which is how the count ratchets down over time.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.lint.findings import Finding
from repro.lint.registry import LintConfigError

__all__ = ["Baseline"]

_FORMAT_VERSION = 1


class Baseline:
    """A fingerprint -> allowed-count map with JSON (de)serialisation."""

    def __init__(self, entries: dict[str, dict] | None = None) -> None:
        # fingerprint -> {"count": int, "rule": str, "path": str, "message": str}
        self.entries: dict[str, dict] = dict(entries or {})

    # -- construction -------------------------------------------------------

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        entries: dict[str, dict] = {}
        for f in findings:
            fp = f.fingerprint()
            if fp in entries:
                entries[fp]["count"] += 1
            else:
                entries[fp] = {
                    "count": 1,
                    "rule": f.rule_id,
                    "path": f.path,
                    "message": f.message,
                }
        return cls(entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            raw = json.loads(Path(path).read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise LintConfigError(
                f"baseline file not found: {path}", stage="lint"
            ) from None
        except json.JSONDecodeError as exc:
            raise LintConfigError(
                f"baseline file {path} is not valid JSON: {exc}", stage="lint"
            ) from exc
        if raw.get("version") != _FORMAT_VERSION:
            raise LintConfigError(
                f"baseline file {path} has unsupported version "
                f"{raw.get('version')!r}",
                stage="lint",
            )
        entries = {
            e["fingerprint"]: {
                "count": int(e.get("count", 1)),
                "rule": e.get("rule", ""),
                "path": e.get("path", ""),
                "message": e.get("message", ""),
            }
            for e in raw.get("entries", [])
        }
        return cls(entries)

    def save(self, path: Path) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "entries": [
                {"fingerprint": fp, **info}
                for fp, info in sorted(self.entries.items(),
                                       key=lambda kv: (kv[1]["path"],
                                                       kv[1]["rule"],
                                                       kv[0]))
            ],
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                              encoding="utf-8")

    # -- filtering ----------------------------------------------------------

    def split(self, findings: list[Finding]) -> tuple[list[Finding], list[Finding]]:
        """Partition ``findings`` into (new, baselined).

        Findings sharing a fingerprint are matched against the baseline
        count in source order: the first ``count`` occurrences are
        considered pre-existing, the rest are new.
        """
        seen: Counter[str] = Counter()
        new: list[Finding] = []
        old: list[Finding] = []
        for f in sorted(findings, key=Finding.sort_key):
            fp = f.fingerprint()
            seen[fp] += 1
            allowed = self.entries.get(fp, {}).get("count", 0)
            (old if seen[fp] <= allowed else new).append(f)
        return new, old

    def __len__(self) -> int:
        return len(self.entries)
