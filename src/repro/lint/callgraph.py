"""Project-wide call graph over the repro source tree.

The intraprocedural rules (REP001–REP013) go dark the moment a value
crosses a function boundary; the interprocedural layer starts here.
:class:`Project` indexes every function/method of a set of parsed
modules under a stable *qualified name* (``repro.core.sync.
find_block_start``, ``repro.deflate.bitio.BitReader.read``), resolves
call expressions against per-module import tables, and materialises a
:class:`CallGraph` whose strongly connected components feed the
bottom-up summary computation in :mod:`repro.lint.summaries`.

Resolution rules (documented imprecision — this is a lint, not a
compiler):

* ``f(...)`` — a name resolves to the enclosing module's own ``def``,
  then to the import table (``from m import f`` / ``import m as f``).
* ``m.f(...)`` / ``a.b.f(...)`` — attribute chains are flattened and
  the head looked up as a module alias; ``self.m(...)`` / ``cls.m(...)``
  resolve inside the caller's own class.
* ``obj.m(...)`` — an unqualified method call resolves only when ``m``
  names exactly **one** method project-wide *and* is not a common
  stdlib method name (``read``, ``get``, ``close``, ...); anything
  ambiguous stays unresolved rather than guessing.
* Local aliases one level deep (``fn = worker; executor.map(fn, ...)``)
  are followed, both for ordinary calls and for executor submissions.

Executor submission sites — calls shaped like
``<executor>.map/map_outcomes/submit(fn, ...)`` or
``supervised_map_outcomes(executor, fn, ...)`` — are collected
separately: they are the roots of the parallel region REP016 walks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.lint.module import ModuleInfo

__all__ = [
    "FunctionInfo",
    "CallSite",
    "SubmissionSite",
    "CallGraph",
    "Project",
    "strongly_connected_components",
    "MODULE_UNIT",
]

#: Pseudo-function name for a module's top-level statements.
MODULE_UNIT = "<module>"

#: Method names too generic to resolve by bare-name uniqueness: file
#: objects, dicts, lists and queues all have them, so a unique project
#: ``def read`` must not swallow every ``fh.read(...)`` in sight.
_COMMON_METHOD_NAMES = frozenset({
    "read", "write", "seek", "tell", "close", "flush", "get", "put",
    "append", "extend", "pop", "update", "copy", "join", "split",
    "map", "submit", "add", "remove", "clear", "items", "keys",
    "values", "decode", "encode", "index", "count", "insert", "send",
    "open", "run", "start", "stop", "next",
})

_EXECUTOR_METHODS = frozenset({"map", "map_outcomes", "submit"})
_EXECUTOR_RECEIVER_TOKENS = ("executor", "pool")
_EXECUTOR_CONSTRUCTORS = frozenset({
    "SerialExecutor", "ThreadExecutor", "ProcessExecutor",
    "ProcessPoolExecutor", "ThreadPoolExecutor", "make_executor",
})


@dataclass
class FunctionInfo:
    """One function/method definition known to the project."""

    qualname: str                    # "repro.core.sync.find_block_start"
    module: ModuleInfo
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None    # enclosing class, if a method
    enclosing: str | None = None     # qualname of enclosing function, if nested
    #: Names this function reads that are bound in an enclosing
    #: *function* scope — a true closure (pickle hazard).
    closure_names: frozenset[str] = frozenset()

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def is_nested(self) -> bool:
        return self.enclosing is not None

    @property
    def is_closure(self) -> bool:
        return self.is_nested and bool(self.closure_names)

    def params(self) -> list[ast.arg]:
        a = self.node.args
        out = [*a.posonlyargs, *a.args]
        if self.is_method and out and out[0].arg in ("self", "cls"):
            out = out[1:]
        return [*out, *a.kwonlyargs]


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge: ``caller`` invokes ``callee`` at ``node``."""

    caller: str
    callee: str
    node: ast.Call
    module: ModuleInfo

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CallSite({self.caller} -> {self.callee} @{self.node.lineno})"


@dataclass(frozen=True)
class SubmissionSite:
    """An executor-submission call: the root of a parallel region.

    ``callee`` is the resolved qualname of the submitted callable (or
    ``None`` when it cannot be resolved); ``callable_expr`` is the raw
    argument expression, kept so REP016 can classify lambdas and bound
    methods even when resolution fails.
    """

    caller: str
    module: ModuleInfo
    node: ast.Call
    method: str                      # "map" / "map_outcomes" / "submit"
    callable_expr: ast.expr
    callee: str | None
    #: What a local alias resolved to (``fn = lambda ...`` -> the Lambda),
    #: when the raw expression was an aliased name.
    resolved_expr: ast.expr | None = None


class CallGraph:
    """Directed call graph plus the executor submission roots."""

    def __init__(self) -> None:
        self.edges: dict[str, list[CallSite]] = {}
        self.callers: dict[str, list[CallSite]] = {}
        self.submissions: list[SubmissionSite] = []

    def add(self, site: CallSite) -> None:
        self.edges.setdefault(site.caller, []).append(site)
        self.callers.setdefault(site.callee, []).append(site)

    def callees_of(self, qualname: str) -> list[CallSite]:
        return self.edges.get(qualname, [])

    def callers_of(self, qualname: str) -> list[CallSite]:
        return self.callers.get(qualname, [])

    def reachable_from(self, root: str) -> list[str]:
        """Qualnames transitively reachable from ``root`` (root included)."""
        seen: list[str] = []
        seen_set: set[str] = set()
        stack = [root]
        while stack:
            cur = stack.pop()
            if cur in seen_set:
                continue
            seen_set.add(cur)
            seen.append(cur)
            for site in self.callees_of(cur):
                if site.callee not in seen_set:
                    stack.append(site.callee)
        return seen


def strongly_connected_components(
    nodes: Iterable[str], succs: dict[str, list[str]]
) -> list[list[str]]:
    """Tarjan's SCCs, returned in *reverse topological* order.

    Reverse topological means callees come before callers — exactly the
    order a bottom-up summary computation wants.  Iterative (explicit
    stack), since decode helpers recurse deeply in fixtures.
    """
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    for root in nodes:
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_i = work[-1]
            if child_i == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            children = succs.get(node, [])
            advanced = False
            while child_i < len(children):
                child = children[child_i]
                child_i += 1
                if child not in index:
                    work[-1] = (node, child_i)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if low[node] == index[node]:
                scc: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs


# ---------------------------------------------------------------------------
# import tables


def _relative_base(module_name: str, level: int, is_package: bool) -> str:
    """Resolve the ``from ...`` anchor package for a relative import."""
    parts = module_name.split(".")
    if not is_package:
        parts = parts[:-1]
    drop = level - 1
    if drop:
        parts = parts[:-drop] if drop < len(parts) else []
    return ".".join(parts)


def _import_table(module: ModuleInfo) -> dict[str, str]:
    """Local name -> dotted target for a module's top-level imports."""
    table: dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    table[alias.asname] = alias.name
                else:
                    # ``import a.b.c`` binds ``a``; the chain resolver
                    # re-assembles the full dotted path from attributes.
                    head = alias.name.split(".")[0]
                    table[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _relative_base(
                    module.name, node.level, module.is_package_init
                )
            else:
                base = node.module or ""
            if node.module and node.level:
                base = f"{base}.{node.module}" if base else node.module
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{base}.{alias.name}" if base else alias.name
                table[alias.asname or alias.name] = target
    return table


def _dotted_chain(node: ast.expr) -> list[str] | None:
    """``a.b.c`` -> ["a", "b", "c"]; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def _is_executor_receiver(node: ast.expr) -> bool:
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name and any(tok in name.lower() for tok in _EXECUTOR_RECEIVER_TOKENS):
        return True
    if isinstance(node, ast.Call):
        chain = _dotted_chain(node.func)
        return bool(chain) and chain[-1] in _EXECUTOR_CONSTRUCTORS
    return False


# ---------------------------------------------------------------------------
# the project index


class Project:
    """All parsed modules of one lint run, indexed for resolution."""

    def __init__(self, modules: Iterable[ModuleInfo]) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.modules_by_relpath: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: bare function/method name -> every definition carrying it
        self._by_name: dict[str, list[FunctionInfo]] = {}
        #: id(ast node) -> FunctionInfo, for unit -> info lookups
        self._by_node: dict[int, FunctionInfo] = {}
        self._imports: dict[str, dict[str, str]] = {}
        self._graph: CallGraph | None = None
        self._summaries = None
        for module in modules:
            self.add_module(module)

    # -- construction --------------------------------------------------------

    def add_module(self, module: ModuleInfo) -> None:
        self.modules[module.name] = module
        self.modules_by_relpath[module.relpath] = module
        self._imports[module.name] = _import_table(module)
        self._index_functions(module)
        self._graph = None

    def _index_functions(self, module: ModuleInfo) -> None:
        def visit(body, prefix: str, class_name: str | None,
                  enclosing: str | None, outer_scopes: list[set[str]]):
            for node in body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{prefix}.{node.name}"
                    closure = frozenset(
                        n for scope in outer_scopes
                        for n in _free_names(node) & scope
                    )
                    info = FunctionInfo(
                        qualname=qualname,
                        module=module,
                        node=node,
                        class_name=class_name,
                        enclosing=enclosing,
                        closure_names=closure,
                    )
                    self.functions[qualname] = info
                    self._by_name.setdefault(node.name, []).append(info)
                    self._by_node[id(node)] = info
                    visit(
                        node.body, qualname, None, qualname,
                        outer_scopes + [_bound_names(node)],
                    )
                elif isinstance(node, ast.ClassDef):
                    visit(
                        node.body, f"{prefix}.{node.name}", node.name,
                        enclosing, outer_scopes,
                    )

        visit(module.tree.body, module.name, None, None, [])

    # -- lookups -------------------------------------------------------------

    def function(self, qualname: str) -> FunctionInfo | None:
        return self.functions.get(qualname)

    def function_for_node(self, node: ast.AST) -> FunctionInfo | None:
        return self._by_node.get(id(node))

    def imports_of(self, module: ModuleInfo) -> dict[str, str]:
        return self._imports.get(module.name, {})

    def iter_units(self) -> Iterator[tuple[str, ModuleInfo, list[ast.stmt], ast.FunctionDef | None]]:
        """Every analysis unit: each function plus each module top level."""
        for module in self.modules.values():
            yield f"{module.name}.{MODULE_UNIT}", module, module.tree.body, None
        for info in self.functions.values():
            yield info.qualname, info.module, info.node.body, info.node

    def source_hash(self) -> str:
        """Stable hash over every module's source (summary-store key)."""
        import hashlib

        digest = hashlib.sha1()
        for name in sorted(self.modules):
            digest.update(name.encode())
            digest.update(b"\0")
            digest.update(self.modules[name].source.encode())
            digest.update(b"\0")
        return digest.hexdigest()

    # -- call resolution -----------------------------------------------------

    def resolve_callable(
        self,
        module: ModuleInfo,
        expr: ast.expr,
        caller: FunctionInfo | None = None,
        aliases: dict[str, ast.expr] | None = None,
        _depth: int = 0,
    ) -> FunctionInfo | None:
        """Resolve a callable *expression* to a project function."""
        if _depth > 4 or expr is None:
            return None
        if aliases and isinstance(expr, ast.Name) and expr.id in aliases:
            target = aliases[expr.id]
            if target is not expr:
                resolved = self.resolve_callable(
                    module, target, caller, None, _depth + 1
                )
                if resolved is not None:
                    return resolved
        chain = _dotted_chain(expr)
        if chain is None:
            return None
        return self._resolve_chain(module, chain, caller)

    def _resolve_chain(
        self, module: ModuleInfo, chain: list[str], caller: FunctionInfo | None
    ) -> FunctionInfo | None:
        head, rest = chain[0], chain[1:]
        # self.method / cls.method inside a class body.
        if head in ("self", "cls") and len(rest) == 1 and caller is not None:
            if caller.class_name is not None:
                prefix = caller.qualname.rsplit(".", 2)[0]
                return self.functions.get(f"{prefix}.{caller.class_name}.{rest[0]}")
            return None
        if not rest:
            # Bare name: nested def in the caller, module-level def,
            # then the import table.
            if caller is not None:
                info = self.functions.get(f"{caller.qualname}.{head}")
                if info is not None:
                    return info
            info = self.functions.get(f"{module.name}.{head}")
            if info is not None:
                return info
            target = self.imports_of(module).get(head)
            if target is not None:
                return self.functions.get(target)
            return None
        # Qualified chain: head must be a module alias (or package path).
        target = self.imports_of(module).get(head)
        candidates = []
        if target is not None:
            candidates.append(".".join([target, *rest]))
        candidates.append(".".join(chain))
        for cand in candidates:
            info = self.functions.get(cand)
            if info is not None:
                return info
        # ``obj.method`` fallback: unique, distinctive method name.
        method = chain[-1]
        if method not in _COMMON_METHOD_NAMES and not method.startswith("__"):
            owners = [f for f in self._by_name.get(method, ()) if f.is_method]
            if len(owners) == 1:
                return owners[0]
        return None

    # -- the graph -----------------------------------------------------------

    def call_graph(self) -> CallGraph:
        if self._graph is None:
            self._graph = self._build_graph()
        return self._graph

    def summaries(self):
        """Function summaries, computed on first use (or injected).

        Lazy so per-module-only runs never pay for the interprocedural
        phase; the engine injects a summary-store hit here to skip the
        computation entirely.
        """
        if self._summaries is None:
            from repro.lint.summaries import compute_summaries

            self._summaries = compute_summaries(self)
        return self._summaries

    def set_summaries(self, summaries) -> None:
        self._summaries = summaries

    def _build_graph(self) -> CallGraph:
        graph = CallGraph()
        for qualname, module, body, func in self.iter_units():
            caller_info = self.functions.get(qualname) if func is not None else None
            aliases = _local_aliases(body)
            for call in _own_calls(body):
                self._record_call(
                    graph, qualname, module, call, caller_info, aliases
                )
        return graph

    def _record_call(
        self,
        graph: CallGraph,
        caller: str,
        module: ModuleInfo,
        call: ast.Call,
        caller_info: FunctionInfo | None,
        aliases: dict[str, ast.expr],
    ) -> None:
        submitted = _submission_callable(call)
        if submitted is not None:
            method, fn_expr = submitted
            resolved = self.resolve_callable(module, fn_expr, caller_info, aliases)
            resolved_expr = None
            if isinstance(fn_expr, ast.Name) and fn_expr.id in aliases:
                resolved_expr = aliases[fn_expr.id]
            graph.submissions.append(SubmissionSite(
                caller=caller,
                module=module,
                node=call,
                method=method,
                callable_expr=fn_expr,
                callee=resolved.qualname if resolved else None,
                resolved_expr=resolved_expr,
            ))
            if resolved is not None:
                graph.add(CallSite(caller, resolved.qualname, call, module))
        target = self.resolve_callable(module, call.func, caller_info, aliases)
        if target is not None:
            graph.add(CallSite(caller, target.qualname, call, module))

    def scc_order(self) -> list[list[str]]:
        """SCCs of the call graph, callees before callers."""
        graph = self.call_graph()
        succs = {
            caller: sorted({s.callee for s in sites})
            for caller, sites in graph.edges.items()
        }
        nodes = sorted(set(self.functions) | set(succs))
        return strongly_connected_components(nodes, succs)


# ---------------------------------------------------------------------------
# helpers


def _own_calls(body: list[ast.stmt]) -> Iterator[ast.Call]:
    """Every Call in ``body``, excluding nested def/class bodies."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # Decorators and defaults evaluate in *this* scope.
            stack.extend(getattr(node, "decorator_list", []))
            args = getattr(node, "args", None)
            if args is not None:
                stack.extend(args.defaults)
                stack.extend(d for d in args.kw_defaults if d is not None)
            continue
        if isinstance(node, ast.Lambda):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _local_aliases(body: list[ast.stmt]) -> dict[str, ast.expr]:
    """``fn = worker`` one-level callable aliases in a statement list.

    Flow-insensitive: a name assigned more than once (to different
    shapes) is dropped rather than guessed.
    """
    aliases: dict[str, ast.expr] = {}
    dropped: set[str] = set()
    for node in body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if isinstance(node.value, (ast.Name, ast.Attribute, ast.Lambda)):
            if target.id in aliases or target.id in dropped:
                dropped.add(target.id)
                aliases.pop(target.id, None)
            else:
                aliases[target.id] = node.value
    return aliases


def _submission_callable(call: ast.Call) -> tuple[str, ast.expr] | None:
    """(method, submitted callable expr) for executor submission calls."""
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in _EXECUTOR_METHODS
        and call.args
        and _is_executor_receiver(func.value)
    ):
        return func.attr, call.args[0]
    chain = _dotted_chain(func)
    if chain and chain[-1] == "supervised_map_outcomes" and len(call.args) >= 2:
        return "map_outcomes", call.args[1]
    return None


def _bound_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound in ``func``'s own scope (params + assignments)."""
    args = func.args
    bound = {a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]}
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node is not func:
                bound.add(node.name)
    return bound


def _free_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names ``func`` loads but does not bind itself (closure candidates)."""
    bound = _bound_names(func)
    free: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            free.add(node.id)
        elif isinstance(node, ast.Global):
            bound.update(node.names)
    return free - bound
