"""Intraprocedural control-flow graphs over ``ast`` statement lists.

The dataflow rules (REP009–REP011) need more than per-node matching:
a bit offset assigned in one statement and misused three statements
later, or a bounds check that dominates a table index, are *flow*
facts.  This module builds the basic-block CFG those analyses run on.

Design points, chosen for a lint (not a compiler):

* Blocks hold whole ``ast.stmt`` nodes.  Compound statements appear in
  the block that *evaluates* them: an ``if``/``while`` contributes its
  test as the block terminator (:attr:`BasicBlock.test`), a ``for``
  appears as a header pseudo-statement so transfer functions can bind
  its target, and the nested bodies live in their own blocks.
* Edges carry a label: ``"true"``/``"false"`` out of a conditional
  terminator, ``""`` otherwise.  Analyses use the label plus the test
  expression for branch refinement (e.g. "``v`` was compared, so it is
  bounds-checked on both arms").
* ``try`` is handled conservatively: every block created for the body
  may jump to every handler (an exception can occur anywhere), which
  over-approximates reachability but never hides a path.
* Nested ``def``/``class`` bodies are *not* traversed — they are
  separate CFGs; the enclosing graph only sees the binding statement.

The builder never fails on valid Python: anything it does not model
precisely (``match``, ``with``, ``async`` forms) degrades to
sequential or all-successor edges, erring on the side of more paths.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["BasicBlock", "CFG", "build_cfg", "stmt_expressions"]


@dataclass
class BasicBlock:
    """A straight-line run of statements with labeled out-edges."""

    bid: int
    stmts: list[ast.stmt] = field(default_factory=list)
    #: Branch condition evaluated after ``stmts`` (``if``/``while`` test).
    test: ast.expr | None = None
    #: ``(target block id, label)``; label is ``"true"``/``"false"``/``""``.
    succs: list[tuple[int, str]] = field(default_factory=list)


@dataclass
class CFG:
    """Control-flow graph of one function (or module) body."""

    blocks: dict[int, BasicBlock]
    entry: int
    exit: int

    def block(self, bid: int) -> BasicBlock:
        return self.blocks[bid]

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks.values())


class _Builder:
    def __init__(self) -> None:
        self.blocks: dict[int, BasicBlock] = {}
        self._next = 0
        # (loop header bid, loop exit bid) for continue/break targets.
        self._loops: list[tuple[int, int]] = []

    def new_block(self) -> BasicBlock:
        block = BasicBlock(self._next)
        self.blocks[self._next] = block
        self._next += 1
        return block

    def edge(self, src: BasicBlock, dst: BasicBlock, label: str = "") -> None:
        pair = (dst.bid, label)
        if pair not in src.succs:
            src.succs.append(pair)

    def build(self, body: list[ast.stmt]) -> CFG:
        entry = self.new_block()
        exit_block = self.new_block()
        self._exit = exit_block
        end = self.visit_body(body, entry)
        if end is not None:
            self.edge(end, exit_block)
        return CFG(blocks=self.blocks, entry=entry.bid, exit=exit_block.bid)

    # -- statement dispatch --------------------------------------------------

    def visit_body(
        self, stmts: list[ast.stmt], current: BasicBlock | None
    ) -> BasicBlock | None:
        """Thread ``stmts`` through the graph; ``None`` means flow ended.

        Statements after a ``return``/``raise``/``break`` still get a
        (predecessor-less) block so the rules can check them — dead code
        should not be a blind spot.
        """
        for stmt in stmts:
            if current is None:
                current = self.new_block()  # unreachable but still analyzed
            current = self.visit_stmt(stmt, current)
        return current

    def visit_stmt(self, stmt: ast.stmt, cur: BasicBlock) -> BasicBlock | None:
        if isinstance(stmt, ast.If):
            return self._visit_if(stmt, cur)
        if isinstance(stmt, (ast.While,)):
            return self._visit_while(stmt, cur)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._visit_for(stmt, cur)
        if isinstance(stmt, ast.Try):
            return self._visit_try(stmt, cur)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            cur.stmts.append(stmt)  # evaluates the context managers
            return self.visit_body(stmt.body, cur)
        if isinstance(stmt, ast.Match):
            return self._visit_match(stmt, cur)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            cur.stmts.append(stmt)
            self.edge(cur, self._exit)
            return None
        if isinstance(stmt, ast.Break):
            cur.stmts.append(stmt)
            if self._loops:
                self.edge(cur, self.blocks[self._loops[-1][1]])
            return None
        if isinstance(stmt, ast.Continue):
            cur.stmts.append(stmt)
            if self._loops:
                self.edge(cur, self.blocks[self._loops[-1][0]])
            return None
        # Plain statement (incl. nested def/class, whose bodies are
        # separate CFGs): stays in the current block.
        cur.stmts.append(stmt)
        return cur

    # -- compound statements -------------------------------------------------

    def _visit_if(self, stmt: ast.If, cur: BasicBlock) -> BasicBlock | None:
        cur.test = stmt.test
        then_entry = self.new_block()
        self.edge(cur, then_entry, "true")
        then_end = self.visit_body(stmt.body, then_entry)
        if stmt.orelse:
            else_entry = self.new_block()
            self.edge(cur, else_entry, "false")
            else_end = self.visit_body(stmt.orelse, else_entry)
        else:
            else_entry = None
            else_end = None
        if then_end is None and stmt.orelse and else_end is None:
            return None
        join = self.new_block()
        if then_end is not None:
            self.edge(then_end, join)
        if stmt.orelse:
            if else_end is not None:
                self.edge(else_end, join)
        else:
            self.edge(cur, join, "false")
        return join

    def _visit_while(self, stmt: ast.While, cur: BasicBlock) -> BasicBlock:
        header = self.new_block()
        self.edge(cur, header)
        header.test = stmt.test
        exit_block = self.new_block()
        body_entry = self.new_block()
        self.edge(header, body_entry, "true")
        self.edge(header, exit_block, "false")
        self._loops.append((header.bid, exit_block.bid))
        body_end = self.visit_body(stmt.body, body_entry)
        self._loops.pop()
        if body_end is not None:
            self.edge(body_end, header)
        if stmt.orelse:
            # while/else: the else body runs on normal loop exit; model
            # it on the false edge's path into the exit block.
            else_end = self.visit_body(stmt.orelse, exit_block)
            if else_end is not None and else_end is not exit_block:
                return else_end
        return exit_block

    def _visit_for(self, stmt: ast.For | ast.AsyncFor, cur: BasicBlock) -> BasicBlock:
        header = self.new_block()
        self.edge(cur, header)
        # The For node itself is the header pseudo-statement: transfer
        # functions see it and bind ``target`` from ``iter``; its body
        # is NOT part of the block.
        header.stmts.append(stmt)
        exit_block = self.new_block()
        body_entry = self.new_block()
        self.edge(header, body_entry, "true")
        self.edge(header, exit_block, "false")
        self._loops.append((header.bid, exit_block.bid))
        body_end = self.visit_body(stmt.body, body_entry)
        self._loops.pop()
        if body_end is not None:
            self.edge(body_end, header)
        if stmt.orelse:
            else_end = self.visit_body(stmt.orelse, exit_block)
            if else_end is not None and else_end is not exit_block:
                return else_end
        return exit_block

    def _visit_try(self, stmt: ast.Try, cur: BasicBlock) -> BasicBlock | None:
        first_body = self._next
        body_end = self.visit_body(stmt.body, self.new_block())
        last_body = self._next  # ids created for the protected region
        self.edge(cur, self.blocks[first_body])

        ends: list[BasicBlock] = []
        if stmt.orelse:
            else_end = self.visit_body(
                stmt.orelse, body_end if body_end is not None else self.new_block()
            )
            if else_end is not None:
                ends.append(else_end)
        elif body_end is not None:
            ends.append(body_end)

        for handler in stmt.handlers:
            handler_entry = self.new_block()
            # An exception may surface at any point of the protected
            # region: every body block gets an edge to every handler.
            for bid in range(first_body, last_body):
                self.edge(self.blocks[bid], handler_entry)
            self.edge(cur, handler_entry)
            handler_end = self.visit_body(handler.body, handler_entry)
            if handler_end is not None:
                ends.append(handler_end)

        if stmt.finalbody:
            final_entry = self.new_block()
            for end in ends:
                self.edge(end, final_entry)
            if not ends:
                self.edge(cur, final_entry)
            return self.visit_body(stmt.finalbody, final_entry)
        if not ends:
            return None
        join = self.new_block()
        for end in ends:
            self.edge(end, join)
        return join

    def _visit_match(self, stmt: ast.Match, cur: BasicBlock) -> BasicBlock | None:
        # Evaluate the subject in the current block; each case body is
        # an independent successor (patterns/guards are not modeled).
        cur.stmts.append(ast.Expr(value=stmt.subject))
        join = self.new_block()
        self.edge(cur, join)  # no case may match
        for case in stmt.cases:
            case_entry = self.new_block()
            self.edge(cur, case_entry)
            case_end = self.visit_body(case.body, case_entry)
            if case_end is not None:
                self.edge(case_end, join)
        return join


def build_cfg(body: list[ast.stmt]) -> CFG:
    """Build the CFG of a function (or module) statement list."""
    return _Builder().build(body)


def stmt_expressions(stmt: ast.stmt) -> list[ast.expr]:
    """The expressions a statement itself evaluates.

    Deliberately shallow: nested statement bodies (loop/if/with bodies,
    nested function bodies) are *not* included — they live in other
    basic blocks (or other CFGs).  Used by the rules both for sink
    scanning and for transfer functions, so the two passes agree on
    what a block "contains".
    """
    if isinstance(stmt, ast.Expr):
        return [stmt.value]
    if isinstance(stmt, ast.Assign):
        return [stmt.value, *stmt.targets]
    if isinstance(stmt, ast.AugAssign):
        return [stmt.value, stmt.target]
    if isinstance(stmt, ast.AnnAssign):
        return [e for e in (stmt.value, stmt.target) if e is not None]
    if isinstance(stmt, ast.Return):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ast.Raise):
        return [e for e in (stmt.exc, stmt.cause) if e is not None]
    if isinstance(stmt, ast.Assert):
        return [e for e in (stmt.test, stmt.msg) if e is not None]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]  # header form: target bound by transfer fns
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        out: list[ast.expr] = []
        for item in stmt.items:
            out.append(item.context_expr)
            if item.optional_vars is not None:
                out.append(item.optional_vars)
        return out
    if isinstance(stmt, ast.Delete):
        return list(stmt.targets)
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return [
            *stmt.decorator_list,
            *stmt.args.defaults,
            *[d for d in stmt.args.kw_defaults if d is not None],
        ]
    if isinstance(stmt, ast.ClassDef):
        return [*stmt.decorator_list, *stmt.bases, *[k.value for k in stmt.keywords]]
    return []
