"""Forward worklist dataflow solver over :mod:`repro.lint.cfg` graphs.

A tiny, rule-agnostic fixpoint engine: an analysis supplies the initial
environment, a per-statement transfer function and (optionally) an edge
refinement, and :func:`solve` returns the environment holding at entry
to every basic block.

Environments map variable names to abstract values.  The solver knows
nothing about the value domain beyond ``join_values``: lattices are
expected to be small and finite (units, taint flags), so plain
iteration to fixpoint terminates without widening — each variable can
only climb its lattice a bounded number of times, and the join is
monotone by contract.

A variable missing from an environment means "no information"; joins
pass ``None`` for the missing side and the analysis decides (for the
bug-finding lattices here, information survives a join against a path
that never touched the variable — we prefer catching the bug on the
path that creates it over proving facts on all paths).
"""

from __future__ import annotations

import ast
from typing import Any, Dict

from repro.lint.cfg import CFG

__all__ = [
    "Env",
    "ForwardAnalysis",
    "solve",
    "transfer_block",
    "replay_blocks",
    "join_must_flag",
]

Env = Dict[str, Any]

#: Safety valve for pathological graphs; far above any real function.
_MAX_ITERATIONS = 100_000


class ForwardAnalysis:
    """Interface a dataflow rule implements.

    Subclasses override the three hooks below.  ``transfer_stmt`` and
    ``refine_edge`` mutate the environment in place (the solver hands
    them a private copy).
    """

    def initial_env(self) -> Env:
        """Environment at function entry (e.g. parameter seeds)."""
        return {}

    def transfer_stmt(self, stmt: ast.stmt, env: Env) -> None:
        """Apply one statement's effect to ``env``."""

    def refine_edge(self, test: ast.expr, label: str, env: Env) -> None:
        """Refine ``env`` along a conditional edge.

        ``test`` is the branch condition of the source block, ``label``
        is ``"true"`` or ``"false"``.  Default: no refinement.
        """

    def join_values(self, a: Any, b: Any) -> Any:
        """Join two abstract values; either side may be ``None`` (no info)."""
        if a == b:
            return a
        if a is None:
            return b
        if b is None:
            return a
        return None


def _join_envs(analysis: ForwardAnalysis, dst: Env | None, src: Env) -> tuple[Env, bool]:
    """``dst ∨ src``; returns (joined, changed-relative-to-dst)."""
    if dst is None:
        return dict(src), True
    out = dict(dst)
    changed = False
    for name in set(dst) | set(src):
        joined = analysis.join_values(dst.get(name), src.get(name))
        if joined is None:
            if name in out:
                del out[name]
                changed = True
        elif out.get(name) != joined:
            out[name] = joined
            changed = True
    return out, changed


def transfer_block(analysis: ForwardAnalysis, block, env: Env) -> Env:
    """Push ``env`` through every statement of ``block`` (fresh copy)."""
    env = dict(env)
    for stmt in block.stmts:
        analysis.transfer_stmt(stmt, env)
    return env


def join_must_flag(a: Any, b: Any) -> Any:
    """All-paths join for boolean facts (dominance-style analyses).

    A fact represented as ``True``-present / missing survives a join
    only when *both* sides carry it: returning ``None`` makes the
    solver drop the key, so "a budget check dominates this point" holds
    exactly when it holds on every incoming path.  Used by the
    interprocedural summaries (REP017) on top of the same solver the
    may-analyses use.
    """
    if a is True and b is True:
        return True
    return None


def replay_blocks(cfg: CFG, analysis: ForwardAnalysis, envs_in: dict[int, Env]):
    """Yield ``("stmt", stmt, env)`` / ``("test", test, env)`` in replay order.

    Walks every block from its solved entry environment, yielding each
    statement with the environment holding *before* its transfer (a
    sink in ``x = f(x)`` must see the pre-assignment binding of ``x``),
    then the block's branch test under the post-block environment.
    Shared by the intraprocedural FlowRule driver and the summary
    builder, so both phases agree on what an environment "at" a
    statement means.
    """
    for block in cfg:
        env = dict(envs_in.get(block.bid, {}))
        for stmt in block.stmts:
            yield "stmt", stmt, env
            analysis.transfer_stmt(stmt, env)
        if block.test is not None:
            yield "test", block.test, env


def solve(cfg: CFG, analysis: ForwardAnalysis) -> dict[int, Env]:
    """Fixpoint: environment at *entry* of each block.

    Blocks never reached from the entry (dead code) keep an empty
    environment — rules still scan them for sinks, falling back to
    their name/annotation seeds.
    """
    envs_in: dict[int, Env] = {cfg.entry: analysis.initial_env()}
    worklist: list[int] = [cfg.entry]
    iterations = 0
    while worklist:
        iterations += 1
        if iterations > _MAX_ITERATIONS:  # pragma: no cover - safety valve
            break
        bid = worklist.pop()
        block = cfg.block(bid)
        env_out = transfer_block(analysis, block, envs_in.get(bid, {}))
        for succ, label in block.succs:
            edge_env = env_out
            if block.test is not None and label in ("true", "false"):
                edge_env = dict(env_out)
                analysis.refine_edge(block.test, label, edge_env)
            joined, changed = _join_envs(analysis, envs_in.get(succ), edge_env)
            if changed:
                envs_in[succ] = joined
                if succ not in worklist:
                    worklist.append(succ)
    for bid in cfg.blocks:
        envs_in.setdefault(bid, {})
    return envs_in
