"""Forward worklist dataflow solver over :mod:`repro.lint.cfg` graphs.

A tiny, rule-agnostic fixpoint engine: an analysis supplies the initial
environment, a per-statement transfer function and (optionally) an edge
refinement, and :func:`solve` returns the environment holding at entry
to every basic block.

Environments map variable names to abstract values.  The solver knows
nothing about the value domain beyond ``join_values``: lattices are
expected to be small and finite (units, taint flags), so plain
iteration to fixpoint terminates without widening — each variable can
only climb its lattice a bounded number of times, and the join is
monotone by contract.

Analyses over *infinite-height* domains (the interval lattice of
:mod:`repro.lint.intervals`) additionally implement ``widen_values``.
When that hook is present, :func:`solve` applies widening on joins
into loop heads (targets of DFS back edges), delayed by a couple of
visits so short ladders settle exactly, and then runs a bounded
narrowing phase: two synchronous decreasing sweeps recomputing every
block's entry environment from its predecessors.  At a post-fixpoint
``x`` the transfer ``F`` satisfies ``F(x) ⊑ x``, so each sweep shrinks
the solution while staying above the least fixpoint — loop-exit bounds
widened to a threshold narrow back to the exact branch condition.

A variable missing from an environment means "no information"; joins
pass ``None`` for the missing side and the analysis decides (for the
bug-finding lattices here, information survives a join against a path
that never touched the variable — we prefer catching the bug on the
path that creates it over proving facts on all paths).
"""

from __future__ import annotations

import ast
from typing import Any, Dict

from repro.lint.cfg import CFG

__all__ = [
    "Env",
    "ForwardAnalysis",
    "solve",
    "transfer_block",
    "replay_blocks",
    "join_must_flag",
]

Env = Dict[str, Any]

#: Safety valve for pathological graphs; far above any real function.
_MAX_ITERATIONS = 100_000


class ForwardAnalysis:
    """Interface a dataflow rule implements.

    Subclasses override the three hooks below.  ``transfer_stmt`` and
    ``refine_edge`` mutate the environment in place (the solver hands
    them a private copy).
    """

    def initial_env(self) -> Env:
        """Environment at function entry (e.g. parameter seeds)."""
        return {}

    def transfer_stmt(self, stmt: ast.stmt, env: Env) -> None:
        """Apply one statement's effect to ``env``."""

    def refine_edge(self, test: ast.expr, label: str, env: Env) -> None:
        """Refine ``env`` along a conditional edge.

        ``test`` is the branch condition of the source block, ``label``
        is ``"true"`` or ``"false"``.  Default: no refinement.
        """

    def join_values(self, a: Any, b: Any) -> Any:
        """Join two abstract values; either side may be ``None`` (no info)."""
        if a == b:
            return a
        if a is None:
            return b
        if b is None:
            return a
        return None


def _join_envs(analysis: ForwardAnalysis, dst: Env | None, src: Env) -> tuple[Env, bool]:
    """``dst ∨ src``; returns (joined, changed-relative-to-dst)."""
    if dst is None:
        return dict(src), True
    out = dict(dst)
    changed = False
    for name in set(dst) | set(src):
        joined = analysis.join_values(dst.get(name), src.get(name))
        if joined is None:
            if name in out:
                del out[name]
                changed = True
        elif out.get(name) != joined:
            out[name] = joined
            changed = True
    return out, changed


def transfer_block(analysis: ForwardAnalysis, block, env: Env) -> Env:
    """Push ``env`` through every statement of ``block`` (fresh copy)."""
    env = dict(env)
    for stmt in block.stmts:
        analysis.transfer_stmt(stmt, env)
    return env


def join_must_flag(a: Any, b: Any) -> Any:
    """All-paths join for boolean facts (dominance-style analyses).

    A fact represented as ``True``-present / missing survives a join
    only when *both* sides carry it: returning ``None`` makes the
    solver drop the key, so "a budget check dominates this point" holds
    exactly when it holds on every incoming path.  Used by the
    interprocedural summaries (REP017) on top of the same solver the
    may-analyses use.
    """
    if a is True and b is True:
        return True
    return None


def replay_blocks(cfg: CFG, analysis: ForwardAnalysis, envs_in: dict[int, Env]):
    """Yield ``("stmt", stmt, env)`` / ``("test", test, env)`` in replay order.

    Walks every block from its solved entry environment, yielding each
    statement with the environment holding *before* its transfer (a
    sink in ``x = f(x)`` must see the pre-assignment binding of ``x``),
    then the block's branch test under the post-block environment.
    Shared by the intraprocedural FlowRule driver and the summary
    builder, so both phases agree on what an environment "at" a
    statement means.
    """
    for block in cfg:
        env = dict(envs_in.get(block.bid, {}))
        for stmt in block.stmts:
            yield "stmt", stmt, env
            analysis.transfer_stmt(stmt, env)
        if block.test is not None:
            yield "test", block.test, env


def _loop_heads(cfg: CFG) -> set[int]:
    """Targets of back edges (iterative DFS): where widening applies."""
    heads: set[int] = set()
    color: dict[int, int] = {}  # 0/absent = white, 1 = on stack, 2 = done
    stack: list[tuple[int, int]] = [(cfg.entry, 0)]
    while stack:
        bid, idx = stack.pop()
        if idx == 0:
            if color.get(bid) == 2:
                continue
            color[bid] = 1
        succs = cfg.block(bid).succs
        while idx < len(succs):
            succ = succs[idx][0]
            idx += 1
            state = color.get(succ, 0)
            if state == 1:
                heads.add(succ)
            elif state == 0:
                stack.append((bid, idx))
                stack.append((succ, 0))
                break
        else:
            color[bid] = 2
    return heads


#: Joins into a loop head before widening kicks in — lets short
#: constant ladders (``i = 0; i += 1`` once) settle exactly first.
_WIDEN_DELAY = 2

#: Cap on decreasing sweeps after the widened fixpoint.  Each sweep is
#: sound on its own (see module docstring), so the count is a precision
#: knob, not a correctness one; sweeps stop early once stable.  The cap
#: covers the longest acyclic improvement chain of a realistic unit.
_NARROW_PASSES = 8


def _narrow_sweep(
    cfg: CFG, analysis: ForwardAnalysis, envs_in: dict[int, Env]
) -> dict[int, Env]:
    """One synchronous decreasing sweep over the reached blocks."""
    new_in: dict[int, Env] = {cfg.entry: analysis.initial_env()}
    for block in cfg:
        if block.bid not in envs_in:
            continue  # unreached: nothing flows out of it
        env_out = transfer_block(analysis, block, envs_in[block.bid])
        for succ, label in block.succs:
            edge_env = env_out
            if block.test is not None and label in ("true", "false"):
                edge_env = dict(env_out)
                analysis.refine_edge(block.test, label, edge_env)
            new_in[succ], _ = _join_envs(analysis, new_in.get(succ), edge_env)
    return new_in


def solve(cfg: CFG, analysis: ForwardAnalysis) -> dict[int, Env]:
    """Fixpoint: environment at *entry* of each block.

    Blocks never reached from the entry (dead code) keep an empty
    environment — rules still scan them for sinks, falling back to
    their name/annotation seeds.

    Analyses exposing ``widen_values(old, new)`` get loop-head widening
    plus a bounded narrowing phase; finite-lattice analyses are solved
    exactly as before.
    """
    widen = getattr(analysis, "widen_values", None)
    heads = _loop_heads(cfg) if widen is not None else set()
    visits: dict[int, int] = {}
    envs_in: dict[int, Env] = {cfg.entry: analysis.initial_env()}
    worklist: list[int] = [cfg.entry]
    iterations = 0
    while worklist:
        iterations += 1
        if iterations > _MAX_ITERATIONS:  # pragma: no cover - safety valve
            break
        bid = worklist.pop()
        block = cfg.block(bid)
        env_out = transfer_block(analysis, block, envs_in.get(bid, {}))
        for succ, label in block.succs:
            edge_env = env_out
            if block.test is not None and label in ("true", "false"):
                edge_env = dict(env_out)
                analysis.refine_edge(block.test, label, edge_env)
            old = envs_in.get(succ)
            joined, changed = _join_envs(analysis, old, edge_env)
            if changed and succ in heads and old is not None:
                visits[succ] = visits.get(succ, 0) + 1
                if visits[succ] >= _WIDEN_DELAY:
                    for name, value in joined.items():
                        if name in old:
                            joined[name] = widen(old[name], value)
                    changed = joined != old
            if changed:
                envs_in[succ] = joined
                if succ not in worklist:
                    worklist.append(succ)
    if widen is not None:
        for _ in range(_NARROW_PASSES):
            narrowed = _narrow_sweep(cfg, analysis, envs_in)
            if narrowed == envs_in:
                break
            envs_in = narrowed
    for bid in cfg.blocks:
        envs_in.setdefault(bid, {})
    return envs_in
