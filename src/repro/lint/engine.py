"""The analyzer engine: discover files, run rules, apply suppressions.

The engine is deliberately dumb about *what* the rules check — it owns
the mechanics every rule shares: file discovery, parsing, central
pragma suppression (a finding whose anchor line carries a valid
``# lint: allow-<slug>(reason)`` pragma is dropped before reporting)
and baseline splitting.  Parse failures are collected as *internal
errors*, not findings: a file that will not parse ran zero rules, and
pretending otherwise would let real violations hide behind a stray
syntax error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.findings import Finding
from repro.lint.module import ModuleInfo, load_module
from repro.lint.pragmas import line_allows
from repro.lint.registry import Rule, resolve_rules

__all__ = ["LintResult", "Linter", "lint_paths", "lint_source"]

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "build", "dist"}


@dataclass
class LintResult:
    """Outcome of one engine run."""

    findings: list[Finding] = field(default_factory=list)       # new (blocking)
    baselined: list[Finding] = field(default_factory=list)      # suppressed
    internal_errors: list[str] = field(default_factory=list)    # parse/config
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings and not self.internal_errors

    def exit_code(self) -> int:
        """CLI contract: 0 clean, 1 findings, 2 internal error."""
        if self.internal_errors:
            return 2
        return 1 if self.findings else 0


class Linter:
    """Run a set of rules over modules, with pragma + baseline filtering."""

    def __init__(
        self,
        rules: list[Rule] | None = None,
        baseline: Baseline | None = None,
        root: Path | None = None,
    ) -> None:
        self.rules = rules if rules is not None else resolve_rules()
        self.baseline = baseline
        self.root = root or Path.cwd()

    # -- discovery ----------------------------------------------------------

    @staticmethod
    def iter_python_files(paths: list[Path]):
        for path in paths:
            if path.is_file():
                if path.suffix == ".py":
                    yield path
            elif path.is_dir():
                for sub in sorted(path.rglob("*.py")):
                    if not any(part in _SKIP_DIRS for part in sub.parts):
                        yield sub

    # -- execution ----------------------------------------------------------

    def check_module(self, module: ModuleInfo) -> list[Finding]:
        """All non-suppressed findings for one parsed module."""
        out: list[Finding] = []
        for rule in self.rules:
            for finding in rule.check(module):
                if line_allows(module.pragmas, finding.line, finding.slug):
                    continue
                out.append(finding)
        return out

    def run(self, paths: list[Path]) -> LintResult:
        result = LintResult()
        raw: list[Finding] = []
        seen: set[Path] = set()
        any_input = False
        for path in self.iter_python_files(paths):
            any_input = True
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            try:
                module = load_module(path, root=self.root)
            except (SyntaxError, OSError, UnicodeDecodeError) as exc:
                result.internal_errors.append(f"{path}: {exc}")
                continue
            result.files_checked += 1
            raw.extend(self.check_module(module))
        if not any_input:
            result.internal_errors.append(
                "no Python files found in: "
                + ", ".join(str(p) for p in paths)
            )
        if self.baseline is not None:
            new, old = self.baseline.split(raw)
            result.findings = new
            result.baselined = old
        else:
            result.findings = sorted(raw, key=Finding.sort_key)
        return result


def lint_paths(
    paths: list[Path],
    *,
    rules: list[Rule] | None = None,
    baseline: Baseline | None = None,
    root: Path | None = None,
) -> LintResult:
    """Convenience wrapper: run the (selected) rule set over ``paths``."""
    return Linter(rules=rules, baseline=baseline, root=root).run(paths)


def lint_source(
    source: str,
    *,
    module_name: str = "snippet",
    relpath: str = "snippet.py",
    rules: list[Rule] | None = None,
) -> list[Finding]:
    """Lint an in-memory snippet (the fixture-test workhorse).

    ``module_name`` controls package-scoped rules: pass e.g.
    ``"repro.deflate.bitio"`` to exercise scope-limited checks.
    """
    import ast

    from repro.lint.pragmas import extract_pragmas

    module = ModuleInfo(
        path=Path(relpath),
        relpath=relpath,
        name=module_name,
        source=source,
        tree=ast.parse(source),
        pragmas=extract_pragmas(source),
    )
    linter = Linter(rules=rules)
    return sorted(linter.check_module(module), key=Finding.sort_key)
