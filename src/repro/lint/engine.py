"""The analyzer engine: discover files, run rules, apply suppressions.

The engine is deliberately dumb about *what* the rules check — it owns
the mechanics every rule shares: file discovery, parsing, central
pragma suppression (a finding whose anchor line carries a valid
``# lint: allow-<slug>(reason)`` pragma is dropped before reporting)
and baseline splitting.  Parse failures are collected as *internal
errors*, not findings: a file that will not parse ran zero rules, and
pretending otherwise would let real violations hide behind a stray
syntax error.

A run has two rule phases:

* **per-module** — every plain :class:`Rule` sees one
  :class:`ModuleInfo` at a time.  This phase is embarrassingly
  parallel, so ``jobs > 1`` fans the *files* out over
  :func:`repro.parallel.make_executor`'s process pool (each worker
  re-parses its file — ASTs never cross the pickle boundary);
* **project** — every :class:`ProjectRule` runs once over a
  :class:`~repro.lint.callgraph.Project` spanning all parsed modules.
  This phase stays serial: the call graph and the bottom-up summary
  computation are shared state, and determinism of summary iteration
  order is part of the summary-store contract.

A parse failure excludes only the broken file from the project — the
interprocedural rules still run over everything that parsed, alongside
the internal error (exit code 2) for the file that did not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.findings import Finding
from repro.lint.module import ModuleInfo, load_module
from repro.lint.pragmas import line_allows
from repro.lint.registry import ProjectRule, Rule, resolve_rules

__all__ = ["LintResult", "Linter", "lint_paths", "lint_source", "lint_sources"]

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "build", "dist"}


@dataclass
class LintResult:
    """Outcome of one engine run."""

    findings: list[Finding] = field(default_factory=list)       # new (blocking)
    baselined: list[Finding] = field(default_factory=list)      # suppressed
    internal_errors: list[str] = field(default_factory=list)    # parse/config
    files_checked: int = 0
    #: Wall-clock seconds spent in :meth:`Linter.run` (reports/timing line).
    duration: float = 0.0
    #: Worker count the per-module phase actually used.
    jobs: int = 1

    @property
    def clean(self) -> bool:
        return not self.findings and not self.internal_errors

    def exit_code(self) -> int:
        """CLI contract: 0 clean, 1 findings, 2 internal error."""
        if self.internal_errors:
            return 2
        return 1 if self.findings else 0


def _lint_batch_task(task: tuple[tuple[str, ...], str, tuple[str, ...]]) -> list[Finding]:
    """Process-pool worker: re-load a batch of files, run per-module rules.

    Takes ``(paths, root, rule_ids)`` as plain strings — the parent
    already parsed each file successfully, so workers ship back only
    pickled :class:`Finding` lists, never ASTs.  One batch per worker
    (not one per file) keeps pool overhead amortised over the whole
    slice.  Module level and closure-free on purpose (the analyzer
    must pass its own REP003).
    """
    paths, root, rule_ids = task
    rules = [
        r for r in resolve_rules(select=rule_ids)
        if not isinstance(r, ProjectRule)
    ]
    linter = Linter(rules=rules)
    out: list[Finding] = []
    for path in paths:
        out.extend(linter.check_module(load_module(Path(path), root=Path(root))))
    return out


class Linter:
    """Run a set of rules over modules, with pragma + baseline filtering."""

    def __init__(
        self,
        rules: list[Rule] | None = None,
        baseline: Baseline | None = None,
        root: Path | None = None,
        jobs: int = 1,
        summary_store: Path | None = None,
    ) -> None:
        self.rules = rules if rules is not None else resolve_rules()
        self.baseline = baseline
        self.root = root or Path.cwd()
        self.jobs = max(1, int(jobs))
        self.summary_store = summary_store

    @property
    def module_rules(self) -> list[Rule]:
        return [r for r in self.rules if not isinstance(r, ProjectRule)]

    @property
    def project_rules(self) -> list[ProjectRule]:
        return [r for r in self.rules if isinstance(r, ProjectRule)]

    # -- discovery ----------------------------------------------------------

    @staticmethod
    def iter_python_files(paths: list[Path]):
        for path in paths:
            if path.is_file():
                if path.suffix == ".py":
                    yield path
            elif path.is_dir():
                for sub in sorted(path.rglob("*.py")):
                    if not any(part in _SKIP_DIRS for part in sub.parts):
                        yield sub

    # -- execution ----------------------------------------------------------

    def check_module(self, module: ModuleInfo) -> list[Finding]:
        """All non-suppressed per-module findings for one parsed module."""
        out: list[Finding] = []
        for rule in self.module_rules:
            for finding in rule.check(module):
                if line_allows(module.pragmas, finding.line, finding.slug):
                    continue
                out.append(finding)
        return out

    def check_project(self, modules: list[ModuleInfo]) -> list[Finding]:
        """Run the interprocedural rules once over all parsed modules."""
        if not self.project_rules or not modules:
            return []
        from repro.lint.callgraph import Project

        project = Project(modules)
        self._apply_summary_store(project)
        out: list[Finding] = []
        for rule in self.project_rules:
            for finding in rule.check_project(project):
                module = project.modules_by_relpath.get(finding.path)
                pragmas = module.pragmas if module is not None else {}
                if line_allows(pragmas, finding.line, finding.slug):
                    continue
                out.append(finding)
        self._save_summary_store(project)
        return out

    def _apply_summary_store(self, project) -> None:
        if self.summary_store is None:
            return
        from repro.lint.summaries import SummaryStore

        cached = SummaryStore(self.summary_store).load(project.source_hash())
        if cached is not None:
            project.set_summaries(cached)

    def _save_summary_store(self, project) -> None:
        # Save only when the run actually computed summaries (a cache
        # hit or a summary-free rule set leaves nothing new to persist).
        if self.summary_store is None or project._summaries is None:
            return
        from repro.lint.summaries import SummaryStore

        try:
            SummaryStore(self.summary_store).save(
                project.source_hash(), project.summaries()
            )
        except OSError:
            pass  # the store is an accelerator; failing to save is not an error

    def _run_module_phase(
        self, modules: list[ModuleInfo]
    ) -> tuple[list[Finding], int]:
        """Per-module findings and the worker count actually used."""
        if not self.module_rules:
            return [], 1
        rule_ids = tuple(sorted(r.rule_id for r in self.module_rules))
        if self.jobs > 1 and len(modules) > 1:
            from repro.parallel import make_executor

            executor = make_executor("process", self.jobs)
            paths = [str(m.path) for m in modules]
            step = -(-len(paths) // self.jobs)
            tasks = [
                (tuple(paths[i:i + step]), str(self.root), rule_ids)
                for i in range(0, len(paths), step)
            ]
            per_batch = executor.map(_lint_batch_task, tasks)
            return [f for batch in per_batch for f in batch], self.jobs
        out: list[Finding] = []
        for module in modules:
            out.extend(self.check_module(module))
        return out, 1

    def run(self, paths: list[Path]) -> LintResult:
        import time

        start = time.perf_counter()
        result = LintResult()
        modules: list[ModuleInfo] = []
        seen: set[Path] = set()
        any_input = False
        for path in self.iter_python_files(paths):
            any_input = True
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            try:
                modules.append(load_module(path, root=self.root))
            except (SyntaxError, OSError, UnicodeDecodeError) as exc:
                result.internal_errors.append(f"{path}: {exc}")
                continue
            result.files_checked += 1
        if not any_input:
            result.internal_errors.append(
                "no Python files found in: "
                + ", ".join(str(p) for p in paths)
            )
        raw, result.jobs = self._run_module_phase(modules)
        raw.extend(self.check_project(modules))
        if self.baseline is not None:
            new, old = self.baseline.split(raw)
            result.findings = new
            result.baselined = old
        else:
            result.findings = sorted(raw, key=Finding.sort_key)
        result.duration = time.perf_counter() - start
        return result


def lint_paths(
    paths: list[Path],
    *,
    rules: list[Rule] | None = None,
    baseline: Baseline | None = None,
    root: Path | None = None,
    jobs: int = 1,
    summary_store: Path | None = None,
) -> LintResult:
    """Convenience wrapper: run the (selected) rule set over ``paths``."""
    return Linter(
        rules=rules,
        baseline=baseline,
        root=root,
        jobs=jobs,
        summary_store=summary_store,
    ).run(paths)


def _module_name_for(relpath: str) -> str:
    parts = Path(relpath).with_suffix("").parts
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "snippet"


def lint_sources(
    sources: dict[str, str],
    *,
    rules: list[Rule] | None = None,
) -> list[Finding]:
    """Lint a set of in-memory modules (the interprocedural fixture hook).

    ``sources`` maps relpath to source text; module names derive from
    the relpaths (``pkg/worker.py`` -> ``pkg.worker``), so imports
    between fixture modules resolve exactly as they would on disk.
    Both rule phases run — per-module rules on each file, project
    rules over the combined project — with pragma suppression applied.
    """
    import ast

    from repro.lint.pragmas import extract_pragmas

    modules = []
    for relpath, source in sources.items():
        modules.append(ModuleInfo(
            path=Path(relpath),
            relpath=relpath,
            name=_module_name_for(relpath),
            source=source,
            tree=ast.parse(source),
            pragmas=extract_pragmas(source),
        ))
    linter = Linter(rules=rules)
    findings = []
    for module in modules:
        findings.extend(linter.check_module(module))
    findings.extend(linter.check_project(modules))
    return sorted(findings, key=Finding.sort_key)


def lint_source(
    source: str,
    *,
    module_name: str = "snippet",
    relpath: str = "snippet.py",
    rules: list[Rule] | None = None,
) -> list[Finding]:
    """Lint an in-memory snippet (the fixture-test workhorse).

    ``module_name`` controls package-scoped rules: pass e.g.
    ``"repro.deflate.bitio"`` to exercise scope-limited checks.
    Project rules run over the one-module project, so single-file
    interprocedural fixtures work here too.
    """
    import ast

    from repro.lint.pragmas import extract_pragmas

    module = ModuleInfo(
        path=Path(relpath),
        relpath=relpath,
        name=module_name,
        source=source,
        tree=ast.parse(source),
        pragmas=extract_pragmas(source),
    )
    linter = Linter(rules=rules)
    findings = linter.check_module(module)
    findings.extend(linter.check_project([module]))
    return sorted(findings, key=Finding.sort_key)
