"""Finding: one reported rule violation, with a stable fingerprint.

A finding is the unit of output of the whole analyzer: ``file:line``
location, rule id (``REP001``...), severity, human message and a fix
hint.  The *fingerprint* intentionally excludes the line number so that
baselined findings survive unrelated edits above them in the file; two
identical violations in one file share a fingerprint and are matched by
count (see :mod:`repro.lint.baseline`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["Finding", "SEVERITIES"]

SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule_id: str          # "REP001"
    slug: str             # pragma slug, e.g. "no-stage"
    path: str             # repo-relative posix path
    line: int             # 1-based
    col: int              # 0-based (ast convention)
    message: str
    hint: str = ""
    severity: str = "error"
    #: Interval witness for the numeric rules (REP018–REP020): the
    #: abstract value the engine computed for the offending expression,
    #: e.g. ``"[0, 71]"``.  Excluded from the fingerprint — a precision
    #: improvement should not invalidate a baseline entry.
    witness: str = ""

    def fingerprint(self) -> str:
        """Line-insensitive identity used for baseline matching."""
        key = f"{self.path}::{self.rule_id}::{self.message}"
        return hashlib.sha1(key.encode()).hexdigest()[:16]

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule_id)

    def format_text(self) -> str:
        loc = f"{self.path}:{self.line}:{self.col + 1}"
        out = f"{loc}: {self.rule_id} [{self.severity}] {self.message}"
        if self.witness:
            out += f"\n    interval: {self.witness}"
        if self.hint:
            out += f"\n    hint: {self.hint}"
        return out

    def to_dict(self) -> dict:
        out = {
            "rule": self.rule_id,
            "slug": self.slug,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint(),
        }
        if self.witness:
            out["interval"] = self.witness
        return out
