"""Integer interval abstract interpretation over the lint CFG.

The flow rules up to REP017 reason about *kinds* of values — bit vs
byte, tainted vs clean, budget-checked vs not — but the decode hot
paths are correct because of *quantitative* invariants the DEFLATE
spec fixes: match length ≤ 258, window distance ≤ 32768, Huffman code
lengths ≤ 15, shift widths bounded by the 64-bit refill word.  This
module adds the numeric domain that lets the analyzer prove those
bounds instead of trusting pragma prose.

The domain is the classic integer interval lattice ``[lo, hi]`` with
``None`` endpoints for ±∞, ⊥ for infeasible paths and ``[-∞, +∞]`` as
⊤.  It runs on the existing CFG + forward worklist solver
(:mod:`repro.lint.dataflow`), which applies *widening* at loop heads
(threshold ladder built from the DEFLATE spec constants, so bounds
land on spec values instead of jumping straight to ∞) followed by a
bounded *narrowing* pass that recovers exact loop exit bounds.

Transfer functions cover integer arithmetic, the masking idioms of the
bit-level code (``x & (N - 1)``, ``x % N``, ``x >> k``, ``x & 7``),
``min``/``max`` clamps, ``len()`` of sized locals, ``reader.read(n)``
(→ ``[0, 2^n - 1]``), sequence repeats and branch-condition refinement
on the true/false CFG edges.  Constants are seeded from
:mod:`repro.deflate.constants` (ints, tables, NumPy LUTs), from simple
module-level assignments of the module under analysis, and from a
small set of *trusted name seeds* — documented domain invariants tied
to naming conventions (``nbits ∈ [0, 64]``, ``max_bits ∈ [1, 15]``),
the numeric analogue of the unit-name heuristics in
:mod:`repro.lint.units`.

Soundness note: values are tracked *conditioned on normal completion*.
A negative shift amount or a ``None`` operand raises at runtime, so
``x >> k`` may assume ``k ≥ 0`` — the proof obligations REP018–REP020
discharge are upper bounds ("cannot silently exceed the spec limit"),
not absence of exceptions, which is exactly the property the decode
paths need.

Interprocedurally, :mod:`repro.lint.summaries` runs this analysis per
function during the bottom-up SCC fixpoint, records the return-value
interval in each :class:`FunctionSummary`, and feeds callee intervals
back in through ``resolve_interval`` — so ``h = _hash3(data, i)``
inherits ``[0, 32767]`` from the callee's masked return.
"""

from __future__ import annotations

import ast
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.lint.cfg import CFG, build_cfg, stmt_expressions
from repro.lint.dataflow import Env, ForwardAnalysis, replay_blocks, solve

__all__ = [
    "Interval",
    "SeqVal",
    "BytesVal",
    "TupleVal",
    "TableVal",
    "TOP",
    "BOTTOM",
    "IntervalAnalysis",
    "IntervalRun",
    "run_intervals",
    "module_constant_env",
    "walk_with_env",
    "spec_constants",
    "spec_thresholds",
    "spec_cap_for",
    "fmt_interval",
    "analyze_source",
    "joined_name_intervals",
]


# ---------------------------------------------------------------------------
# the interval lattice


@dataclass(frozen=True)
class Interval:
    """``[lo, hi]`` with ``None`` endpoints meaning -∞ / +∞."""

    lo: int | None
    hi: int | None

    @property
    def is_empty(self) -> bool:
        return self.lo is not None and self.hi is not None and self.lo > self.hi

    @property
    def is_point(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    def contains(self, value: int) -> bool:
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def join(self, other: "Interval") -> "Interval":
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    def meet(self, other: "Interval") -> "Interval":
        lo = self.lo if other.lo is None else (
            other.lo if self.lo is None else max(self.lo, other.lo)
        )
        hi = self.hi if other.hi is None else (
            other.hi if self.hi is None else min(self.hi, other.hi)
        )
        return Interval(lo, hi)

    def widen(self, other: "Interval", thresholds: tuple[int, ...]) -> "Interval":
        """Threshold widening: an escaping bound jumps to the next spec
        constant in its direction (then to ∞), so loop invariants land
        on DEFLATE limits instead of overshooting immediately."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        lo: int | None
        hi: int | None
        if other.lo is None or self.lo is None:
            lo = None
        elif other.lo < self.lo:
            i = bisect_right(thresholds, other.lo)
            lo = thresholds[i - 1] if i > 0 else None
        else:
            lo = self.lo
        if other.hi is None or self.hi is None:
            hi = None
        elif other.hi > self.hi:
            i = bisect_left(thresholds, other.hi)
            hi = thresholds[i] if i < len(thresholds) else None
        else:
            hi = self.hi
        return Interval(lo, hi)


TOP = Interval(None, None)
BOTTOM = Interval(1, 0)


def fmt_interval(iv: Interval) -> str:
    lo = "-inf" if iv.lo is None else str(iv.lo)
    hi = "+inf" if iv.hi is None else str(iv.hi)
    return f"[{lo}, {hi}]"


# ---------------------------------------------------------------------------
# non-scalar tracked values


@dataclass(frozen=True)
class SeqVal:
    """A sized sequence: element hull + length interval.

    ``const`` marks sequences of constant provenance (spec tables,
    literal tuples) — the only ones REP019 judges index bounds against,
    since their length is a fixed fact rather than a running estimate.
    """

    elem: Interval | None
    length: Interval
    const: bool = False


@dataclass(frozen=True)
class BytesVal:
    """bytes/bytearray-typed value: elements are always ``[0, 255]``."""

    length: Interval


@dataclass(frozen=True)
class TupleVal:
    """Fixed-arity tuple with per-element intervals (``None`` = unknown)."""

    elems: tuple


@dataclass(frozen=True)
class TableVal:
    """A canonical Huffman decode table (``(code_length, symbol)`` entries)."""


_BYTE = Interval(0, 255)
#: Decode-table entries are ``(code_length, symbol)`` pairs built by
#: ``HuffmanDecoder.__init__``: lengths ∈ [0, 15] (guarded against
#: MAX_CODE_BITS), symbols index an alphabet of ≤ 288 codes.
_TABLE_ENTRY = TupleVal((Interval(0, 15), Interval(0, 287)))


def _hull(value) -> Interval:
    """Collapse any tracked value to a scalar interval (⊤ if unknown)."""
    if isinstance(value, Interval):
        return value
    if isinstance(value, TupleVal):
        out = BOTTOM
        for e in value.elems:
            out = out.join(e if isinstance(e, Interval) else TOP)
        return out if not out.is_empty else TOP
    if isinstance(value, BytesVal):
        return _BYTE
    if isinstance(value, SeqVal):
        return value.elem if value.elem is not None else TOP
    return TOP


def _elem_of(value) -> Interval | None:
    """Element interval when iterating ``value`` (None = unknown)."""
    if isinstance(value, SeqVal):
        return value.elem
    if isinstance(value, BytesVal):
        return _BYTE
    if isinstance(value, TupleVal):
        return _hull(value)
    return None


# ---------------------------------------------------------------------------
# interval arithmetic


def _neg(a: Interval) -> Interval:
    return Interval(
        None if a.hi is None else -a.hi,
        None if a.lo is None else -a.lo,
    )


def _add(a: Interval, b: Interval) -> Interval:
    lo = None if a.lo is None or b.lo is None else a.lo + b.lo
    hi = None if a.hi is None or b.hi is None else a.hi + b.hi
    return Interval(lo, hi)


def _sub(a: Interval, b: Interval) -> Interval:
    return _add(a, _neg(b))


def _mul(a: Interval, b: Interval) -> Interval:
    ends = (a.lo, a.hi, b.lo, b.hi)
    if all(e is not None for e in ends):
        prods = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi]
        return Interval(min(prods), max(prods))
    if a.lo is not None and a.lo >= 0 and b.lo is not None and b.lo >= 0:
        hi = None if a.hi is None or b.hi is None else a.hi * b.hi
        return Interval(a.lo * b.lo, hi)
    return TOP


def _floordiv(a: Interval, b: Interval) -> Interval:
    if b.lo is None or b.lo < 1:
        return TOP  # divisor sign unknown: give up rather than guess
    divisors = [d for d in (b.lo, b.hi) if d is not None]
    unbounded_divisor = b.hi is None
    lo: int | None
    hi: int | None
    if a.lo is None:
        lo = None
    else:
        cands = [a.lo // d for d in divisors]
        if unbounded_divisor:
            cands.append(0 if a.lo >= 0 else -1)
        lo = min(cands)
    if a.hi is None:
        hi = None
    else:
        cands = [a.hi // d for d in divisors]
        if unbounded_divisor:
            cands.append(0 if a.hi >= 0 else -1)
        hi = max(cands)
    return Interval(lo, hi)


def _mod(a: Interval, b: Interval) -> Interval:
    if b.lo is not None and b.lo >= 1:
        return Interval(0, None if b.hi is None else b.hi - 1)
    return TOP


def _bitand(a: Interval, b: Interval) -> Interval:
    # For any int x and y ≥ 0: x & y ∈ [0, y] — the masking idiom.
    caps = [
        v.hi for v in (a, b)
        if v.lo is not None and v.lo >= 0 and v.hi is not None
    ]
    if caps:
        return Interval(0, min(caps))
    if all(v.lo is not None and v.lo >= 0 for v in (a, b)):
        return Interval(0, None)
    return TOP


def _bitor(a: Interval, b: Interval, *, xor: bool = False) -> Interval:
    if not all(v.lo is not None and v.lo >= 0 for v in (a, b)):
        return TOP
    lo = 0 if xor else max(a.lo, b.lo)
    if a.hi is None or b.hi is None:
        return Interval(lo, None)
    bits = max(a.hi.bit_length(), b.hi.bit_length())
    return Interval(lo, (1 << bits) - 1)


#: Shift amounts above this are treated as unbounded for *value*
#: computation (the amount interval itself stays precise for REP018).
_SHIFT_VALUE_CAP = 256


def _shift_amount(k: Interval) -> Interval:
    # Conditioned on normal completion: a negative amount raises.
    return k.meet(Interval(0, None))


def _lshift(a: Interval, k: Interval) -> Interval:
    k = _shift_amount(k)
    if k.is_empty:
        return BOTTOM
    klo = k.lo or 0
    khi = k.hi if k.hi is not None and k.hi <= _SHIFT_VALUE_CAP else None
    if a.lo is None:
        lo = None
    elif a.lo >= 0:
        lo = a.lo << klo
    else:
        lo = None if khi is None else a.lo << khi
    if a.hi is None:
        hi = None
    elif a.hi > 0:
        hi = None if khi is None else a.hi << khi
    else:
        hi = a.hi << klo
    return Interval(lo, hi)


def _rshift(a: Interval, k: Interval) -> Interval:
    k = _shift_amount(k)
    if k.is_empty:
        return BOTTOM
    klo = k.lo or 0
    khi = k.hi if k.hi is not None and k.hi <= _SHIFT_VALUE_CAP else None
    if a.lo is None:
        lo = None
    elif a.lo >= 0:
        lo = 0 if khi is None else a.lo >> khi
    else:
        lo = a.lo >> klo
    if a.hi is None:
        hi = None
    elif a.hi >= 0:
        hi = a.hi >> klo
    else:
        hi = -1 if khi is None else a.hi >> khi
    return Interval(lo, hi)


def _abs(a: Interval) -> Interval:
    if a.lo is not None and a.lo >= 0:
        return a
    if a.hi is not None and a.hi <= 0:
        return _neg(a)
    hi = None
    if a.lo is not None and a.hi is not None:
        hi = max(-a.lo, a.hi)
    return Interval(0, hi)


# ---------------------------------------------------------------------------
# spec constant seeds + widening thresholds


_constants_cache: dict | None = None


def spec_constants() -> dict:
    """``deflate.constants`` names → abstract values (cached).

    Ints become point intervals, int tuples and 1-D NumPy LUTs become
    ``const`` sequences (element hull + exact length), bytes become
    :class:`BytesVal` — so ``C.LENGTH_BASE[idx]`` evaluates to
    ``[3, 258]`` and ``len(C.CODELEN_ORDER)`` to ``[19, 19]``.
    """
    global _constants_cache
    if _constants_cache is not None:
        return _constants_cache
    from repro.deflate import constants as C

    out: dict = {}
    for name in dir(C):
        if name.startswith("__"):
            continue
        value = getattr(C, name)
        if isinstance(value, bool):
            continue
        if isinstance(value, int):
            out[name] = Interval(value, value)
        elif isinstance(value, bytes):
            out[name] = BytesVal(Interval(len(value), len(value)))
        elif (
            isinstance(value, tuple)
            and value
            and all(isinstance(e, int) for e in value)
        ):
            out[name] = SeqVal(
                Interval(min(value), max(value)),
                Interval(len(value), len(value)),
                const=True,
            )
        else:
            try:
                import numpy as np

                if isinstance(value, np.ndarray) and value.ndim == 1 and value.size:
                    out[name] = SeqVal(
                        Interval(int(value.min()), int(value.max())),
                        Interval(len(value), len(value)),
                        const=True,
                    )
            except Exception:  # lint: allow-broad-except(optional numpy introspection)
                pass
    _constants_cache = out
    return out


_thresholds_cache: tuple[int, ...] | None = None


def spec_thresholds() -> tuple[int, ...]:
    """The widening ladder: spec constants, powers of two, and their
    negations — escaping loop bounds snap to these before ±∞."""
    global _thresholds_cache
    if _thresholds_cache is not None:
        return _thresholds_cache
    vals = {0, 1}
    for value in spec_constants().values():
        if isinstance(value, Interval) and value.is_point:
            vals.add(value.lo)
        elif isinstance(value, SeqVal):
            if value.elem is not None and value.elem.lo is not None:
                vals.add(value.elem.lo)
            if value.elem is not None and value.elem.hi is not None:
                vals.add(value.elem.hi)
            if value.length.lo is not None:
                vals.add(value.length.lo)
    for p in range(1, 17):
        vals.add(1 << p)
        vals.add((1 << p) - 1)
    for p in (24, 32, 64):
        vals.add(1 << p)
        vals.add((1 << p) - 1)
    vals |= {-v for v in vals}
    _thresholds_cache = tuple(sorted(vals))
    return _thresholds_cache


#: Spec constants an allocation bound may be discharged against
#: (REP020), smallest first so the witness names the tightest one.
_SPEC_CAPS = (
    ("MAX_MATCH", 258),
    ("NUM_LITLEN_SYMBOLS", 288),
    ("PROBE_MIN_BLOCK", 1024),
    ("WINDOW_SIZE", 32768),
    ("PROBE_MAX_BLOCK", 4 * 1024 * 1024),
)


def spec_cap_for(hi: int) -> tuple[str, int] | None:
    """Tightest spec constant ≥ ``hi``, or None if the bound is too big."""
    for name, value in _SPEC_CAPS:
        if hi <= value:
            return name, value
    return None


# ---------------------------------------------------------------------------
# trusted name seeds (documented domain invariants)

#: Naming-convention seeds, the numeric analogue of ``units.py``'s
#: name heuristics.  These encode invariants the BitReader/Huffman
#: layer maintains by construction: ``nbits``/``bitcount`` never
#: exceed the 64-bit refill word, canonical code lengths never exceed
#: MAX_CODE_BITS = 15.  Applied to parameters and otherwise-unbound
#: names only — a local assignment always wins.
_NAME_SEEDS: dict[str, Interval] = {
    "nbits": Interval(0, 64),
    "bitcount": Interval(0, 64),
    "_bitcount": Interval(0, 64),
    "bitbuf": Interval(0, (1 << 64) - 1),
    "_bitbuf": Interval(0, (1 << 64) - 1),
    "max_bits": Interval(1, 15),
    "lit_bits": Interval(1, 15),
    "dist_bits": Interval(0, 15),
}

_ATTR_SEEDS: dict[str, Interval] = {
    **_NAME_SEEDS,
    "_pos": Interval(0, None),
    "_nbytes": Interval(0, None),
}

#: Parameters that are, by the decoder's calling convention, always one
#: of the RFC 1951 base/extra tables (possibly as a NumPy view): the
#: hot loops pass ``C.LENGTH_BASE`` / ``C.DIST_BASE`` and friends down
#: as locals to skip attribute lookups.  Seeding them with the spec
#: table's hull is what lets ``dbase[dsym] + read(dex)`` prove the
#: [1, 32768] distance range interprocedurally.
_TABLE_PARAM_SEEDS: dict[str, str] = {
    "lbase": "LENGTH_BASE",
    "lextra": "LENGTH_EXTRA_BITS",
    "dbase": "DIST_BASE",
    "dextra": "DIST_EXTRA_BITS",
}

_READ_METHODS = frozenset({"read", "peek", "read_bits", "peek_bits"})
_NONNEG_METHODS = frozenset({"tell", "bit_pos", "byte_pos", "bits_remaining"})
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "remove", "discard",
    "pop", "popitem", "clear", "setdefault", "sort", "reverse",
})


def _is_table_name(name: str) -> bool:
    return name == "table" or name.endswith("_table")


def _terminal_name(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


# ---------------------------------------------------------------------------
# the analysis


class IntervalAnalysis(ForwardAnalysis):
    """Forward interval analysis over one unit's CFG.

    Environments map names to :class:`Interval` / :class:`SeqVal` /
    :class:`BytesVal` / :class:`TupleVal` / :class:`TableVal`; a
    missing name is ⊤.  ``module_env`` supplies module-level constant
    bindings of the module under analysis; ``resolve_interval`` maps a
    resolved project call to its summary return interval.
    """

    def __init__(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef | None = None,
        *,
        module_env: Env | None = None,
        resolve_interval: Callable[[ast.Call], Interval | None] | None = None,
    ) -> None:
        self.func = func
        self.module_env = module_env or {}
        self.resolve_interval = resolve_interval
        self._thresholds = spec_thresholds()
        self._constants = spec_constants()

    # -- lattice hooks -------------------------------------------------------

    def initial_env(self) -> Env:
        env: Env = {}
        if self.func is not None:
            args = self.func.args
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                seed = _NAME_SEEDS.get(arg.arg)
                if seed is None:
                    key = _TABLE_PARAM_SEEDS.get(arg.arg)
                    if key is not None:
                        seed = self._constants.get(key)
                if seed is not None:
                    env[arg.arg] = seed
        return env

    def join_values(self, a, b):
        if isinstance(a, Interval) and isinstance(b, Interval):
            return a.join(b)
        if isinstance(a, Interval) and a.is_empty:
            return b
        if isinstance(b, Interval) and b.is_empty:
            return a
        if a == b:
            return a
        if a is None:
            return b if isinstance(b, Interval) and b.is_empty else None
        if b is None:
            return a if isinstance(a, Interval) and a.is_empty else None
        if isinstance(a, SeqVal) and isinstance(b, SeqVal):
            elem = (
                None if a.elem is None or b.elem is None
                else a.elem.join(b.elem)
            )
            return SeqVal(elem, a.length.join(b.length), a.const and b.const)
        if isinstance(a, BytesVal) and isinstance(b, BytesVal):
            return BytesVal(a.length.join(b.length))
        if isinstance(a, TupleVal) and isinstance(b, TupleVal) and len(
            a.elems
        ) == len(b.elems):
            return TupleVal(tuple(
                self.join_values(x, y) for x, y in zip(a.elems, b.elems)
            ))
        return None

    def widen_values(self, old, new):
        """Widening hook the solver applies at loop heads."""
        if isinstance(old, Interval) and isinstance(new, Interval):
            return old.widen(new, self._thresholds)
        if isinstance(old, SeqVal) and isinstance(new, SeqVal):
            elem = (
                None if old.elem is None or new.elem is None
                else old.elem.widen(new.elem, self._thresholds)
            )
            return SeqVal(
                elem,
                old.length.widen(new.length, self._thresholds),
                old.const and new.const,
            )
        if isinstance(old, BytesVal) and isinstance(new, BytesVal):
            return BytesVal(old.length.widen(new.length, self._thresholds))
        if isinstance(old, TupleVal) and isinstance(new, TupleVal) and len(
            old.elems
        ) == len(new.elems):
            return TupleVal(tuple(
                self.widen_values(x, y) for x, y in zip(old.elems, new.elems)
            ))
        return new

    # -- evaluation ----------------------------------------------------------

    def eval(self, node: ast.expr, env: Env):
        """Abstract value of ``node`` under ``env`` (None = no info)."""
        if isinstance(node, ast.Constant):
            v = node.value
            if isinstance(v, bool):
                return Interval(int(v), int(v))
            if isinstance(v, int):
                return Interval(v, v)
            if isinstance(v, (bytes, bytearray)):
                return BytesVal(Interval(len(v), len(v)))
            return None
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            if node.id in self.module_env:
                return self.module_env[node.id]
            if node.id in self._constants:
                return self._constants[node.id]
            return _NAME_SEEDS.get(node.id)
        if isinstance(node, ast.Attribute):
            if node.attr in self._constants:
                return self._constants[node.attr]
            if _is_table_name(node.attr):
                return TableVal()
            return _ATTR_SEEDS.get(node.attr)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node, env)
        if isinstance(node, ast.UnaryOp):
            return self._eval_unaryop(node, env)
        if isinstance(node, ast.BoolOp):
            out = None
            for v in node.values:
                out = self.join_values(out, self.eval(v, env)) if out is not None \
                    else self.eval(v, env)
            return out
        if isinstance(node, ast.Compare):
            return Interval(0, 1)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.IfExp):
            then_env, else_env = dict(env), dict(env)
            self._refine(node.test, True, then_env)
            self._refine(node.test, False, else_env)
            a = self.eval(node.body, then_env)
            b = self.eval(node.orelse, else_env)
            if a is None or b is None:
                return None
            return self.join_values(a, b)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node, env)
        if isinstance(node, ast.Tuple):
            return TupleVal(tuple(
                v if isinstance(v := self.eval(e, env), Interval) else None
                for e in node.elts
            ))
        if isinstance(node, ast.List):
            elems = [self.eval(e, env) for e in node.elts]
            hull = BOTTOM
            known = True
            for v in elems:
                if isinstance(v, Interval):
                    hull = hull.join(v)
                else:
                    known = False
            const = all(isinstance(e, ast.Constant) for e in node.elts)
            return SeqVal(
                hull if known and elems else None,
                Interval(len(elems), len(elems)),
                const=const,
            )
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._eval_comp(node, env)
        if isinstance(node, ast.NamedExpr):
            value = self.eval(node.value, env)
            if isinstance(node.target, ast.Name):
                self._bind(node.target.id, value, env)
            return value
        return None

    def _eval_binop(self, node: ast.BinOp, env: Env):
        left = self.eval(node.left, env)
        right = self.eval(node.right, env)
        # Sequence repeat / concat keep length information for the
        # allocation-bound proofs (REP020's ``b"?" * n`` sinks).
        if isinstance(node.op, ast.Mult):
            for seq, count in ((left, right), (right, left)):
                if isinstance(count, Interval):
                    # A repeat count <= 0 yields the empty sequence, so
                    # the length bound only needs the count's upper end.
                    reps = count.meet(Interval(0, None))
                    if isinstance(seq, BytesVal):
                        return BytesVal(_mul(seq.length, reps))
                    if isinstance(seq, SeqVal):
                        return SeqVal(seq.elem, _mul(seq.length, reps))
                    if isinstance(seq, TupleVal):
                        n = len(seq.elems)
                        return SeqVal(
                            _hull(seq), _mul(Interval(n, n), reps)
                        )
        if isinstance(node.op, ast.Add):
            if isinstance(left, BytesVal) and isinstance(right, BytesVal):
                return BytesVal(_add(left.length, right.length))
            if isinstance(left, SeqVal) and isinstance(right, SeqVal):
                elem = (
                    None if left.elem is None or right.elem is None
                    else left.elem.join(right.elem)
                )
                return SeqVal(elem, _add(left.length, right.length))
        a, b = _hull(left), _hull(right)
        if left is None:
            a = TOP
        if right is None:
            b = TOP
        if isinstance(node.op, ast.Add):
            return _add(a, b)
        if isinstance(node.op, ast.Sub):
            return _sub(a, b)
        if isinstance(node.op, ast.Mult):
            return _mul(a, b)
        if isinstance(node.op, ast.FloorDiv):
            return _floordiv(a, b)
        if isinstance(node.op, ast.Mod):
            return _mod(a, b)
        if isinstance(node.op, ast.LShift):
            return _lshift(a, b)
        if isinstance(node.op, ast.RShift):
            return _rshift(a, b)
        if isinstance(node.op, ast.BitAnd):
            return _bitand(a, b)
        if isinstance(node.op, ast.BitOr):
            return _bitor(a, b)
        if isinstance(node.op, ast.BitXor):
            return _bitor(a, b, xor=True)
        return None

    def _eval_unaryop(self, node: ast.UnaryOp, env: Env):
        v = self.eval(node.operand, env)
        if not isinstance(v, Interval):
            return Interval(0, 1) if isinstance(node.op, ast.Not) else None
        if isinstance(node.op, ast.USub):
            return _neg(v)
        if isinstance(node.op, ast.UAdd):
            return v
        if isinstance(node.op, ast.Invert):
            return _sub(Interval(-1, -1), v)
        return Interval(0, 1)

    def _eval_call(self, node: ast.Call, env: Env):
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in _READ_METHODS and node.args:
                n = _hull(self.eval(node.args[0], env) or TOP)
                if n.hi is not None and 0 <= n.hi <= 64:
                    return Interval(0, (1 << n.hi) - 1)
                return Interval(0, None)
            if func.attr == "read_bytes":
                n = _hull(self.eval(node.args[0], env) or TOP) if node.args else TOP
                return BytesVal(Interval(0, n.hi))
            if func.attr == "from_bytes":
                return Interval(0, None)
            if func.attr in _NONNEG_METHODS:
                return Interval(0, None)
        name = func.id if isinstance(func, ast.Name) else ""
        if name == "len":
            if len(node.args) == 1:
                v = self.eval(node.args[0], env)
                if isinstance(v, (SeqVal, BytesVal)):
                    return v.length
                if isinstance(v, TupleVal):
                    n = len(v.elems)
                    return Interval(n, n)
            return Interval(0, None)
        if name in ("min", "max"):
            return self._eval_minmax(node, env, is_min=name == "min")
        if name == "abs" and len(node.args) == 1:
            v = self.eval(node.args[0], env)
            return _abs(v) if isinstance(v, Interval) else Interval(0, None)
        if name in ("int", "round") and len(node.args) >= 1:
            v = self.eval(node.args[0], env)
            return v if isinstance(v, Interval) else None
        if name == "range":
            return self._eval_range(node, env)
        if name == "ord":
            return Interval(0, 0x10FFFF)
        if name == "sum" and len(node.args) == 1:
            v = self.eval(node.args[0], env)
            elem = _elem_of(v)
            if elem is not None and elem.lo is not None and elem.lo >= 0:
                return Interval(0, None)
            return None
        if name in ("sorted", "list", "tuple", "reversed") and len(node.args) == 1:
            v = self.eval(node.args[0], env)
            if isinstance(v, (SeqVal, BytesVal)):
                return v
            if isinstance(v, TupleVal):
                n = len(v.elems)
                return SeqVal(_hull(v), Interval(n, n))
            return None
        if name in ("bytes", "bytearray"):
            if not node.args:
                return BytesVal(Interval(0, 0))
            v = self.eval(node.args[0], env)
            if isinstance(v, Interval):
                return BytesVal(Interval(max(0, v.lo or 0), v.hi))
            if isinstance(v, BytesVal):
                return v
            if isinstance(v, (SeqVal, TupleVal)):
                if isinstance(v, SeqVal):
                    return BytesVal(v.length)
                n = len(v.elems)
                return BytesVal(Interval(n, n))
            return BytesVal(Interval(0, None))
        if self.resolve_interval is not None:
            resolved = self.resolve_interval(node)
            if resolved is not None:
                return resolved
        return None

    def _eval_minmax(self, node: ast.Call, env: Env, *, is_min: bool):
        if not node.args:
            return None
        if len(node.args) == 1:
            elem = _elem_of(self.eval(node.args[0], env))
            return elem  # min/max of a sequence lies within its hull
        ivs = []
        for arg in node.args:
            v = self.eval(arg, env)
            ivs.append(_hull(v) if v is not None else TOP)
        if is_min:
            los = [iv.lo for iv in ivs]
            lo = None if any(x is None for x in los) else min(los)
            his = [iv.hi for iv in ivs if iv.hi is not None]
            hi = min(his) if his else None
        else:
            his = [iv.hi for iv in ivs]
            hi = None if any(x is None for x in his) else max(his)
            los = [iv.lo for iv in ivs if iv.lo is not None]
            lo = max(los) if los else None
        return Interval(lo, hi)

    def _eval_range(self, node: ast.Call, env: Env):
        args = [_hull(self.eval(a, env) or TOP) for a in node.args]
        if not args:
            return None
        if len(args) == 1:
            elem = Interval(0, None if args[0].hi is None else args[0].hi - 1)
        else:
            start, stop = args[0], args[1]
            step = args[2] if len(args) > 2 else Interval(1, 1)
            if step.lo is not None and step.lo >= 1:
                elem = Interval(
                    start.lo, None if stop.hi is None else stop.hi - 1
                )
            elif step.hi is not None and step.hi <= -1:
                elem = Interval(
                    None if stop.lo is None else stop.lo + 1, start.hi
                )
            else:
                elem = start.join(stop)
        return SeqVal(elem, Interval(0, None))

    def _eval_subscript(self, node: ast.Subscript, env: Env):
        container = self.eval(node.value, env)
        if container is None and _is_table_name(_terminal_name(node.value)):
            container = TableVal()
        if isinstance(node.slice, ast.Slice):
            if isinstance(container, BytesVal):
                return BytesVal(Interval(0, container.length.hi))
            if isinstance(container, SeqVal):
                return SeqVal(container.elem, Interval(0, container.length.hi))
            return None
        if isinstance(container, TableVal):
            return _TABLE_ENTRY
        if isinstance(container, TupleVal):
            idx = self.eval(node.slice, env)
            if isinstance(idx, Interval) and idx.is_point:
                i = idx.lo
                if -len(container.elems) <= i < len(container.elems):
                    return container.elems[i]
                return None
            return _hull(container)
        if isinstance(container, BytesVal):
            return _BYTE
        if isinstance(container, SeqVal):
            return container.elem
        return None

    def _eval_comp(self, node, env: Env):
        ext = dict(env)
        length = Interval(0, None)
        for i, gen in enumerate(node.generators):
            iter_val = self.eval(gen.iter, ext)
            if i == 0:
                if isinstance(iter_val, (SeqVal, BytesVal)):
                    length = Interval(0, iter_val.length.hi)
                elif isinstance(iter_val, TupleVal):
                    length = Interval(0, len(iter_val.elems))
                if gen.ifs:
                    length = Interval(0, length.hi)
            self._bind_loop_target(gen.target, gen.iter, ext)
            for cond in gen.ifs:
                self._refine(cond, True, ext)
        elt = getattr(node, "elt", None)
        elem = self.eval(elt, ext) if elt is not None else None
        hull = _hull(elem) if elem is not None else None
        return SeqVal(hull, length)

    def comp_env(self, node, env: Env) -> Env:
        """Environment inside a comprehension (targets bound, ifs applied)."""
        ext = dict(env)
        for gen in node.generators:
            self._bind_loop_target(gen.target, gen.iter, ext)
            for cond in gen.ifs:
                self._refine(cond, True, ext)
        return ext

    # -- transfer ------------------------------------------------------------

    def transfer_stmt(self, stmt: ast.stmt, env: Env) -> None:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, env)
            for target in stmt.targets:
                self._assign_target(target, value, env)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            value = self.eval(stmt.value, env) if stmt.value is not None else None
            self._bind(stmt.target.id, value, env)
        elif isinstance(stmt, ast.AugAssign):
            self._transfer_augassign(stmt, env)
        elif isinstance(stmt, ast.Assert):
            self._refine(stmt.test, True, env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind_loop_target(stmt.target, stmt.iter, env)
        elif isinstance(stmt, ast.Expr):
            self._transfer_mutation(stmt.value, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)

    def _transfer_augassign(self, stmt: ast.AugAssign, env: Env) -> None:
        target = stmt.target
        if isinstance(target, ast.Name):
            synthetic = ast.BinOp(
                left=ast.Name(id=target.id, ctx=ast.Load()),
                op=stmt.op,
                right=stmt.value,
            )
            self._bind(target.id, self._eval_binop(synthetic, env), env)
        elif isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Name
        ):
            env.pop(target.value.id, None)  # container mutated in place

    def _transfer_mutation(self, expr: ast.expr, env: Env) -> None:
        # out.append(...) / table.extend(...) invalidate tracked lengths.
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in _MUTATING_METHODS
            and isinstance(expr.func.value, ast.Name)
        ):
            env.pop(expr.func.value.id, None)

    def _assign_target(self, target: ast.expr, value, env: Env) -> None:
        if isinstance(target, ast.Name):
            self._bind(target.id, value, env)
        elif isinstance(target, (ast.Tuple, ast.List)):
            elts = target.elts
            if (
                isinstance(value, TupleVal)
                and len(value.elems) == len(elts)
                and not any(isinstance(e, ast.Starred) for e in elts)
            ):
                for elt, v in zip(elts, value.elems):
                    self._assign_target(elt, v, env)
                return
            elem = _elem_of(value)
            for elt in elts:
                if isinstance(elt, ast.Starred):
                    elt = elt.value
                self._assign_target(elt, elem, env)
        elif isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Name
        ):
            env.pop(target.value.id, None)  # container mutated in place

    def _bind(self, name: str, value, env: Env) -> None:
        if value is None:
            env.pop(name, None)
        else:
            env[name] = value

    def _bind_loop_target(
        self, target: ast.expr, iter_expr: ast.expr, env: Env
    ) -> None:
        if (
            isinstance(iter_expr, ast.Call)
            and isinstance(iter_expr.func, ast.Name)
            and iter_expr.func.id == "enumerate"
            and iter_expr.args
            and isinstance(target, ast.Tuple)
            and len(target.elts) == 2
        ):
            seq = self.eval(iter_expr.args[0], env)
            index = Interval(0, None)
            if isinstance(seq, (SeqVal, BytesVal)) and seq.length.hi is not None:
                index = Interval(0, max(0, seq.length.hi - 1))
            self._assign_target(target.elts[0], index, env)
            self._assign_target(target.elts[1], _elem_of(seq), env)
            return
        elem = _elem_of(self.eval(iter_expr, env))
        if isinstance(target, ast.Name):
            self._bind(target.id, elem, env)
        else:
            # Tuple unpack of an opaque iterable: drop every bound name.
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    env.pop(sub.id, None)

    # -- branch refinement ---------------------------------------------------

    def refine_edge(self, test: ast.expr, label: str, env: Env) -> None:
        self._refine(test, label == "true", env)

    def _refine(self, test: ast.expr, truth: bool, env: Env) -> None:
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            self._refine(test.operand, not truth, env)
            return
        if isinstance(test, ast.BoolOp):
            conjunctive = (isinstance(test.op, ast.And) and truth) or (
                isinstance(test.op, ast.Or) and not truth
            )
            if conjunctive:
                for value in test.values:
                    self._refine(value, truth, env)
            return
        if isinstance(test, ast.Compare):
            self._refine_compare(test, truth, env)
            return
        if isinstance(test, ast.NamedExpr):
            self._refine(
                ast.Name(id=test.target.id, ctx=ast.Load()), truth, env
            ) if isinstance(test.target, ast.Name) else None
            return
        if isinstance(test, ast.Name):
            iv = env.get(test.id)
            if isinstance(iv, Interval):
                if truth:
                    env[test.id] = _exclude_point(iv, 0)
                else:
                    env[test.id] = iv.meet(Interval(0, 0))

    def _refine_compare(self, test: ast.Compare, truth: bool, env: Env) -> None:
        operands = [test.left, *test.comparators]
        if not truth and len(test.ops) > 1:
            return  # negation of a chain is a disjunction: no refinement
        for (left, op, right) in zip(operands, test.ops, operands[1:]):
            self._refine_pair(left, op, right, truth, env)

    def _refine_pair(
        self, left: ast.expr, op: ast.cmpop, right: ast.expr, truth: bool, env: Env
    ) -> None:
        lv = _hull(self.eval(left, env) or TOP)
        rv = _hull(self.eval(right, env) or TOP)
        if isinstance(left, ast.Name):
            refined = _apply_cmp(lv, op, rv, truth)
            if refined is not None:
                env[left.id] = refined
        if isinstance(right, ast.Name):
            refined = _apply_cmp(rv, _mirror(op), lv, truth)
            if refined is not None:
                env[right.id] = refined


def _exclude_point(iv: Interval, value: int) -> Interval:
    if iv.lo == value:
        return Interval(value + 1, iv.hi)
    if iv.hi == value:
        return Interval(iv.lo, value - 1)
    return iv


_INVERT = {
    ast.Lt: ast.GtE, ast.LtE: ast.Gt, ast.Gt: ast.LtE, ast.GtE: ast.Lt,
    ast.Eq: ast.NotEq, ast.NotEq: ast.Eq,
}
_MIRROR = {
    ast.Lt: ast.Gt, ast.LtE: ast.GtE, ast.Gt: ast.Lt, ast.GtE: ast.LtE,
    ast.Eq: ast.Eq, ast.NotEq: ast.NotEq,
}


def _mirror(op: ast.cmpop) -> ast.cmpop:
    cls = _MIRROR.get(type(op))
    return cls() if cls is not None else op


def _apply_cmp(
    iv: Interval, op: ast.cmpop, other: Interval, truth: bool
) -> Interval | None:
    """``iv`` refined by ``iv OP other`` being ``truth`` (None = no gain)."""
    cls = type(op)
    if not truth:
        cls = _INVERT.get(cls)
        if cls is None:
            return None
    if cls is ast.Lt:
        if other.hi is None:
            return None
        return iv.meet(Interval(None, other.hi - 1))
    if cls is ast.LtE:
        if other.hi is None:
            return None
        return iv.meet(Interval(None, other.hi))
    if cls is ast.Gt:
        if other.lo is None:
            return None
        return iv.meet(Interval(other.lo + 1, None))
    if cls is ast.GtE:
        if other.lo is None:
            return None
        return iv.meet(Interval(other.lo, None))
    if cls is ast.Eq:
        return iv.meet(other)
    if cls is ast.NotEq:
        if other.is_point:
            return _exclude_point(iv, other.lo)
        return None
    return None


# ---------------------------------------------------------------------------
# module-level constant environments


def module_constant_env(tree: ast.Module) -> Env:
    """Evaluate simple module-level constant assignments into an env.

    ``_HASH_BITS = 15`` / ``_HASH_SIZE = 1 << _HASH_BITS`` /
    ``MAX_DIST = C.WINDOW_SIZE - _MIN_LOOKAHEAD`` all resolve, chaining
    through earlier bindings and the spec-constant seeds.  Names bound
    more than once at top level are dropped (flow-insensitive safety).
    """
    analysis = IntervalAnalysis()
    env: Env = {}
    assigned: set[str] = set()
    dropped: set[str] = set()
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if name in assigned or name in dropped:
                dropped.add(name)
                env.pop(name, None)
                continue
            assigned.add(name)
            evaluated = analysis.eval(value, env)
            if evaluated is not None:
                env[name] = evaluated
    return env


# ---------------------------------------------------------------------------
# driving one unit


@dataclass
class IntervalRun:
    """Solved interval analysis of one unit, with replay helpers."""

    analysis: IntervalAnalysis
    cfg: CFG
    envs_in: dict[int, Env]

    def replay(self) -> Iterator[tuple[str, ast.AST, Env]]:
        return replay_blocks(self.cfg, self.analysis, self.envs_in)

    def stmt_envs(self) -> dict[int, Env]:
        """``id(stmt)`` → environment holding before that statement."""
        out: dict[int, Env] = {}
        for kind, node, env in self.replay():
            out[id(node)] = dict(env)
        return out

    def return_interval(self) -> Interval | None:
        """Join of every ``return`` expression's interval (None if any
        return value resists evaluation — no claim is made then)."""
        joined: Interval | None = None
        for kind, node, env in self.replay():
            if kind != "stmt" or not isinstance(node, ast.Return):
                continue
            if node.value is None:
                continue
            value = self.analysis.eval(node.value, env)
            if not isinstance(value, Interval):
                return None
            joined = value if joined is None else joined.join(value)
        return joined


def run_intervals(
    func: ast.FunctionDef | ast.AsyncFunctionDef | None,
    body: list[ast.stmt],
    *,
    module_env: Env | None = None,
    resolve_interval=None,
) -> IntervalRun:
    """Solve the interval analysis over one unit's CFG."""
    analysis = IntervalAnalysis(
        func, module_env=module_env, resolve_interval=resolve_interval
    )
    cfg = build_cfg(body)
    envs_in = solve(cfg, analysis)
    return IntervalRun(analysis, cfg, envs_in)


def walk_with_env(
    analysis: IntervalAnalysis, expr: ast.expr, env: Env
) -> Iterator[tuple[ast.AST, Env]]:
    """Yield every sub-expression of ``expr`` with its evaluation env.

    Comprehensions extend a copied environment with their generator
    targets (refined by the ``if`` clauses) for the inner parts, so a
    shift like ``1 << (max_bits - l) for l in nonzero`` sees ``l``
    bound to the element hull of ``nonzero``.  Lambda bodies are
    skipped — they execute elsewhere.
    """
    yield expr, env
    if isinstance(expr, ast.Lambda):
        return
    if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
        inner = analysis.comp_env(expr, env)
        scope = env
        for gen in expr.generators:
            yield from walk_with_env(analysis, gen.iter, scope)
            scope = inner  # later generators/conditions see bound targets
            for cond in gen.ifs:
                yield from walk_with_env(analysis, cond, inner)
        for part in ("elt", "key", "value"):
            sub = getattr(expr, part, None)
            if sub is not None:
                yield from walk_with_env(analysis, sub, inner)
        return
    for child in ast.iter_child_nodes(expr):
        if isinstance(child, ast.expr):
            yield from walk_with_env(analysis, child, env)
        elif isinstance(child, (ast.keyword, ast.FormattedValue)):
            yield from walk_with_env(analysis, child.value, env)


def iter_unit_expressions(
    run: IntervalRun,
) -> Iterator[tuple[ast.stmt | None, ast.AST, Env]]:
    """Every expression node of the unit with its environment.

    Yields ``(owning stmt or None for branch tests, node, env)`` —
    the common driver for REP018/REP019's obligation scans.
    """
    for kind, node, env in run.replay():
        if kind == "stmt":
            for expr in stmt_expressions(node):
                for sub, sub_env in walk_with_env(run.analysis, expr, env):
                    yield node, sub, sub_env
        else:
            for sub, sub_env in walk_with_env(run.analysis, node, env):
                yield None, sub, sub_env


# ---------------------------------------------------------------------------
# test helpers


def analyze_source(source: str, funcname: str | None = None) -> IntervalRun:
    """Run the analysis over in-memory source (widening/termination tests).

    With ``funcname``, analyses that function's body; otherwise the
    module top level.
    """
    tree = ast.parse(source)
    module_env = module_constant_env(tree)
    if funcname is None:
        return run_intervals(None, tree.body, module_env=module_env)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == funcname:
                return run_intervals(node, node.body, module_env=module_env)
    raise ValueError(f"function {funcname!r} not found")


def joined_name_intervals(run: IntervalRun) -> dict[str, Interval]:
    """Per-name join of every program point's interval binding.

    The property tests compare *observed* runtime values against these:
    any value a name ever holds at any point of the unit must fall
    inside its joined interval.
    """
    out: dict[str, Interval] = {}
    for kind, node, env in run.replay():
        for name, value in env.items():
            if isinstance(value, Interval) and not value.is_empty:
                out[name] = out[name].join(value) if name in out else value
    # Include the env after the last transfer of each block, so names
    # bound by a block's final statement are represented too.
    for block in run.cfg:
        env = dict(run.envs_in.get(block.bid, {}))
        for stmt in block.stmts:
            run.analysis.transfer_stmt(stmt, env)
        for name, value in env.items():
            if isinstance(value, Interval) and not value.is_empty:
                out[name] = out[name].join(value) if name in out else value
    return out
