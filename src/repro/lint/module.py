"""ModuleInfo: one parsed source file handed to every rule.

Bundles the parsed AST with everything rules repeatedly need — the
dotted module name (for package-scoped rules like REP002/REP007), the
raw source lines (for pragma checks and hints) and the repo-relative
path used in reports and baseline fingerprints.

The dotted name is derived from the file path: everything after the
last ``repro`` path component, so both an installed tree and the test
fixtures' ``tmp/.../repro/deflate/foo.py`` layouts resolve naturally.
Files outside a ``repro`` tree fall back to their stem, which keeps the
engine usable on arbitrary snippets (rules scoped to repro packages
simply never fire there unless the test asks for a specific name).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.pragmas import Pragma, extract_pragmas

__all__ = ["ModuleInfo", "load_module", "module_name_for_path"]


def module_name_for_path(path: Path) -> str:
    """Dotted module name for ``path`` (anchored at a ``repro`` component)."""
    parts = list(path.parts)
    stem = path.stem
    if "repro" in parts[:-1]:
        # Index of the LAST "repro" component before the filename.
        anchor = len(parts) - 2 - parts[:-1][::-1].index("repro")
        pkg = parts[anchor:-1]
        if stem != "__init__":
            pkg = pkg + [stem]
        return ".".join(pkg)
    if stem == "__init__":
        return parts[-2] if len(parts) >= 2 else stem
    return stem


@dataclass
class ModuleInfo:
    """A parsed module plus the metadata rules key their scopes on."""

    path: Path
    relpath: str                 # posix, as shown in findings
    name: str                    # dotted, e.g. "repro.deflate.bitio"
    source: str
    tree: ast.Module
    pragmas: dict[int, list[Pragma]] = field(default_factory=dict)

    @property
    def basename(self) -> str:
        """Last dotted component (``bitio`` for ``repro.deflate.bitio``)."""
        return self.name.rpartition(".")[2]

    @property
    def is_package_init(self) -> bool:
        return self.path.name == "__init__.py"

    def in_package(self, *packages: str) -> bool:
        """True if this module lives under any of the dotted ``packages``."""
        return any(
            self.name == pkg or self.name.startswith(pkg + ".")
            for pkg in packages
        )

    @property
    def source_hash(self) -> str:
        """SHA-1 of the source text (summary-store cache key component)."""
        import hashlib

        return hashlib.sha1(self.source.encode()).hexdigest()

    def line_text(self, lineno: int) -> str:
        lines = self.source.splitlines()
        return lines[lineno - 1] if 1 <= lineno <= len(lines) else ""


def load_module(path: Path, root: Path | None = None) -> ModuleInfo:
    """Parse ``path`` into a :class:`ModuleInfo`.

    Raises ``SyntaxError`` / ``OSError`` to the caller — the engine
    converts those into internal errors (CLI exit code 2) rather than
    findings, since an unparseable tree means no rule ran at all.
    """
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    if root is not None:
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
    else:
        rel = path.as_posix()
    return ModuleInfo(
        path=path,
        relpath=rel,
        name=module_name_for_path(path),
        source=source,
        tree=tree,
        pragmas=extract_pragmas(source),
    )
