"""Suppression pragmas: ``# lint: allow-<slug>(<reason>)``.

A finding is suppressed when the physical line its node starts on
carries a pragma whose slug matches the rule that produced it, e.g.::

    except Exception:  # lint: allow-broad-except(campaign isolates every case)

The reason is mandatory — an empty ``allow-broad-except()`` does not
suppress anything, so every exemption is self-documenting at the site.
Several pragmas may share one line (``# lint: allow-a(x) allow-b(y)``).
"""

from __future__ import annotations

import re

__all__ = ["Pragma", "extract_pragmas", "line_allows"]

_PRAGMA_COMMENT = re.compile(r"#\s*lint:\s*(.+)$")
_ALLOW = re.compile(r"allow-([a-z0-9][a-z0-9-]*)\(([^()]*)\)")


class Pragma:
    """One ``allow-<slug>(<reason>)`` annotation on a source line."""

    __slots__ = ("slug", "reason", "line")

    def __init__(self, slug: str, reason: str, line: int) -> None:
        self.slug = slug
        self.reason = reason.strip()
        self.line = line

    @property
    def valid(self) -> bool:
        """Pragmas must carry a non-empty justification."""
        return bool(self.reason)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pragma({self.slug!r}, {self.reason!r}, line={self.line})"


def extract_pragmas(source: str) -> dict[int, list[Pragma]]:
    """Map 1-based line number -> pragmas declared on that line."""
    out: dict[int, list[Pragma]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _PRAGMA_COMMENT.search(text)
        if not m:
            continue
        pragmas = [
            Pragma(slug, reason, lineno)
            for slug, reason in _ALLOW.findall(m.group(1))
        ]
        if pragmas:
            out[lineno] = pragmas
    return out


def line_allows(pragmas: dict[int, list[Pragma]], line: int, slug: str) -> bool:
    """True if ``line`` carries a valid pragma for ``slug``."""
    return any(p.slug == slug and p.valid for p in pragmas.get(line, ()))
