"""Rule base class and the global rule registry.

Rules are small visitor-style classes registered with :func:`register`;
the engine instantiates each selected rule once per run and calls
:meth:`Rule.check` per module.  Registration keys on the rule id
(``REP001``...) and enforces uniqueness, so a typo'd duplicate id fails
loudly at import time instead of silently shadowing a rule.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.errors import ReproError
from repro.lint.findings import Finding
from repro.lint.module import ModuleInfo

__all__ = [
    "Rule",
    "ProjectRule",
    "LintConfigError",
    "register",
    "all_rules",
    "resolve_rules",
]


class LintConfigError(ReproError):
    """The analyzer itself was misconfigured (unknown rule id, bad path).

    Distinct from findings: configuration errors map to CLI exit code 2.
    """


class Rule:
    """Base class for one lint rule.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding :class:`Finding` objects.  Pragma suppression is handled
    centrally by the engine (matching on :attr:`slug`), so rules report
    every violation they see.
    """

    rule_id: str = ""        # "REP001"
    slug: str = ""           # pragma slug: # lint: allow-<slug>(reason)
    severity: str = "error"
    summary: str = ""        # one-line description for --list / docs

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: ModuleInfo,
        node: ast.AST,
        message: str,
        hint: str = "",
        witness: str = "",
    ) -> Finding:
        """Build a finding anchored at ``node``'s location.

        ``witness`` carries the interval the engine computed for the
        offending expression (numeric rules only); it surfaces in text
        output and as ``properties.interval`` in SARIF.
        """
        return Finding(
            rule_id=self.rule_id,
            slug=self.slug,
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=hint,
            severity=self.severity,
            witness=witness,
        )


class ProjectRule(Rule):
    """A rule that analyses the *whole project* at once.

    The interprocedural rules (REP014–REP020) need the call graph and
    function summaries spanning every module of the run, so the engine
    calls :meth:`check_project` exactly once per run — after all files
    parse — instead of :meth:`check` per module.  Findings are still
    anchored at a concrete ``(path, line)``, so pragma suppression and
    baseline matching work unchanged.
    """

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        """Project rules do not run per module."""
        return iter(())

    def check_project(self, project) -> Iterator[Finding]:
        """Yield findings over a :class:`repro.lint.callgraph.Project`."""
        raise NotImplementedError

    def finding_at(
        self,
        module: ModuleInfo,
        node: ast.AST,
        message: str,
        hint: str = "",
        witness: str = "",
    ) -> Finding:
        """Alias of :meth:`Rule.finding`, kept for call-site clarity."""
        return self.finding(module, node, message, hint, witness)


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding ``cls`` to the global registry."""
    if not cls.rule_id or not cls.slug:
        raise LintConfigError(
            f"rule {cls.__name__} must define rule_id and slug", stage="lint"
        )
    if cls.rule_id in _REGISTRY:
        raise LintConfigError(
            f"duplicate rule id {cls.rule_id}", stage="lint"
        )
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> list[type[Rule]]:
    """Every registered rule class, ordered by id."""
    import repro.lint.rules  # noqa: F401  (registration side effect)

    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def resolve_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Rule]:
    """Instantiate the requested subset of rules.

    ``select`` keeps only the listed ids; ``ignore`` then removes ids.
    Unknown ids in either list raise :class:`LintConfigError`.
    """
    classes = all_rules()
    known = {c.rule_id for c in classes}
    for requested in (select or ()), (ignore or ()):
        unknown = set(requested) - known
        if unknown:
            raise LintConfigError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}",
                stage="lint",
            )
    if select:
        wanted = set(select)
        classes = [c for c in classes if c.rule_id in wanted]
    if ignore:
        dropped = set(ignore)
        classes = [c for c in classes if c.rule_id not in dropped]
    return [c() for c in classes]
