"""Domain rule registry: importing this package registers every rule.

Each module holds one rule; the import side effect (the ``@register``
decorator) is what :func:`repro.lint.registry.all_rules` relies on.
"""

from repro.lint.rules.bounded_retry import BoundedRetryRule
from repro.lint.rules.context import ErrorContextRule
from repro.lint.rules.defaults import MutableDefaultRule
from repro.lint.rules.excepts import BroadExceptRule
from repro.lint.rules.exec_safety import ExecSafetyRule
from repro.lint.rules.exports import ExportSyncRule
from repro.lint.rules.index_bounds import IndexBoundsRule
from repro.lint.rules.marker_escape import MarkerEscapeRule
from repro.lint.rules.masking import UnmaskedWidthRule
from repro.lint.rules.modstate import ModuleStateRule
from repro.lint.rules.pickle_safety import PickleSafetyRule
from repro.lint.rules.pragma_reason import PragmaReasonRule
from repro.lint.rules.proven_alloc import ProvenAllocRule
from repro.lint.rules.randomness import UnseededRandomnessRule
from repro.lint.rules.shift_width import ShiftWidthRule
from repro.lint.rules.spec_literals import SpecLiteralRule
from repro.lint.rules.unit_confusion import UnitConfusionRule
from repro.lint.rules.unvalidated_decode import UnvalidatedDecodeRule
from repro.lint.rules.xfunc_taint import CrossDecodeTaintRule
from repro.lint.rules.xfunc_units import CrossUnitConfusionRule

__all__ = [
    "BoundedRetryRule",
    "ErrorContextRule",
    "MutableDefaultRule",
    "BroadExceptRule",
    "ExportSyncRule",
    "UnmaskedWidthRule",
    "ModuleStateRule",
    "PickleSafetyRule",
    "UnseededRandomnessRule",
    "UnitConfusionRule",
    "UnvalidatedDecodeRule",
    "MarkerEscapeRule",
    "PragmaReasonRule",
    "CrossUnitConfusionRule",
    "CrossDecodeTaintRule",
    "ExecSafetyRule",
    "ShiftWidthRule",
    "IndexBoundsRule",
    "ProvenAllocRule",
    "SpecLiteralRule",
]
