"""Shared driver for the flow-sensitive rules (REP009–REP011).

Each dataflow rule pairs a :class:`repro.lint.dataflow.ForwardAnalysis`
(the transfer functions) with a sink checker.  The driver owns the
orchestration every such rule repeats:

1. enumerate analysis units — every function/method body plus the
   module top level (nested ``def`` bodies are separate units);
2. build the CFG and solve the analysis to a fixpoint;
3. replay each basic block from its entry environment, calling the
   checker on every statement *before* applying its transfer (a sink
   in ``x = f(x)`` must see the pre-assignment binding of ``x``), and
   on the block's branch test after the last statement.

The checker contract is :meth:`FlowAnalysis.check_stmt` /
:meth:`FlowAnalysis.check_test` yielding ``(node, message, hint)``
triples; the driver converts them into findings.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.cfg import build_cfg
from repro.lint.dataflow import Env, ForwardAnalysis, replay_blocks, solve
from repro.lint.findings import Finding
from repro.lint.module import ModuleInfo
from repro.lint.registry import Rule

__all__ = ["FlowAnalysis", "FlowRule", "iter_analysis_units", "walk_own_expressions"]


class FlowAnalysis(ForwardAnalysis):
    """A dataflow analysis that can also report sinks."""

    def check_stmt(self, stmt: ast.stmt, env: Env) -> Iterator[tuple[ast.AST, str, str]]:
        return iter(())

    def check_test(self, test: ast.expr, env: Env) -> Iterator[tuple[ast.AST, str, str]]:
        return iter(())


def iter_analysis_units(tree: ast.Module):
    """Yield ``(function-or-None, body)`` for every analysis unit."""
    yield None, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


def walk_own_expressions(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Every AST node in the statement's own expressions (shallow)."""
    from repro.lint.cfg import stmt_expressions

    for expr in stmt_expressions(stmt):
        yield from ast.walk(expr)


class FlowRule(Rule):
    """Base class: run a :class:`FlowAnalysis` over every unit."""

    def make_analysis(
        self, module: ModuleInfo, func: ast.FunctionDef | None
    ) -> FlowAnalysis:
        raise NotImplementedError

    def applies_to(self, module: ModuleInfo) -> bool:
        return True

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not self.applies_to(module):
            return
        for func, body in iter_analysis_units(module.tree):
            analysis = self.make_analysis(module, func)
            cfg = build_cfg(body)
            envs_in = solve(cfg, analysis)
            for kind, node, env in replay_blocks(cfg, analysis, envs_in):
                checker = analysis.check_stmt if kind == "stmt" else analysis.check_test
                for hit, message, hint in checker(node, env):
                    yield self.finding(module, hit, message, hint=hint)
