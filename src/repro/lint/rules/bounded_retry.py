"""REP013 — retry loops in the supervision layer must be bounded.

``repro.parallel`` and ``repro.robustness`` exist to turn worker
faults into recoveries; the classic bug in that kind of code is the
*unbounded* retry loop — ``while True: try ... except: continue`` —
which converts a persistent fault (a corrupt chunk that always raises,
a pool that breaks on every rebuild) into a spin that never returns.
The supervision design rule is that every retry loop spends from an
explicit attempt budget (``n_tasks * (max_retries + 1)`` submissions in
``_pool_map``), so termination is guaranteed under *any* fault pattern.

Flagged: a ``while`` loop, in either package, whose body contains an
exception handler that swallows the exception (no ``raise`` in the
handler — i.e. the loop will iterate again after a failure) and whose
test/body never compares against an attempt bound (a name matching
``attempt``/``retr*``/``tries``/``budget``/``remaining``/``deadline``).
``for`` loops are exempt — their iterator bounds them.

Escape hatch: ``# lint: allow-unbounded-retry(<reason>)`` on the
``while`` line, for loops bounded by means the heuristic cannot see.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.module import ModuleInfo
from repro.lint.registry import Rule, register

__all__ = ["BoundedRetryRule"]

_SCOPED_PACKAGES = ("repro.parallel", "repro.robustness")
_BOUND_NAME = re.compile(r"attempt|retr|tries|budget|remaining|deadline", re.I)

# Nested scopes are separate termination arguments: a handler inside a
# closure defined in the loop does not make the loop itself a retrier.
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _walk_same_scope(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested def/class scopes."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, _SCOPE_NODES):
            stack.extend(ast.iter_child_nodes(child))


def _swallowing_handler(loop: ast.While) -> ast.ExceptHandler | None:
    """First handler in the loop body that catches without re-raising."""
    for node in _walk_same_scope(loop):
        if isinstance(node, ast.ExceptHandler):
            if not any(isinstance(n, ast.Raise) for n in ast.walk(node)):
                return node
    return None


def _references_bound(loop: ast.While) -> bool:
    """True if any comparison in the loop involves an attempt-bound name."""
    for node in [loop.test, *loop.body]:
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Compare):
                continue
            for term in ast.walk(sub):
                if isinstance(term, ast.Name) and _BOUND_NAME.search(term.id):
                    return True
                if isinstance(term, ast.Attribute) and _BOUND_NAME.search(term.attr):
                    return True
    return False


@register
class BoundedRetryRule(Rule):
    rule_id = "REP013"
    slug = "unbounded-retry"
    summary = (
        "while-loops that swallow exceptions in repro.parallel / "
        "repro.robustness must compare against an attempt bound"
    )
    example_bad = (
        "while True:\n"
        "    try:\n"
        "        return pool.submit(fn, item).result()\n"
        "    except BrokenExecutor:\n"
        "        pool = _new_pool()\n"
    )
    example_good = (
        "while todo and submission_budget > 0:\n"
        "    submission_budget -= 1\n"
        "    try:\n"
        "        return pool.submit(fn, item).result()\n"
        "    except BrokenExecutor:\n"
        "        pool = _new_pool()\n"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package(*_SCOPED_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.While):
                continue
            handler = _swallowing_handler(node)
            if handler is None or _references_bound(node):
                continue
            yield self.finding(
                module,
                node,
                "retry loop without an attempt bound: the handler at line "
                f"{handler.lineno} swallows the exception, so a persistent "
                "fault spins this loop forever",
                hint=(
                    "spend from an explicit budget (e.g. 'while todo and "
                    "submission_budget > 0') or annotate with "
                    "# lint: allow-unbounded-retry(<reason>)"
                ),
            )
