"""REP017 — in-loop allocations reachable with no budget check.

The resource-budget layer (:mod:`repro.robustness.limits`) only
protects the pipeline if the hot allocation sites actually consult it.
An attacker-shaped gzip stream controls loop trip counts and buffer
sizes, so an allocation with a *computed* size inside a loop —
``bytes(n)``, ``bytearray(n)``, ``b"\\x00" * n`` — is an output-
amplification sink unless some ``ResourceBudget.check_*`` call
dominates it.

The intraprocedural view is not enough: the check usually lives one or
two frames *up* (``inflate()`` checks the budget, then calls the block
decoder that allocates).  This rule therefore works on the function
summaries: :func:`repro.lint.summaries.run_budget` records each
unit's unguarded in-loop allocation sites and propagates them through
*unguarded* call edges only — a caller that performs a budget check
before the call absorbs everything below it.  What remains in the
summary of an **entry point** (a function no project code calls, or a
module top level) is allocation the pipeline can reach with no budget
standing between the input and the heap.  Findings anchor at the
allocation expression itself, deduplicated across entry points.

Known imprecision, by design: a branch testing a ``budget``-named
value (``if budget is not None:``) marks both arms checked — the
``None`` arm is the caller explicitly opting out of limits, which is a
policy choice, not a missing check.

Escape hatch: ``# lint: allow-unbudgeted-alloc(<reason>)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import Project
from repro.lint.findings import Finding
from repro.lint.registry import ProjectRule, register
from repro.lint.summaries import Site, _call_resolver, run_budget

__all__ = ["UnbudgetedAllocRule"]

_HINT = (
    "thread a ResourceBudget into the function and call "
    "budget.check_block()/check_output() before (or inside) the loop, "
    "or perform the check in the caller before handing control down"
)


@register
class UnbudgetedAllocRule(ProjectRule):
    rule_id = "REP017"
    slug = "unbudgeted-alloc"
    summary = (
        "computed-size allocations in loops must be dominated by a "
        "ResourceBudget check somewhere on every call path"
    )
    example_bad = (
        "def _emit(window, length):\n"
        "    out = bytearray()\n"
        "    while length > 0:\n"
        "        out += bytes(length)       # grows with no cap\n"
        "        length -= len(window)\n"
        "    return out\n"
        "\n"
        "def inflate_block(reader, window, length):\n"
        "    return _emit(window, length)\n"
    )
    example_good = (
        "def _emit(window, length, budget):\n"
        "    out = bytearray()\n"
        "    while length > 0:\n"
        "        budget.check_output(len(out) + length)\n"
        "        out += bytes(length)\n"
        "        length -= len(window)\n"
        "    return out\n"
        "\n"
        "def inflate_block(reader, window, length, budget):\n"
        "    return _emit(window, length, budget)\n"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph = project.call_graph()
        summaries = project.summaries()
        # Entry points: units no project code calls — counting only
        # callers *outside* the unit's own SCC, so a recursive cluster
        # nothing else invokes is still judged rather than skipped.
        scc_of: dict[str, int] = {}
        for i, scc in enumerate(project.scc_order()):
            for member in scc:
                scc_of[member] = i
        exposed: list[Site] = []
        for qualname, module, body, func in project.iter_units():
            if func is None:
                # Module top level: always an entry point; not covered
                # by the summary table, so run the budget pass directly.
                resolve = _call_resolver(project, summaries, module, None, body)
                sites, _ = run_budget(module, None, body, resolve)
                exposed.extend(sites)
                continue
            outside_callers = [
                site for site in graph.callers_of(qualname)
                if scc_of.get(site.caller) != scc_of.get(qualname)
            ]
            if outside_callers:
                continue  # some project caller may guard it; judged there
            summary = summaries.get(qualname)
            if summary is not None:
                exposed.extend(summary.unbudgeted_allocs)

        seen: set[tuple[str, int, str]] = set()
        for site in sorted(exposed, key=lambda s: (s.path, s.line, s.detail)):
            key = (site.path, site.line, site.detail)
            if key in seen:
                continue
            seen.add(key)
            module = project.modules_by_relpath.get(site.path)
            if module is None:
                continue
            anchor = ast.Pass(lineno=site.line, col_offset=0)
            yield self.finding(
                module,
                anchor,
                f"{site.detail} inside a loop with no dominating "
                "ResourceBudget check on any call path into it",
                hint=_HINT,
            )
