"""REP001 — every ``ReproError`` raise site carries structured context.

PR 1 made ``stage=`` (plus ``bit_offset=`` / ``chunk_index=`` in the
decoder hot paths) the forensic backbone of the library: when a 40 GB
archive fails, the error says *where*.  This rule keeps that invariant
from rotting — any ``raise SomeReproError(...)`` without ``stage=`` is
a finding, and the bit-level modules (``bitio``, ``inflate``) must also
pass ``bit_offset=`` while the chunked two-pass decoder (``pugz``) must
localise the failure with ``bit_offset=`` or ``chunk_index=``.

The ReproError family is discovered by introspecting
:mod:`repro.errors` and augmented with subclasses defined in the
scanned module itself, so downstream error types are covered without a
hand-maintained list.  Re-raises (``raise``), exception *values*
(``raise err``) and calls spreading ``**kwargs`` are out of scope — the
rule only judges call sites whose keywords it can see.
"""

from __future__ import annotations

import ast
from typing import Iterator

import repro.errors as _errors
from repro.lint.findings import Finding
from repro.lint.module import ModuleInfo
from repro.lint.registry import Rule, register

__all__ = ["ErrorContextRule"]

# Modules where a bare stage is not enough: bit-level decoders must say
# where in the stream, the chunked decoder must say which chunk.
_NEED_BIT_OFFSET = {"bitio", "inflate"}
_NEED_LOCATION = {"pugz"}  # bit_offset OR chunk_index


def _base_family() -> frozenset[str]:
    return frozenset(
        name
        for name, obj in vars(_errors).items()
        if isinstance(obj, type) and issubclass(obj, _errors.ReproError)
    )


def _terminal_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _local_subclasses(tree: ast.Module, family: set[str]) -> set[str]:
    """Names of classes in ``tree`` deriving (transitively) from the family."""
    classes = [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]
    grown = True
    local: set[str] = set()
    while grown:
        grown = False
        for cls in classes:
            if cls.name in local:
                continue
            bases = {_terminal_name(b) for b in cls.bases}
            if bases & (family | local):
                local.add(cls.name)
                grown = True
    return local


@register
class ErrorContextRule(Rule):
    rule_id = "REP001"
    slug = "no-stage"
    summary = (
        "ReproError raise sites must pass stage= (and bit_offset=/"
        "chunk_index= in bitio/inflate/pugz)"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        family = set(_base_family())
        family |= _local_subclasses(module.tree, family)
        basename = module.basename
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Raise) and isinstance(node.exc, ast.Call)):
                continue
            name = _terminal_name(node.exc.func)
            if name not in family:
                continue
            keywords = node.exc.keywords
            if any(kw.arg is None for kw in keywords):
                continue  # **kwargs: context may be spread in
            present = {kw.arg for kw in keywords}
            missing: list[str] = []
            if "stage" not in present:
                missing.append("stage=")
            if basename in _NEED_BIT_OFFSET and "bit_offset" not in present:
                missing.append("bit_offset=")
            if basename in _NEED_LOCATION and not (
                {"bit_offset", "chunk_index"} & present
            ):
                missing.append("bit_offset= or chunk_index=")
            if missing:
                yield self.finding(
                    module,
                    node,
                    f"raise {name}(...) without {' and '.join(missing)}",
                    hint=(
                        f'pass stage="{basename}" (or the pipeline stage name) '
                        "so failures stay localisable across process boundaries"
                    ),
                )
