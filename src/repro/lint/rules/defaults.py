"""REP006 — no mutable default arguments anywhere in ``src/repro/``.

The classic Python footgun: a ``def f(out=[])`` default is evaluated
once and shared across every call — and in this codebase, across every
*fork*, so state leaks between supposedly independent decompressions.
Flags list/dict/set literals and comprehensions plus calls to the
mutable builtin constructors (``list()``, ``dict()``, ``set()``,
``bytearray()``, ``collections.deque`` / ``defaultdict`` / ``Counter``
/ ``OrderedDict``) in positional or keyword-only defaults of any
function, method or lambda.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.module import ModuleInfo
from repro.lint.registry import Rule, register

__all__ = ["MutableDefaultRule"]

_MUTABLE_LITERALS = (
    ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp,
)
_MUTABLE_CTORS = {
    "list", "dict", "set", "bytearray", "deque", "defaultdict",
    "Counter", "OrderedDict",
}


def _is_mutable(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        fn = node.func
        name = fn.id if isinstance(fn, ast.Name) else (
            fn.attr if isinstance(fn, ast.Attribute) else None
        )
        return name in _MUTABLE_CTORS
    return False


@register
class MutableDefaultRule(Rule):
    rule_id = "REP006"
    slug = "mutable-default"
    summary = "no mutable default arguments (shared across calls and forks)"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            args = node.args
            defaults = list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]
            owner = getattr(node, "name", "<lambda>")
            for default in defaults:
                if _is_mutable(default):
                    yield self.finding(
                        module,
                        default,
                        f"mutable default argument in {owner}()",
                        hint="default to None and create the object inside "
                             "the function body",
                    )
