"""REP002 — no broad exception handlers in the decode path.

``src/repro/deflate/`` and ``src/repro/core/`` are the correctness
core: a ``DeflateError`` there is *signal* (block-start probing treats
it as "not a block start"), while ``MemoryError`` / ``AttributeError``
/ a typo'd name are *bugs*.  A broad ``except Exception:`` conflates
the two — the fault-injection campaign found a real instance where a
programming error masqueraded as "partial block, wait for more input".

Flagged: bare ``except:``, ``except Exception:``, ``except
BaseException:`` (also inside tuples).  Exempt: handlers that re-raise
(any ``raise`` statement in the handler body — capture-annotate-rethrow
is a supported pattern) and sites annotated with
``# lint: allow-broad-except(<reason>)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.module import ModuleInfo
from repro.lint.registry import Rule, register

__all__ = ["BroadExceptRule"]

_SCOPED_PACKAGES = ("repro.deflate", "repro.core")
_BROAD = {"Exception", "BaseException"}


def _broad_name(node: ast.expr | None) -> str | None:
    """The broad class caught by this handler type, if any."""
    if node is None:
        return "<bare>"
    if isinstance(node, ast.Name) and node.id in _BROAD:
        return node.id
    if isinstance(node, ast.Attribute) and node.attr in _BROAD:
        return node.attr
    if isinstance(node, ast.Tuple):
        for elt in node.elts:
            name = _broad_name(elt)
            if name:
                return name
    return None


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(n, ast.Raise) for n in ast.walk(handler))


@register
class BroadExceptRule(Rule):
    rule_id = "REP002"
    slug = "broad-except"
    summary = (
        "no bare/broad except in repro.deflate and repro.core unless "
        "re-raised or pragma-whitelisted"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package(*_SCOPED_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = _broad_name(node.type)
            if broad is None or _reraises(node):
                continue
            what = "bare except:" if broad == "<bare>" else f"except {broad}:"
            yield self.finding(
                module,
                node,
                f"{what} swallows programming errors in the decode path",
                hint=(
                    "catch DeflateError (or the specific ReproError subclass), "
                    "re-raise, or annotate with "
                    "# lint: allow-broad-except(<reason>)"
                ),
            )
