"""REP016 — static race/fork-safety detector for executor callables.

Everything submitted to an :class:`~repro.parallel.executor.Executor`
runs concurrently — thread pools share the interpreter, process pools
fork/spawn and pickle.  REP003 checks the submitted callable *itself*
(lambda/closure/bound method at the call site); this rule walks the
call graph from every submission site and checks everything
**transitively reachable**:

* **module-state races** — a reachable function mutates module-level
  state (appends to a module list, writes a module dict, rebinds a
  ``global``).  Under threads that is a data race; under processes the
  mutation silently diverges per worker — the process-pool analogue of
  a racy write;
* **lock-across-call** — a reachable function holds a non-reentrant
  lock (``threading.Lock``-shaped; ``RLock`` is exempt) across a
  function call: if any callee ever takes the same lock, the pool
  deadlocks, and a preempted worker holding it stalls every sibling;
* **unpicklable closures** — the submission resolves (through a local
  alias the intraprocedural REP003 cannot see) to a lambda or to a
  nested function that closes over enclosing-scope names: pickling
  fails only when the ``process`` backend is selected, the classic
  works-on-my-machine bug.

Findings anchor at the submission site — that is where the parallel
region begins and where the fix (or the pragma, with its documented
invariant) belongs.

Escape hatch: ``# lint: allow-exec-unsafe(<reason>)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import Project, SubmissionSite
from repro.lint.findings import Finding
from repro.lint.registry import ProjectRule, register

__all__ = ["ExecSafetyRule"]

_HINT = (
    "make worker functions pure: pass state through the items list and "
    "return results; move locks out of worker code paths; hoist "
    "submitted callables to module level"
)


@register
class ExecSafetyRule(ProjectRule):
    rule_id = "REP016"
    slug = "exec-unsafe"
    summary = (
        "executor-submitted callables must be transitively free of "
        "module-state mutation, lock-across-call, and closures"
    )
    example_bad = (
        "_seen = {}\n"
        "\n"
        "def _record(chunk):\n"
        "    _seen[chunk.index] = chunk.crc    # shared dict, no lock\n"
        "\n"
        "def _work(chunk):\n"
        "    _record(chunk)                    # reachable from the pool\n"
        "    return chunk.decode()\n"
        "\n"
        "def run(executor, chunks):\n"
        "    return executor.map_outcomes(_work, chunks)\n"
    )
    example_good = (
        "def _work(chunk):\n"
        "    return (chunk.index, chunk.crc, chunk.decode())\n"
        "\n"
        "def run(executor, chunks):\n"
        "    outcomes = executor.map_outcomes(_work, chunks)\n"
        "    seen = {i: crc for i, crc, _ in (o.value for o in outcomes)}\n"
        "    return seen\n"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph = project.call_graph()
        summaries = project.summaries()
        for site in graph.submissions:
            yield from self._check_closure(project, site)
            if site.callee is None:
                continue
            for reached in graph.reachable_from(site.callee):
                summary = summaries.get(reached)
                if summary is None:
                    continue
                for s in summary.mutates_module_state:
                    yield self.finding(
                        site.module,
                        site.node,
                        f"{site.method}() callable {site.callee} reaches "
                        f"{reached}(), which {s.detail} — a data race "
                        "across pool workers",
                        hint=_HINT,
                    )
                for s in summary.lock_across_call:
                    yield self.finding(
                        site.module,
                        site.node,
                        f"{site.method}() callable {site.callee} reaches "
                        f"{reached}(), which {s.detail}",
                        hint=_HINT,
                    )

    def _check_closure(
        self, project: Project, site: SubmissionSite
    ) -> Iterator[Finding]:
        """Alias-resolved lambdas/closures (REP003 sees only direct ones)."""
        if isinstance(site.resolved_expr, ast.Lambda):
            yield self.finding(
                site.module,
                site.node,
                f"{site.method}() callable is a lambda (via a local "
                "alias); it cannot cross a process-pool pickle boundary",
                hint=_HINT,
            )
            return
        if site.callee is None:
            return
        info = project.function(site.callee)
        if info is not None and info.is_closure:
            names = ", ".join(sorted(info.closure_names))
            yield self.finding(
                site.module,
                site.node,
                f"{site.method}() callable {site.callee} closes over "
                f"enclosing-scope state ({names}); pickling drags that "
                "state across the fork — or fails outright",
                hint=_HINT,
            )
