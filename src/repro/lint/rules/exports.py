"""REP008 — package ``__init__`` exports and ``__all__`` must agree.

The ``__init__`` modules are the library's public API surface; tests
(``tests/test_api_surface.py``) and downstream users navigate by
``__all__``.  Drift in either direction is a bug: a public name missing
from ``__all__`` silently vanishes from ``from pkg import *`` and API
docs, while an ``__all__`` entry that is never bound raises only at
``import *`` time — the one path the test suite least exercises.

Checked only in ``__init__.py`` files.  "Public" means any top-level
binding (import, def, class, assignment) whose name does not start with
an underscore; dunders like ``__version__`` may appear in ``__all__``
but are never required to.  Modules using ``from x import *`` or a
non-literal ``__all__`` are skipped — the rule refuses to guess.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.module import ModuleInfo
from repro.lint.registry import Rule, register

__all__ = ["ExportSyncRule"]


def _literal_all(tree: ast.Module) -> tuple[list[str] | None, ast.stmt | None]:
    """(entries, node) for a literal ``__all__`` assignment, if present."""
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            if isinstance(node.value, (ast.List, ast.Tuple)) and all(
                isinstance(e, ast.Constant) and isinstance(e.value, str)
                for e in node.value.elts
            ):
                return [e.value for e in node.value.elts], node
            return None, node  # dynamic __all__: refuse to guess
    return None, None


def _top_level_bindings(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name == "*":
                    return {"*"}
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for t in node.targets:
                if isinstance(t, ast.Name):
                    names.add(t.id)
                elif isinstance(t, (ast.Tuple, ast.List)):
                    names.update(
                        e.id for e in t.elts if isinstance(e, ast.Name)
                    )
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


@register
class ExportSyncRule(Rule):
    rule_id = "REP008"
    slug = "export-sync"
    summary = "package __init__ public names and __all__ must match exactly"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.is_package_init:
            return
        entries, all_node = _literal_all(module.tree)
        bindings = _top_level_bindings(module.tree)
        if "*" in bindings:
            return  # star import: membership is undecidable statically
        public = {n for n in bindings if not n.startswith("_")}
        if all_node is None:
            if public:
                yield self.finding(
                    module,
                    module.tree.body[0] if module.tree.body else module.tree,
                    f"package __init__ exports {len(public)} public name(s) "
                    "but defines no __all__",
                    hint="add __all__ listing the intended public API",
                )
            return
        if entries is None:
            return  # dynamically-built __all__
        for name in sorted(set(entries) - bindings):
            yield self.finding(
                module,
                all_node,
                f"__all__ lists {name!r} but the module never binds it",
                hint="remove the stale entry or import the name",
            )
        for name in sorted(public - set(entries)):
            if _is_dunder(name):
                continue
            yield self.finding(
                module,
                all_node,
                f"public name {name!r} is not in __all__",
                hint="add it to __all__ or rename it with a leading underscore",
            )
