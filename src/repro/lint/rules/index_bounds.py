"""REP019 — window/table/output subscripts on decode hot paths must be
provably in range.

Kerbiriou & Chikhi's correctness argument for parallel decompression
rests on the DEFLATE window discipline: every back-reference reaches at
most 32768 bytes back, every decode-table lookup stays inside the
``1 << max_bits`` table, every hash-chain probe stays inside the
``_HASH_SIZE``/window-mask arrays.  An index that silently escapes
those ranges in Python does not segfault — it raises ``IndexError``
mid-stream or, worse for negative indices, *wraps around* and reads
the wrong history byte, which corrupts output without any error.

This rule makes those ranges proof obligations.  For each unit in the
hot-path modules (``inflate`` / ``marker_inflate`` / ``lz77``), the
interval engine evaluates every judged subscript index and requires:

* decode tables (``*table``) and hash arrays (``head`` / ``prev``):
  index ∈ ``[0, 32767]`` — the largest table the spec permits
  (``1 << MAX_CODE_BITS`` entries, resp. the window-sized hash side
  arrays).  The per-table relational bound (``peek(max_bits)`` against
  *this* table's size) is out of reach for a non-relational domain and
  stays covered by the REP010 pragma discipline;
* the output buffer ``out``: index ∈ ``[-32768, -1]`` — loads from
  ``out`` in the decode loops are pure back-references, and the
  negative-index form both proves the window bound and avoids the
  ``len(out) - distance`` arithmetic the domain cannot relate;
* constant spec tables (``LENGTH_BASE`` & friends): index ∈
  ``[0, len - 1]`` with the exact table length.

Slices and store targets are not judged (a Python store cannot read
stale memory), and containers outside the list above are skipped —
the rule is an allow-list of the structures whose bounds the paper's
argument needs, not a generic bounds checker.

Escape hatch: ``# lint: allow-unproved-index(<reason>)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import Project
from repro.lint.findings import Finding
from repro.lint.intervals import (
    Interval,
    SeqVal,
    TableVal,
    fmt_interval,
    iter_unit_expressions,
    run_intervals,
)
from repro.lint.registry import ProjectRule, register
from repro.lint.summaries import interval_context

__all__ = ["IndexBoundsRule"]

#: Modules under the index-bound obligation (basename match).
_SCOPE = frozenset({"inflate", "marker_inflate", "lz77"})

#: ``1 << MAX_CODE_BITS`` entries is the largest legal decode table;
#: the hash head/prev arrays are window-sized by construction.
_TABLE_RANGE = Interval(0, 32767)
#: Loads from the output buffer are back-references within the window.
_BACKREF_RANGE = Interval(-32768, -1)

_HINT = (
    "clamp the index against a spec constant (`min(i, C.MAX_MATCH)`), "
    "mask it (`i & _WMASK`), use the negative-index back-reference form "
    "(`out[-distance]`), or guard it so branch refinement proves the range"
)


def _in_scope(module_name: str) -> bool:
    return module_name.rsplit(".", 1)[-1] in _SCOPE


def _within(iv: Interval, bound: Interval) -> bool:
    if iv.is_empty:
        return True  # unreachable program point
    if iv.lo is None or iv.hi is None:
        return False
    return bound.contains(iv.lo) and bound.contains(iv.hi)


def _terminal_name(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _is_table_token(name: str) -> bool:
    return name == "table" or name.endswith("_table")


@register
class IndexBoundsRule(ProjectRule):
    rule_id = "REP019"
    slug = "unproved-index"
    summary = (
        "window/table/output subscripts in inflate/marker_inflate/lz77 "
        "must have proved in-range indices"
    )
    example_bad = (
        "def emit_backref(out, distance, length):\n"
        "    # distance is unbounded here: the load can escape the window\n"
        "    for _ in range(length):\n"
        "        out.append(out[len(out) - distance])\n"
    )
    example_good = (
        "def emit_backref(out, distance, length):\n"
        "    if distance > 32768:\n"
        "        raise BackrefError('beyond window')\n"
        "    for _ in range(length):\n"
        "        out.append(out[-distance])   # proved in [-32768, -1]\n"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        summaries = project.summaries()
        ctx = interval_context(project, summaries)
        for qualname, module, body, func in project.iter_units():
            if not _in_scope(module.name):
                continue
            module_env, resolve_interval = ctx(module, func, body)
            run = run_intervals(
                func, body,
                module_env=module_env, resolve_interval=resolve_interval,
            )
            for stmt, node, env in iter_unit_expressions(run):
                if not isinstance(node, ast.Subscript):
                    continue
                if not isinstance(node.ctx, ast.Load):
                    continue
                if isinstance(node.slice, ast.Slice):
                    continue
                bound, what = self._obligation(run, node, env)
                if bound is None:
                    continue
                value = run.analysis.eval(node.slice, env)
                iv = value if isinstance(value, Interval) else None
                if iv is not None and _within(iv, bound):
                    continue
                witness = fmt_interval(iv) if iv is not None else "unknown"
                yield self.finding(
                    module,
                    node,
                    f"index `{ast.unparse(node.slice)}` into {what} in "
                    f"{qualname} has no proved range within "
                    f"{fmt_interval(bound)} (computed interval: {witness})",
                    hint=_HINT,
                    witness=witness,
                )

    def _obligation(
        self, run, node: ast.Subscript, env
    ) -> tuple[Interval | None, str]:
        """(required index range, human label) for a judged container."""
        name = _terminal_name(node.value)
        container = run.analysis.eval(node.value, env)
        if isinstance(container, TableVal) or _is_table_token(name):
            return _TABLE_RANGE, f"decode table `{ast.unparse(node.value)}`"
        if name in ("head", "prev"):
            return _TABLE_RANGE, f"hash array `{name}`"
        if name == "out":
            return _BACKREF_RANGE, "the output buffer `out`"
        if name == "window":
            return Interval(-32768, 32767), "the window buffer"
        if isinstance(container, SeqVal) and container.const and (
            container.length.lo is not None
            and container.length.lo == container.length.hi
        ):
            return (
                Interval(0, container.length.lo - 1),
                f"spec table `{ast.unparse(node.value)}`",
            )
        return None, ""
