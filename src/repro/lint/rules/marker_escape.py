"""REP011 — marker symbols must not escape into the byte domain.

The marker alphabet (Section VI-C of the paper) extends bytes with
codes ``>= 256``: ``MARKER_BASE + j`` means "whatever byte sits at
window position ``j``".  The whole design depends on those codes being
*resolved* (``repro.core.marker.resolve`` / ``to_bytes``) or translated
(``repro.core.translate``) before anything byte-shaped consumes them —
``bytes()`` over a symbol list raises ``ValueError`` on the first
marker if you are lucky, and ``ndarray.tobytes()`` silently emits
4-bytes-per-symbol garbage if you are not.

The rule taints values originating from the marker domain —
``MARKER_BASE``/``NUM_SYMBOLS`` arithmetic, ``undetermined_window()``,
``marker_inflate(...).symbols``, ``resolve(...)`` results (resolution
against a partially-resolved window keeps markers), elements and
iteration over tainted arrays — and reports them reaching a byte sink:
``bytes(x)``, ``bytearray(x)``, ``chr(x)``, ``x.decode(...)``,
``x.tobytes()``, and the *vectorized* narrowing ``x.astype(np.uint8)``
(which silently truncates every code >= 256 to its low byte — the
hardest escape to notice, because the result looks like plausible
data).  Taint follows vectorized gathers: ``x.take(idx)`` /
``np.take(x, idx)`` propagate the *source array's* domain to the
gathered result (the indices never launder the values), matching how
the two-stage decode kernel replays LZ77 copies.

Taint clears at the documented escape points: ``to_bytes(x)``,
``x - MARKER_BASE`` (marker code -> window position), a byte mask, or
a dominating comparison against ``MARKER_BASE``/256 (the ``if sym <
256`` guard idiom).

``repro/core/translate.py`` and ``repro/core/marker.py`` — the modules
whose *job* is crossing the boundary — are exempt.  Escape hatch:
``# lint: allow-marker-escape(<reason>)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.dataflow import Env
from repro.lint.module import ModuleInfo
from repro.lint.registry import register
from repro.lint.rules._flow import FlowAnalysis, FlowRule, walk_own_expressions

__all__ = ["MarkerEscapeRule"]

_MARKER = "marker"        # scalar that may be >= 256
_MARKER_SEQ = "markerseq"  # container of such scalars
_RESULT = "markerresult"   # MarkerInflateResult object

_MARKER_CONSTANTS = {"MARKER_BASE", "NUM_SYMBOLS"}
#: Callables returning symbol containers (markers possibly present).
_SEQ_PRODUCERS = {
    "undetermined_window",
    "resolve",
    "_seed_window",
    "_seed_window_array",
    "_undetermined_window_array",
}
_RESULT_PRODUCERS = {"marker_inflate"}
#: Names conventionally bound to symbol arrays; seed when unbound.
_SEQ_NAMES = {"symbols", "syms"}

_HINT = (
    "resolve first: marker.to_bytes(symbols) / resolve(symbols, window), "
    "or mask scalars below MARKER_BASE before byte conversion"
)


def _call_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _is_uint8_astype(node: ast.Call) -> bool:
    """``x.astype(np.uint8)`` — a silent low-byte truncation of markers."""
    if not (isinstance(node.func, ast.Attribute) and node.func.attr == "astype"):
        return False
    for arg in node.args:
        name = arg.attr if isinstance(arg, ast.Attribute) else (
            arg.id if isinstance(arg, ast.Name) else ""
        )
        if name == "uint8":
            return True
        if isinstance(arg, ast.Constant) and arg.value == "uint8":
            return True
    return False


def _mentions_marker_base(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in _MARKER_CONSTANTS:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in _MARKER_CONSTANTS:
            return True
        if isinstance(sub, ast.Constant) and sub.value == 256:
            return True
    return False


class _MarkerTaintAnalysis(FlowAnalysis):
    # -- taint evaluation ----------------------------------------------------

    def taint_of(self, node: ast.expr, env: Env) -> str | None:
        if isinstance(node, ast.Name):
            bound = env.get(node.id)
            if bound in (_MARKER, _MARKER_SEQ, _RESULT):
                return bound
            if node.id in _MARKER_CONSTANTS:
                return _MARKER
            if node.id in _SEQ_NAMES and node.id not in env:
                return _MARKER_SEQ
            return None
        if isinstance(node, ast.Attribute):
            if node.attr in _MARKER_CONSTANTS:
                return _MARKER
            if (
                node.attr == "symbols"
                and isinstance(node.value, ast.Name)
                and env.get(node.value.id) == _RESULT
            ):
                return _MARKER_SEQ
            if isinstance(node.value, ast.Call) and (
                _call_name(node.value.func) in _RESULT_PRODUCERS
            ):
                return _MARKER_SEQ if node.attr == "symbols" else None
            return None
        if isinstance(node, ast.Call):
            return self._taint_of_call(node, env)
        if isinstance(node, ast.Subscript):
            value_taint = self.taint_of(node.value, env)
            if value_taint in (_MARKER_SEQ, _MARKER):
                # Element access; a fancy/boolean index of an ndarray
                # yields another tainted array, a plain index a scalar —
                # both stay in the marker domain.
                return _MARKER
            return None
        if isinstance(node, ast.BinOp):
            # ``x - MARKER_BASE`` converts a code to a window position.
            if isinstance(node.op, ast.Sub) and _mentions_marker_base(node.right):
                return None
            if isinstance(node.op, (ast.BitAnd, ast.Mod)):
                return None  # masked into byte range
            left = self.taint_of(node.left, env)
            right = self.taint_of(node.right, env)
            for taint in (_MARKER_SEQ, _MARKER):
                if taint in (left, right):
                    return taint
            return None
        if isinstance(node, ast.IfExp):
            for taint in (_MARKER_SEQ, _MARKER):
                if taint in (
                    self.taint_of(node.body, env),
                    self.taint_of(node.orelse, env),
                ):
                    return taint
            return None
        if isinstance(node, (ast.List, ast.Tuple)):
            if any(self.taint_of(e, env) for e in node.elts):
                return _MARKER_SEQ
            return None
        if isinstance(node, ast.NamedExpr):
            return self.taint_of(node.value, env)
        return None

    def _taint_of_call(self, node: ast.Call, env: Env) -> str | None:
        name = _call_name(node.func)
        if name in _SEQ_PRODUCERS:
            return _MARKER_SEQ
        if name in _RESULT_PRODUCERS:
            return _RESULT
        if name == "to_bytes" or name == "from_bytes":
            return None  # the sanctioned boundary crossings
        if _is_uint8_astype(node):
            # Reported as a sink in ``_scan``; the (corrupted) result
            # is byte-shaped, so downstream sinks don't double-report.
            return None
        if name == "take":
            # Vectorized gather: the result lives in the *source*
            # array's domain; the index operand never launders it.
            # ``np.take(x, idx)`` reads the source from the first
            # argument, ``x.take(idx)`` from the receiver.
            source: ast.expr | None = None
            if isinstance(node.func, ast.Attribute):
                base = node.func.value
                if isinstance(base, ast.Name) and base.id in ("np", "numpy"):
                    source = node.args[0] if node.args else None
                else:
                    source = base
            elif node.args:
                source = node.args[0]
            if source is not None and self.taint_of(source, env) in (
                _MARKER, _MARKER_SEQ,
            ):
                return _MARKER_SEQ
            return None
        if name in ("asarray", "array", "copy", "astype", "tobytes", "list",
                    "tolist", "concatenate"):
            # Domain-preserving transforms: tainted in -> tainted out.
            candidates: list[ast.expr] = list(node.args)
            if isinstance(node.func, ast.Attribute):
                candidates.append(node.func.value)
            for cand in candidates:
                taint = self.taint_of(cand, env)
                if taint in (_MARKER_SEQ, _MARKER):
                    return _MARKER_SEQ
            return None
        if name in ("int", "min", "max", "abs"):
            for arg in node.args:
                if self.taint_of(arg, env) in (_MARKER, _MARKER_SEQ):
                    return _MARKER
            return None
        return None

    # -- dataflow ------------------------------------------------------------

    def join_values(self, a, b):
        if a == b:
            return a
        if a is None:
            return b
        if b is None:
            return a
        if _MARKER_SEQ in (a, b):
            return _MARKER_SEQ
        return _MARKER

    def transfer_stmt(self, stmt: ast.stmt, env: Env) -> None:
        if isinstance(stmt, ast.Assign):
            taint = self.taint_of(stmt.value, env)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self._bind(target.id, taint, env)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            env.pop(elt.id, None)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            taint = self.taint_of(stmt.value, env) if stmt.value is not None else None
            self._bind(stmt.target.id, taint, env)
        elif isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
            synthetic = ast.BinOp(
                left=ast.Name(id=stmt.target.id, ctx=ast.Load()),
                op=stmt.op,
                right=stmt.value,
            )
            self._bind(stmt.target.id, self.taint_of(synthetic, env), env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            # Header form: iterating a symbol container binds marker
            # scalars; anything else binds clean.
            element = (
                _MARKER
                if self.taint_of(stmt.iter, env) in (_MARKER_SEQ, _MARKER)
                else None
            )
            for sub in ast.walk(stmt.target):
                if isinstance(sub, ast.Name):
                    self._bind(sub.id, element, env)

    @staticmethod
    def _bind(name: str, taint: str | None, env: Env) -> None:
        if taint is None:
            # An explicit clean binding shadows the name-based seed
            # (absence would fall back to it for names like "symbols").
            env[name] = "clean"
        else:
            env[name] = taint

    def refine_edge(self, test: ast.expr, label: str, env: Env) -> None:
        # ``if sym < MARKER_BASE: ...`` — comparing a tainted scalar
        # against the marker boundary counts as a domain check on both
        # arms (documented imprecision, mirroring REP010's guards).
        for node in ast.walk(test):
            if not isinstance(node, ast.Compare):
                continue
            sides = [node.left, *node.comparators]
            if not any(_mentions_marker_base(s) for s in sides):
                continue
            for side in sides:
                if isinstance(side, ast.Name) and env.get(side.id) == _MARKER:
                    env[side.id] = "clean"

    # -- sinks ---------------------------------------------------------------

    def _comprehension_env(self, stmt: ast.stmt, env: Env) -> Env:
        """Extend ``env`` with comprehension targets bound to elements."""
        extended = None
        for expr in walk_own_expressions(stmt):
            if isinstance(expr, ast.comprehension):
                element = (
                    _MARKER
                    if self.taint_of(expr.iter, env) in (_MARKER_SEQ, _MARKER)
                    else None
                )
                if element is not None:
                    if extended is None:
                        extended = dict(env)
                    for sub in ast.walk(expr.target):
                        if isinstance(sub, ast.Name):
                            extended[sub.id] = element
        return extended if extended is not None else env

    def check_stmt(self, stmt, env: Env):
        yield from self._scan(
            walk_own_expressions(stmt), self._comprehension_env(stmt, env)
        )

    def check_test(self, test, env: Env):
        yield from self._scan(ast.walk(test), env)

    def _scan(self, nodes, env: Env) -> Iterator[tuple[ast.AST, str, str]]:
        for node in nodes:
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node.func)
            if name in ("bytes", "bytearray") and len(node.args) >= 1:
                taint = self.taint_of(node.args[0], env)
                if taint in (_MARKER, _MARKER_SEQ):
                    yield (
                        node,
                        f"marker-domain symbols passed to {name}() — codes "
                        ">= 256 are not bytes",
                        _HINT,
                    )
            elif name == "chr" and node.args:
                if self.taint_of(node.args[0], env) == _MARKER:
                    yield (
                        node,
                        "marker symbol passed to chr() without resolving "
                        "it to a byte",
                        _HINT,
                    )
            elif name == "decode" and isinstance(node.func, ast.Attribute):
                if self.taint_of(node.func.value, env) in (_MARKER, _MARKER_SEQ):
                    yield (
                        node,
                        "marker-domain buffer .decode()d without resolving "
                        "markers",
                        _HINT,
                    )
            elif name == "tobytes" and isinstance(node.func, ast.Attribute):
                if self.taint_of(node.func.value, env) in (_MARKER, _MARKER_SEQ):
                    yield (
                        node,
                        "tobytes() on a marker-domain array emits raw int32 "
                        "storage, not text",
                        _HINT,
                    )
            elif (
                name == "astype"
                and _is_uint8_astype(node)
                and isinstance(node.func, ast.Attribute)
            ):
                if self.taint_of(node.func.value, env) in (_MARKER, _MARKER_SEQ):
                    yield (
                        node,
                        "astype(uint8) on a marker-domain array silently "
                        "truncates codes >= 256 to their low byte",
                        _HINT,
                    )


@register
class MarkerEscapeRule(FlowRule):
    rule_id = "REP011"
    slug = "marker-escape"
    summary = (
        "marker symbols (codes >= 256) must be resolved before bytes()/"
        "chr()/.decode()/tobytes()/astype(uint8) outside core/translate.py "
        "and core/marker.py; take() gathers inherit the source's domain"
    )
    example_bad = (
        "from repro.core.marker import MARKER_BASE\n"
        "def render(j):\n"
        "    code = MARKER_BASE + j     # marker symbol, >= 256\n"
        "    return chr(code)           # escapes into the text domain\n"
    )
    example_good = (
        "from repro.core.marker import MARKER_BASE\n"
        "def render(code, window):\n"
        "    byte = window[code - MARKER_BASE]   # resolve to a byte first\n"
        "    return chr(byte)\n"
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.name not in ("repro.core.translate", "repro.core.marker")

    def make_analysis(self, module: ModuleInfo, func) -> FlowAnalysis:
        return _MarkerTaintAnalysis()
