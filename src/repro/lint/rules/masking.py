"""REP005 — shift results in bit-level hot paths must be width-masked.

Python integers never overflow, which is exactly why ports of C bit
manipulation code corrupt silently instead of crashing: a value a C
``uint32_t`` would have truncated keeps its high bits here, and the
difference only surfaces when a CRC mismatches or a Huffman table entry
collides many megabytes later (rapidgzip's changelog is a catalogue of
these).  In the three modules that port C-shaped bit arithmetic —
``bitio``, ``crc32``, ``huffman`` — a left-shift whose result is
*stored or compared* must therefore be masked to an explicit width.

Flagged patterns (top-level expression is an unmasked ``<<``):

* comparisons: ``if crc == value << 8:``
* returns: ``return code << 1``
* in-place shifts: ``row <<= 1``
* stores into attributes/subscripts: ``self._buf = x << n``

Not flagged: ``(x << n) & MASK`` (the point of the rule), ``1 << n``
(a power-of-two *width constant*, the dominant idiom and never a
truncation hazard), shifts feeding a wider expression (``a | b << c`` —
judged by what happens to the enclosing expression), and plain local
temporaries.  Escape hatch: ``# lint: allow-unmasked-width(<reason>)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.module import ModuleInfo
from repro.lint.registry import Rule, register

__all__ = ["UnmaskedWidthRule"]

_SCOPED_BASENAMES = {"bitio", "crc32", "huffman"}


def _is_width_constant(node: ast.BinOp) -> bool:
    """``1 << n`` — a power-of-two constant, not a value being widened."""
    return isinstance(node.left, ast.Constant) and node.left.value == 1


def _unmasked_shift(node: ast.expr) -> ast.BinOp | None:
    """The node itself, if it is a top-level ``<<`` with no mask applied."""
    if (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, ast.LShift)
        and not _is_width_constant(node)
    ):
        return node
    return None


@register
class UnmaskedWidthRule(Rule):
    rule_id = "REP005"
    slug = "unmasked-width"
    summary = (
        "left-shift results stored or compared in bitio/crc32/huffman "
        "must be masked to an explicit width"
    )

    _HINT = "mask to the intended width, e.g. (value << n) & 0xFFFFFFFF"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.basename not in _SCOPED_BASENAMES:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.LShift):
                yield self.finding(
                    module,
                    node,
                    "in-place left shift (<<=) grows without bound in Python",
                    hint=self._HINT,
                )
            elif isinstance(node, ast.Compare):
                for side in [node.left, *node.comparators]:
                    if _unmasked_shift(side) is not None:
                        yield self.finding(
                            module,
                            node,
                            "comparison against an unmasked left-shift result",
                            hint=self._HINT,
                        )
                        break
            elif isinstance(node, ast.Return):
                if node.value is not None and _unmasked_shift(node.value) is not None:
                    yield self.finding(
                        module,
                        node,
                        "returning an unmasked left-shift result",
                        hint=self._HINT,
                    )
            elif isinstance(node, ast.Assign):
                if _unmasked_shift(node.value) is not None and any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in node.targets
                ):
                    yield self.finding(
                        module,
                        node,
                        "storing an unmasked left-shift result into "
                        "persistent state",
                        hint=self._HINT,
                    )
