"""REP007 — no module-level mutable state in the fork-sensitive packages.

``repro.parallel`` and ``repro.robustness`` run on both sides of a
process boundary.  Module-level mutable objects there are a
fork/spawn divergence hazard: under ``fork`` the child inherits a copy
of whatever the parent mutated so far, under ``spawn`` it re-imports
the pristine module — so any code that *writes* such state behaves
differently per start method, the worst kind of platform bug.

Flagged: module-level assignments of list/dict/set literals or
comprehensions, and calls to mutable constructors (``list``, ``dict``,
``set``, ``bytearray``, ``deque``, ``defaultdict``, ``Counter``,
``OrderedDict``).  Allowed: immutable values (tuples, frozensets,
strings, numbers), read-only views (``types.MappingProxyType({...})``),
dunder metadata (``__all__``), and sites annotated
``# lint: allow-module-state(<reason>)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.module import ModuleInfo
from repro.lint.registry import Rule, register

__all__ = ["ModuleStateRule"]

_SCOPED_PACKAGES = ("repro.parallel", "repro.robustness")
_MUTABLE_LITERALS = (
    ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp,
)
_MUTABLE_CTORS = {
    "list", "dict", "set", "bytearray", "deque", "defaultdict",
    "Counter", "OrderedDict",
}


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.BinOp):
        # [0] * n and friends still build a list.
        return _is_mutable_value(node.left) or _is_mutable_value(node.right)
    if isinstance(node, ast.Call):
        fn = node.func
        name = fn.id if isinstance(fn, ast.Name) else (
            fn.attr if isinstance(fn, ast.Attribute) else None
        )
        return name in _MUTABLE_CTORS
    return False


def _target_names(node: ast.stmt) -> list[str]:
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, ast.AnnAssign):
        targets = [node.target]
    names: list[str] = []
    for t in targets:
        if isinstance(t, ast.Name):
            names.append(t.id)
        elif isinstance(t, (ast.Tuple, ast.List)):
            names.extend(e.id for e in t.elts if isinstance(e, ast.Name))
    return names


@register
class ModuleStateRule(Rule):
    rule_id = "REP007"
    slug = "module-state"
    summary = (
        "no module-level mutable state in repro.parallel / "
        "repro.robustness (fork vs spawn divergence)"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package(*_SCOPED_PACKAGES):
            return
        for node in module.tree.body:
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            if value is None or not _is_mutable_value(value):
                continue
            names = _target_names(node)
            if names and all(n.startswith("__") and n.endswith("__") for n in names):
                continue  # __all__ and other module metadata
            label = ", ".join(names) or "<target>"
            yield self.finding(
                module,
                node,
                f"module-level mutable state {label!s} in a fork-sensitive "
                "package",
                hint=(
                    "use a tuple/frozenset, wrap mappings in "
                    "types.MappingProxyType, or move the state into a class"
                ),
            )
