"""REP003 — executor-bound callables must be module-level functions.

Everything crossing the :class:`~repro.parallel.executor.ProcessExecutor`
boundary is pickled.  Lambdas, closures (functions defined inside other
functions) and bound methods either fail to pickle outright or drag
their enclosing state across the fork — both show up as confusing
runtime errors only when the ``process`` backend is selected, which CI
machines with one core rarely exercise.

Scope — what counts as an executor call
---------------------------------------

The rule matches method calls named ``map`` / ``map_outcomes`` /
``submit`` whose *receiver* is executor-shaped: a name or attribute
containing ``executor`` or ``pool`` (``executor.map``, ``self._pool.submit``)
or a direct constructor/factory call
(``ProcessExecutor(2).map``, ``make_executor("thread").map_outcomes``).
The first positional argument is then required to be a plain name bound
at module level (or a parameter/import — anything that is *not*
demonstrably a lambda, a nested ``def``, or a bound method).

Deliberately **out of scope**: callables that never cross a process
boundary — ``sorted(key=lambda ...)`` and other key functions (e.g. the
LPT sort key in :mod:`repro.parallel.scheduler`), hypothesis strategy
``.map(...)`` in tests, and ``ThreadExecutor``-only call sites are
indistinguishable statically, so the receiver heuristic errs toward the
names the codebase actually uses for executors.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.module import ModuleInfo
from repro.lint.registry import Rule, register

__all__ = ["PickleSafetyRule"]

_METHODS = {"map", "map_outcomes", "submit"}
_RECEIVER_TOKENS = ("executor", "pool")
_CONSTRUCTORS = {
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "ProcessPoolExecutor",
    "ThreadPoolExecutor",
    "make_executor",
}


def _terminal_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_executor_receiver(node: ast.expr) -> bool:
    """Heuristic: does this expression look like an executor object?"""
    name = _terminal_name(node)
    if name and any(tok in name.lower() for tok in _RECEIVER_TOKENS):
        return True
    if isinstance(node, ast.Call):
        ctor = _terminal_name(node.func)
        return ctor in _CONSTRUCTORS
    return False


def _collect_defs(tree: ast.Module) -> tuple[set[str], set[str]]:
    """(module-level function names, nested function names)."""
    top: set[str] = set()
    nested: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            top.add(node.name)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for sub in ast.walk(node):
                if (
                    sub is not node
                    and isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                ):
                    nested.add(sub.name)
    return top, nested


@register
class PickleSafetyRule(Rule):
    rule_id = "REP003"
    slug = "unpicklable-task"
    summary = (
        "callables handed to Executor.map/map_outcomes/submit must be "
        "module-level functions (process-pool pickle safety)"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        top_defs, nested_defs = _collect_defs(module.tree)
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _METHODS
                and node.args
                and _is_executor_receiver(node.func.value)
            ):
                continue
            fn = node.args[0]
            problem: str | None = None
            if isinstance(fn, ast.Lambda):
                problem = "a lambda"
            elif isinstance(fn, ast.Name):
                if fn.id in nested_defs and fn.id not in top_defs:
                    problem = f"the nested function {fn.id!r} (a closure)"
            elif isinstance(fn, ast.Attribute):
                # self.method / obj.method: a bound method dragging its
                # instance through pickle.  Module attributes
                # (module.function) are fine but indistinguishable from
                # instance attributes only via the receiver name; flag
                # self/cls receivers, the unambiguous case.
                base = fn.value
                if isinstance(base, ast.Name) and base.id in {"self", "cls"}:
                    problem = f"the bound method {base.id}.{fn.attr}"
            if problem:
                yield self.finding(
                    module,
                    node,
                    f"{node.func.attr}() given {problem}; process pools "
                    "require picklable module-level functions",
                    hint=(
                        "hoist the callable to module level and pass "
                        "per-item state through the items list"
                    ),
                )
