"""REP012 — suppression pragmas must carry a non-empty reason.

``# lint: allow-<slug>()`` never suppressed anything (the engine
requires :attr:`~repro.lint.pragmas.Pragma.valid`), but until now it
failed *silently*: the author believed the finding was waived while the
linter kept reporting it — or worse, the underlying finding had been
fixed meanwhile and the stale empty pragma lingered as dead weight.
This rule turns every empty-reason pragma into its own finding, so the
contract "every exemption is self-documenting" is enforced rather than
implied.

Escape hatch: none on purpose — write the reason.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.module import ModuleInfo
from repro.lint.registry import Rule, register

__all__ = ["PragmaReasonRule"]


class _Anchor(ast.AST):
    """Location-only stand-in: pragmas live on lines, not AST nodes."""

    def __init__(self, line: int, col: int) -> None:
        super().__init__()
        self.lineno = line
        self.col_offset = col


@register
class PragmaReasonRule(Rule):
    rule_id = "REP012"
    slug = "pragma-reason"
    summary = (
        "suppression pragmas need a non-empty reason: "
        "allow-<slug>() is a finding, not a waiver"
    )
    # The examples are assembled from fragments so the pragma scanner —
    # which matches physical source lines — does not see them as real
    # pragmas inside this very file.
    example_bad = (
        "except Exception:  # lint"
        ": allow-broad-except()\n"
        "    pass\n"
    )
    example_good = (
        "except Exception:  # lint"
        ": allow-broad-except(fault campaign isolates every failure class)\n"
        "    pass\n"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for line, pragmas in sorted(module.pragmas.items()):
            for pragma in pragmas:
                if pragma.valid:
                    continue
                yield self.finding(
                    module,
                    _Anchor(line, 0),
                    f"empty reason in 'allow-{pragma.slug}()' — this "
                    "pragma suppresses nothing",
                    hint=(
                        "state why the finding is acceptable: "
                        f"# lint: allow-{pragma.slug}(<reason>)"
                    ),
                )
