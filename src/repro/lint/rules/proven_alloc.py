"""REP020 — in-loop allocations must be budget-dominated *or* carry a
proved spec-constant size bound.

The resource-budget layer (:mod:`repro.robustness.limits`) only
protects the pipeline if the hot allocation sites actually consult it.
An attacker-shaped gzip stream controls loop trip counts and buffer
sizes, so an allocation with a *computed* size inside a loop —
``bytes(n)``, ``bytearray(n)``, ``b"\\x00" * n`` — is an output-
amplification sink unless either

* a ``ResourceBudget.check_*`` call dominates it on every call path
  (the REP017 discipline this rule supersedes), or
* the interval engine proves the allocation's size is bounded by a
  DEFLATE spec constant (``MAX_MATCH``, ``WINDOW_SIZE``, …) — a fixed
  cost the budget does not need to meter.

The second arm is the upgrade over REP017: it turns hand-written
``allow-unbudgeted-alloc`` pragma prose ("size is at most 258 per the
spec") into machine-checked facts, and ``repro lint --prove-pragmas``
reports exactly which existing pragmas the prover can discharge so
they can be deleted (see :func:`discharge_report`).

The interprocedural view is unchanged from REP017: the budget check
usually lives one or two frames *up*, so unproved, unchecked sites
propagate through unguarded call edges and are reported only when they
survive to an **entry point** (a function no project code calls, or a
module top level).  Proved sites are dropped from that propagation —
their cost is bounded no matter who calls them.

Known imprecision, by design: a branch testing a ``budget``-named
value (``if budget is not None:``) marks both arms checked — the
``None`` arm is the caller explicitly opting out of limits, which is a
policy choice, not a missing check.  And the prover is non-relational:
an allocation bounded only by *another variable* (``pattern`` of
length ``distance``) cannot be proved and still needs the budget or a
pragma.

Escape hatch: ``# lint: allow-unbudgeted-alloc(<reason>)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import Project
from repro.lint.findings import Finding
from repro.lint.registry import ProjectRule, register
from repro.lint.summaries import (
    Site,
    _call_resolver,
    alloc_prover,
    interval_context,
    run_budget,
)
from repro.lint.intervals import run_intervals

__all__ = ["ProvenAllocRule", "discharge_report", "format_discharge_report"]

_HINT = (
    "thread a ResourceBudget into the function and call "
    "budget.check_block()/check_output() before (or inside) the loop, "
    "clamp the size against a spec constant so the interval engine can "
    "prove it (e.g. `min(n, C.MAX_MATCH)`), or perform the check in the "
    "caller before handing control down"
)


def _module_budget(project: Project, summaries, ctx, module, body):
    """Budget+prover pass for a module top level (not in the summaries)."""
    resolve = _call_resolver(project, summaries, module, None, body)
    module_env, resolve_interval = ctx(module, None, body)
    run = run_intervals(
        None, body, module_env=module_env, resolve_interval=resolve_interval
    )
    return run_budget(module, None, body, resolve, prover=alloc_prover(run))


@register
class ProvenAllocRule(ProjectRule):
    rule_id = "REP020"
    slug = "unbudgeted-alloc"
    summary = (
        "computed-size allocations in loops need a dominating "
        "ResourceBudget check or a proved spec-constant size bound"
    )
    example_bad = (
        "def _emit(window, length):\n"
        "    out = bytearray()\n"
        "    while length > 0:\n"
        "        out += bytes(length)       # unbounded, unchecked\n"
        "        length -= len(window)\n"
        "    return out\n"
        "\n"
        "def inflate_block(reader, window, length):\n"
        "    return _emit(window, length)\n"
    )
    example_good = (
        "def _emit(window, length):\n"
        "    out = bytearray()\n"
        "    while length > 0:\n"
        "        chunk = min(length, 258)   # proved <= MAX_MATCH\n"
        "        out += bytes(chunk)\n"
        "        length -= chunk\n"
        "    return out\n"
        "\n"
        "def inflate_block(reader, window, length):\n"
        "    return _emit(window, length)\n"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph = project.call_graph()
        summaries = project.summaries()
        ctx = interval_context(project, summaries)
        # Entry points: units no project code calls — counting only
        # callers *outside* the unit's own SCC, so a recursive cluster
        # nothing else invokes is still judged rather than skipped.
        scc_of: dict[str, int] = {}
        for i, scc in enumerate(project.scc_order()):
            for member in scc:
                scc_of[member] = i
        exposed: list[Site] = []
        for qualname, module, body, func in project.iter_units():
            if func is None:
                # Module top level: always an entry point; not covered
                # by the summary table, so run the budget pass directly.
                sites, _, _ = _module_budget(
                    project, summaries, ctx, module, body
                )
                exposed.extend(sites)
                continue
            outside_callers = [
                site for site in graph.callers_of(qualname)
                if scc_of.get(site.caller) != scc_of.get(qualname)
            ]
            if outside_callers:
                continue  # some project caller may guard it; judged there
            summary = summaries.get(qualname)
            if summary is not None:
                exposed.extend(summary.unbudgeted_allocs)

        seen: set[tuple[str, int, str]] = set()
        for site in sorted(exposed, key=lambda s: (s.path, s.line, s.detail)):
            key = (site.path, site.line, site.detail)
            if key in seen:
                continue
            seen.add(key)
            module = project.modules_by_relpath.get(site.path)
            if module is None:
                continue
            anchor = ast.Pass(lineno=site.line, col_offset=0)
            yield self.finding(
                module,
                anchor,
                f"{site.detail} inside a loop with no dominating "
                "ResourceBudget check and no proved spec-constant size "
                "bound on any call path into it",
                hint=_HINT,
            )


def discharge_report(project: Project) -> dict:
    """What ``--prove-pragmas`` prints: pragma lines vs. proved sites.

    Returns a dict with four sorted lists of ``(path, line, detail)``
    tuples:

    * ``discharged`` — an ``allow-unbudgeted-alloc`` pragma sits on a
      line whose allocation the prover bounds: the pragma is redundant
      and can be deleted (detail carries the interval witness);
    * ``required`` — the pragma still suppresses a genuinely unproved
      allocation;
    * ``stale`` — the pragma's line has no in-loop computed-size
      allocation at all;
    * ``proved`` — every allocation site the prover bounded, pragma or
      not (the standing evidence once discharged pragmas are removed).
    """
    summaries = project.summaries()
    ctx = interval_context(project, summaries)
    proved: list[Site] = []
    unproved: list[Site] = []
    for qualname, module, body, func in project.iter_units():
        if func is None:
            sites, proved_sites, _ = _module_budget(
                project, summaries, ctx, module, body
            )
            proved.extend(proved_sites)
            unproved.extend(sites)
        else:
            summary = summaries.get(qualname)
            if summary is not None:
                proved.extend(summary.proved_allocs)
                unproved.extend(summary.unbudgeted_allocs)

    proved_lines = {(s.path, s.line) for s in proved}
    unproved_lines = {(s.path, s.line) for s in unproved}
    discharged: list[tuple[str, int, str]] = []
    required: list[tuple[str, int, str]] = []
    stale: list[tuple[str, int, str]] = []
    witness_at = {(s.path, s.line): s.detail for s in proved}
    for module in project.modules.values():
        if module.name.startswith("repro.lint"):
            # The lint package documents pragma syntax in docstrings;
            # the line-based scanner would misread those as live pragmas.
            continue
        for line, pragmas in sorted(module.pragmas.items()):
            for pragma in pragmas:
                if pragma.slug != "unbudgeted-alloc":
                    continue
                key = (module.relpath, line)
                if key in proved_lines:
                    discharged.append(
                        (module.relpath, line, witness_at[key])
                    )
                elif key in unproved_lines:
                    required.append(
                        (module.relpath, line, pragma.reason)
                    )
                else:
                    stale.append((
                        module.relpath, line,
                        "no in-loop computed-size allocation at this line",
                    ))
    return {
        "discharged": sorted(set(discharged)),
        "required": sorted(set(required)),
        "stale": sorted(set(stale)),
        "proved": sorted({(s.path, s.line, s.detail) for s in proved}),
    }


def format_discharge_report(report: dict) -> str:
    """Human-readable rendering of :func:`discharge_report`."""
    lines: list[str] = []
    sections = (
        ("discharged", "pragmas the interval engine DISCHARGES (delete them)"),
        ("required", "pragmas still REQUIRED (allocation remains unproved)"),
        ("stale", "pragmas that are STALE (no allocation at that line)"),
        ("proved", "all proved allocation bounds"),
    )
    for key, title in sections:
        entries = report.get(key, [])
        lines.append(f"{title}: {len(entries)}")
        for path, line, detail in entries:
            lines.append(f"  {path}:{line}: {detail}")
    return "\n".join(lines)
