"""REP004 — no unseeded randomness outside :mod:`repro.data.randomness`.

Every stochastic artefact in this reproduction (synthetic corpora,
fault-injection campaigns, Monte-Carlo models, perf jitter) is seeded
so runs are replayable bit-for-bit; a single call to the *global* RNG
(`random.random()`, ``np.random.shuffle`` ...) silently breaks that for
the whole process.  The rule flags:

* module-level ``random.<fn>(...)`` calls that use the hidden global
  ``Random`` instance (``random.random``, ``random.randint``,
  ``random.shuffle``, ``random.seed`` ...);
* ``random.Random()`` / ``np.random.default_rng()`` /
  ``np.random.RandomState()`` constructed with **no seed argument**;
* any other ``np.random.<fn>(...)`` global-state call
  (``np.random.rand``, ``np.random.shuffle`` ...).

Allowed everywhere: ``random.Random(seed)``,
``np.random.default_rng(seed)``, ``np.random.RandomState(seed)``, and
methods on an *instance* (``rng.random()`` — the instance was
constructed seeded, which this rule enforced at the construction site).
``repro.data.randomness`` itself is exempt: it is the one module whose
job is to own seeding policy.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.module import ModuleInfo
from repro.lint.registry import Rule, register

__all__ = ["UnseededRandomnessRule"]

_EXEMPT_MODULE = "repro.data.randomness"

# Functions on the `random` module that hit the hidden global instance.
_GLOBAL_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "betavariate", "expovariate",
    "gammavariate", "gauss", "lognormvariate", "normalvariate",
    "vonmisesvariate", "paretovariate", "weibullvariate", "getrandbits",
    "randbytes", "seed", "setstate", "binomialvariate",
}
# Constructors that are fine *with* a seed argument.
_SEEDABLE_CTORS = {"Random", "default_rng", "RandomState", "SystemRandom"}
# numpy.random attribute accesses that are types/helpers, not RNG calls.
_NP_NEUTRAL = {"Generator", "BitGenerator", "SeedSequence", "Philox", "PCG64"}


def _attr_chain(node: ast.expr) -> list[str]:
    """``np.random.default_rng`` -> ["np", "random", "default_rng"]."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return []


@register
class UnseededRandomnessRule(Rule):
    rule_id = "REP004"
    slug = "unseeded-random"
    summary = (
        "no global-RNG calls or seedless RNG construction outside "
        "repro.data.randomness"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.name == _EXEMPT_MODULE:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if len(chain) < 2:
                continue
            dotted = ".".join(chain)
            tail = chain[-1]
            is_random_mod = chain[:-1] == ["random"]
            is_np_random = (
                len(chain) >= 3
                and chain[0] in {"np", "numpy"}
                and chain[-2] == "random"
            )
            if is_random_mod and tail in _GLOBAL_RANDOM_FNS:
                yield self.finding(
                    module,
                    node,
                    f"{dotted}() uses the process-global RNG",
                    hint=(
                        "construct random.Random(seed) and call the method "
                        "on the instance"
                    ),
                )
            elif tail in _SEEDABLE_CTORS and (is_random_mod or is_np_random):
                if not node.args and not node.keywords:
                    yield self.finding(
                        module,
                        node,
                        f"{dotted}() constructed without an explicit seed",
                        hint="pass a seed (or a SeedSequence) explicitly",
                    )
            elif is_np_random and tail not in _NP_NEUTRAL:
                yield self.finding(
                    module,
                    node,
                    f"{dotted}() uses numpy's global RNG state",
                    hint=(
                        "use np.random.default_rng(seed) and call the "
                        "method on the Generator"
                    ),
                )
