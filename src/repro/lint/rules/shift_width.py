"""REP018 — shift amounts in the bit-level hot paths must be provably
bounded by the 64-bit word.

The BitReader refill protocol packs up to 64 bits into a Python int
and every consumer shifts against that word: ``chunk << bitcount``,
``bitbuf >> nbits``, ``1 << max_bits``.  A shift amount that can
exceed 64 is either a unit bug (byte count used as a bit count — the
exact class REP009/REP014 chase) or an unbounded stream-controlled
value, and Python will happily build a million-bit integer out of it.

REP005 polices this *syntactically* (a mask must appear near the
shift).  This rule replaces that heuristic with a semantic proof: the
interval engine (:mod:`repro.lint.intervals`) evaluates every shift
amount in ``bitio`` / ``crc32`` / ``huffman`` modules and requires a
proved upper bound ≤ 64.  Amounts are evaluated *conditioned on
normal completion* — a negative amount raises ``ValueError`` at the
shift itself, so only the upper bound needs discharging to rule out
silent blow-ups.

The proof is interprocedural: callee return intervals come from the
function summaries (``_hash3`` returning a masked ``[0, 32767]``
proves its caller's shifts), and module-level constants plus the
``deflate.constants`` spec values seed the environment.

Escape hatch: ``# lint: allow-unproved-shift(<reason>)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import Project
from repro.lint.findings import Finding
from repro.lint.intervals import (
    Interval,
    fmt_interval,
    run_intervals,
    walk_with_env,
)
from repro.lint.registry import ProjectRule, register
from repro.lint.summaries import interval_context

__all__ = ["ShiftWidthRule", "MAX_SHIFT"]

#: The refill word: nothing in the bit-level layer may shift further.
MAX_SHIFT = 64

#: Modules under the shift-width obligation (basename match): the
#: three files whose correctness the 64-bit refill protocol rests on.
_SCOPE = frozenset({"bitio", "crc32", "huffman"})

_HINT = (
    "mask or clamp the amount (e.g. `n & 63`, `min(n, max_bits)`) so the "
    "interval engine can bound it, or hoist the bound into a guard the "
    "branch refinement sees (`if n > 64: raise`)"
)


def _in_scope(module_name: str) -> bool:
    return module_name.rsplit(".", 1)[-1] in _SCOPE


@register
class ShiftWidthRule(ProjectRule):
    rule_id = "REP018"
    slug = "unproved-shift"
    summary = (
        "every shift amount in bitio/crc32/huffman must have a proved "
        "upper bound <= 64 (the refill word width)"
    )
    example_bad = (
        "def refill(bitbuf, bitcount, nbytes):\n"
        "    # nbytes is a BYTE count: 8 * nbytes can reach way past 64\n"
        "    return bitbuf | (0xFF << (8 * nbytes * nbytes))\n"
    )
    example_good = (
        "def refill(bitbuf, bitcount, chunk):\n"
        "    # bitcount is seeded [0, 64]; the amount is proved <= 64\n"
        "    return bitbuf | (chunk << bitcount)\n"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        summaries = project.summaries()
        ctx = interval_context(project, summaries)
        for qualname, module, body, func in project.iter_units():
            if not _in_scope(module.name):
                continue
            module_env, resolve_interval = ctx(module, func, body)
            run = run_intervals(
                func, body,
                module_env=module_env, resolve_interval=resolve_interval,
            )
            for stmt, amount, env in _shift_amounts(run):
                value = run.analysis.eval(amount, env)
                iv = value if isinstance(value, Interval) else None
                if iv is not None and not iv.is_empty and (
                    iv.hi is not None and iv.hi <= MAX_SHIFT
                ):
                    continue
                witness = fmt_interval(iv) if iv is not None else "unknown"
                yield self.finding(
                    module,
                    amount,
                    f"shift amount `{ast.unparse(amount)}` in {qualname} "
                    f"has no proved bound <= {MAX_SHIFT} "
                    f"(computed interval: {witness})",
                    hint=_HINT,
                    witness=witness,
                )


def _shift_amounts(run):
    """Yield ``(stmt, amount_expr, env)`` for every shift in the unit."""
    from repro.lint.cfg import stmt_expressions

    for kind, node, env in run.replay():
        if kind == "stmt":
            if isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.LShift, ast.RShift)
            ):
                yield node, node.value, env
            exprs = stmt_expressions(node)
        else:
            exprs = [node]
        for expr in exprs:
            for sub, sub_env in walk_with_env(run.analysis, expr, env):
                if isinstance(sub, ast.BinOp) and isinstance(
                    sub.op, (ast.LShift, ast.RShift)
                ):
                    yield node, sub.right, sub_env
