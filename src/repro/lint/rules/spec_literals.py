"""REP021 — DEFLATE/gzip spec magic numbers must come from
``deflate/constants.py``.

The spec constants — 258 (max match), 32768 (window), 286/30 (litlen/
dist alphabet caps), 15 (max code bits), 32 (distance alphabet),
``1f 8b`` (the gzip magic) — are load-bearing in a dozen modules, and a
bare literal is how they drift: PR 5's peek(57) bug was exactly a magic
number nobody could cross-check.  Every such literal outside
:mod:`repro.deflate.constants` is a finding pointing at the named
constant to use instead.

Two tiers keep the noise down:

* **distinctive** values (258, 32768, the ``0x1f8b``/``0x8b1f`` magic,
  ``b"\\x1f\\x8b"``-prefixed byte literals) are flagged anywhere they
  appear — they have no plausible second meaning in this codebase;
* **ambiguous** values (286, 30, 15, 32) are flagged only in
  comparisons against spec-shaped names (``hlit``, ``hdist``,
  ``hclen``, ``max_bits``, code-length variables), where they are
  certainly the spec bound and not a loop count.

The lint package itself is exempt (rules and the interval engine
legitimately talk about the numbers they prove things against), as is
``deflate/constants.py`` — the single place the literals belong.

Escape hatch: ``# lint: allow-magic-spec-literal(<reason>)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.module import ModuleInfo
from repro.lint.registry import Rule, register

__all__ = ["SpecLiteralRule"]

#: value -> the constant that must replace it (flagged anywhere).
_DISTINCTIVE = {
    258: "repro.deflate.constants.MAX_MATCH",
    32768: "repro.deflate.constants.WINDOW_SIZE",
    0x1F8B: "repro.deflate.constants.GZIP_MAGIC (0x1f8b)",
    0x8B1F: "repro.deflate.constants.GZIP_MAGIC (byte-swapped 0x8b1f)",
}

#: value -> constant, flagged only in spec-shaped comparisons.
_AMBIGUOUS = {
    286: "repro.deflate.constants.MAX_HLIT",
    30: "repro.deflate.constants.MAX_HDIST",
    15: "repro.deflate.constants.MAX_CODE_BITS",
    32: "repro.deflate.constants.NUM_DIST_SYMBOLS",
}

#: Name fragments marking a comparison as spec-shaped.
_SPEC_TOKENS = ("hlit", "hdist", "hclen", "max_bits", "code_len", "codelen")

_GZIP_MAGIC = b"\x1f\x8b"

#: Modules where the literals are definitions or proof machinery.
_EXEMPT_EXACT = frozenset({"repro.deflate.constants"})
_EXEMPT_PREFIX = ("repro.lint",)

_HINT = (
    "import the named constant from repro.deflate.constants (alias "
    "`from repro.deflate import constants as C` is the repo idiom) so "
    "the value has one definition the analyzers and readers can trust"
)


def _mentions_spec_token(nodes: list[ast.expr]) -> bool:
    for node in nodes:
        for sub in ast.walk(node):
            name = ""
            if isinstance(sub, ast.Name):
                name = sub.id
            elif isinstance(sub, ast.Attribute):
                name = sub.attr
            if name and any(tok in name.lower() for tok in _SPEC_TOKENS):
                return True
    return False


@register
class SpecLiteralRule(Rule):
    rule_id = "REP021"
    slug = "magic-spec-literal"
    summary = (
        "DEFLATE/gzip magic numbers (258, 32768, 0x1f8b, spec caps) "
        "outside deflate/constants.py must use the named constant"
    )
    example_bad = (
        "def check_header(hlit, data):\n"
        "    if hlit > 286:\n"
        "        raise ValueError('bad hlit')\n"
        "    if data[:2] != b'\\x1f\\x8b':\n"
        "        raise ValueError('not gzip')\n"
        "    return 32768\n"
    )
    example_good = (
        "from repro.deflate import constants as C\n"
        "\n"
        "def check_header(hlit, data):\n"
        "    if hlit > C.MAX_HLIT:\n"
        "        raise ValueError('bad hlit')\n"
        "    if data[:2] != C.GZIP_MAGIC:\n"
        "        raise ValueError('not gzip')\n"
        "    return C.WINDOW_SIZE\n"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.name in _EXEMPT_EXACT or module.name.startswith(
            _EXEMPT_PREFIX
        ):
            return
        ambiguous_ok: set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Compare):
                sides = [node.left, *node.comparators]
                if _mentions_spec_token(sides):
                    for side in sides:
                        if (
                            isinstance(side, ast.Constant)
                            and isinstance(side.value, int)
                            and not isinstance(side.value, bool)
                            and side.value in _AMBIGUOUS
                        ):
                            ambiguous_ok.add(id(side))
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Constant):
                continue
            value = node.value
            if isinstance(value, bool):
                continue
            if isinstance(value, int):
                if value in _DISTINCTIVE:
                    yield self.finding(
                        module,
                        node,
                        f"magic spec literal {value}: use "
                        f"{_DISTINCTIVE[value]}",
                        hint=_HINT,
                    )
                elif value in _AMBIGUOUS and id(node) in ambiguous_ok:
                    yield self.finding(
                        module,
                        node,
                        f"magic spec literal {value} in a spec-bound "
                        f"comparison: use {_AMBIGUOUS[value]}",
                        hint=_HINT,
                    )
            elif isinstance(value, bytes) and value[:2] == _GZIP_MAGIC:
                yield self.finding(
                    module,
                    node,
                    "gzip magic bytes literal: build it from "
                    "repro.deflate.constants.GZIP_MAGIC",
                    hint=_HINT,
                )
