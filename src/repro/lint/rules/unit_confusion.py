"""REP009 — bit/byte offset unit confusion (dataflow).

The codebase addresses streams in two unit systems: DEFLATE blocks at
*bit* granularity (probing, resync, zran checkpoints), file I/O and
chunk planning at *byte* granularity.  Both are plain ``int``, so a
swapped unit never crashes — it silently reads from 8× the intended
position (pugz and rapidgzip both document this as the dominant bug
class of parallel gzip decoders).

The rule runs the units lattice of :mod:`repro.lint.units` over each
function's CFG and reports a *definite* unit reaching the opposite
kind of sink:

* byte-addressed sinks fed a bit value — ``f.seek(x)``, an index or
  slice bound of a byte buffer (``data[x]``), a comparison against
  ``len(buffer)``, a ``byte_offset=``/``nbytes=`` keyword;
* bit-addressed sinks fed a byte value — ``seek_bits(x)``, a
  ``start_bit=``/``bit_offset=``/``stop_bit=`` keyword, the bit-offset
  positional of ``BitReader``/``inflate``/``find_block_start``/
  ``marker_inflate``, the argument of ``bits_to_bytes``;
* direct comparison of a bit-valued and a byte-valued expression.

A value of ``bit_or_byte`` (conflicting evidence) or ``unknown`` never
fires — the rule only reports when both the value and the sink have a
definite, opposite unit.  An explicit conversion (``* 8``, ``>> 3``,
:func:`repro.units.bits_to_bytes`, a ``BitOffset(...)`` cast) changes
the unit and therefore silences the rule; that is the point.

Escape hatch: ``# lint: allow-unit-confusion(<reason>)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.dataflow import Env
from repro.lint.module import ModuleInfo
from repro.lint.registry import register
from repro.lint.rules._flow import FlowAnalysis, FlowRule, walk_own_expressions
from repro.lint.units import (
    BYTE_BUFFER_NAMES,
    Unit,
    UnitEvaluator,
    is_bytes_annotation,
    join_units,
    unit_from_annotation,
    unit_of_name,
)

__all__ = ["UnitConfusionRule"]

_CMP_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)

#: Keyword parameters that are bit-addressed across the codebase.
_BIT_KWARGS = {
    "start_bit", "bit_offset", "stop_bit", "end_bit", "sync_bit",
    "resync_bit", "max_search_bits", "max_resync_search_bits", "nbits",
}
#: Keyword parameters that are byte-addressed.
_BYTE_KWARGS = {"byte_offset", "start_byte", "end_byte", "nbytes", "span"}

#: ``callable name -> positional index`` of a bit-offset parameter.
_BIT_POSITIONALS = {
    "BitReader": 1,
    "find_block_start": 1,
    "inflate": 1,
    "inflate_bytes": 1,
    "marker_inflate": 1,
    "probe_block": 1,
    "prescreen": 1,
    "seek_bits": 0,
    "bits_to_bytes": 0,
    "intra_byte_bits": 0,
    "ceil_bits_to_bytes": 0,
}
#: Same, for byte-offset parameters.
_BYTE_POSITIONALS = {"bytes_to_bits": 0}

_HINT = (
    "convert explicitly at the boundary: bits_to_bytes()/ >> 3 for "
    "bit->byte, bytes_to_bits()/ * 8 for byte->bit (see repro.units)"
)


def _callable_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _is_len_of_buffer(node: ast.expr, buffers: set[str]) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "len"
        and len(node.args) == 1
        and isinstance(node.args[0], ast.Name)
        and node.args[0].id in buffers
    )


class _UnitsAnalysis(FlowAnalysis):
    """Units transfer functions (shared with the interprocedural layer).

    ``make_evaluator`` lets :mod:`repro.lint.summaries` swap in an
    evaluator that also knows callee return units; REP009 itself stays
    strictly intraprocedural with the plain :class:`UnitEvaluator`.
    """

    def __init__(self, func: ast.FunctionDef | None, make_evaluator=None) -> None:
        self.func = func
        self.make_evaluator = make_evaluator or UnitEvaluator
        self.buffers = set(BYTE_BUFFER_NAMES)
        if func is not None:
            args = func.args
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                if is_bytes_annotation(arg.annotation):
                    self.buffers.add(arg.arg)
            # Names assigned from byte-producing expressions anywhere in
            # the unit also count as byte buffers (syntactic, not flow).
            for node in ast.walk(func):
                if isinstance(node, ast.Assign) and self._is_bytes_expr(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.buffers.add(target.id)

    @staticmethod
    def _is_bytes_expr(node: ast.expr) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, bytes):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("bytes", "bytearray", "memoryview")
        )

    # -- dataflow ------------------------------------------------------------

    def initial_env(self) -> Env:
        env: Env = {}
        if self.func is not None:
            args = self.func.args
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                unit = unit_from_annotation(arg.annotation)
                if unit is not Unit.UNKNOWN:
                    env[arg.arg] = unit
        return env

    def join_values(self, a, b):
        return join_units(a, b)

    def transfer_stmt(self, stmt: ast.stmt, env: Env) -> None:
        ev = self.make_evaluator(env)
        if isinstance(stmt, ast.Assign):
            self._bind_targets(stmt.targets, stmt.value, ev, env)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            unit = unit_from_annotation(stmt.annotation)
            if unit is Unit.UNKNOWN and stmt.value is not None:
                unit = ev.unit_of(stmt.value)
            env[stmt.target.id] = unit
        elif isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
            synthetic = ast.BinOp(
                left=ast.Name(id=stmt.target.id, ctx=ast.Load()),
                op=stmt.op,
                right=stmt.value,
            )
            env[stmt.target.id] = ev.unit_of(synthetic)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            # Header form: bind the loop target from the iterable's
            # element unit (a name like ``block_start_bits`` carries it).
            element = Unit.UNKNOWN
            if isinstance(stmt.iter, ast.Name):
                element = unit_of_name(stmt.iter.id)
            elif isinstance(stmt.iter, ast.Attribute):
                element = unit_of_name(stmt.iter.attr)
            for name in self._target_names(stmt.target):
                env[name] = element
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    for name in self._target_names(item.optional_vars):
                        env.pop(name, None)

    def _bind_targets(self, targets, value, ev: UnitEvaluator, env: Env) -> None:
        unit = ev.unit_of(value)
        for target in targets:
            if isinstance(target, ast.Name):
                env[target.id] = unit
            elif isinstance(target, (ast.Tuple, ast.List)):
                elts = target.elts
                values = (
                    value.elts
                    if isinstance(value, (ast.Tuple, ast.List))
                    and len(value.elts) == len(elts)
                    else None
                )
                for i, elt in enumerate(elts):
                    if isinstance(elt, ast.Name):
                        env[elt.id] = (
                            ev.unit_of(values[i]) if values is not None else Unit.UNKNOWN
                        )

    @staticmethod
    def _target_names(target: ast.expr) -> list[str]:
        return [
            n.id
            for n in ast.walk(target)
            if isinstance(n, ast.Name)
        ]

    # -- sinks ---------------------------------------------------------------

    def check_stmt(self, stmt, env: Env):
        yield from self._scan(walk_own_expressions(stmt), env)

    def check_test(self, test, env: Env):
        yield from self._scan(ast.walk(test), env)

    def _scan(self, nodes, env: Env) -> Iterator[tuple[ast.AST, str, str]]:
        ev = self.make_evaluator(env)
        for node in nodes:
            if isinstance(node, ast.Call):
                yield from self._check_call(node, ev)
            elif isinstance(node, ast.Subscript):
                yield from self._check_subscript(node, ev)
            elif isinstance(node, ast.Compare):
                yield from self._check_compare(node, ev)

    def _check_call(self, call: ast.Call, ev: UnitEvaluator):
        name = _callable_name(call.func)
        if (
            name == "seek"
            and isinstance(call.func, ast.Attribute)
            and call.args
            and ev.unit_of(call.args[0]) is Unit.BIT
        ):
            yield (
                call,
                "bit-valued expression passed to byte-addressed seek()",
                _HINT,
            )
        if (
            name == "seek_bits"
            and call.args
            and ev.unit_of(call.args[0]) is Unit.BYTE
        ):
            yield (
                call,
                "byte-valued expression passed to bit-addressed seek_bits()",
                _HINT,
            )
        for kw in call.keywords:
            if kw.arg is None:
                continue
            unit = ev.unit_of(kw.value)
            if kw.arg in _BIT_KWARGS and unit is Unit.BYTE:
                yield (
                    call,
                    f"byte-valued expression passed to bit-addressed "
                    f"parameter {kw.arg}=",
                    _HINT,
                )
            elif kw.arg in _BYTE_KWARGS and unit is Unit.BIT:
                yield (
                    call,
                    f"bit-valued expression passed to byte-addressed "
                    f"parameter {kw.arg}=",
                    _HINT,
                )
        pos = _BIT_POSITIONALS.get(name)
        if pos is not None and len(call.args) > pos:
            if ev.unit_of(call.args[pos]) is Unit.BYTE:
                yield (
                    call,
                    f"byte-valued expression passed to bit-offset "
                    f"argument {pos} of {name}()",
                    _HINT,
                )
        pos = _BYTE_POSITIONALS.get(name)
        if pos is not None and len(call.args) > pos:
            if ev.unit_of(call.args[pos]) is Unit.BIT:
                yield (
                    call,
                    f"bit-valued expression passed to byte-offset "
                    f"argument {pos} of {name}()",
                    _HINT,
                )

    def _check_subscript(self, node: ast.Subscript, ev: UnitEvaluator):
        value = node.value
        if isinstance(value, ast.Name):
            is_buffer = value.id in self.buffers
        elif isinstance(value, ast.Attribute):
            is_buffer = value.attr in BYTE_BUFFER_NAMES
        else:
            return
        if not is_buffer:
            return
        bounds = (
            [node.slice.lower, node.slice.upper]
            if isinstance(node.slice, ast.Slice)
            else [node.slice]
        )
        for bound in bounds:
            if bound is not None and ev.unit_of(bound) is Unit.BIT:
                yield (
                    node,
                    "bit-valued expression used to index a byte buffer",
                    _HINT,
                )
                return

    def _check_compare(self, node: ast.Compare, ev: UnitEvaluator):
        sides = [node.left, *node.comparators]
        for (a, b), op in zip(zip(sides, sides[1:]), node.ops):
            if not isinstance(op, _CMP_OPS):
                continue
            ua, ub = ev.unit_of(a), ev.unit_of(b)
            for x, ux, y, uy in ((a, ua, b, ub), (b, ub, a, ua)):
                if ux is Unit.BIT and _is_len_of_buffer(y, self.buffers):
                    yield (
                        node,
                        "bit-valued expression compared against len() of "
                        "a byte buffer",
                        _HINT,
                    )
                    return
            if {ua, ub} == {Unit.BIT, Unit.BYTE}:
                yield (
                    node,
                    "comparison mixes a bit-valued and a byte-valued "
                    "expression",
                    _HINT,
                )
                return


@register
class UnitConfusionRule(FlowRule):
    rule_id = "REP009"
    slug = "unit-confusion"
    summary = (
        "bit-valued expressions must not reach byte-addressed sinks "
        "(seek, buffer indexing, len comparisons) or vice versa"
    )
    example_bad = (
        "def locate(fh, reader):\n"
        "    pos = reader.tell_bits()   # bit offset\n"
        "    fh.seek(pos)               # seek() is byte-addressed\n"
    )
    example_good = (
        "def locate(fh, reader):\n"
        "    pos = reader.tell_bits() >> 3   # explicit bit -> byte\n"
        "    fh.seek(pos)\n"
    )

    def make_analysis(self, module: ModuleInfo, func) -> FlowAnalysis:
        return _UnitsAnalysis(func)
