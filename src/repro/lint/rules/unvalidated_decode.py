"""REP010 — decoded bit values must be bounds-checked before risky use.

Every value produced by ``BitReader.read()``/``peek()`` (or a
``read_bits``/``peek_bits`` helper) comes straight from attacker- or
corruption-controlled input: the fault-injection campaign (PR 1) showed
that unchecked decode values turn flipped bits into hangs and
memory blow-ups instead of clean :class:`~repro.errors.DeflateError`
failures.  This rule is the static complement of that campaign: it
taints raw decode results and reports them reaching a sink that
amplifies a bad value, unless a bounds check dominates the use:

* shift amounts — ``1 << v`` allocates unbounded big-ints;
* plain list/table indexing — ``table[v]`` (slices clamp in Python and
  are deliberately *not* sinks);
* allocation sizes — ``bytes(v)``, ``bytearray(v)``, ``seq * v``.

Sanitizers clear the taint: a mask (``v & 0x1F``), a modulo, a
``min()``/``max()`` against a bound, or a *dominating* comparison — any
branch whose test compares ``v`` marks it validated on both arms (the
guard idiom here is ``if v > LIMIT: raise``; accepting every comparison
as a bounds check is a documented imprecision, favouring silence over
noise).

Escape hatch: ``# lint: allow-unvalidated-decode(<reason>)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.dataflow import Env
from repro.lint.module import ModuleInfo
from repro.lint.registry import register
from repro.lint.rules._flow import FlowAnalysis, FlowRule, walk_own_expressions

__all__ = ["UnvalidatedDecodeRule"]

_TAINTED = "tainted"
_VALIDATED = "validated"
_READER = "reader"

_SOURCE_METHODS = {"read", "peek", "read_bits", "peek_bits"}
_SOURCE_FUNCTIONS = {"read_bits", "peek_bits"}
#: Receiver names that identify a bit reader without type tracking.
_READER_NAMES = {"reader", "br", "bitreader", "bit_reader"}

_HINT = (
    "bounds-check the decoded value first (if v > LIMIT: raise ...), or "
    "sanitize it with a mask / min() before use"
)


def _call_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


class _TaintAnalysis(FlowAnalysis):
    def __init__(self) -> None:
        pass

    # -- taint evaluation ----------------------------------------------------

    def _is_reader(self, node: ast.expr, env: Env) -> bool:
        if isinstance(node, ast.Name):
            return env.get(node.id) == _READER or node.id in _READER_NAMES
        if isinstance(node, ast.Attribute):
            return "reader" in node.attr.lower()
        return False

    def _is_source(self, node: ast.expr, env: Env) -> bool:
        if not isinstance(node, ast.Call):
            return False
        if isinstance(node.func, ast.Attribute):
            return (
                node.func.attr in _SOURCE_METHODS
                and self._is_reader(node.func.value, env)
            )
        if isinstance(node.func, ast.Name):
            return node.func.id in _SOURCE_FUNCTIONS
        return False

    def taint_of(self, node: ast.expr, env: Env) -> str | None:
        """``_TAINTED``/``_READER`` or ``None`` (clean/validated)."""
        if isinstance(node, ast.Name):
            value = env.get(node.id)
            return value if value in (_TAINTED, _READER) else None
        if isinstance(node, ast.Call):
            if self._is_source(node, env):
                return _TAINTED
            name = _call_name(node.func)
            if name == "BitReader":
                return _READER
            if name in ("min", "max"):
                # Bounded by the other operand unless every arg is tainted.
                taints = [self.taint_of(a, env) for a in node.args]
                if taints and all(t == _TAINTED for t in taints):
                    return _TAINTED
                return None
            return None
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, (ast.BitAnd, ast.Mod)):
                return None  # masked / wrapped: sanitized
            left = self.taint_of(node.left, env)
            right = self.taint_of(node.right, env)
            if _TAINTED in (left, right):
                return _TAINTED
            return None
        if isinstance(node, ast.UnaryOp):
            return self.taint_of(node.operand, env)
        if isinstance(node, ast.IfExp):
            if _TAINTED in (
                self.taint_of(node.body, env),
                self.taint_of(node.orelse, env),
            ):
                return _TAINTED
            return None
        if isinstance(node, ast.NamedExpr):
            return self.taint_of(node.value, env)
        return None

    # -- dataflow ------------------------------------------------------------

    def join_values(self, a, b):
        if a == b:
            return a
        if _TAINTED in (a, b):
            return _TAINTED
        if a is None:
            return b
        if b is None:
            return a
        return None

    def transfer_stmt(self, stmt: ast.stmt, env: Env) -> None:
        if isinstance(stmt, ast.Assign):
            value_taint = self.taint_of(stmt.value, env)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self._bind(target.id, value_taint, env)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            env.pop(elt.id, None)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            taint = (
                self.taint_of(stmt.value, env) if stmt.value is not None else None
            )
            self._bind(stmt.target.id, taint, env)
        elif isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
            if isinstance(stmt.op, (ast.BitAnd, ast.Mod)):
                env.pop(stmt.target.id, None)  # x &= mask sanitizes
            elif (
                self.taint_of(stmt.value, env) == _TAINTED
                or env.get(stmt.target.id) == _TAINTED
            ):
                env[stmt.target.id] = _TAINTED
        elif isinstance(stmt, ast.Assert):
            self._validate_compared_names(stmt.test, env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            # Loop targets iterate bounded containers/ranges: clean.
            for node in ast.walk(stmt.target):
                if isinstance(node, ast.Name):
                    env.pop(node.id, None)

    @staticmethod
    def _bind(name: str, taint: str | None, env: Env) -> None:
        if taint is None:
            env.pop(name, None)
        else:
            env[name] = taint

    def refine_edge(self, test: ast.expr, label: str, env: Env) -> None:
        self._validate_compared_names(test, env)

    @staticmethod
    def _validate_compared_names(test: ast.expr, env: Env) -> None:
        """Any name compared (ordering/equality) counts as bounds-checked."""
        for node in ast.walk(test):
            if not isinstance(node, ast.Compare):
                continue
            if not any(
                isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq))
                for op in node.ops
            ):
                continue
            for side in [node.left, *node.comparators]:
                for name in ast.walk(side):
                    if isinstance(name, ast.Name) and env.get(name.id) == _TAINTED:
                        env[name.id] = _VALIDATED

    # -- sinks ---------------------------------------------------------------

    def check_stmt(self, stmt, env: Env):
        yield from self._scan(walk_own_expressions(stmt), env)

    def check_test(self, test, env: Env):
        yield from self._scan(ast.walk(test), env)

    def _scan(self, nodes, env: Env) -> Iterator[tuple[ast.AST, str, str]]:
        for node in nodes:
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.LShift, ast.RShift)
            ):
                if self.taint_of(node.right, env) == _TAINTED:
                    yield (
                        node,
                        "unvalidated decoded value used as a shift amount",
                        _HINT,
                    )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
                if self._is_sequence_repeat(node, env):
                    yield (
                        node,
                        "unvalidated decoded value used as a sequence "
                        "repeat count",
                        _HINT,
                    )
            elif isinstance(node, ast.Subscript) and not isinstance(
                node.slice, ast.Slice
            ):
                if self.taint_of(node.slice, env) == _TAINTED:
                    yield (
                        node,
                        "unvalidated decoded value used as an index",
                        _HINT,
                    )
            elif isinstance(node, ast.Call):
                name = _call_name(node.func)
                if (
                    name in ("bytes", "bytearray")
                    and len(node.args) == 1
                    and self.taint_of(node.args[0], env) == _TAINTED
                ):
                    yield (
                        node,
                        f"unvalidated decoded value used as {name}() "
                        "allocation size",
                        _HINT,
                    )

    def _is_sequence_repeat(self, node: ast.BinOp, env: Env) -> bool:
        for seq, count in ((node.left, node.right), (node.right, node.left)):
            seq_like = isinstance(seq, (ast.List, ast.Tuple)) or (
                isinstance(seq, ast.Constant) and isinstance(seq.value, (bytes, str))
            )
            if seq_like and self.taint_of(count, env) == _TAINTED:
                return True
        return False


@register
class UnvalidatedDecodeRule(FlowRule):
    rule_id = "REP010"
    slug = "unvalidated-decode"
    summary = (
        "raw BitReader.read()/peek() values need a dominating bounds "
        "check before indexing, shifting, or sizing an allocation"
    )
    example_bad = (
        "def decode_length(reader, table):\n"
        "    sym = reader.read(5)\n"
        "    return table[sym]      # corrupt input -> IndexError (or worse)\n"
    )
    example_good = (
        "def decode_length(reader, table):\n"
        "    sym = reader.read(5)\n"
        "    if sym >= len(table):\n"
        "        raise HuffmanError('symbol out of range', stage='inflate')\n"
        "    return table[sym]\n"
    )

    def make_analysis(self, module: ModuleInfo, func) -> FlowAnalysis:
        return _TaintAnalysis()
