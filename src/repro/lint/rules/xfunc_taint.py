"""REP015 — unvalidated decode values reaching sinks in a *callee*.

REP010 reports a raw ``BitReader.read()`` value hitting a shift, index
or allocation sink in the same function.  Corrupt-input amplification
does not respect function boundaries, though: the two cross-function
shapes are

* **taint down** — a fresh, unvalidated decode value is passed as an
  argument to a project function whose summary says that parameter
  reaches a sink unsanitized (at any depth: sink parameters propagate
  transitively through the bottom-up summary computation);
* **taint up** — a helper *returns* a raw decode value
  (``returns_fresh_taint`` in its summary) and the caller sinks the
  helper's result locally.

Sanitization contracts match REP010 exactly — masks, modulo,
``min``/``max`` against a clean bound, and any dominating comparison
clear the taint, in caller or callee.  Direct read-then-sink in one
function stays REP010's finding; this rule only fires when the flow
crossed a resolved call edge, so the two never double-report.

Escape hatch: ``# lint: allow-cross-decode-taint(<reason>)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import MODULE_UNIT, Project
from repro.lint.findings import Finding
from repro.lint.registry import ProjectRule, register
from repro.lint.summaries import (
    FRESH,
    RET_PREFIX,
    run_taint,
    unit_resolver,
)

__all__ = ["CrossDecodeTaintRule"]

_HINT = (
    "bounds-check the decoded value before the call (if v > LIMIT: "
    "raise ...), sanitize with a mask/min(), or validate the parameter "
    "inside the callee before it reaches the sink"
)

_SINK_LABELS = {
    "shift": "a shift amount",
    "index": "an index",
    "alloc": "an allocation size",
    "repeat": "a sequence repeat count",
}


@register
class CrossDecodeTaintRule(ProjectRule):
    rule_id = "REP015"
    slug = "cross-decode-taint"
    summary = (
        "raw BitReader values must not cross a call boundary into a "
        "shift/index/allocation sink — in either direction"
    )
    example_bad = (
        "def expand(count, table):\n"
        "    return table[count]            # sink, no validation\n"
        "\n"
        "def decode(reader, table):\n"
        "    n = reader.read(7)             # raw decode value\n"
        "    return expand(n, table)        # crosses the boundary tainted\n"
    )
    example_good = (
        "def expand(count, table):\n"
        "    if count >= len(table):\n"
        "        raise DeflateError('bad count', stage='inflate')\n"
        "    return table[count]\n"
        "\n"
        "def decode(reader, table):\n"
        "    n = reader.read(7)\n"
        "    return expand(n, table)        # callee validates before use\n"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        summaries = project.summaries()
        resolver_factory = unit_resolver(project, summaries)
        for qualname, module, body, func in project.iter_units():
            resolve = resolver_factory(module, func, body)
            events, _labels, _fresh = run_taint(func, body, resolve)
            where = qualname.rsplit(".", 1)[-1]
            where = "module level" if where == MODULE_UNIT else f"{where}()"
            for event in events:
                fresh = FRESH in event.labels
                via_return = sorted(
                    lbl[len(RET_PREFIX):]
                    for lbl in event.labels
                    if lbl.startswith(RET_PREFIX)
                )
                if not fresh and not via_return:
                    continue  # parameter labels are summary facts, not findings
                if event.kind == "call-arg":
                    origin = (
                        f"decode value returned by {via_return[0]}()"
                        if via_return and not fresh
                        else "raw decode value"
                    )
                    yield self.finding(
                        module,
                        event.node,
                        f"unvalidated {origin} passed to parameter "
                        f"{event.param!r} of {event.callee}(), which uses "
                        f"it in a taint sink ({where})",
                        hint=_HINT,
                    )
                elif via_return:
                    # Local sink fed by a callee's raw return value.
                    # (FRESH-only local sinks are REP010's findings.)
                    yield self.finding(
                        module,
                        event.node,
                        f"unvalidated decode value returned by "
                        f"{via_return[0]}() used as "
                        f"{_SINK_LABELS.get(event.kind, 'a sink')} in {where}",
                        hint=_HINT,
                    )
