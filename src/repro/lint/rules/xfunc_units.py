"""REP014 — bit/byte unit confusion across function boundaries.

REP009 catches a bit offset fed to ``seek()`` inside one function; it
goes dark the moment the offset passes through a helper.  This rule
closes that gap with the function summaries of
:mod:`repro.lint.summaries`:

* every *resolved* project call site is a sink — an argument with a
  definite unit (per the same four-point lattice REP009 uses) must not
  land on a parameter whose summary says the *opposite* unit, whether
  the parameter's unit comes from a ``BitOffset``/``ByteOffset``
  annotation or from its name;
* the unit evaluator consults callee summaries, so a helper returning
  ``reader.tell_bits()`` makes ``helper()`` a bit-valued expression —
  at any call depth, because summaries are computed bottom-up over the
  call-graph SCCs (recursion converges at the fixpoint).

Calls the resolver cannot pin to exactly one project function are not
checked: silence over guessing, same contract as REP009.

Escape hatch: ``# lint: allow-cross-unit-confusion(<reason>)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import MODULE_UNIT, Project
from repro.lint.cfg import build_cfg
from repro.lint.dataflow import replay_blocks, solve
from repro.lint.findings import Finding
from repro.lint.registry import ProjectRule, register
from repro.lint.rules._flow import walk_own_expressions
from repro.lint.summaries import (
    SummaryUnitEvaluator,
    UnitsSummaryAnalysis,
    _map_args,
    unit_resolver,
)
from repro.lint.units import Unit

__all__ = ["CrossUnitConfusionRule"]

_HINT = (
    "convert at the call boundary: bits_to_bytes()/ >> 3 for bit->byte, "
    "bytes_to_bits()/ * 8 for byte->bit, or annotate the parameter with "
    "the unit it really has (repro.units.BitOffset/ByteOffset)"
)

_OPPOSITE = {Unit.BIT: Unit.BYTE, Unit.BYTE: Unit.BIT}


@register
class CrossUnitConfusionRule(ProjectRule):
    rule_id = "REP014"
    slug = "cross-unit-confusion"
    summary = (
        "a bit-valued expression (at any call depth) must not flow into "
        "a byte-unit parameter of a project function, or vice versa"
    )
    example_bad = (
        "def resync_origin(reader):\n"
        "    return reader.tell_bits()      # bit offset\n"
        "\n"
        "def plan(reader, nbytes_done: int):\n"
        "    return split_chunk(resync_origin(reader))   # byte parameter\n"
        "\n"
        "def split_chunk(start_byte):\n"
        "    return start_byte // 2\n"
    )
    example_good = (
        "def resync_origin(reader):\n"
        "    return reader.tell_bits()\n"
        "\n"
        "def plan(reader, nbytes_done: int):\n"
        "    return split_chunk(resync_origin(reader) >> 3)  # bit -> byte\n"
        "\n"
        "def split_chunk(start_byte):\n"
        "    return start_byte // 2\n"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        summaries = project.summaries()
        resolver_factory = unit_resolver(project, summaries)
        for qualname, module, body, func in project.iter_units():
            resolve = resolver_factory(module, func, body)
            analysis = UnitsSummaryAnalysis(func, resolve)
            cfg = build_cfg(body)
            envs_in = solve(cfg, analysis)
            for kind, node, env in replay_blocks(cfg, analysis, envs_in):
                nodes = (
                    walk_own_expressions(node) if kind == "stmt" else ast.walk(node)
                )
                ev = SummaryUnitEvaluator(env, resolve)
                for sub in nodes:
                    if isinstance(sub, ast.Call):
                        yield from self._check_call(
                            module, qualname, sub, ev, resolve
                        )

    def _check_call(self, module, caller: str, call: ast.Call, ev, resolve):
        hit = resolve(call)
        if hit is None:
            return
        info, summary = hit
        for param, arg in _map_args(info, summary, call):
            declared = summary.param_units.get(param)
            if declared is None:
                continue
            declared_unit = Unit(declared)
            arg_unit = ev.unit_of(arg)
            if arg_unit is _OPPOSITE.get(declared_unit):
                where = caller.rsplit(".", 1)[-1]
                where = "module level" if where == MODULE_UNIT else f"{where}()"
                yield self.finding(
                    module,
                    call,
                    f"{arg_unit.value}-valued expression passed to "
                    f"{declared_unit.value}-unit parameter {param!r} of "
                    f"{summary.qualname}() from {where}",
                    hint=_HINT,
                )
