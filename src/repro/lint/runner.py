"""CLI entry point for ``repro lint`` — argument handling and reports.

Kept separate from :mod:`repro.cli` so the analyzer is importable and
testable without argparse, and separate from the engine so output
formatting never leaks into rule logic.

Exit codes (stable contract, relied on by ``make lint`` and CI):

* ``0`` — clean (no findings beyond the baseline)
* ``1`` — new findings reported
* ``2`` — internal error (bad rule id, unreadable/unparseable file,
  malformed baseline)
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.engine import Linter, LintResult
from repro.lint.registry import LintConfigError, resolve_rules

__all__ = [
    "run_lint",
    "explain_rule",
    "format_text",
    "format_json",
    "prove_pragmas",
]


def explain_rule(rule_id: str, out=None) -> int:
    """Print one rule's documentation: summary, doc, examples, pragma.

    Returns 0, or 2 for an unknown rule id (matching the exit-code
    contract: misconfiguration, not a finding).
    """
    from repro.lint.registry import all_rules

    out = out if out is not None else sys.stdout
    rule_id = rule_id.strip().upper()
    for cls in all_rules():
        if cls.rule_id != rule_id:
            continue
        print(f"{cls.rule_id} ({cls.slug}) [{cls.severity}]", file=out)
        print(f"  {cls.summary}", file=out)
        doc = (sys.modules[cls.__module__].__doc__ or "").strip()
        if doc:
            print(file=out)
            for line in doc.splitlines():
                print(f"  {line}" if line else "", file=out)
        example_bad = getattr(cls, "example_bad", "")
        if example_bad:
            print(file=out)
            print("example violation:", file=out)
            for line in example_bad.rstrip("\n").splitlines():
                print(f"    {line}", file=out)
        example_good = getattr(cls, "example_good", "")
        if example_good:
            print(file=out)
            print("compliant version:", file=out)
            for line in example_good.rstrip("\n").splitlines():
                print(f"    {line}", file=out)
        print(file=out)
        print(f"suppress with: # lint: allow-{cls.slug}(<reason>)", file=out)
        return 0
    print(f"repro lint: unknown rule id {rule_id}", file=sys.stderr)
    return 2


def format_text(result: LintResult, *, verbose: bool = False) -> str:
    lines = [f.format_text() for f in result.findings]
    for err in result.internal_errors:
        lines.append(f"internal error: {err}")
    n = len(result.findings)
    summary = (
        f"{result.files_checked} file(s) checked: "
        + ("clean" if n == 0 else f"{n} finding(s)")
    )
    if result.baselined:
        summary += f", {len(result.baselined)} baselined"
    summary += f" [{result.duration:.2f}s, jobs={result.jobs}]"
    lines.append(summary)
    if verbose and result.baselined:
        lines.append("baselined findings:")
        lines.extend("  " + f.format_text() for f in result.baselined)
    return "\n".join(lines)


def format_json(result: LintResult) -> str:
    return json.dumps(
        {
            "files_checked": result.files_checked,
            "findings": [f.to_dict() for f in result.findings],
            "baselined": [f.to_dict() for f in result.baselined],
            "internal_errors": result.internal_errors,
            "exit_code": result.exit_code(),
        },
        indent=2,
    )


def prove_pragmas(
    paths: list[str],
    *,
    summary_store: str | None = None,
    out=None,
) -> int:
    """``repro lint --prove-pragmas``: which pragmas the prover retires.

    Parses the given paths, computes interval-backed summaries (through
    the summary store when provided) and prints the REP020 discharge
    report: ``allow-unbudgeted-alloc`` pragmas the interval engine
    proves redundant, the ones still required, stale ones, and every
    proved allocation bound.  Always exits 0 unless inputs fail to
    parse — the report informs a cleanup, it does not gate.
    """
    out = out if out is not None else sys.stdout
    from repro.lint.callgraph import Project
    from repro.lint.engine import load_module
    from repro.lint.rules.proven_alloc import (
        discharge_report,
        format_discharge_report,
    )

    modules = []
    errors = []
    for path in Linter.iter_python_files([Path(p) for p in paths]):
        try:
            modules.append(load_module(path, root=None))
        except (SyntaxError, OSError, UnicodeDecodeError) as exc:
            errors.append(f"{path}: {exc}")
    if errors or not modules:
        for err in errors:
            print(f"repro lint: {err}", file=sys.stderr)
        if not modules:
            print("repro lint: no Python files found", file=sys.stderr)
        return 2
    project = Project(modules)
    if summary_store is not None:
        from repro.lint.summaries import SummaryStore

        store = SummaryStore(Path(summary_store))
        cached = store.load(project.source_hash())
        if cached is not None:
            project.set_summaries(cached)
        else:
            store.save(project.source_hash(), project.summaries())
    print(format_discharge_report(discharge_report(project)), file=out)
    return 0


def _parse_rule_list(raw: str | None) -> list[str] | None:
    if not raw:
        return None
    return [part.strip().upper() for part in raw.split(",") if part.strip()]


def run_lint(
    paths: list[str],
    *,
    fmt: str = "text",
    baseline_path: str | None = None,
    update_baseline: bool = False,
    select: str | None = None,
    ignore: str | None = None,
    verbose: bool = False,
    jobs: int = 1,
    summary_store: str | None = None,
    out=None,
) -> int:
    """Run the analyzer; print a report; return the process exit code."""
    out = out if out is not None else sys.stdout
    try:
        rules = resolve_rules(
            select=_parse_rule_list(select), ignore=_parse_rule_list(ignore)
        )
        baseline = None
        if baseline_path is not None and not update_baseline:
            if Path(baseline_path).exists():
                baseline = Baseline.load(Path(baseline_path))
            # A missing baseline file with --update-baseline pending is
            # fine; a missing one passed explicitly for reading is too —
            # the first run simply reports everything, then --update-
            # baseline materialises the file.
        linter = Linter(
            rules=rules,
            baseline=baseline,
            jobs=jobs,
            summary_store=Path(summary_store) if summary_store else None,
        )
        result = linter.run([Path(p) for p in paths])
    except LintConfigError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if update_baseline:
        if result.internal_errors:
            print(format_text(result), file=out)
            return 2
        target = Path(baseline_path or "lint-baseline.json")
        # The new baseline captures everything currently firing
        # (including previously-baselined findings when re-ratcheting).
        Baseline.from_findings(result.findings + result.baselined).save(target)
        print(
            f"baseline written: {target} "
            f"({len(result.findings) + len(result.baselined)} finding(s))",
            file=out,
        )
        return 0

    if fmt == "json":
        print(format_json(result), file=out)
    elif fmt == "sarif":
        from repro.lint.sarif import format_sarif

        print(format_sarif(result, linter.rules), file=out)
    else:
        print(format_text(result, verbose=verbose), file=out)
    return result.exit_code()
