"""SARIF 2.1.0 output for ``repro lint --format sarif``.

SARIF (Static Analysis Results Interchange Format) is the lingua
franca CI systems ingest for code-scanning annotations.  One run maps
onto the format naturally:

* the **tool driver** advertises every *selected* rule with its id,
  summary and help URI-free markdown (the ``--explain`` text), so
  viewers can render rule docs without access to this repo;
* each finding becomes a **result** holding the rule id, message with
  the fix hint folded in, a physical location, and a
  ``partialFingerprints`` entry carrying the analyzer's own
  line-insensitive fingerprint (version-tagged as
  ``reproLintFingerprint/v1``) so SARIF consumers track findings
  across commits exactly like the baseline does;
* parse failures become **tool execution notifications** with level
  ``error`` — they are analyzer breakage, not code findings, matching
  the exit-code-2 contract.

Baselined findings are emitted with ``"baselineState": "unchanged"``
rather than dropped: SARIF consumers are expected to filter on
baseline state, and hiding them here would make the artifact disagree
with ``--update-baseline``.
"""

from __future__ import annotations

import json

from repro.lint.engine import LintResult
from repro.lint.findings import Finding
from repro.lint.registry import Rule

__all__ = ["FINGERPRINT_KEY", "SARIF_VERSION", "to_sarif", "format_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
#: Version-tagged key for ``partialFingerprints`` — bump the suffix if
#: :meth:`Finding.fingerprint` ever changes its recipe.
FINGERPRINT_KEY = "reproLintFingerprint/v1"

_LEVELS = {"error": "error", "warning": "warning"}


def _rule_descriptor(rule: Rule) -> dict:
    import sys

    doc = (sys.modules[type(rule).__module__].__doc__ or "").strip()
    descriptor = {
        "id": rule.rule_id,
        "name": type(rule).__name__,
        "shortDescription": {"text": rule.summary},
        "defaultConfiguration": {
            "level": _LEVELS.get(rule.severity, "warning")
        },
        "properties": {
            "slug": rule.slug,
            "pragma": f"# lint: allow-{rule.slug}(<reason>)",
        },
    }
    if doc:
        descriptor["fullDescription"] = {"text": doc.splitlines()[0]}
        descriptor["help"] = {"text": doc, "markdown": doc}
    return descriptor


def _result(finding: Finding, rule_index: dict[str, int], state: str | None) -> dict:
    message = finding.message
    if finding.hint:
        message += f" (hint: {finding.hint})"
    result = {
        "ruleId": finding.rule_id,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path,
                    "uriBaseId": "SRCROOT",
                },
                "region": {
                    "startLine": finding.line,
                    "startColumn": finding.col + 1,
                },
            },
        }],
        "partialFingerprints": {FINGERPRINT_KEY: finding.fingerprint()},
    }
    if finding.witness:
        # Interval witness of the numeric rules (REP018–REP020): the
        # abstract value the engine proved/failed to bound.
        result["properties"] = {"interval": finding.witness}
    if finding.rule_id in rule_index:
        result["ruleIndex"] = rule_index[finding.rule_id]
    if state is not None:
        result["baselineState"] = state
    return result


def to_sarif(result: LintResult, rules: list[Rule]) -> dict:
    """Build the SARIF log object for one engine run."""
    descriptors = [_rule_descriptor(r) for r in sorted(rules, key=lambda r: r.rule_id)]
    rule_index = {d["id"]: i for i, d in enumerate(descriptors)}
    results = [_result(f, rule_index, "new" if result.baselined else None)
               for f in result.findings]
    results += [_result(f, rule_index, "unchanged") for f in result.baselined]
    invocation = {
        "executionSuccessful": not result.internal_errors,
        "toolExecutionNotifications": [
            {"level": "error", "message": {"text": err}}
            for err in result.internal_errors
        ],
    }
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "rules": descriptors,
                },
            },
            "invocations": [invocation],
            "results": results,
            "columnKind": "utf16CodeUnits",
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
        }],
    }


def format_sarif(result: LintResult, rules: list[Rule]) -> str:
    return json.dumps(to_sarif(result, rules), indent=2, sort_keys=False)
