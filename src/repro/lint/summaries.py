"""Per-function summaries, computed bottom-up over call-graph SCCs.

A :class:`FunctionSummary` is the interface a function exposes to its
callers in the interprocedural rules (REP014–REP016, REP018–REP020):
which parameters carry a definite bit/byte unit, what unit and numeric
interval the return value has, which parameters flow — unsanitized —
into a decode-taint sink, whether the function mutates module-level
state, holds a non-reentrant lock across a call, or allocates inside a
decode loop without a dominating
:class:`~repro.robustness.limits.ResourceBudget` check or a proved
spec-constant size bound.

Summaries are computed in reverse-topological SCC order (callees before
callers) with a worklist inside each SCC: every fact is monotone over a
finite lattice, so re-summarising members until nothing changes
terminates.  Recursion therefore converges instead of recursing — a
self-recursive decode helper whose parameter reaches a sink still
reports that parameter, one fixpoint round later.

The taint summary uses *label sets*: each parameter is seeded with its
own name as a label and fresh decode values carry ``"*"`` (or a
``ret:<qualname>`` label once they crossed a return boundary).  One
dataflow pass then yields every summary fact at once — which labels
reach sinks, which reach the return value — and the REP015 rule replays
the same analysis to turn ``*``-labelled boundary crossings into
findings.

The :class:`SummaryStore` persists a computed summary table as JSON
keyed on the *project-wide* source hash: cross-module facts make
per-module reuse unsound, so the cache is all-or-nothing (exactly what
a CI cache keyed on ``hashFiles('src/**/*.py')`` wants).
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator

from repro.lint.callgraph import (
    FunctionInfo,
    Project,
    _local_aliases,
)
from repro.lint.cfg import build_cfg, stmt_expressions
from repro.lint.dataflow import (
    Env,
    ForwardAnalysis,
    join_must_flag,
    replay_blocks,
    solve,
)
from repro.lint.intervals import (
    BytesVal,
    Interval,
    IntervalRun,
    SeqVal,
    fmt_interval,
    module_constant_env,
    run_intervals,
    spec_cap_for,
)
from repro.lint.units import (
    Unit,
    UnitEvaluator,
    join_units,
    unit_from_annotation,
    unit_of_name,
)

__all__ = [
    "Site",
    "FunctionSummary",
    "SummaryStore",
    "compute_summaries",
    "SummaryUnitEvaluator",
    "UnitsSummaryAnalysis",
    "LabelTaintAnalysis",
    "BudgetAnalysis",
    "FRESH",
    "unit_resolver",
    "interval_context",
    "alloc_prover",
]

#: Taint label for a fresh, unvalidated BitReader decode value.
FRESH = "*"
#: Prefix for taint that crossed a return boundary (REP015 evidence).
RET_PREFIX = "ret:"

_STABILIZE_LIMIT = 20  # SCC fixpoint safety valve; monotone facts converge fast


@dataclass(frozen=True)
class Site:
    """One source location attached to a summary fact."""

    path: str
    line: int
    detail: str

    def to_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "detail": self.detail}

    @classmethod
    def from_dict(cls, d: dict) -> "Site":
        return cls(d["path"], d["line"], d["detail"])


@dataclass
class FunctionSummary:
    """What one function exposes to interprocedural callers."""

    qualname: str
    param_names: tuple[str, ...] = ()
    #: param name -> "bit" / "byte" (definite units only)
    param_units: dict[str, str] = field(default_factory=dict)
    return_unit: str = Unit.UNKNOWN.value
    #: Parameters that reach a taint-amplifying sink unsanitized —
    #: locally, or transitively through a callee's sink parameter.
    taint_sink_params: tuple[str, ...] = ()
    #: Parameters whose taint flows through to the return value.
    taint_through_params: tuple[str, ...] = ()
    #: The return value carries a raw, unvalidated decode read.
    returns_fresh_taint: bool = False
    #: Module-level state mutated by this function (race hazard).
    mutates_module_state: tuple[Site, ...] = ()
    #: Non-reentrant lock held across a function call.
    lock_across_call: tuple[Site, ...] = ()
    #: In-loop allocation sites with no dominating budget check on some
    #: path from this function (transitive through unguarded calls).
    unbudgeted_allocs: tuple[Site, ...] = ()
    #: Contains a ResourceBudget.check_* call itself.
    performs_budget_check: bool = False
    #: Raises at least one error carrying structured context kwargs.
    raises_with_context: bool = False
    #: Resolved project callees (dedup'd, sorted).
    calls: tuple[str, ...] = ()
    #: Interval of the return value, ``(lo, hi)`` with None = ±∞, or
    #: ``None`` when the analysis makes no claim (propagated to callers
    #: by the interval rules REP018–REP020).
    return_interval: tuple | None = None
    #: In-loop allocation sites whose size the interval engine proved
    #: ≤ a spec constant (the witness lives in ``detail``); these are
    #: *excluded* from ``unbudgeted_allocs`` and surfaced by
    #: ``--prove-pragmas``.
    proved_allocs: tuple[Site, ...] = ()

    # -- serialization (summary store + stability test) ----------------------

    def to_dict(self) -> dict:
        return {
            "qualname": self.qualname,
            "param_names": list(self.param_names),
            "param_units": dict(sorted(self.param_units.items())),
            "return_unit": self.return_unit,
            "taint_sink_params": sorted(self.taint_sink_params),
            "taint_through_params": sorted(self.taint_through_params),
            "returns_fresh_taint": self.returns_fresh_taint,
            "mutates_module_state": [s.to_dict() for s in self.mutates_module_state],
            "lock_across_call": [s.to_dict() for s in self.lock_across_call],
            "unbudgeted_allocs": [s.to_dict() for s in self.unbudgeted_allocs],
            "performs_budget_check": self.performs_budget_check,
            "raises_with_context": self.raises_with_context,
            "calls": sorted(self.calls),
            "return_interval": (
                None if self.return_interval is None
                else list(self.return_interval)
            ),
            "proved_allocs": [s.to_dict() for s in self.proved_allocs],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FunctionSummary":
        return cls(
            qualname=d["qualname"],
            param_names=tuple(d["param_names"]),
            param_units=dict(d["param_units"]),
            return_unit=d["return_unit"],
            taint_sink_params=tuple(d["taint_sink_params"]),
            taint_through_params=tuple(d["taint_through_params"]),
            returns_fresh_taint=d["returns_fresh_taint"],
            mutates_module_state=tuple(Site.from_dict(s) for s in d["mutates_module_state"]),
            lock_across_call=tuple(Site.from_dict(s) for s in d["lock_across_call"]),
            unbudgeted_allocs=tuple(Site.from_dict(s) for s in d["unbudgeted_allocs"]),
            performs_budget_check=d["performs_budget_check"],
            raises_with_context=d["raises_with_context"],
            calls=tuple(d["calls"]),
            return_interval=(
                None if d.get("return_interval") is None
                else tuple(d["return_interval"])
            ),
            proved_allocs=tuple(
                Site.from_dict(s) for s in d.get("proved_allocs", ())
            ),
        )

    def key_facts(self) -> tuple:
        """The facts the SCC worklist watches for convergence."""
        return (
            self.return_unit,
            frozenset(self.taint_sink_params),
            frozenset(self.taint_through_params),
            self.returns_fresh_taint,
            frozenset(self.unbudgeted_allocs),
            self.performs_budget_check,
            self.return_interval,
            frozenset(self.proved_allocs),
        )


# ---------------------------------------------------------------------------
# call resolution shared by every analysis


def _call_resolver(
    project: Project,
    summaries: dict[str, FunctionSummary],
    module,
    caller: FunctionInfo | None,
    body: list[ast.stmt],
) -> Callable[[ast.Call], tuple[FunctionInfo, FunctionSummary] | None]:
    """Bind a unit's context into a ``Call -> (info, summary)`` lookup."""
    aliases = _local_aliases(body)

    def resolve(call: ast.Call):
        info = project.resolve_callable(module, call.func, caller, aliases)
        if info is None:
            return None
        summary = summaries.get(info.qualname)
        if summary is None:
            return None
        return info, summary

    return resolve


def unit_resolver(project: Project, summaries: dict[str, FunctionSummary]):
    """Resolver factory for one analysis unit (used by the REP014/15 rules)."""

    def for_unit(module, func: ast.FunctionDef | None, body: list[ast.stmt]):
        caller = project.function_for_node(func) if func is not None else None
        return _call_resolver(project, summaries, module, caller, body)

    return for_unit


def _interval_of_call(resolve):
    """Wrap a ``(info, summary)`` resolver into a return-interval lookup."""

    def resolve_interval(call: ast.Call) -> Interval | None:
        hit = resolve(call)
        if hit is None or hit[1].return_interval is None:
            return None
        lo, hi = hit[1].return_interval
        return Interval(lo, hi)

    return resolve_interval


def interval_context(project: Project, summaries: dict[str, FunctionSummary]):
    """Per-unit ``(module_env, resolve_interval)`` factory.

    The interval rules (REP018/REP019) and the summary builder share
    this so intraprocedural runs see the same module-level constant
    bindings and the same summary-backed callee return intervals.
    """
    module_envs: dict[str, Env] = {}

    def for_unit(module, func: ast.FunctionDef | None, body: list[ast.stmt]):
        if module.name not in module_envs:
            module_envs[module.name] = module_constant_env(module.tree)
        caller = project.function_for_node(func) if func is not None else None
        resolve = _call_resolver(project, summaries, module, caller, body)
        return module_envs[module.name], _interval_of_call(resolve)

    return for_unit


def alloc_prover(irun: IntervalRun):
    """Bind an interval run into REP020's allocation-size prover.

    Returns ``prove(alloc_expr, stmt) -> witness | None``: the witness
    string names the proved size interval and the tightest spec
    constant dominating it.  ``stmt`` must be one of the AST statement
    objects the run's CFG was built from — environments are keyed on
    object identity, which :func:`run_budget` guarantees by building
    its CFG from the same body.
    """
    envs: dict[int, Env] | None = None

    def prove(alloc: ast.AST, stmt: ast.stmt) -> str | None:
        nonlocal envs
        if envs is None:
            envs = irun.stmt_envs()
        env = envs.get(id(stmt))
        if env is None:
            return None
        value = irun.analysis.eval(alloc, env)
        if not isinstance(value, (BytesVal, SeqVal)):
            return None
        length = value.length
        if length.hi is None:
            return None
        cap = spec_cap_for(length.hi)
        if cap is None:
            return None
        cap_name, cap_value = cap
        return f"size ∈ {fmt_interval(length)} ≤ {cap_name} ({cap_value})"

    return prove


# ---------------------------------------------------------------------------
# units: return-unit summary + interprocedural evaluator


class SummaryUnitEvaluator(UnitEvaluator):
    """Unit evaluator that also knows resolved callees' return units."""

    def __init__(self, env: Env, resolve) -> None:
        super().__init__(env)
        self._resolve = resolve

    def _unit_of_call(self, node: ast.Call) -> Unit:
        hit = self._resolve(node)
        if hit is not None:
            unit = Unit(hit[1].return_unit)
            if unit in (Unit.BIT, Unit.BYTE):
                return unit
        return super()._unit_of_call(node)


def UnitsSummaryAnalysis(func: ast.FunctionDef | None, resolve):
    """The REP009 transfer functions with a summary-aware evaluator."""
    from repro.lint.rules.unit_confusion import _UnitsAnalysis

    return _UnitsAnalysis(
        func, make_evaluator=lambda env: SummaryUnitEvaluator(env, resolve)
    )


def _return_unit(info: FunctionInfo, resolve) -> Unit:
    """Join of every ``return`` expression's unit (plus the name's own)."""
    analysis = UnitsSummaryAnalysis(info.node, resolve)
    cfg = build_cfg(info.node.body)
    envs_in = solve(cfg, analysis)
    joined: Unit | None = Unit.UNKNOWN
    for kind, node, env in replay_blocks(cfg, analysis, envs_in):
        if kind == "stmt" and isinstance(node, ast.Return) and node.value is not None:
            ev = SummaryUnitEvaluator(env, resolve)
            joined = join_units(joined, ev.unit_of(node.value))
    unit = joined or Unit.UNKNOWN
    if unit is Unit.UNKNOWN:
        unit = unit_of_name(info.name)
    if unit is Unit.BIT_OR_BYTE:
        unit = Unit.UNKNOWN  # conflicting evidence: stay silent
    return unit


def _param_units(info: FunctionInfo) -> dict[str, str]:
    out: dict[str, str] = {}
    for arg in info.params():
        unit = unit_from_annotation(arg.annotation)
        if unit is Unit.UNKNOWN:
            unit = unit_of_name(arg.arg)
        if unit in (Unit.BIT, Unit.BYTE):
            out[arg.arg] = unit.value
    return out


# ---------------------------------------------------------------------------
# taint: label-set dataflow


_SOURCE_METHODS = {"read", "peek", "read_bits", "peek_bits"}
_SOURCE_FUNCTIONS = {"read_bits", "peek_bits"}
_READER_NAMES = {"reader", "br", "bitreader", "bit_reader"}
_READER = "__reader__"

_CMP_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


def _call_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


@dataclass(frozen=True)
class TaintEvent:
    """A labelled value reaching a sink during replay."""

    node: ast.AST
    labels: frozenset
    kind: str          # "shift" / "index" / "alloc" / "repeat" / "call-arg"
    callee: str = ""   # qualname, for call-arg events
    param: str = ""    # sink parameter name, for call-arg events


class LabelTaintAnalysis(ForwardAnalysis):
    """Label-set decode-taint analysis over one unit's CFG.

    Values are frozensets of labels (parameter names, :data:`FRESH`,
    ``ret:<qualname>``) or the :data:`_READER` marker.  Sanitization
    mirrors REP010: masks, modulo, ``min``/``max`` against clean
    bounds, and any dominating comparison clear a name's labels.
    """

    def __init__(self, func: ast.FunctionDef | None, resolve) -> None:
        self.func = func
        self.resolve = resolve
        self.events: list[TaintEvent] = []

    # -- environment ---------------------------------------------------------

    def initial_env(self) -> Env:
        env: Env = {}
        if self.func is not None:
            args = self.func.args
            params = [*args.posonlyargs, *args.args, *args.kwonlyargs]
            for arg in params:
                if arg.arg in ("self", "cls"):
                    continue
                env[arg.arg] = frozenset({arg.arg})
        return env

    def join_values(self, a, b):
        if isinstance(a, frozenset) and isinstance(b, frozenset):
            return a | b
        if a == b:
            return a
        if a is None:
            return b
        if b is None:
            return a
        return None

    # -- evaluation ----------------------------------------------------------

    def _is_reader(self, node: ast.expr, env: Env) -> bool:
        if isinstance(node, ast.Name):
            return env.get(node.id) == _READER or node.id in _READER_NAMES
        if isinstance(node, ast.Attribute):
            return "reader" in node.attr.lower()
        return False

    def _is_source(self, node: ast.Call, env: Env) -> bool:
        if isinstance(node.func, ast.Attribute):
            return (
                node.func.attr in _SOURCE_METHODS
                and self._is_reader(node.func.value, env)
            )
        if isinstance(node.func, ast.Name):
            return node.func.id in _SOURCE_FUNCTIONS
        return False

    def labels_of(self, node: ast.expr, env: Env) -> frozenset:
        """The label set carried by ``node`` (empty = clean)."""
        if isinstance(node, ast.Name):
            value = env.get(node.id)
            return value if isinstance(value, frozenset) else frozenset()
        if isinstance(node, ast.Call):
            return self._labels_of_call(node, env)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, (ast.BitAnd, ast.Mod)):
                return frozenset()  # masked / wrapped: sanitized
            return self.labels_of(node.left, env) | self.labels_of(node.right, env)
        if isinstance(node, ast.UnaryOp):
            return self.labels_of(node.operand, env)
        if isinstance(node, ast.IfExp):
            return self.labels_of(node.body, env) | self.labels_of(node.orelse, env)
        if isinstance(node, ast.NamedExpr):
            return self.labels_of(node.value, env)
        return frozenset()

    def _labels_of_call(self, node: ast.Call, env: Env) -> frozenset:
        if self._is_source(node, env):
            return frozenset({FRESH})
        name = _call_name(node.func)
        if name in ("min", "max"):
            arg_labels = [self.labels_of(a, env) for a in node.args]
            if arg_labels and all(arg_labels):
                return frozenset().union(*arg_labels)
            return frozenset()  # bounded by a clean operand
        if name in ("int", "abs") and len(node.args) == 1:
            return self.labels_of(node.args[0], env)
        hit = self.resolve(node)
        if hit is not None:
            info, summary = hit
            out: set = set()
            if summary.returns_fresh_taint:
                out.add(RET_PREFIX + summary.qualname)
            through = set(summary.taint_through_params)
            for param, arg in _map_args(info, summary, node):
                if param in through:
                    out |= self.labels_of(arg, env)
            return frozenset(out)
        return frozenset()

    # -- transfer ------------------------------------------------------------

    def transfer_stmt(self, stmt: ast.stmt, env: Env) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._value_of(stmt.value, env)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self._bind(target.id, value, env)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            env.pop(elt.id, None)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            value = (
                self._value_of(stmt.value, env) if stmt.value is not None else None
            )
            self._bind(stmt.target.id, value, env)
        elif isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
            if isinstance(stmt.op, (ast.BitAnd, ast.Mod)):
                env.pop(stmt.target.id, None)  # x &= mask sanitizes
            else:
                labels = self.labels_of(stmt.value, env)
                existing = env.get(stmt.target.id)
                existing = existing if isinstance(existing, frozenset) else frozenset()
                merged = labels | existing
                if merged:
                    env[stmt.target.id] = merged
        elif isinstance(stmt, ast.Assert):
            self._validate_compared_names(stmt.test, env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            for node in ast.walk(stmt.target):
                if isinstance(node, ast.Name):
                    env.pop(node.id, None)

    def _value_of(self, node: ast.expr, env: Env):
        if isinstance(node, ast.Call) and _call_name(node.func) == "BitReader":
            return _READER
        if isinstance(node, ast.Name) and env.get(node.id) == _READER:
            return _READER
        labels = self.labels_of(node, env)
        return labels if labels else None

    @staticmethod
    def _bind(name: str, value, env: Env) -> None:
        if value is None:
            env.pop(name, None)
        else:
            env[name] = value

    def refine_edge(self, test: ast.expr, label: str, env: Env) -> None:
        self._validate_compared_names(test, env)

    @staticmethod
    def _validate_compared_names(test: ast.expr, env: Env) -> None:
        """Any compared name counts as bounds-checked (REP010 imprecision)."""
        for node in ast.walk(test):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, _CMP_OPS) for op in node.ops):
                continue
            for side in [node.left, *node.comparators]:
                for name in ast.walk(side):
                    if isinstance(name, ast.Name) and isinstance(
                        env.get(name.id), frozenset
                    ):
                        env.pop(name.id, None)

    # -- sinks ---------------------------------------------------------------

    def scan(self, nodes, env: Env) -> Iterator[TaintEvent]:
        for node in nodes:
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.LShift, ast.RShift)
            ):
                labels = self.labels_of(node.right, env)
                if labels:
                    yield TaintEvent(node, labels, "shift")
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
                labels = self._repeat_labels(node, env)
                if labels:
                    yield TaintEvent(node, labels, "repeat")
            elif isinstance(node, ast.Subscript) and not isinstance(
                node.slice, ast.Slice
            ):
                labels = self.labels_of(node.slice, env)
                if labels:
                    yield TaintEvent(node, labels, "index")
            elif isinstance(node, ast.Call):
                name = _call_name(node.func)
                if name in ("bytes", "bytearray") and len(node.args) == 1:
                    labels = self.labels_of(node.args[0], env)
                    if labels:
                        yield TaintEvent(node, labels, "alloc")
                hit = self.resolve(node)
                if hit is not None:
                    info, summary = hit
                    sink_params = set(summary.taint_sink_params)
                    for param, arg in _map_args(info, summary, node):
                        if param not in sink_params:
                            continue
                        labels = self.labels_of(arg, env)
                        if labels:
                            yield TaintEvent(
                                node, labels, "call-arg",
                                callee=summary.qualname, param=param,
                            )

    def _repeat_labels(self, node: ast.BinOp, env: Env) -> frozenset:
        for seq, count in ((node.left, node.right), (node.right, node.left)):
            seq_like = isinstance(seq, (ast.List, ast.Tuple)) or (
                isinstance(seq, ast.Constant) and isinstance(seq.value, (bytes, str))
            )
            if seq_like:
                labels = self.labels_of(count, env)
                if labels:
                    return labels
        return frozenset()


def _map_args(
    info: FunctionInfo, summary: FunctionSummary, call: ast.Call
) -> Iterator[tuple[str, ast.expr]]:
    """Pair a call's arguments with the callee's parameter names."""
    params = summary.param_names
    for i, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        if i < len(params):
            yield params[i], arg
    for kw in call.keywords:
        if kw.arg is not None and kw.arg in params:
            yield kw.arg, kw.value


def run_taint(
    func: ast.FunctionDef | None, body: list[ast.stmt], resolve
) -> tuple[list[TaintEvent], frozenset, bool]:
    """Solve + replay the taint analysis over one unit.

    Returns ``(sink events, labels reaching the return value,
    reader-fresh flag is folded into the labels as FRESH/ret:)``.
    """
    from repro.lint.rules._flow import walk_own_expressions

    analysis = LabelTaintAnalysis(func, resolve)
    cfg = build_cfg(body)
    envs_in = solve(cfg, analysis)
    events: list[TaintEvent] = []
    return_labels: set = set()
    for kind, node, env in replay_blocks(cfg, analysis, envs_in):
        if kind == "stmt":
            events.extend(analysis.scan(walk_own_expressions(node), env))
            if isinstance(node, ast.Return) and node.value is not None:
                return_labels |= analysis.labels_of(node.value, env)
        else:
            events.extend(analysis.scan(ast.walk(node), env))
    fresh_return = any(
        lbl == FRESH or lbl.startswith(RET_PREFIX) for lbl in return_labels
    )
    return events, frozenset(return_labels), fresh_return


# ---------------------------------------------------------------------------
# budget: must-dominance of ResourceBudget checks over in-loop allocations


_BUDGET_KEY = "$budget_checked"
_BUDGET_METHODS = ("check_block", "check_match", "raise_output_cap", "check_")


def _is_budget_check(call: ast.Call) -> bool:
    func = call.func
    if not isinstance(func, ast.Attribute):
        return False
    if not (
        func.attr.startswith("check_") or func.attr == "raise_output_cap"
    ):
        return False
    recv = func.value
    name = recv.id if isinstance(recv, ast.Name) else (
        recv.attr if isinstance(recv, ast.Attribute) else ""
    )
    return "budget" in name.lower()


def _mentions_budget(test: ast.expr) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Name) and "budget" in node.id.lower():
            return True
        if isinstance(node, ast.Attribute) and "budget" in node.attr.lower():
            return True
    return False


class BudgetAnalysis(ForwardAnalysis):
    """All-paths "a budget check dominates this point" flag.

    Known imprecision (documented in docs/STATIC_ANALYSIS.md): *any*
    branch test mentioning a budget-ish name marks both arms checked —
    the ``if budget is not None: budget.check_block(...)`` idiom leaves
    the ``None`` arm legitimately unchecked (no budget = unlimited by
    caller's choice), and distinguishing the arms statically is not
    worth the noise.
    """

    def __init__(self, resolve) -> None:
        self.resolve = resolve

    def join_values(self, a, b):
        return join_must_flag(a, b)

    def transfer_stmt(self, stmt: ast.stmt, env: Env) -> None:
        for expr in stmt_expressions(stmt):
            for node in ast.walk(expr):
                if not isinstance(node, ast.Call):
                    continue
                if _is_budget_check(node):
                    env[_BUDGET_KEY] = True
                    continue
                hit = self.resolve(node)
                if hit is not None and hit[1].performs_budget_check:
                    env[_BUDGET_KEY] = True

    def refine_edge(self, test: ast.expr, label: str, env: Env) -> None:
        if _mentions_budget(test):
            env[_BUDGET_KEY] = True


def _loop_stmt_ids(body: list[ast.stmt]) -> set[int]:
    """ids of statements nested inside a loop (nested defs excluded)."""
    out: set[int] = set()

    def mark(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(child, ast.stmt):
                out.add(id(child))
            mark(child)

    def walk(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                mark(child)
            else:
                walk(child)

    root = ast.Module(body=body, type_ignores=[])
    walk(root)
    return out


def _alloc_site(expr: ast.AST) -> str | None:
    """Non-constant-size allocation expressions (the REP017 sinks)."""
    if isinstance(expr, ast.Call):
        name = _call_name(expr.func)
        if (
            name in ("bytes", "bytearray")
            and len(expr.args) == 1
            and not isinstance(expr.args[0], ast.Constant)
        ):
            return f"{name}() with computed size"
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Mult):
        for seq, count in ((expr.left, expr.right), (expr.right, expr.left)):
            seq_like = isinstance(seq, (ast.List, ast.Tuple)) or (
                isinstance(seq, ast.Constant) and isinstance(seq.value, (bytes, str))
            )
            if seq_like and not isinstance(count, ast.Constant):
                return "sequence repeat with computed count"
    return None


def run_budget(
    module, func: ast.FunctionDef | None, body: list[ast.stmt], resolve,
    prover=None,
) -> tuple[list[Site], list[Site], bool]:
    """(unbudgeted in-loop alloc sites, proved sites, performs-check flag).

    ``prover`` (from :func:`alloc_prover`) discharges an allocation
    whose size interval is provably ≤ a spec constant: the site moves
    to the *proved* list with its witness instead of propagating as
    unbudgeted — the REP020 upgrade over the purely must-flag REP017.
    """
    analysis = BudgetAnalysis(resolve)
    cfg = build_cfg(body)
    envs_in = solve(cfg, analysis)
    in_loop = _loop_stmt_ids(body)
    sites: list[Site] = []
    proved: list[Site] = []
    seen: set[tuple[str, int, str]] = set()
    performs_check = False
    for kind, node, env in replay_blocks(cfg, analysis, envs_in):
        if kind != "stmt":
            continue
        checked = env.get(_BUDGET_KEY) is True
        for expr in stmt_expressions(node):
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Call) and _is_budget_check(sub):
                    performs_check = True
                if checked:
                    continue
                if id(node) in in_loop:
                    detail = _alloc_site(sub)
                    if detail is not None:
                        line = getattr(sub, "lineno", node.lineno)
                        key = (module.relpath, line, detail)
                        if key in seen:
                            continue
                        seen.add(key)
                        witness = (
                            prover(sub, node) if prover is not None else None
                        )
                        if witness is not None:
                            proved.append(Site(
                                module.relpath, line, f"{detail}: {witness}"
                            ))
                        else:
                            sites.append(Site(module.relpath, line, detail))
                if isinstance(sub, ast.Call):
                    hit = resolve(sub)
                    if hit is not None:
                        for inherited in hit[1].unbudgeted_allocs:
                            key = (inherited.path, inherited.line, inherited.detail)
                            if key not in seen:
                                seen.add(key)
                                sites.append(inherited)
    return sites, proved, performs_check


# ---------------------------------------------------------------------------
# syntactic facts: module state, locks, error context


_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "remove", "discard",
    "pop", "popitem", "clear", "setdefault", "sort", "reverse",
})

_TRIVIAL_CALLS = frozenset({
    "len", "min", "max", "int", "float", "str", "bytes", "bool",
    "isinstance", "range", "getattr", "hasattr", "repr", "format",
    "abs", "ord", "chr", "tuple", "frozenset", "enumerate", "zip",
    "sorted", "id", "hash", "print", "sum", "any", "all", "next",
    "iter", "divmod", "round",
})


def _module_level_mutables(module) -> set[str]:
    """Names bound at module top level to (potentially) mutable objects."""
    names: set[str] = set()
    for node in module.tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        else:
            continue
        value = node.value
        if value is None:
            continue
        # Immutable scalars/tuples and read-only proxies are not race
        # targets; everything else (lists, dicts, class instances,
        # constructor calls) conservatively is.
        if isinstance(value, ast.Constant):
            continue
        if isinstance(value, ast.Tuple) and all(
            isinstance(e, ast.Constant) for e in value.elts
        ):
            continue
        if isinstance(value, ast.Call) and _call_name(value.func) in (
            "MappingProxyType", "frozenset", "namedtuple",
        ):
            continue
        for t in targets:
            if isinstance(t, ast.Name) and not (
                t.id.startswith("__") and t.id.endswith("__")
            ):
                names.add(t.id)
    return names


def _scan_module_state(
    info: FunctionInfo, mutables: set[str]
) -> list[Site]:
    """Sites where ``info`` mutates module-level state."""
    sites: list[Site] = []
    declared_global: set[str] = set()
    relpath = info.module.relpath
    for node in _own_nodes(info.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    for node in _own_nodes(info.node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            if node.id in declared_global:
                sites.append(Site(
                    relpath, node.lineno,
                    f"rebinds module global {node.id!r}",
                ))
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            recv = node.func.value
            if (
                isinstance(recv, ast.Name)
                and recv.id in mutables
                and node.func.attr in _MUTATING_METHODS
            ):
                sites.append(Site(
                    relpath, node.lineno,
                    f"mutates module-level {recv.id!r} via .{node.func.attr}()",
                ))
        elif isinstance(node, (ast.Subscript,)) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            target = node.value
            if isinstance(target, ast.Name) and target.id in mutables:
                sites.append(Site(
                    relpath, node.lineno,
                    f"writes into module-level {target.id!r} by subscript",
                ))
        elif isinstance(node, ast.AugAssign):
            target = node.target
            if isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ) and target.value.id in mutables:
                sites.append(Site(
                    relpath, node.lineno,
                    f"writes into module-level {target.value.id!r} by subscript",
                ))
    return sites


def _is_lockish(expr: ast.expr) -> bool:
    """Names/attrs that look like a non-reentrant lock (RLock exempt)."""
    name = ""
    if isinstance(expr, ast.Name):
        name = expr.id
    elif isinstance(expr, ast.Attribute):
        name = expr.attr
    elif isinstance(expr, ast.Call):
        ctor = _call_name(expr.func)
        return ctor == "Lock"
    lowered = name.lower()
    return "lock" in lowered and "rlock" not in lowered


def _scan_lock_across_call(info: FunctionInfo) -> list[Site]:
    sites: list[Site] = []
    relpath = info.module.relpath
    for node in _own_nodes(info.node):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        if not any(_is_lockish(item.context_expr) for item in node.items):
            continue
        # First non-trivial call inside the locked region (nested defs
        # excluded): one site per ``with`` is enough evidence.
        stack: list[ast.AST] = list(node.body)
        while stack:
            inner = stack.pop(0)
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(inner, ast.Call):
                name = _call_name(inner.func)
                if name not in _TRIVIAL_CALLS:
                    sites.append(Site(
                        relpath, inner.lineno,
                        f"calls {name or '<expr>'}() while holding a "
                        "non-reentrant lock",
                    ))
                    break
            stack.extend(ast.iter_child_nodes(inner))
    return sites


def _raises_with_context(info: FunctionInfo) -> bool:
    for node in _own_nodes(info.node):
        if isinstance(node, ast.Raise) and isinstance(node.exc, ast.Call):
            kwargs = {kw.arg for kw in node.exc.keywords if kw.arg}
            if kwargs & {"stage", "bit_offset", "chunk_index"}:
                return True
    return False


def _own_nodes(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Every node of ``func`` excluding nested def/class bodies."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# bottom-up driver


def _summarize(
    project: Project,
    info: FunctionInfo,
    summaries: dict[str, FunctionSummary],
    mutables_cache: dict[str, set[str]],
    module_envs: dict[str, Env],
) -> FunctionSummary:
    module = info.module
    resolve = _call_resolver(project, summaries, module, info, info.node.body)
    param_names = tuple(a.arg for a in info.params())

    return_unit = _return_unit(info, resolve)
    events, return_labels, fresh_return = run_taint(info.node, info.node.body, resolve)
    params = set(param_names)
    sink_params: set[str] = set()
    for event in events:
        sink_params |= event.labels & params
    through = {lbl for lbl in return_labels if lbl in params}

    # One interval solve per unit feeds both the return-interval fact
    # and the allocation-size prover (REP020).
    if module.name not in module_envs:
        module_envs[module.name] = module_constant_env(module.tree)
    irun = run_intervals(
        info.node,
        info.node.body,
        module_env=module_envs[module.name],
        resolve_interval=_interval_of_call(resolve),
    )
    ret_iv = irun.return_interval()
    return_interval = None
    if ret_iv is not None and not ret_iv.is_empty and (
        ret_iv.lo is not None or ret_iv.hi is not None
    ):
        return_interval = (ret_iv.lo, ret_iv.hi)

    allocs, proved, performs_check = run_budget(
        module, info.node, info.node.body, resolve, prover=alloc_prover(irun)
    )

    if module.name not in mutables_cache:
        mutables_cache[module.name] = _module_level_mutables(module)
    mutations = _scan_module_state(info, mutables_cache[module.name])

    graph = project.call_graph()
    calls = tuple(sorted({s.callee for s in graph.callees_of(info.qualname)}))

    return FunctionSummary(
        qualname=info.qualname,
        param_names=param_names,
        param_units=_param_units(info),
        return_unit=return_unit.value,
        taint_sink_params=tuple(sorted(sink_params)),
        taint_through_params=tuple(sorted(through)),
        returns_fresh_taint=fresh_return,
        mutates_module_state=tuple(mutations),
        lock_across_call=tuple(_scan_lock_across_call(info)),
        unbudgeted_allocs=tuple(allocs),
        performs_budget_check=performs_check,
        raises_with_context=_raises_with_context(info),
        calls=calls,
        return_interval=return_interval,
        proved_allocs=tuple(proved),
    )


def compute_summaries(project: Project) -> dict[str, FunctionSummary]:
    """Summaries for every project function, bottom-up over SCCs.

    Deterministic: SCC order is fixed by the (sorted) call graph, and
    each SCC is iterated to a fixpoint before its callers are visited,
    so re-running over identical sources yields identical summaries.
    """
    summaries: dict[str, FunctionSummary] = {}
    mutables_cache: dict[str, set[str]] = {}
    module_envs: dict[str, Env] = {}
    graph = project.call_graph()
    for scc in project.scc_order():
        members = [q for q in sorted(scc) if q in project.functions]
        if not members:
            continue
        # A singleton SCC with no self-edge cannot refine its own facts
        # by re-running — its callees are already final — so one round
        # suffices (halves the cost of the common non-recursive case).
        recursive = len(members) > 1 or any(
            site.callee == members[0] for site in graph.callees_of(members[0])
        )
        rounds = _STABILIZE_LIMIT if recursive else 1
        for _round in range(rounds):
            changed = False
            for qualname in members:
                info = project.functions[qualname]
                new = _summarize(
                    project, info, summaries, mutables_cache, module_envs
                )
                old = summaries.get(qualname)
                if old is None or old.key_facts() != new.key_facts():
                    changed = True
                summaries[qualname] = new
            if not changed:
                break
    return summaries


# ---------------------------------------------------------------------------
# the summary store (CI cache)


class SummaryStore:
    """Load/save a computed summary table keyed on the project hash.

    The key covers *every* module source in the run: summaries encode
    cross-module facts, so a partial reuse would be unsound.  A miss
    simply recomputes — the store is a CI accelerator, never a source
    of truth.
    """

    #: v2: summaries gained ``return_interval`` + ``proved_allocs``
    #: (the interval domain); v1 caches are recomputed, not migrated.
    VERSION = 2

    def __init__(self, path: Path) -> None:
        self.path = Path(path)

    def load(self, project_hash: str) -> dict[str, FunctionSummary] | None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if (
            raw.get("version") != self.VERSION
            or raw.get("project_hash") != project_hash
        ):
            return None
        try:
            return {
                q: FunctionSummary.from_dict(d)
                for q, d in raw["summaries"].items()
            }
        except (KeyError, TypeError):
            return None

    def save(
        self, project_hash: str, summaries: dict[str, FunctionSummary]
    ) -> None:
        payload = {
            "version": self.VERSION,
            "project_hash": project_hash,
            "summaries": {
                q: summaries[q].to_dict() for q in sorted(summaries)
            },
        }
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True), encoding="utf-8")
        tmp.replace(self.path)
