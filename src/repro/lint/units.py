"""Units-of-measure lattice for stream offsets: bits vs. bytes.

The abstract domain is the four-point lattice from the design note in
``docs/STATIC_ANALYSIS.md``::

            BIT_OR_BYTE          (conflicting evidence — never reported)
              /      \\
            BIT      BYTE        (definite unit)
              \\      /
              UNKNOWN            (no evidence / unitless)

Three evidence sources seed the domain, in decreasing priority:

1. **Dataflow**: the value a variable was assigned (propagated by the
   solver) — ``x = reader.tell_bits()`` makes ``x`` a BIT wherever that
   assignment reaches.
2. **Annotations**: parameters and variables annotated with the
   ``repro.units`` NewTypes ``BitOffset`` / ``ByteOffset``.
3. **Names**: identifier tokens — ``start_bit``, ``nbits``,
   ``total_bits`` are bits; ``byte_offset``, ``nbytes`` are bytes.

Conversion idioms translate between the units (RFC 1951 packing):
``x * 8`` / ``x << 3`` lift bytes to bits, ``x // 8`` / ``x >> 3``
drop bits to bytes, ``x & 7`` / ``x % 8`` extract the intra-byte bit
remainder.  Converting a value that is *already* in the target unit
yields BIT_OR_BYTE — a double conversion is itself suspicious, but the
lattice stays silent rather than guessing.
"""

from __future__ import annotations

import ast
import enum

from repro.lint.dataflow import Env

__all__ = [
    "Unit",
    "join_units",
    "unit_of_name",
    "unit_from_annotation",
    "UnitEvaluator",
    "BYTE_BUFFER_NAMES",
    "is_bytes_annotation",
]


class Unit(enum.Enum):
    UNKNOWN = "unknown"
    BIT = "bit"
    BYTE = "byte"
    BIT_OR_BYTE = "bit_or_byte"


def join_units(a: Unit | None, b: Unit | None) -> Unit | None:
    """Lattice join; ``None`` (no binding) is the identity."""
    if a is None or a is Unit.UNKNOWN:
        return b
    if b is None or b is Unit.UNKNOWN:
        return a
    if a is b:
        return a
    return Unit.BIT_OR_BYTE


# Identifier tokens that pin a unit.  Matched against the
# underscore-split tokens of a (stripped) identifier, so ``start_bit``,
# ``_total_bits`` and ``nbits`` all classify while ``bitmap`` or
# ``orbit`` never do.
_BIT_TOKENS = {"bit", "bits", "nbits", "bitcount", "bitpos"}
_BYTE_TOKENS = {"byte", "bytes", "nbytes", "bytecount", "bytepos"}

#: Names conventionally bound to byte buffers in this codebase; used by
#: REP009's subscript/len sinks (alongside bytes-ish annotations).
BYTE_BUFFER_NAMES = {
    "data", "buf", "buffer", "payload", "blob", "raw",
    "gz_data", "compressed", "_data", "out_bytes",
}


def unit_of_name(name: str) -> Unit:
    """Unit evidence carried by an identifier itself."""
    tokens = [t for t in name.strip("_").lower().split("_") if t]
    has_bit = any(t in _BIT_TOKENS for t in tokens)
    has_byte = any(t in _BYTE_TOKENS for t in tokens)
    if has_bit and not has_byte:
        return Unit.BIT
    if has_byte and not has_bit:
        return Unit.BYTE
    return Unit.UNKNOWN


def _annotation_name(node: ast.expr | None) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value  # string annotation, e.g. "BitOffset"
    return ""


def unit_from_annotation(annotation: ast.expr | None) -> Unit:
    """Unit pinned by a ``BitOffset``/``ByteOffset`` annotation."""
    name = _annotation_name(annotation)
    if name == "BitOffset":
        return Unit.BIT
    if name == "ByteOffset":
        return Unit.BYTE
    return Unit.UNKNOWN


def is_bytes_annotation(annotation: ast.expr | None) -> bool:
    """True for annotations naming a byte-buffer type."""
    name = _annotation_name(annotation)
    if name in ("bytes", "bytearray", "memoryview"):
        return True
    # ``bytes | bytearray`` style unions.
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return is_bytes_annotation(annotation.left) or is_bytes_annotation(
            annotation.right
        )
    return False


def _const_value(node: ast.expr):
    if isinstance(node, ast.Constant):
        return node.value
    return None


#: Callables whose *result* has a known unit (matched on the trailing
#: name, so both ``tell_bits()`` and ``reader.tell_bits()`` classify).
_BIT_RESULT_CALLS = {
    "tell_bits", "bits_remaining", "bytes_to_bits", "intra_byte_bits",
    "BitOffset",
}
#: ``tell`` is the stdlib file-position idiom (bytes); the bit-domain
#: reader deliberately names its counterpart ``tell_bits``.
_BYTE_RESULT_CALLS = {"bits_to_bytes", "ceil_bits_to_bytes", "ByteOffset", "tell"}


class UnitEvaluator:
    """Abstract evaluator: ``ast.expr`` -> :class:`Unit`.

    Precedence per the module docstring: a dataflow binding in ``env``
    wins, then the expression's own structure (conversions, known
    calls), then the identifier's name tokens.
    """

    def __init__(self, env: Env | None = None) -> None:
        self.env = env if env is not None else {}

    def unit_of(self, node: ast.expr) -> Unit:
        if isinstance(node, ast.Name):
            bound = self.env.get(node.id)
            if isinstance(bound, Unit) and bound is not Unit.UNKNOWN:
                return bound
            return unit_of_name(node.id)
        if isinstance(node, ast.Attribute):
            return unit_of_name(node.attr)
        if isinstance(node, ast.Constant):
            return Unit.UNKNOWN
        if isinstance(node, ast.UnaryOp):
            return self.unit_of(node.operand)
        if isinstance(node, ast.BinOp):
            return self._unit_of_binop(node)
        if isinstance(node, ast.IfExp):
            return join_units(self.unit_of(node.body), self.unit_of(node.orelse)) or Unit.UNKNOWN
        if isinstance(node, ast.Call):
            return self._unit_of_call(node)
        if isinstance(node, ast.Subscript):
            # An element of a collection named for its unit (e.g.
            # ``block_start_bits[i]``) carries that unit.
            if isinstance(node.value, ast.Name):
                return unit_of_name(node.value.id)
            if isinstance(node.value, ast.Attribute):
                return unit_of_name(node.value.attr)
            return Unit.UNKNOWN
        if isinstance(node, ast.NamedExpr):
            return self.unit_of(node.value)
        return Unit.UNKNOWN

    # -- helpers -------------------------------------------------------------

    def _unit_of_binop(self, node: ast.BinOp) -> Unit:
        left, right, op = node.left, node.right, node.op
        # byte -> bit: ``x * 8`` / ``8 * x`` / ``x << 3``
        if isinstance(op, ast.Mult) and 8 in (_const_value(left), _const_value(right)):
            operand = right if _const_value(left) == 8 else left
            src = self.unit_of(operand)
            return Unit.BIT_OR_BYTE if src is Unit.BIT else Unit.BIT
        if isinstance(op, ast.LShift) and _const_value(right) == 3:
            src = self.unit_of(left)
            return Unit.BIT_OR_BYTE if src is Unit.BIT else Unit.BIT
        # bit -> byte: ``x // 8`` / ``x >> 3``
        if isinstance(op, ast.FloorDiv) and _const_value(right) == 8:
            src = self.unit_of(left)
            return Unit.BIT_OR_BYTE if src is Unit.BYTE else Unit.BYTE
        if isinstance(op, ast.RShift) and _const_value(right) == 3:
            src = self.unit_of(left)
            return Unit.BIT_OR_BYTE if src is Unit.BYTE else Unit.BYTE
        # intra-byte remainder: ``x & 7`` / ``x % 8`` keeps bit units.
        if isinstance(op, ast.BitAnd) and 7 in (_const_value(left), _const_value(right)):
            operand = right if _const_value(left) == 7 else left
            return Unit.BIT if self.unit_of(operand) is Unit.BIT else Unit.UNKNOWN
        if isinstance(op, ast.Mod) and _const_value(right) == 8:
            return Unit.BIT if self.unit_of(left) is Unit.BIT else Unit.UNKNOWN
        # Offset arithmetic: addition/subtraction preserves the unit;
        # a unitless operand (constants, counts) is absorbed.
        if isinstance(op, (ast.Add, ast.Sub)):
            return join_units(self.unit_of(left), self.unit_of(right)) or Unit.UNKNOWN
        return Unit.UNKNOWN

    def _unit_of_call(self, node: ast.Call) -> Unit:
        name = ""
        if isinstance(node.func, ast.Name):
            name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            name = node.func.attr
        if name in _BIT_RESULT_CALLS:
            return Unit.BIT
        if name in _BYTE_RESULT_CALLS:
            return Unit.BYTE
        if name in ("min", "max") and node.args:
            unit: Unit | None = Unit.UNKNOWN
            for arg in node.args:
                unit = join_units(unit, self.unit_of(arg))
            return unit or Unit.UNKNOWN
        if name in ("int", "abs") and len(node.args) == 1:
            return self.unit_of(node.args[0])
        return Unit.UNKNOWN
