"""Analytic models of gzip compression of DNA (Section V of the paper)."""

from repro.models.matchprob import (
    all_positions_match_probability,
    log10_miss_probability,
    match_probability,
    match_probability_poisson,
)
from repro.models.nongreedy import (
    PAPER_MEAN_MATCH_LENGTH,
    expected_literals,
    literal_probability,
    literal_rate,
)
from repro.models.propagation import (
    determined_fraction,
    undetermined_fraction,
    undetermined_series,
    windows_until_determined,
)

__all__ = [
    "match_probability",
    "match_probability_poisson",
    "all_positions_match_probability",
    "log10_miss_probability",
    "literal_probability",
    "expected_literals",
    "literal_rate",
    "PAPER_MEAN_MATCH_LENGTH",
    "determined_fraction",
    "undetermined_fraction",
    "undetermined_series",
    "windows_until_determined",
]
