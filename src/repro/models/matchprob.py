"""Match-probability model for random DNA (Section V-A).

Two windows of random DNA of length ``W``; the second is compressed
using only matches into the first.  Under the independence assumption,
the probability that a match of length ``k`` exists at a given position
of the second block is::

    p_k = 1 - (1 - 4^-k)^(W-k+1)  ~=  1 - exp(-4^-k (W-k+1))

and the probability that *every* position has a length-``k`` match is
``p_k^(W-k+1)``.  For gzip's parameters (k=3, W=2^15) both are
essentially 1 — the paper's argument for why greedy parsing of random
DNA emits no literals after the first window.
"""

from __future__ import annotations

import math

from repro.deflate.constants import WINDOW_SIZE

__all__ = [
    "match_probability",
    "match_probability_poisson",
    "all_positions_match_probability",
    "log10_miss_probability",
]


def match_probability(k: int, W: int = WINDOW_SIZE, alphabet: int = 4) -> float:
    """Exact ``p_k``: probability of a length-``k`` match at one position."""
    if k < 0:
        raise ValueError("k must be non-negative")
    positions = W - k + 1
    if positions <= 0:
        return 0.0
    return 1.0 - (1.0 - alphabet ** (-k)) ** positions


def match_probability_poisson(k: int, W: int = WINDOW_SIZE, alphabet: int = 4) -> float:
    """Poisson approximation ``1 - exp(-alphabet^-k (W-k+1))``."""
    positions = W - k + 1
    if positions <= 0:
        return 0.0
    return 1.0 - math.exp(-(alphabet ** (-k)) * positions)


def all_positions_match_probability(k: int, W: int = WINDOW_SIZE, alphabet: int = 4) -> float:
    """Probability every position in the second block has a k-match."""
    positions = W - k + 1
    if positions <= 0:
        return 0.0
    return match_probability(k, W, alphabet) ** positions


def log10_miss_probability(k: int, W: int = WINDOW_SIZE, alphabet: int = 4) -> float:
    """``log10(1 - p_k)`` computed in log space (p_k may be 1-1e-225).

    The paper quotes ``p_3 >= 1 - 10^-225`` for W = 2^15; this function
    verifies such statements without underflow.
    """
    positions = W - k + 1
    if positions <= 0:
        return 0.0
    # log10((1 - a^-k)^positions) = positions * log10(1 - a^-k)
    return positions * math.log10(1.0 - alphabet ** (-k))
