"""Monte-Carlo verification of the Section V analytic formulas.

The paper calls its ``E_l`` formula "an experimentally-verified
approximation"; these simulators re-derive the quantities from first
principles — by drawing random DNA windows and literally checking for
matches — so the analytic models in :mod:`repro.models` can be tested
against an independent estimate rather than against themselves.
"""

from __future__ import annotations

import numpy as np

from repro.deflate.constants import WINDOW_SIZE

__all__ = ["simulate_match_probability", "simulate_literal_probability", "simulate_decay"]


def _pack_kmers(arr: np.ndarray, k: int) -> np.ndarray:
    """2-bit pack every k-mer of a base-4 array into one integer."""
    if len(arr) < k:
        return np.zeros(0, dtype=np.int64)
    out = np.zeros(len(arr) - k + 1, dtype=np.int64)
    for j in range(k):
        out = (out << 2) | arr[j : j + len(out)].astype(np.int64)
    return out


def simulate_match_probability(
    k: int,
    W: int = WINDOW_SIZE,
    trials: int = 200,
    seed: int = 0,
) -> float:
    """Estimate p_k: fraction of positions with a length-k match.

    Draws a reference window plus probe positions of random DNA and
    checks k-mer membership — the exact event of Section V-A's model.
    """
    rng = np.random.default_rng(seed)
    hits = 0
    for _ in range(trials):
        window = rng.integers(0, 4, size=W)
        probe = rng.integers(0, 4, size=k)
        table = set(_pack_kmers(window, k).tolist())
        key = 0
        for b in probe:
            key = (key << 2) | int(b)
        hits += key in table
    return hits / trials


def simulate_literal_probability(
    W: int = WINDOW_SIZE,
    trials: int = 400,
    max_k: int = 24,
    seed: int = 0,
) -> float:
    """Estimate p_l: P(non-greedy parsing emits a literal here).

    Event (Algorithm 3): the maximal match length at position i is
    some k >= 3 and position i+1 has a match of length >= k+1.
    Estimated by drawing one reference window and one probe string per
    trial and measuring both maximal match lengths directly.
    """
    rng = np.random.default_rng(seed)
    lit = 0
    for _ in range(trials):
        window = rng.integers(0, 4, size=W)
        probe = rng.integers(0, 4, size=max_k + 2)
        # Maximal match length of probe[0:] and probe[1:] against the window.
        lens = []
        for start in (0, 1):
            best = 0
            for k in range(3, max_k + 1):
                kmers = set(_pack_kmers(window, k).tolist())
                key = 0
                for b in probe[start : start + k]:
                    key = (key << 2) | int(b)
                if key in kmers:
                    best = k
                else:
                    break
            lens.append(best)
        l0, l1 = lens
        if l0 >= 3 and l1 > l0:
            lit += 1
    return lit / trials


def simulate_decay(
    L1: float,
    n_windows: int,
    W: int = 4096,
    seed: int = 0,
) -> np.ndarray:
    """Simulate the §V-C propagation process directly.

    Window i+1 takes E_l = L1*W fresh literal positions; the remainder
    samples positions uniformly from window i (determined or not).
    Returns the undetermined fraction per window — an independent check
    of the closed form ``(1-L1)^i``.
    """
    rng = np.random.default_rng(seed)
    determined = np.zeros(W, dtype=bool)
    fresh = max(1, int(round(L1 * W)))
    out = []
    for _ in range(n_windows):
        nxt = determined[rng.integers(0, W, size=W)]
        idx = rng.choice(W, size=fresh, replace=False)
        nxt[idx] = True
        determined = nxt
        out.append(1.0 - determined.mean())
    return np.asarray(out)
