"""Literal-emission model under non-greedy parsing (Section V-B/C).

Non-greedy (lazy) parsing emits a literal at position ``i`` whenever the
longest match at ``i+1`` is longer than the longest match at ``i``
(Algorithm 3).  With the independence assumption of
:mod:`repro.models.matchprob`, the probability of a literal at a given
position is::

    p_l = sum_{k>=3} p_k (1 - p_{k+1}) p_{k+1}

(the current position's maximal match has length exactly ``k`` and the
next position has a match of length >= k+1).  The expected number of
literals per window, accounting for only ~1/(l_a+1) positions being
available for matching plus the literal non-greedy parsing inserts, is::

    E_l = p_l * W / (l_a + 2)

which for W = 2^15 and the experimentally observed l_a = 7.6 gives
E_l ~= 1283, i.e. a literal rate L_1 = E_l / W of about 4 % — the seed
of the propagation model in :mod:`repro.models.propagation`.
"""

from __future__ import annotations

from repro.deflate.constants import WINDOW_SIZE
from repro.models.matchprob import match_probability

__all__ = [
    "literal_probability",
    "expected_literals",
    "literal_rate",
    "PAPER_MEAN_MATCH_LENGTH",
]

#: The paper's experimentally determined average match length on
#: gzip-default-compressed random DNA.
PAPER_MEAN_MATCH_LENGTH = 7.6


def literal_probability(W: int = WINDOW_SIZE, alphabet: int = 4, max_k: int = 64) -> float:
    """``p_l``: probability non-greedy parsing emits a literal here.

    The series converges extremely fast (p_k collapses to ~0 within a
    few terms past log_4 W); ``max_k`` = 64 is far beyond saturation.
    """
    total = 0.0
    for k in range(3, max_k + 1):
        pk = match_probability(k, W, alphabet)
        pk1 = match_probability(k + 1, W, alphabet)
        total += pk * (1.0 - pk1) * pk1
    return total


def expected_literals(
    W: int = WINDOW_SIZE,
    mean_match_length: float = PAPER_MEAN_MATCH_LENGTH,
    alphabet: int = 4,
) -> float:
    """``E_l = p_l W / (l_a + 2)``: literals per window of random DNA."""
    return literal_probability(W, alphabet) * W / (mean_match_length + 2.0)


def literal_rate(
    W: int = WINDOW_SIZE,
    mean_match_length: float = PAPER_MEAN_MATCH_LENGTH,
    alphabet: int = 4,
) -> float:
    """``L_1 = E_l / W``: the fraction of the block that is literals."""
    return expected_literals(W, mean_match_length, alphabet) / W
