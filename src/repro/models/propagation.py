"""Propagation of determined characters across blocks (Section V-C).

With ``L_1`` the literal rate of one window (from
:mod:`repro.models.nongreedy`) and the assumption that every subsequent
window adds ``E_l`` fresh literals while the rest is sampled from the
previous window, the fraction ``L_i`` of *determined* characters (i.e.
literals or copies of literals) follows the recurrence::

    L_{i+1} = (E_l + (W - E_l) L_i) / W = L_1 + (1 - L_1) L_i

whose closed form is ``L_i = 1 - (1 - L_1)^i``: undetermined characters
decay geometrically.  The "model" line in Figure 2 plots
``1 - L_i = (1 - L_1)^i``.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "determined_fraction",
    "undetermined_fraction",
    "undetermined_series",
    "windows_until_determined",
]


def determined_fraction(i: int, L1: float) -> float:
    """``L_i = 1 - (1 - L_1)^i`` for window index ``i >= 1``."""
    if i < 1:
        raise ValueError("window index starts at 1")
    return 1.0 - (1.0 - L1) ** i


def undetermined_fraction(i: int, L1: float) -> float:
    """``1 - L_i``: undetermined fraction in window ``i``."""
    return (1.0 - L1) ** i


def undetermined_series(n_windows: int, L1: float) -> np.ndarray:
    """Model series ``[(1-L1)^1, ..., (1-L1)^n]`` (Figure 2's model line)."""
    i = np.arange(1, n_windows + 1, dtype=np.float64)
    return (1.0 - L1) ** i


def windows_until_determined(L1: float, threshold: float = 0.01) -> int:
    """Smallest window index whose undetermined fraction < ``threshold``.

    E.g. with the paper's L_1 = 4 %, undetermined characters drop below
    1 % after ~113 windows — matching the ~150-window vanishing point
    observed in Figure 2 (top).
    """
    if not 0.0 < L1 < 1.0:
        raise ValueError("L1 must be in (0, 1)")
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    return max(1, math.ceil(math.log(threshold) / math.log(1.0 - L1)))
