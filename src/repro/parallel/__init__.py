"""Execution backends (serial / thread / process) for the decompressor."""

from repro.parallel.executor import (
    Executor,
    Outcome,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)

__all__ = [
    "Executor",
    "Outcome",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
]
