"""Execution backends (serial / thread / process) for the decompressor."""

from repro.parallel.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
]
