"""Execution backends (serial / thread / process) for the decompressor,

plus the supervision layer (per-task deadlines, hung-worker recovery,
bounded seeded retries) that makes them safe to run unattended.
"""

from repro.parallel.executor import (
    EXECUTOR_KINDS,
    Executor,
    Outcome,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.parallel.supervision import (
    SupervisionPolicy,
    is_execution_fault,
    supervised_map_outcomes,
)

__all__ = [
    "Executor",
    "Outcome",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
    "EXECUTOR_KINDS",
    "SupervisionPolicy",
    "supervised_map_outcomes",
    "is_execution_fault",
]
