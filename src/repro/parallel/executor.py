"""Execution backends for the parallel decompressor.

Three interchangeable strategies behind one ``map``-shaped interface:

* :class:`SerialExecutor` — reference implementation, no concurrency;
* :class:`ThreadExecutor` — ``threading``-based; on CPython the GIL
  serialises the pure-Python decode work, so this demonstrates the
  *algorithm's* concurrency, not wall-clock scaling (see DESIGN.md);
* :class:`ProcessExecutor` — ``multiprocessing``-based; truly parallel
  on multi-core machines (this reproduction machine has a single core,
  so speedups are modelled by :mod:`repro.perf` instead).

Work functions submitted to :class:`ProcessExecutor` must be picklable
(module-level functions).

Supervision
-----------

:meth:`Executor.map_outcomes` optionally takes a
:class:`~repro.parallel.supervision.SupervisionPolicy`: per-task
deadlines, hung-worker detection (a process pool with a stuck worker is
killed and rebuilt), and bounded seeded-backoff retries for *execution*
faults.  Without a policy the unsupervised fast path runs unchanged.
"""

from __future__ import annotations

import os
import time
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

__all__ = [
    "Executor",
    "Outcome",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
    "EXECUTOR_KINDS",
]

#: Valid ``kind`` values for :func:`make_executor`.
EXECUTOR_KINDS = ("serial", "thread", "process")


@dataclass
class Outcome:
    """Result of one item of a fault-tolerant map.

    Exactly one of ``value`` / ``error`` is meaningful: ``error`` is
    ``None`` for a successful item and the raised exception otherwise.
    ``retries`` counts *additional* attempts beyond the first (0 for an
    unsupervised or first-try run) and ``wall_time`` is the in-worker
    seconds of the attempt that produced this outcome.
    """

    index: int
    value: object = None
    error: BaseException | None = None
    retries: int = 0
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


def _outcome_call(packed):
    """Run one item, capturing any exception instead of raising.

    Module-level so :class:`ProcessExecutor` can pickle it; the captured
    exception travels back pickled (``ReproError`` preserves its
    structured context across that boundary via ``__reduce__``).
    Returns ``(ok, value_or_error, wall_seconds)``.
    """
    fn, item = packed
    t0 = time.perf_counter()
    try:
        value = fn(item)
        return True, value, time.perf_counter() - t0
    except Exception as exc:
        return False, exc, time.perf_counter() - t0


class Executor(ABC):
    """Minimal ordered-map execution interface."""

    @abstractmethod
    def map(self, fn, items: list) -> list:
        """Apply ``fn`` to every item, returning results in input order."""

    def map_outcomes(self, fn, items: list, policy=None) -> list[Outcome]:
        """Apply ``fn`` to every item, capturing per-item exceptions.

        Unlike :meth:`map`, one failing item does not abort the pool or
        discard the other items' finished work: every item produces an
        :class:`Outcome`, in input order.  This is the engine hook for
        graceful degradation (``pugz_decompress(..., on_error="recover")``).

        ``policy`` (a :class:`~repro.parallel.supervision.SupervisionPolicy`)
        additionally enforces per-task deadlines and retries execution
        faults with seeded exponential backoff — see
        :mod:`repro.parallel.supervision`.
        """
        if policy is not None and policy.active:
            from repro.parallel.supervision import supervised_map_outcomes

            return supervised_map_outcomes(self, fn, items, policy)
        packed = self.map(_outcome_call, [(fn, item) for item in items])
        return [
            Outcome(index=i, value=v, wall_time=dt)
            if ok
            else Outcome(index=i, error=v, wall_time=dt)
            for i, (ok, v, dt) in enumerate(packed)
        ]

    @property
    @abstractmethod
    def parallelism(self) -> int:
        """Number of workers this executor can run concurrently."""


class SerialExecutor(Executor):
    """Run everything inline, in order.

    Having no worker to preempt, it cannot interrupt a task that
    overruns a supervision deadline; deadlines are checked *between*
    tasks only (retries and backoff still apply — see
    :mod:`repro.parallel.supervision`).
    """

    def map(self, fn, items: list) -> list:
        return [fn(item) for item in items]

    @property
    def parallelism(self) -> int:
        return 1


class ThreadExecutor(Executor):
    """Thread-pool execution (GIL-bound for pure-Python work)."""

    def __init__(self, n_workers: int | None = None) -> None:
        self.n_workers = n_workers or (os.cpu_count() or 1)

    def map(self, fn, items: list) -> list:
        if len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
            return list(pool.map(fn, items))

    @property
    def parallelism(self) -> int:
        return self.n_workers


class ProcessExecutor(Executor):
    """Process-pool execution (true parallelism on multi-core hosts)."""

    def __init__(self, n_workers: int | None = None) -> None:
        self.n_workers = n_workers or (os.cpu_count() or 1)

    def map(self, fn, items: list) -> list:
        if len(items) <= 1:
            return [fn(item) for item in items]
        with ProcessPoolExecutor(max_workers=self.n_workers) as pool:
            return list(pool.map(fn, items))

    @property
    def parallelism(self) -> int:
        return self.n_workers


def make_executor(kind: str = "serial", n_workers: int | None = None) -> Executor:
    """Build an executor from a name: ``serial``, ``thread`` or ``process``.

    ``n_workers`` must be ``None`` (use the CPU count) or >= 1;
    :class:`SerialExecutor` accepts but ignores it (it always runs one
    task at a time).  Unknown kinds and non-positive worker counts
    raise ``ValueError`` with the offending value spelled out.
    """
    if n_workers is not None and n_workers < 1:
        raise ValueError(
            f"n_workers must be >= 1 (or None for the CPU count), got {n_workers}"
        )
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(n_workers)
    if kind == "process":
        return ProcessExecutor(n_workers)
    raise ValueError(
        f"unknown executor kind {kind!r}; valid kinds: {', '.join(EXECUTOR_KINDS)}"
    )
