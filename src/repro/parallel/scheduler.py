"""Chunk-to-worker scheduling and makespan computation.

Used both by the real decompressor (ordering work across a bounded
worker pool) and by the performance simulator (predicting the makespan
of a pass given per-chunk costs).
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = ["round_robin_makespan", "lpt_makespan", "greedy_assign"]


def greedy_assign(costs, n_workers: int) -> list[list[int]]:
    """LPT (longest processing time first) assignment of chunks to workers.

    Returns per-worker lists of chunk indices.  LPT is a 4/3-approx of
    optimal makespan and matches how a work-stealing pool behaves on
    sorted work.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    costs = list(costs)
    order = sorted(range(len(costs)), key=lambda i: -costs[i])
    heap = [(0.0, w) for w in range(n_workers)]
    heapq.heapify(heap)
    assignment: list[list[int]] = [[] for _ in range(n_workers)]
    for i in order:
        load, w = heapq.heappop(heap)
        assignment[w].append(i)
        heapq.heappush(heap, (load + costs[i], w))
    return assignment


def lpt_makespan(costs, n_workers: int) -> float:
    """Makespan of the LPT assignment."""
    assignment = greedy_assign(costs, n_workers)
    costs = np.asarray(list(costs), dtype=np.float64)
    return max(
        (float(costs[idx].sum()) if idx else 0.0) for idx in assignment
    )


def round_robin_makespan(costs, n_workers: int) -> float:
    """Makespan when chunk ``i`` goes to worker ``i mod n`` (static split).

    This is pugz's actual schedule: one chunk per thread (n_chunks ==
    n_threads), so with equal chunks both schedules coincide.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    loads = [0.0] * n_workers
    for i, c in enumerate(costs):
        loads[i % n_workers] += c
    return max(loads)
