"""Supervised execution: deadlines, hung-worker recovery, bounded retry.

The two-pass decompressor's first pass farms chunks out to a pool; in
production that pool is a liability surface of its own, independent of
the input bytes:

* a worker can *hang* (pathological input, runaway loop, stuck I/O) —
  without a deadline, ``pugz_decompress`` blocks forever;
* a worker can *die* (OOM kill, segfaulting C extension, ``os._exit``)
  — a bare ``pool.map`` raises ``BrokenProcessPool`` and all finished
  work is lost;
* both faults are frequently transient, so a bounded retry turns them
  into a latency blip instead of a failed request.

This module supplies the policy and the supervised map loop behind
:meth:`repro.parallel.executor.Executor.map_outcomes`.  Semantics:

* **Deadlines** bound the wait for each task's result.  On expiry the
  pool is torn down (process workers are terminated — the only way to
  stop a hung CPU-bound task; runaway threads are abandoned, since
  threads cannot be killed), surviving results are harvested, and a
  fresh pool takes over.  :class:`SerialExecutor` runs tasks inline
  and therefore cannot preempt one; for it, deadlines only bound
  retries, never a running task.
* **Retries** apply to *execution* faults only: deadline expiries,
  broken pools, and non-:class:`~repro.errors.ReproError` exceptions.
  Data errors (``DeflateError`` and friends) are deterministic — the
  same bytes fail the same way — so retrying them is pure waste; they
  pass through for the degradation ladder in :mod:`repro.core.pugz`.
* **Backoff** between retries is exponential with *seeded* jitter
  (``SupervisionPolicy.seed``), so campaign runs replay exactly.

Every loop here is attempt-bounded (see lint rule REP013): the map loop
spends from a budget of ``n_tasks * (max_retries + 1)`` submissions, so
no fault pattern can make it spin forever.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import BrokenExecutor, CancelledError, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass

from repro.errors import DeadlineExceededError, ReproError, WorkerCrashError
from repro.parallel.executor import (
    Executor,
    Outcome,
    ProcessExecutor,
    ThreadExecutor,
    _outcome_call,
)

__all__ = [
    "SupervisionPolicy",
    "supervised_map_outcomes",
    "is_execution_fault",
]


@dataclass(frozen=True)
class SupervisionPolicy:
    """How to supervise one fault-tolerant map.

    Parameters
    ----------
    deadline_s:
        Per-task result deadline in seconds (``None`` disables).
    max_retries:
        Additional attempts per task after the first, for execution
        faults only (0 disables retry).
    backoff_base_s / backoff_cap_s:
        First retry waits ~``backoff_base_s``, doubling per further
        attempt, jittered and capped at ``backoff_cap_s``.
    seed:
        Seed for the backoff jitter — supervision is deterministic
        given (seed, task index, attempt number).
    """

    deadline_s: float | None = None
    max_retries: int = 0
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {self.deadline_s}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff values must be >= 0")

    @property
    def active(self) -> bool:
        """False when the policy is a no-op (no deadline, no retries)."""
        return self.deadline_s is not None or self.max_retries > 0

    def backoff_s(self, task_index: int, attempt: int) -> float:
        """Seeded jittered exponential backoff before retry ``attempt``.

        ``attempt`` is 1 for the first retry.  Deterministic in
        (seed, task_index, attempt).
        """
        if attempt <= 0 or self.backoff_base_s == 0:
            return 0.0
        rng = random.Random(
            self.seed * 1_000_003 + task_index * 8191 + attempt
        )
        raw = self.backoff_base_s * (2 ** (attempt - 1))
        jittered = raw * (0.5 + rng.random())
        return min(jittered, self.backoff_cap_s)


def is_execution_fault(exc: BaseException) -> bool:
    """True for faults worth retrying: the *execution* misbehaved.

    Deterministic data errors (:class:`~repro.errors.ReproError`
    subclasses other than the supervision errors themselves) are not
    execution faults — the same input will fail the same way.
    """
    if isinstance(exc, (DeadlineExceededError, WorkerCrashError)):
        return True
    if isinstance(exc, (BrokenExecutor, FuturesTimeoutError, CancelledError)):
        return True
    return not isinstance(exc, ReproError)


def supervised_map_outcomes(
    executor: Executor, fn, items: list, policy: SupervisionPolicy
) -> list[Outcome]:
    """Apply ``fn`` to every item under ``policy``, one Outcome per item.

    Dispatches on the executor type: thread/process executors get the
    pool-based loop with real deadlines; everything else (serial,
    custom executors, single-item maps) runs inline where a deadline
    cannot preempt but retries still apply.
    """
    if not items:
        return []
    if isinstance(executor, (ThreadExecutor, ProcessExecutor)) and len(items) > 1:
        return _pool_map(executor, fn, items, policy)
    return _inline_map(fn, items, policy)


def _inline_map(fn, items: list, policy: SupervisionPolicy) -> list[Outcome]:
    """Serial supervised map: bounded retries, no preemption."""
    results: list[Outcome] = []
    for i, item in enumerate(items):
        outcome = Outcome(index=i)
        for attempt in range(policy.max_retries + 1):
            ok, value, wall = _outcome_call((fn, item))
            if ok:
                outcome = Outcome(index=i, value=value, retries=attempt, wall_time=wall)
                break
            outcome = Outcome(index=i, error=value, retries=attempt, wall_time=wall)
            if attempt >= policy.max_retries or not is_execution_fault(value):
                break
            time.sleep(policy.backoff_s(i, attempt + 1))
        results.append(outcome)
    return results


def _new_pool(kind: str, n_workers: int):
    if kind == "process":
        return ProcessPoolExecutor(max_workers=n_workers)
    return ThreadPoolExecutor(max_workers=n_workers)


def _kill_pool(pool, kind: str) -> None:
    """Tear a pool down without waiting on a possibly-hung worker.

    Process workers are terminated outright — a hung CPU-bound task
    never reaches a cooperative cancellation point.  Threads cannot be
    killed; the pool is abandoned and its threads drain on their own.
    """
    processes = dict(getattr(pool, "_processes", None) or {}) if kind == "process" else {}
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in processes.values():
        try:
            proc.terminate()
        except (OSError, ValueError):
            # Already dead / already closed: the goal (no live worker
            # holding the old pool's queues) is met either way.
            pass


def _pool_map(
    executor: Executor, fn, items: list, policy: SupervisionPolicy
) -> list[Outcome]:
    """Pool-based supervised map with deadlines and pool rebuilding.

    The deadline bounds the wait for each task's result, in submission
    order; a task that finished while an earlier one was being awaited
    is collected instantly.  Any pool-killing event (deadline expiry,
    broken pool) harvests completed futures, rebuilds the pool, charges
    the task that triggered it with one attempt, and resubmits innocent
    casualties without charging them.  The loop spends submissions from
    a fixed budget, so it terminates under any fault pattern.
    """
    kind = "process" if isinstance(executor, ProcessExecutor) else "thread"
    n = len(items)
    results: list[Outcome | None] = [None] * n
    attempts = [0] * n  # attempts charged against each task
    todo = list(range(n))
    submission_budget = n * (policy.max_retries + 1)
    pool = _new_pool(kind, executor.parallelism)
    try:
        while todo and submission_budget > 0:
            wave = todo[: submission_budget]
            submission_budget -= len(wave)
            todo = []
            futures = [(i, pool.submit(_outcome_call, (fn, items[i]))) for i in wave]
            pool_dead = False
            charged: list[int] = []
            for i, fut in futures:
                if pool_dead:
                    # The pool died while an earlier future was awaited:
                    # harvest anything that still finished, requeue the
                    # rest without charging them.
                    if fut.done() and not fut.cancelled():
                        try:
                            results[i] = _as_outcome(i, fut.result(timeout=0), attempts[i])
                            continue
                        except (BrokenExecutor, CancelledError, OSError):
                            pass
                    todo.append(i)
                    continue
                try:
                    results[i] = _as_outcome(
                        i, fut.result(timeout=policy.deadline_s), attempts[i]
                    )
                    continue
                except FuturesTimeoutError:
                    error: ReproError = DeadlineExceededError(
                        f"task {i} exceeded {policy.deadline_s}s deadline "
                        f"({kind} pool torn down)",
                        chunk_index=i,
                        stage="supervision",
                    )
                except BrokenExecutor as exc:
                    error = WorkerCrashError(
                        f"{kind} pool broke while running task {i}: {exc}",
                        chunk_index=i,
                        stage="supervision",
                    )
                _kill_pool(pool, kind)
                pool_dead = True
                attempts[i] += 1
                if attempts[i] <= policy.max_retries:
                    charged.append(i)
                    todo.append(i)
                else:
                    results[i] = Outcome(index=i, error=error, retries=attempts[i] - 1)
            if pool_dead:
                pool = _new_pool(kind, executor.parallelism)
                if charged:
                    time.sleep(max(policy.backoff_s(i, attempts[i]) for i in charged))
            else:
                # Attempts completed without pool loss: charge failed
                # execution faults and retry them; data errors and
                # successes are final.
                retry: list[int] = []
                for i in wave:
                    oc = results[i]
                    if oc is None or oc.ok or not is_execution_fault(oc.error):
                        continue
                    attempts[i] += 1
                    if attempts[i] <= policy.max_retries:
                        results[i] = None
                        retry.append(i)
                if retry:
                    time.sleep(max(policy.backoff_s(i, attempts[i]) for i in retry))
                    todo.extend(retry)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    for i in range(n):
        if results[i] is None:
            # Submission budget exhausted while this task was still a
            # casualty of other tasks' faults.
            results[i] = Outcome(
                index=i,
                error=WorkerCrashError(
                    f"task {i} unfinished after supervision budget "
                    f"({n} tasks x {policy.max_retries + 1} attempts) was spent",
                    chunk_index=i,
                    stage="supervision",
                ),
                retries=attempts[i],
            )
    return results


def _as_outcome(index: int, packed, attempts_charged: int) -> Outcome:
    """Convert an ``_outcome_call`` triple into an :class:`Outcome`."""
    ok, value, wall = packed
    if ok:
        return Outcome(index=index, value=value, retries=attempts_charged, wall_time=wall)
    return Outcome(index=index, error=value, retries=attempts_charged, wall_time=wall)
