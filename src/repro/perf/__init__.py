"""Calibrated performance models of the decompression pipeline."""

from repro.perf.costmodel import PAPER_MODEL, CostModel
from repro.perf.profiling import DecodeProfile, profile_inflate
from repro.perf.projection import project_model, projected_speedup_report
from repro.perf.simulator import (
    SimResult,
    simulate_cat,
    simulate_pugz,
    simulate_sequential,
    sweep_threads,
)
from repro.perf.storage import PRESETS, StorageModel, bottleneck, pipeline_throughput

__all__ = [
    "CostModel",
    "PAPER_MODEL",
    "simulate_pugz",
    "simulate_sequential",
    "simulate_cat",
    "sweep_threads",
    "SimResult",
    "StorageModel",
    "PRESETS",
    "pipeline_throughput",
    "bottleneck",
    "profile_inflate",
    "DecodeProfile",
    "project_model",
    "projected_speedup_report",
]
