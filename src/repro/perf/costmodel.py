"""Calibrated cost model of gzip decompression pipelines.

This machine cannot reproduce the paper's wall-clock numbers (single
core; pure-Python decode is ~100x slower than C), so Table II and
Figure 5 are regenerated through a *performance model* of the paper's
testbed (2x12-core Xeon E5-2670v3), executed by the discrete-event
simulator in :mod:`repro.perf.simulator`.

Calibration discipline (see DESIGN.md): the model's free constants are
anchored on the paper's two *sequential* measurements — gunzip
37 MB/s and libdeflate 118 MB/s of compressed input — plus one
pass-1 marker-decode speed chosen so the published 32-thread endpoint
is matched.  Everything else (the whole thread sweep of Figure 5, the
crossover points, the speedup ratios) is *predicted* by the schedule,
not fitted.

A second constructor, :func:`CostModel.measure_python`, derives the
same constants from timings of *this repository's* decoders, so the
benchmarks can report measured-Python and modelled-testbed numbers side
by side.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

__all__ = ["CostModel", "PAPER_MODEL"]


@dataclass(frozen=True)
class CostModel:
    """Throughput constants of one machine, in MB/s.

    "Compressed MB/s" rates are over the compressed stream (the paper's
    reporting unit); translation is over uncompressed bytes.
    """

    #: Sequential gunzip-class decode, compressed MB/s.
    gunzip_mbps: float
    #: Sequential libdeflate-class decode, compressed MB/s.
    libdeflate_mbps: float
    #: Marker-domain (pass 1) decode per thread, compressed MB/s.
    pass1_mbps: float
    #: Marker translation (pass 2) per thread, uncompressed MB/s.
    translate_mbps: float
    #: ``cat``-style memory streaming, MB/s (Figure 5's upper bound).
    cat_mbps: float
    #: Physical cores; threads beyond this add no throughput.
    physical_cores: int
    #: Wall seconds to sync one chunk boundary (Section VI-A: 0.1-0.3 s).
    sync_seconds: float
    #: Sequential context resolution per boundary (n x 32 KiB memcpy).
    resolve_seconds_per_boundary: float
    #: Uncompressed/compressed size ratio of the workload (~3x for FASTQ).
    compression_ratio: float
    #: Relative overhead of synchronised output (paper: piping/ordering
    #: costs 10-20%); 0 models the /dev/null redirection they used.
    output_sync_overhead: float = 0.0

    def effective_threads(self, n_threads: int) -> int:
        """Usable concurrency (capped at physical cores)."""
        return max(1, min(n_threads, self.physical_cores))

    def with_output_sync(self, overhead: float = 0.15) -> "CostModel":
        """Variant modelling synchronised/piped output."""
        return replace(self, output_sync_overhead=overhead)

    # ------------------------------------------------------------------
    # Calibration constructors
    # ------------------------------------------------------------------

    @classmethod
    def paper_testbed(cls) -> "CostModel":
        """The paper's 2x12-core Xeon, anchored on Table II's sequential rows.

        ``pass1_mbps`` = 30 is the single fitted constant (chosen so the
        32-thread Table II endpoint lands near 611 MB/s); the rest of
        Figure 5 follows from the schedule.
        """
        return cls(
            gunzip_mbps=37.0,
            libdeflate_mbps=118.0,
            pass1_mbps=30.0,
            translate_mbps=600.0,
            cat_mbps=2000.0,
            physical_cores=24,
            sync_seconds=0.2,
            resolve_seconds_per_boundary=1e-4,
            compression_ratio=3.2,
        )

    @classmethod
    def measure_python(cls, sample_gz: bytes, sample_text: bytes, cores: int = 1) -> "CostModel":
        """Derive the constants by timing this repository's decoders.

        Used by the Table II benchmark to report the measured
        pure-Python column next to the modelled testbed column.
        """
        import numpy as np

        from repro.core.marker import resolve, undetermined_window
        from repro.core.marker_inflate import marker_inflate
        from repro.deflate.gzipfmt import gzip_unwrap, parse_gzip_header
        from repro.deflate.inflate import inflate

        mb = len(sample_gz) / 1e6
        payload_start, *_ = parse_gzip_header(sample_gz)

        t0 = time.perf_counter()
        inflate(sample_gz, start_bit=8 * payload_start, capture_tokens=True)
        gunzip_rate = mb / (time.perf_counter() - t0)

        t0 = time.perf_counter()
        inflate(sample_gz, start_bit=8 * payload_start)
        libdeflate_rate = mb / (time.perf_counter() - t0)

        t0 = time.perf_counter()
        result = marker_inflate(sample_gz, start_bit=8 * payload_start)
        pass1_rate = mb / (time.perf_counter() - t0)

        window = np.asarray(undetermined_window())
        t0 = time.perf_counter()
        resolve(result.symbols, window)
        translate_rate = (len(result.symbols) / 1e6) / (time.perf_counter() - t0)

        t0 = time.perf_counter()
        bytes(memoryview(sample_text))
        cat_rate = (len(sample_text) / 1e6) / max(1e-9, time.perf_counter() - t0)

        return cls(
            gunzip_mbps=gunzip_rate,
            libdeflate_mbps=libdeflate_rate,
            pass1_mbps=pass1_rate,
            translate_mbps=translate_rate,
            cat_mbps=cat_rate,
            physical_cores=cores,
            sync_seconds=0.1,
            resolve_seconds_per_boundary=1e-4,
            compression_ratio=len(sample_text) / max(1, len(sample_gz)),
        )


#: The calibrated paper-testbed model, shared by benchmarks.
PAPER_MODEL = CostModel.paper_testbed()
