"""Pluggable decode kernels: selection and registry (PR 9).

Two kernels implement the DEFLATE hot path:

* ``pure``  — the tuned per-symbol Python loops of PR 5
  (:func:`repro.deflate.inflate._decode_huffman_block_fast` and the
  marker-domain twin).  Always available, always exact; the reference
  the numpy kernel must match byte-for-byte.
* ``numpy`` — the two-stage vectorized kernel
  (:mod:`repro.perf.npkernel`): stage 1 decodes a block to columnar
  token arrays with a speculative wavefront over precomputed bit
  windows, stage 2 replays the tokens with vectorized gathers.  Any
  anomaly (invalid symbol, truncation, deep recursion in the replay)
  falls back to the pure kernel *for that block*, so error semantics
  and bit positions are identical by construction.

Selection precedence: explicit ``kernel=`` argument > ``REPRO_KERNEL``
environment variable > auto-detection.  Auto-detection picks ``numpy``
when the payload is large enough to amortize the vectorized kernel's
per-block fixed cost (see :data:`MIN_AUTO_NUMPY_BYTES` and
docs/PERFORMANCE.md "Two-stage kernels"); an explicit argument or
environment selection is honoured regardless of size, which is what
lets the differential fuzz suite force the numpy kernel onto tiny
streams.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = [
    "KernelSpec",
    "KERNELS",
    "MIN_AUTO_NUMPY_BYTES",
    "resolve_kernel",
]

#: Below this payload size auto-detection keeps the pure kernel: the
#: numpy kernel pays ~2 ms of fixed numpy-dispatch cost per DEFLATE
#: block, which the pure loop beats outright on short streams.
MIN_AUTO_NUMPY_BYTES = 1 << 14

_ENV_VAR = "REPRO_KERNEL"
_NAMES = ("pure", "numpy")


@dataclass(frozen=True)
class KernelSpec:
    """One decode-kernel choice, resolved from argument/env/auto.

    ``source`` records how the kernel was chosen (``"arg"`` / ``"env"``
    / ``"auto"``): an explicit choice is honoured unconditionally,
    while an auto-detected ``numpy`` still defers to the pure loop on
    payloads too small to amortize its fixed costs.
    """

    name: str
    vectorized: bool
    source: str = "auto"

    def use_vectorized(self, payload_bytes: int | None = None) -> bool:
        """Should this decode use the vectorized kernel?"""
        if not self.vectorized:
            return False
        if self.source != "auto" or payload_bytes is None:
            return True
        return payload_bytes >= MIN_AUTO_NUMPY_BYTES


#: The kernel registry; keys are the public selector names.
KERNELS: dict[str, KernelSpec] = {
    "pure": KernelSpec("pure", vectorized=False),
    "numpy": KernelSpec("numpy", vectorized=True),
}


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - numpy is a hard test dep
        return False
    return True


def resolve_kernel(choice=None) -> KernelSpec:
    """Resolve a kernel selection to a :class:`KernelSpec`.

    ``choice`` may be ``None`` (consult ``REPRO_KERNEL``, then
    auto-detect), a kernel name, ``"auto"``, or an already-resolved
    :class:`KernelSpec` (returned unchanged, so specs thread through
    call chains at no cost).
    """
    if isinstance(choice, KernelSpec):
        return choice
    source = "arg"
    if choice is None or choice == "":
        choice = os.environ.get(_ENV_VAR) or None
        source = "env"
        if choice is None or choice == "auto":
            name = "numpy" if _numpy_available() else "pure"
            return KernelSpec(name, vectorized=(name == "numpy"), source="auto")
    if choice == "auto":
        name = "numpy" if _numpy_available() else "pure"
        return KernelSpec(name, vectorized=(name == "numpy"), source="auto")
    if choice not in _NAMES:
        raise ValueError(
            f"unknown decode kernel {choice!r}: expected one of "
            f"{', '.join(_NAMES)} or 'auto'"
        )
    base = KERNELS[choice]
    if base.vectorized and not _numpy_available():  # pragma: no cover
        raise ValueError("numpy kernel requested but numpy is not importable")
    return KernelSpec(base.name, base.vectorized, source=source)
