"""Two-stage vectorized DEFLATE decode kernel (the ``numpy`` kernel).

Stage 1 — token decode.  A DEFLATE block cannot be decoded in parallel
naively because every Huffman code's length is only known once decoded.
The kernel exploits the *self-synchronizing* property of Huffman codes
(measured on the benchmark corpus: a decoder started at a wrong bit
offset re-joins the true symbol boundaries after ~10 symbols, p90 24):
it runs a *wavefront* of W speculative lanes over the block, lane ``k``
starting ``R`` bits **before** its assigned segment so it is already
synchronized when the segment begins.  Each lane performs the same
13-numpy-op step — two table gathers give the combined bit advance of
(litlen code + length extras + distance code + distance extras) — so
one numpy dispatch sequence advances all lanes one symbol.  A *stitch*
pass then walks the trust chain: lane ``k`` is trusted from the first
visited position that equals the predecessor's hand-off position; rare
anomalies (a lane that never synced, or froze on a speculative EOB)
are patched by a scalar walk over the same tables.  A final bulk pass
re-reads all trusted symbol positions at once and extracts columnar
``(offsets, values)`` token arrays plus each token's bit position.

Stage 2 — replay.  Tokens are replayed with vectorized gathers:
literal bytes are scattered in one shot; copy-matches are resolved by
the self-referential-copy fixpoint — a match can only reference bytes
produced by *earlier* tokens, so repeated "copy the already-resolved
sources" rounds converge, and per-byte pointer jumping (halving the
unresolved chain depth each round) bounds the worst case — RLE-style
overlapping matches are first folded with a modulo trick so a
length-258/distance-1 run costs one round, not 258.

Everything here raises :class:`Fallback` instead of guessing when the
stream is anomalous (invalid symbol, truncation, back-reference
underflow, runaway speculation): callers re-decode the affected block
with the pure kernel, which reproduces the exact structured error and
bit position of the reference implementation.  See
docs/PERFORMANCE.md "Two-stage kernels" for the measured behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.deflate import constants as C

__all__ = [
    "Fallback",
    "StreamKernel",
    "replay_bytes",
    "replay_symbols",
]

I64 = np.int64
#: Speculation geometry (tuned on the 2 MB FASTQ-like bench corpus):
#: lanes own ``SEG_BITS``-bit segments and pre-roll ``PREROLL_BITS``
#: before them.  A generous pre-roll suppresses expensive scalar
#: patches (p90 sync distance is ~24 symbols ~ 200 bits).
SEG_BITS = 500
PREROLL_BITS = 500
_MAX_LANES = 1024
#: Extra wavefront iterations past the segment-size estimate.
_CAP_EXTRA = 64
#: Sentinel for invalid distance symbols: guaranteed to drive any
#: computed distance negative so the trusted-path check catches it.
_BAD_DIST = -(1 << 40)
#: Output tile size of the replay pointer jump (see
#: :func:`_replay_matches`): 2x the DEFLATE window, so a chain hop
#: from tile ``t`` lands in tile ``t-1`` or earlier — already final.
_JUMP_TILE = 1 << 16

_K4 = I64(4)
_K15 = I64(15)

# -- per-symbol litlen/dist constant tables (module-wide, tiny) ----------
_KIND = np.full(288, 3, I64)  # 0 literal / 1 match / 2 EOB / 3 invalid
_KIND[:256] = 0
_KIND[C.END_OF_BLOCK] = 2
_KIND[257:286] = 1
_LEX = np.zeros(288, I64)
_LBASE = np.zeros(288, I64)
_LEX[257:286] = C.LENGTH_EXTRA_BITS[:29]
_LBASE[257:286] = C.LENGTH_BASE[:29]
#: Per-symbol value column: literal byte, match length base, or the
#: negative sentinels (-1 EOB, -2 invalid) the trusted-path check keys on.
_LVAL = np.where(_KIND == 0, np.arange(288), _LBASE)
_LVAL = np.where(_KIND == 2, -1, _LVAL)
_LVAL = np.where(_KIND == 3, -2, _LVAL)
_LEXMASK = (I64(1) << _LEX) - 1
_DEX = np.zeros(32, I64)
_DBASE = np.full(32, _BAD_DIST, I64)
_DEX[:30] = C.DIST_EXTRA_BITS[:30]
_DBASE[:30] = C.DIST_BASE[:30]
_DEXMASK = (I64(1) << _DEX) - 1


class Fallback(Exception):
    """The vectorized kernel declines this block; redo it purely.

    Raised on any anomaly whose exact error semantics belong to the
    pure kernel (bad symbol, truncation, back-reference underflow) and
    on pathological speculation (runaway patch walks).  Deliberately
    *not* a :class:`~repro.errors.ReproError`: it never escapes the
    kernel boundary.
    """


def _build_bitrev() -> tuple[np.ndarray, ...]:
    """All bit-reversal permutations for 0..MAX_CODE_BITS-bit windows.

    Built eagerly at import (≈0.5 MB, a few ms) so worker processes and
    threads share immutable tables instead of racing a lazy cache.
    """
    perms = [np.zeros(1, I64)]
    for m in range(1, C.MAX_CODE_BITS + 1):
        x = np.arange(1 << m, dtype=I64)
        r = np.zeros(1 << m, I64)
        for i in range(m):
            r |= ((x >> I64(i)) & I64(1)) << I64(m - 1 - i)
        perms.append(r)
    return tuple(perms)


_BITREV: tuple[np.ndarray, ...] = _build_bitrev()


def _bitrev_perm(m: int) -> np.ndarray:
    """Permutation mapping LSB-first m-bit windows to MSB code order."""
    return _BITREV[m]


def _expand(decoder) -> tuple[np.ndarray, np.ndarray, int]:
    """Canonical-code expansion to full LSB-window tables.

    Stable-sorting symbols by code length yields canonical code order;
    in MSB-first code space each symbol then owns a *contiguous* run of
    ``2**(M - len)`` windows, so one ``np.repeat`` builds the MSB table
    and the cached bit-reversal permutation converts it to the LSB
    window order the bitstream indexes with.
    """
    M = decoder.max_bits
    lengths = np.asarray(decoder.lengths, I64)
    order = np.argsort(np.where(lengths == 0, 99, lengths), kind="stable")
    order = order[lengths[order] > 0]
    lens = lengths[order]
    counts = I64(1) << (M - lens)
    total = int(counts.sum())
    msb_sym = np.repeat(order, counts)
    msb_nb = np.repeat(lens, counts)
    if total < (1 << M):  # incomplete (degenerate distance) code
        pad = (1 << M) - total
        msb_sym = np.concatenate([msb_sym, np.full(pad, -1, I64)])
        msb_nb = np.concatenate([msb_nb, np.zeros(pad, I64)])
    perm = _bitrev_perm(M)
    return msb_sym[perm], msb_nb[perm], M


def _lit_luts(decoder) -> dict:
    """Window-indexed litlen tables, cached on the decoder."""
    luts = decoder.np_luts
    if luts is None:
        sym_t, nb_t, M = _expand(decoder)
        cs = np.clip(sym_t, 0, 287)
        valid = sym_t >= 0
        kind = np.where(valid, _KIND[cs], 3)
        lex = np.where(kind == 1, _LEX[cs], 0)
        luts = decoder.np_luts = {
            "M": M,
            "mask": I64((1 << M) - 1),
            # Wavefront advance contribution: code bits (+ length extra
            # bits for matches); 0 for EOB/invalid freezes the lane.
            "advb": np.where(kind == 0, nb_t, np.where(kind == 1, nb_t + lex, 0)),
            "flag": (kind == 1).astype(I64),
            "nb": nb_t,
            "val": np.where(valid, _LVAL[cs], -2),
            "exm": np.where(kind == 1, _LEXMASK[cs], 0),
            "fsh": {},  # match-flag shift tables, keyed by dist table M
        }
    return luts


_NULL_DIST = {
    "M": 0,
    "mask": I64(0),
    "cons2": np.zeros(2, I64),
    "nb": np.zeros(2, I64),
    "exm": np.zeros(2, I64),
    "base": np.full(2, _BAD_DIST, I64),
}


def _dist_luts(decoder) -> dict:
    """Window-indexed distance tables; a null table when absent.

    ``cons2`` concatenates a zero block with the per-window consumed
    bits so that indexing with ``window | (is_match << M)`` folds the
    "was this a match?" branch into the gather (literals consume no
    distance bits).
    """
    if decoder is None:
        return _NULL_DIST
    luts = decoder.np_luts
    if luts is None:
        sym_t, nb_t, M = _expand(decoder)
        cs = np.clip(sym_t, 0, 31)
        valid = (sym_t >= 0) & (sym_t < 30)
        cons = np.where(valid, nb_t + _DEX[cs], 0)
        luts = decoder.np_luts = {
            "M": M,
            "mask": I64((1 << M) - 1),
            "cons2": np.concatenate([np.zeros(1 << M, I64), cons]),
            "nb": nb_t,
            "exm": np.where(valid, _DEXMASK[cs], 0),
            "base": np.where(valid, _DBASE[cs], _BAD_DIST),
        }
    return luts


def _build_b16(payload: bytes) -> np.ndarray:
    """Bit windows of the payload at 2-byte granularity.

    ``b16[j]`` holds payload bits ``[16 j, 16 j + 64)`` LSB-first, so
    the window of bits at any position ``p`` is
    ``b16[p >> 4] >> (p & 15)`` — at least 49 valid bits, which covers
    the worst-case 48-bit footprint of one full DEFLATE symbol
    (15+5 length + 15+13 distance bits).  Built in four strided passes
    over the buffer's uint64 view, then reinterpreted as int64 (the
    arithmetic right shifts downstream never reach the sign bit: all
    consumers mask below bit 49).
    """
    pad = bytes(payload) + b"\0" * 64
    if len(pad) % 8:
        pad += b"\0" * (8 - len(pad) % 8)
    au = np.frombuffer(pad, np.uint8).view(np.uint64)
    n2 = (len(pad) - 8) // 2
    out = np.empty(n2, np.uint64)
    for r in (0, 1, 2, 3):  # windows starting at byte 2r of each word
        if r == 0:
            out[0::4] = au[: len(out[0::4])]
        else:
            seg = (au[:-1] >> np.uint64(16 * r)) | (au[1:] << np.uint64(64 - 16 * r))
            out[r::4] = seg[: len(out[r::4])]
    return out.view(I64)


def _wavefront(B16, h0, span, ll, dl):
    """Advance W speculative lanes from bit ``h0`` across ``span`` bits.

    Returns ``(V, starts, targets)``: ``V[t, k]`` is lane ``k``'s bit
    position after ``t`` symbol steps.  Lane 0 starts exactly at ``h0``
    (its whole path is trusted); lane ``k > 0`` starts ``PREROLL_BITS``
    before its segment so it has re-synchronized by the time the
    predecessor's hand-off position arrives.  A lane that decodes EOB
    or an invalid window advances by 0 — it freezes stably, which the
    stitch pass detects.
    """
    W = max(1, min(_MAX_LANES, span // SEG_BITS))
    starts = h0 + SEG_BITS * np.arange(W, dtype=I64)
    targets = starts + SEG_BITS
    lane0 = starts - PREROLL_BITS
    np.maximum(lane0, 0, out=lane0)
    lane0[0] = h0
    cap = (SEG_BITS + PREROLL_BITS) // 6 + 8 + _CAP_EXTRA
    P = np.empty((cap + 1, W), I64)
    P[0] = lane0
    p = P[0].copy()
    b = np.empty(W, I64)
    g = np.empty(W, I64)
    w = np.empty(W, I64)
    i1 = np.empty(W, I64)
    base = np.empty(W, I64)
    fsh = np.empty(W, I64)
    adv = np.empty(W, I64)
    LADVB = ll["advb"]
    fshl = ll["fsh"].get(dl["M"])
    if fshl is None:
        fshl = ll["fsh"][dl["M"]] = ll["flag"] << I64(dl["M"])
    DCONS2 = dl["cons2"]
    lmask = ll["mask"]
    dmask = dl["mask"]
    t = 0
    while t < cap:
        np.right_shift(p, _K4, out=b)
        B16.take(b, out=g, mode="clip")
        np.bitwise_and(p, _K15, out=i1)
        np.right_shift(g, i1, out=w)
        np.bitwise_and(w, lmask, out=i1)
        LADVB.take(i1, out=base, mode="clip")
        fshl.take(i1, out=fsh, mode="clip")
        np.right_shift(w, base, out=w)
        np.bitwise_and(w, dmask, out=i1)
        np.bitwise_or(i1, fsh, out=i1)
        DCONS2.take(i1, out=adv, mode="clip")
        np.add(adv, base, out=adv)
        np.add(p, adv, out=P[t + 1])
        p = P[t + 1]
        t += 1
        if t % 4 == 0 or t >= cap:
            if not np.logical_and(p < targets, adv > 0).any():
                break
    return P[: t + 1], starts, targets


def _scalar_step(B16, pos, ll, dl, fshl):
    """One-symbol advance at ``pos`` using the window tables (patch path)."""
    w = int(B16[pos >> 4]) >> (pos & 15)
    i1 = w & int(ll["mask"])
    base = int(ll["advb"][i1])
    i2 = ((w >> base) & int(dl["mask"])) | int(fshl[i1])
    return base + int(dl["cons2"][i2])


def _stitch(V, starts, targets, h0, ll, dl, B16, nbits):
    """Walk the trust chain over the wavefront's visited positions.

    Returns ``(flat_positions, eob_seen, resume_pos)`` where
    ``flat_positions`` are the trusted symbol start bits in stream
    order.  Lane ``k``'s entry position is the predecessor's first
    visited position at/after segment start; the lane is trusted from
    the row where it visited exactly that position.  Anomalies — a
    lane that never recorded its entry position, or a trusted lane
    that froze (EOB / invalid) or straggled — drop to a scalar walk
    over the same tables, bounded by a guard that falls back to the
    pure kernel rather than chase a runaway speculation.
    """
    T1, W = V.shape
    ar = np.arange(W)
    cross_idx = np.argmax(V >= targets[None, :], axis=0)
    any_crossed = V[cross_idx, ar] >= targets
    cross_idx = np.where(any_crossed, cross_idx, T1)
    cp = V[np.minimum(cross_idx, T1 - 1), ar]
    entry = np.empty(W, I64)
    entry[0] = h0
    entry[1:] = cp[:-1]
    sync_idx = np.argmax(V == entry[None, :], axis=0)
    found = V[sync_idx, ar] == entry
    found[0] = True
    anom = (~found) | (~any_crossed)
    if not anom.any():
        rows = np.arange(T1)[:, None]
        msk = (rows >= sync_idx[None, :]) & (rows < cross_idx[None, :])
        fp = np.ascontiguousarray(V.T)[msk.T]
        return fp, False, int(cp[W - 1])
    k = int(anom.argmax())
    parts = []
    if k > 0:
        rows = np.arange(T1)[:, None]
        msk = (rows >= sync_idx[None, :k]) & (rows < cross_idx[None, :k])
        parts.append(np.ascontiguousarray(V[:, :k].T)[msk.T])
    fshl = ll["fsh"][dl["M"]]
    e = int(entry[k])
    while k < W:
        tgt = int(targets[k])
        vis = V[:, k]
        if found[k]:
            si = int(sync_idx[k])
            if any_crossed[k]:
                ci = int(cross_idx[k])
                parts.append(vis[si:ci])
                e = int(vis[ci])
                k += 1
                continue
            # Trusted but never crossed: frozen (EOB/invalid) or straggler.
            d = np.diff(vis[si:])
            if (d == 0).any():
                fz = int((d == 0).argmax()) + si
                parts.append(vis[si : fz + 1])  # include the frozen position
                return np.concatenate(parts), True, -1
            # Straggler: re-walk its segment below.
        patch = []
        pos = e
        guard = 0
        while pos < tgt:
            if guard > 4096 or pos > nbits + 48:
                # Checked *before* indexing: on truncated streams a
                # speculative entry position can already sit past the
                # padded bit-window array.
                raise Fallback("runaway patch walk")
            adv = _scalar_step(B16, pos, ll, dl, fshl)
            patch.append(pos)
            if adv == 0:  # EOB or invalid window: block ends here
                return np.concatenate(parts + [np.asarray(patch, I64)]), True, -1
            pos += adv
            guard += 1
        parts.append(np.asarray(patch, I64))
        e = pos
        k += 1
        if k < W:
            # Re-derive the next lane's trust from the corrected entry.
            hit = np.nonzero(V[:, k] == e)[0]
            entry[k] = e
            if len(hit):
                found[k] = True
                sync_idx[k] = hit[0]
            else:
                found[k] = False
    return np.concatenate(parts), False, e


def _bulk_tokens(fp, B16, ll, dl):
    """Extract all token fields at the trusted positions in one pass.

    Returns ``(off, val, nb, lval)``: ``off`` is the match distance (0
    for literals, negative for invalid distance symbols thanks to the
    :data:`_BAD_DIST` sentinel), ``val`` the literal byte or match
    length, ``nb`` the litlen code length (for the end-bit), ``lval``
    the raw value column whose negative sentinels flag EOB/invalid.
    """
    g = B16.take(fp >> _K4, mode="clip")
    w = g >> (fp & _K15)
    i1 = w & ll["mask"]
    nb = ll["nb"].take(i1, mode="clip")
    lv = ll["val"].take(i1, mode="clip")
    val = lv + ((w >> nb) & ll["exm"].take(i1, mode="clip"))
    f = ll["flag"].take(i1, mode="clip")
    w2 = w >> ll["advb"].take(i1, mode="clip")
    i2 = w2 & dl["mask"]
    dist = dl["base"].take(i2, mode="clip") + (
        (w2 >> dl["nb"].take(i2, mode="clip")) & dl["exm"].take(i2, mode="clip")
    )
    return dist * f, val, nb, lv


class StreamKernel:
    """Stage-1 driver for one compressed buffer.

    Owns the bit-window array (shared by every block of the stream and
    cached across the chunks of a parallel run over the same buffer)
    and the per-stream block-size estimate the wavefront spans adapt
    to.
    """

    __slots__ = ("b16", "nbits", "est_bits")

    def __init__(self, data) -> None:
        self.b16 = _cached_b16(data)
        self.nbits = 8 * len(data)
        self.est_bits = 140_000.0

    def decode_block(self, h_bit: int, litlen, dist, max_out: int | None = None):
        """Decode one fixed/dynamic block body starting at ``h_bit``.

        Returns ``(offs, vals, fp, end_bit)``: columnar token arrays
        (match distance / literal-or-length value), each token's bit
        position, and the bit just past the EOB code.  Raises
        :class:`Fallback` whenever the pure kernel would raise — the
        caller re-decodes the block purely for the exact error.

        ``max_out`` bounds the block's *output* size: once the decoded
        tokens expand past it the kernel gives up mid-block instead of
        buffering a zip bomb's worth of token arrays, and the pure
        fallback then reproduces the exact resource-limit error.
        """
        ll = _lit_luts(litlen)
        dl = _dist_luts(dist)
        nbits = self.nbits
        est = self.est_bits
        pos = h_bit
        if max_out is not None and max_out >= (1 << 60):
            max_out = None
        out_est = 0
        offs_l: list[np.ndarray] = []
        vals_l: list[np.ndarray] = []
        fp_l: list[np.ndarray] = []
        while True:
            span = int(min(est * 1.25 + 2048, max(4096, nbits + 48 - pos)))
            V, starts, tgts = _wavefront(self.b16, pos, span, ll, dl)
            fp, eob, resume = _stitch(V, starts, tgts, pos, ll, dl, self.b16, nbits)
            off, val, nb, lv = _bulk_tokens(fp, self.b16, ll, dl)
            if eob:
                if not len(fp) or int(lv[-1]) != -1:
                    raise Fallback("froze without EOB")
                if (lv[:-1] < 0).any() or (off[:-1] < 0).any():
                    raise Fallback("bad symbol on trusted path")
                end_bit = int(fp[-1]) + int(nb[-1])
                if end_bit > nbits:
                    raise Fallback("EOB past end of input")
                offs_l.append(off[:-1])
                vals_l.append(val[:-1])
                fp_l.append(fp[:-1])
                self.est_bits = 0.7 * self.est_bits + 0.3 * (end_bit - h_bit)
                return (
                    _cat(offs_l).astype(np.int32),
                    _cat(vals_l).astype(np.int32),
                    _cat(fp_l),
                    end_bit,
                )
            if (lv < 0).any() or (off < 0).any():
                raise Fallback("bad symbol on trusted path")
            offs_l.append(off)
            vals_l.append(val)
            fp_l.append(fp)
            if max_out is not None:
                out_est += int(np.where(off > 0, val, 1).sum())
                if out_est > max_out:
                    raise Fallback("block output exceeds the resource budget")
            if resume <= pos or resume > nbits + 48:
                raise Fallback("wavefront made no progress")
            pos = resume
            est = max(4096.0, est - (pos - h_bit))


def _cat(parts: list[np.ndarray]) -> np.ndarray:
    return parts[0] if len(parts) == 1 else np.concatenate(parts)


#: Single-slot window cache: the chunks of a parallel decompression all
#: index the same buffer, so they share one window array.  The strong
#: reference to the data object keeps its ``id`` valid while cached.
_B16_SLOT: list = [None, None]


def _cached_b16(data) -> np.ndarray:
    key = (id(data), len(data))
    if _B16_SLOT[0] is not None and _B16_SLOT[0][0] is data and len(data) == _B16_SLOT[0][1]:
        return _B16_SLOT[1]
    b16 = _build_b16(data)
    _B16_SLOT[0] = (data, len(data))
    _B16_SLOT[1] = b16
    return b16


# ---------------------------------------------------------------------------
# Stage 2: vectorized LZ77 replay
# ---------------------------------------------------------------------------


def _replay_matches(out, m_start, m_len, m_off):
    """Resolve all match bytes of ``out`` by the copy fixpoint.

    ``out[i]`` for a match byte must equal ``out[i - off]``; since a
    match only references *earlier* output, the dependency graph is
    acyclic.  Overlapping (RLE-style) matches are pre-folded: byte
    ``r`` of a match with ``off < len`` reads from
    ``start - off + (r mod off)``, collapsing the intra-match chain to
    depth 1.  Cross-match chains (matches copying earlier match
    output, linked-list fashion — DNA corpora reach depths in the
    thousands) are cut by pointer jumping: ``ref`` maps every output
    position to its source (identity for already-concrete positions),
    and re-scattering each round squares the map, halving every chain
    depth — convergence is when a gather returns the positions
    unchanged, i.e. all sources hit identity entries.  All position
    arrays are int32 (the caller bounds the output size), halving the
    memory traffic of the gather rounds.

    The jump runs over output *tiles* in order: once a tile's chains
    are resolved, its ``ref`` entries are final, so a later tile's
    chain terminates the moment it leaves the tile (DEFLATE distances
    are <= 32 KiB, so most hops land in the immediately preceding
    tile).  That turns one global O(log max-depth) squaring over all
    match bytes into per-tile squarings over cache-resident slices —
    measured 2x on the jump phase for deep DNA-style chains.
    """
    nmatch = len(m_len)
    nm = int(m_len.sum())
    if nm == 0:
        return
    rep = np.repeat(np.arange(nmatch, dtype=np.int32), m_len)
    delta = m_start - (np.cumsum(m_len, dtype=np.int32) - m_len)
    bdst = np.arange(nm, dtype=np.int32) + delta[rep]
    bsrc = bdst - m_off[rep]
    overlap = m_off < m_len
    if overlap.any():
        ob = overlap[rep]
        db = bdst[ob]
        ro = db - m_start[rep][ob]
        oo = m_off[rep][ob]
        bsrc[ob] = db - ro - oo + ro % oo
    ref = np.arange(len(out), dtype=np.int32)
    ref[bdst] = bsrc
    final = np.empty(nm, np.int32)
    lo = 0
    a0 = int(bdst[0])
    aend = int(bdst[-1]) + 1
    for a in range(a0 - a0 % _JUMP_TILE, aend, _JUMP_TILE):
        hi = int(np.searchsorted(bdst, a + _JUMP_TILE, "left"))
        if hi == lo:
            continue
        d = bdst[lo:hi]
        s = bsrc[lo:hi]
        for _ in range(64):
            nxt = ref.take(s)
            if np.array_equal(nxt, s):
                break
            ref[d] = nxt
            s = nxt
        else:
            raise Fallback("unresolvable copy chains")
        final[lo:hi] = s
        lo = hi
    out[bdst] = out.take(final)


def _replay(offs, vals, win, dtype):
    """Shared replay core: seeded window ``win`` (array), token arrays."""
    offs = np.ascontiguousarray(offs, np.int32)
    vals = np.ascontiguousarray(vals, np.int32)
    wlen = len(win)
    if len(offs) * C.MAX_MATCH + wlen >= (1 << 31):
        # A 2 GiB+ replay cannot use int32 positions; the pure kernel
        # streams such outputs instead of materializing them.
        raise Fallback("output too large for int32 replay")
    is_m = offs > 0
    lengths = np.where(is_m, vals, np.int32(1))
    ends = np.cumsum(lengths, dtype=np.int32)
    total = int(ends[-1]) if len(ends) else 0
    out = np.empty(wlen + total, dtype)
    out[:wlen] = win
    if total == 0:
        return out
    lit = ~is_m
    out[(ends[lit] - 1) + wlen] = vals[lit]
    m_len = vals[is_m]
    if len(m_len):
        m_start = (ends[is_m] + np.int32(wlen)) - m_len
        m_off = offs[is_m]
        if (m_start < m_off).any():
            raise Fallback("back-reference before window start")
        _replay_matches(out, m_start, m_len, m_off)
    return out


def replay_bytes(offs, vals, window: bytes) -> bytes:
    """Replay byte-domain tokens against up to 32 KiB of history."""
    win = np.frombuffer(window, np.uint8) if window else np.empty(0, np.uint8)
    out = _replay(offs, vals, win, np.uint8)
    return out[len(win):].tobytes()


def replay_symbols(offs, vals, window_arr: np.ndarray) -> np.ndarray:
    """Replay marker-domain tokens; symbols stay int32.

    ``window_arr`` is the int32 symbol window (markers included: a
    match copies whatever symbol sits in the window, concrete byte or
    ``MARKER_BASE + j`` placeholder alike — exactly Algorithm 2 run
    over the extended alphabet).  The result is the produced symbol
    array *excluding* the window prefix; it is never byte-cast here —
    resolution stays the job of :mod:`repro.core.translate`.
    """
    out = _replay(offs, vals, window_arr, np.int32)
    return out[len(window_arr):]
