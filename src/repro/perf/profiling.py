"""Stage-level profiling of the decoders (the guides' first rule:

*no optimisation without measuring*).  Breaks an inflate run into its
cost centres — dynamic-header/table building, litlen symbol decoding,
match copying, container/checksum work — by timing dedicated passes
that isolate each stage.  Used by the profiling benchmark to show
where a pure-Python DEFLATE spends its time (and to justify the cost
model's stage constants).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.deflate.bitio import BitReader
from repro.deflate.crc32 import crc32
from repro.deflate.gzipfmt import parse_gzip_header
from repro.deflate.inflate import inflate, read_block_header

__all__ = ["DecodeProfile", "profile_inflate"]


@dataclass
class DecodeProfile:
    """Wall-clock breakdown of decoding one gzip payload."""

    total_seconds: float
    #: Building Huffman tables for every block (headers re-decoded).
    table_seconds: float
    #: Full decode minus output materialisation (token capture off).
    decode_seconds: float
    #: CRC32 of the output (the gunzip-role extra work).
    checksum_seconds: float
    output_bytes: int
    blocks: int

    @property
    def decode_mbps(self) -> float:
        """Output MB/s of the plain decode stage."""
        return self.output_bytes / 1e6 / self.decode_seconds if self.decode_seconds else 0.0

    def rows(self) -> list[tuple[str, float, float]]:
        """(stage, seconds, fraction-of-total) rows for reporting."""
        parts = [
            ("huffman tables", self.table_seconds),
            ("symbol decode + copies", max(0.0, self.decode_seconds - self.table_seconds)),
            ("crc32", self.checksum_seconds),
        ]
        return [(name, secs, secs / self.total_seconds) for name, secs in parts]


def profile_inflate(gz_data: bytes) -> DecodeProfile:
    """Profile decoding of a gzip member.

    Three timed passes over the same payload:

    1. header walk — decode every block *header* only (tables built,
       symbols skipped by decoding through; measured as the marginal
       cost of table construction via a headers-only replay);
    2. plain decode — the real work;
    3. checksum — CRC32 over the output.

    Huffman decoders are memoized on their code-length tuple
    (``repro.deflate.huffman.cached_decoder``), so the header walk —
    which replays headers the main decode pass already built — measures
    the *cached* per-block residual, not cold table construction.  That
    is the quantity the cost model wants: repeated headers are the
    steady state on real corpora (docs/PERFORMANCE.md).
    """
    payload_start, *_ = parse_gzip_header(gz_data, 0)
    start_bit = 8 * payload_start

    t0 = time.perf_counter()
    result = inflate(gz_data, start_bit=start_bit)
    decode_seconds = time.perf_counter() - t0

    # Table-construction cost: rebuild each block's decoders from the
    # recorded block start bits (header decode = table building).
    t0 = time.perf_counter()
    for block in result.blocks:
        if block.btype != 0:
            reader = BitReader(gz_data, block.start_bit)
            read_block_header(reader)
    table_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    crc32(result.data)
    checksum_seconds = time.perf_counter() - t0

    return DecodeProfile(
        total_seconds=decode_seconds + checksum_seconds,
        table_seconds=table_seconds,
        decode_seconds=decode_seconds,
        checksum_seconds=checksum_seconds,
        output_bytes=len(result.data),
        blocks=len(result.blocks),
    )
