"""Projecting measured Python stage costs onto other machines.

The measured (pure-Python) and modelled (paper-testbed) views of
Table II differ by a language/hardware factor per stage.  This module
makes the projection explicit: from a Python-measured
:class:`~repro.perf.costmodel.CostModel` and one anchor ratio (how much
faster the target machine's sequential decoder is), derive a projected
model for the target and predict its parallel behaviour — the honest
way to say "what would this Python run look like on the Xeon".
"""

from __future__ import annotations

from dataclasses import replace

from repro.perf.costmodel import CostModel
from repro.perf.simulator import simulate_pugz, simulate_sequential

__all__ = ["project_model", "projected_speedup_report"]


def project_model(
    measured: CostModel,
    target_libdeflate_mbps: float = 118.0,
    target_cores: int = 24,
    target_cat_mbps: float = 2000.0,
) -> CostModel:
    """Scale a measured model onto a target machine.

    All decode-class stages scale by the single sequential-decoder
    ratio (they run the same algorithm family); the translate stage is
    memory-bound and scales by the cat ratio.  Sync time scales with
    the decode ratio too (probing is decode work).
    """
    if measured.libdeflate_mbps <= 0:
        raise ValueError("measured model must have positive rates")
    decode_scale = target_libdeflate_mbps / measured.libdeflate_mbps
    mem_scale = target_cat_mbps / max(measured.cat_mbps, 1e-9)
    return replace(
        measured,
        gunzip_mbps=measured.gunzip_mbps * decode_scale,
        libdeflate_mbps=target_libdeflate_mbps,
        pass1_mbps=measured.pass1_mbps * decode_scale,
        translate_mbps=measured.translate_mbps * mem_scale,
        cat_mbps=target_cat_mbps,
        physical_cores=target_cores,
        sync_seconds=measured.sync_seconds / decode_scale,
    )


def projected_speedup_report(
    measured: CostModel,
    compressed_mb: float = 5000.0,
    n_threads: int = 32,
) -> dict[str, float]:
    """Predict the target-machine Table II row from measured stages."""
    projected = project_model(measured)
    pugz = simulate_pugz(projected, compressed_mb, n_threads).speed_mbps
    gunzip = simulate_sequential(projected, "gunzip", compressed_mb).speed_mbps
    libdeflate = simulate_sequential(projected, "libdeflate", compressed_mb).speed_mbps
    return {
        "gunzip_mbps": gunzip,
        "libdeflate_mbps": libdeflate,
        "pugz_mbps": pugz,
        "speedup_vs_gunzip": pugz / gunzip,
        "speedup_vs_libdeflate": pugz / libdeflate,
    }
