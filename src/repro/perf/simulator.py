"""Discrete-event simulation of the two-pass decompression schedule.

The simulator executes the same schedule as :mod:`repro.core.pugz` —
chunk the payload, pass 1 on ``n`` workers, sequential context
resolution, pass 2 translation on ``n`` workers — against the
throughput constants of a :class:`~repro.perf.costmodel.CostModel`.

Per-chunk costs get small lognormal jitter (compressibility varies
along a file), which yields the error bars of Figure 5.  All
randomness is seeded; runs are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perf.costmodel import CostModel

__all__ = ["SimResult", "simulate_pugz", "simulate_sequential", "simulate_cat", "sweep_threads"]


@dataclass
class SimResult:
    """One simulated decompression run."""

    wall_seconds: float
    #: Compressed MB/s (the paper's Table II / Figure 5 unit).
    speed_mbps: float
    sync_seconds: float
    pass1_seconds: float
    resolve_seconds: float
    pass2_seconds: float
    #: Optional event list ``(worker, stage, t_start, t_end)`` — the
    #: schedule behind Figure 3, produced with ``timeline=True``.
    events: list[tuple[int, str, float, float]] | None = None


def _jitter(rng: np.random.Generator | None, n: int, sigma: float) -> np.ndarray:
    if rng is None or sigma <= 0:
        return np.ones(n)
    return rng.lognormal(mean=0.0, sigma=sigma, size=n)


def simulate_pugz(
    model: CostModel,
    compressed_mb: float,
    n_threads: int,
    rng: np.random.Generator | None = None,
    jitter_sigma: float = 0.05,
    timeline: bool = False,
) -> SimResult:
    """Simulate one pugz run with ``n_threads`` threads (= chunks).

    pugz creates one chunk per thread; chunk boundary syncs happen as
    each thread starts, i.e. in parallel (one sync latency total).
    """
    if n_threads < 1:
        raise ValueError("n_threads must be >= 1")
    eff = model.effective_threads(n_threads)

    # --- sync: boundaries probe concurrently as threads start.
    sync = model.sync_seconds if n_threads > 1 else 0.0

    # --- pass 1: n equal chunks with jitter.  The OS timeshares
    # n > cores threads rather than running them in discrete waves, so
    # the makespan is the classic lower bound max(total/eff, max chunk)
    # (LPT-exact when n <= cores since then each worker gets one chunk).
    chunk_mb = np.full(n_threads, compressed_mb / n_threads) * _jitter(rng, n_threads, jitter_sigma)
    pass1_costs = chunk_mb / model.pass1_mbps
    pass1 = max(float(pass1_costs.sum()) / eff, float(pass1_costs.max()))

    # --- resolve: sequential, one 32 KiB window per boundary.
    resolve = model.resolve_seconds_per_boundary * max(0, n_threads - 1)

    # --- pass 2: translate uncompressed bytes of chunks 1..n-1.
    if n_threads > 1:
        un_mb = chunk_mb[1:] * model.compression_ratio
        pass2_costs = un_mb / model.translate_mbps
        pass2 = max(float(pass2_costs.sum()) / eff, float(pass2_costs.max()))
    else:
        pass2 = 0.0

    wall = (sync + pass1 + resolve + pass2) * (1.0 + model.output_sync_overhead)

    events = None
    if timeline:
        # Event-level schedule (one chunk per worker, like pugz).
        events = []
        t_sync_end = sync
        pass1_ends = []
        for k in range(n_threads):
            w = k % eff
            start = t_sync_end if k == 0 else t_sync_end  # all start together
            if k > 0:
                events.append((w, "sync", 0.0, t_sync_end))
            end = t_sync_end + float(pass1_costs[k])
            events.append((w, "pass1", t_sync_end, end))
            pass1_ends.append(end)
        t_resolve_start = max(pass1_ends)
        t_resolve_end = t_resolve_start + resolve
        events.append((0, "resolve", t_resolve_start, t_resolve_end))
        t = t_resolve_end
        for k in range(1, n_threads):
            w = k % eff
            cost = float(un_mb[k - 1] / model.translate_mbps) if n_threads > 1 else 0.0
            events.append((w, "pass2", t_resolve_end, t_resolve_end + cost))

    return SimResult(
        wall_seconds=wall,
        speed_mbps=compressed_mb / wall,
        sync_seconds=sync,
        pass1_seconds=pass1,
        resolve_seconds=resolve,
        pass2_seconds=pass2,
        events=events,
    )


def simulate_sequential(model: CostModel, persona: str, compressed_mb: float) -> SimResult:
    """Simulate a sequential decoder: ``gunzip`` or ``libdeflate``."""
    rates = {"gunzip": model.gunzip_mbps, "libdeflate": model.libdeflate_mbps}
    if persona not in rates:
        raise ValueError(f"unknown persona {persona!r}")
    wall = compressed_mb / rates[persona] * (1.0 + model.output_sync_overhead)
    return SimResult(wall, compressed_mb / wall, 0.0, wall, 0.0, 0.0)


def simulate_cat(model: CostModel, compressed_mb: float) -> SimResult:
    """Simulate ``cat`` streaming the compressed file (Figure 5's bound)."""
    wall = compressed_mb / model.cat_mbps
    return SimResult(wall, compressed_mb / wall, 0.0, wall, 0.0, 0.0)


def sweep_threads(
    model: CostModel,
    compressed_mb_files: list[float],
    thread_counts: list[int],
    reps: int = 3,
    seed: int = 0,
) -> dict[int, tuple[float, float]]:
    """Figure 5 sweep: mean and std of pugz speed per thread count.

    Each (file, repetition) pair is an independent simulated run, as in
    the paper's protocol (3 files x 3 repetitions).
    """
    rng = np.random.default_rng(seed)
    out: dict[int, tuple[float, float]] = {}
    for n in thread_counts:
        speeds = [
            simulate_pugz(model, mb, n, rng=rng).speed_mbps
            for mb in compressed_mb_files
            for _ in range(reps)
        ]
        arr = np.asarray(speeds)
        out[n] = (float(arr.mean()), float(arr.std()))
    return out
