"""Storage-device throughput models (the paper's introduction argument).

Section I motivates parallel decompression with the gap between
sequential gunzip (~37 MB/s of compressed input) and device read
bandwidth: SATA SSDs ~500 MB/s, mechanical drives 100-200 MB/s, NVMe
up to 3 GB/s.  These models quantify where the pipeline bottleneck sits
for a given decoder/storage pairing.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["StorageModel", "PRESETS", "pipeline_throughput", "bottleneck"]


@dataclass(frozen=True)
class StorageModel:
    """A storage device's sequential read profile."""

    name: str
    read_mbps: float
    #: First-byte latency (seeks/queue), seconds.
    latency_s: float = 0.0

    def read_seconds(self, mb: float) -> float:
        """Time to stream ``mb`` megabytes."""
        return self.latency_s + mb / self.read_mbps


#: The devices the paper's introduction cites.
PRESETS = {
    "hdd": StorageModel("mechanical drive", 150.0, 8e-3),
    "sata_ssd": StorageModel("SATA SSD", 500.0, 1e-4),
    "nvme": StorageModel("NVMe SSD", 3000.0, 5e-5),
    "nas": StorageModel("NAS (the paper's testbed)", 110.0, 1e-3),
    "ram": StorageModel("page cache", 10000.0, 0.0),
}


def pipeline_throughput(storage: StorageModel, decomp_mbps: float, overlapped: bool = True) -> float:
    """End-to-end compressed MB/s of read + decompress.

    With overlapped (double-buffered) I/O the slower stage wins; with
    strictly serial staging the rates combine harmonically.
    """
    if decomp_mbps <= 0:
        raise ValueError("decomp_mbps must be positive")
    if overlapped:
        return min(storage.read_mbps, decomp_mbps)
    return 1.0 / (1.0 / storage.read_mbps + 1.0 / decomp_mbps)


def bottleneck(storage: StorageModel, decomp_mbps: float) -> str:
    """Which stage limits the pipeline: ``"storage"`` or ``"decompression"``.

    The paper's point: on every modern device, sequential gunzip is the
    bottleneck by 1-2 orders of magnitude.
    """
    return "storage" if storage.read_mbps < decomp_mbps else "decompression"
