"""Parallel pipeline head: decompression feeding mergeable analyzers."""

from repro.pipeline.analyzers import GcProfile, KmerCounter, LengthHistogram, QualityStats
from repro.pipeline.runner import PipelineResult, run_fastq_pipeline

__all__ = [
    "run_fastq_pipeline",
    "PipelineResult",
    "KmerCounter",
    "QualityStats",
    "GcProfile",
    "LengthHistogram",
]
