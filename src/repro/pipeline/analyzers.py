"""Mergeable read analyzers — the consumers at the head of pipelines.

The paper's Table II note: pugz lets every thread emit output without
synchronisation "to mimic the behavior of a FASTQ parser (as in some
applications, the order of the reads is irrelevant)".  These analyzers
are exactly such applications: each consumes reads independently and
supports ``merge`` of partial results, so chunk outputs can be analysed
in parallel and combined — no ordering, no barrier until the final
merge.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.data.fastq import FastqRecord

__all__ = ["KmerCounter", "QualityStats", "GcProfile", "LengthHistogram"]


class KmerCounter:
    """Exact k-mer counting over read sequences."""

    def __init__(self, k: int = 16) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.counts: Counter = Counter()
        self.reads = 0

    def consume(self, record: FastqRecord) -> None:
        seq = record.sequence
        k = self.k
        self.reads += 1
        for i in range(len(seq) - k + 1):
            self.counts[seq[i : i + k]] += 1

    def merge(self, other: "KmerCounter") -> "KmerCounter":
        if other.k != self.k:
            raise ValueError("cannot merge counters with different k")
        self.counts.update(other.counts)
        self.reads += other.reads
        return self

    @property
    def distinct(self) -> int:
        return len(self.counts)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def most_common(self, n: int = 10) -> list[tuple[bytes, int]]:
        return self.counts.most_common(n)


class QualityStats:
    """Per-position quality aggregation (mean Q by cycle)."""

    def __init__(self) -> None:
        self._sums = np.zeros(0, dtype=np.int64)
        self._counts = np.zeros(0, dtype=np.int64)
        self.reads = 0

    def _grow(self, n: int) -> None:
        if n > len(self._sums):
            self._sums = np.concatenate([self._sums, np.zeros(n - len(self._sums), np.int64)])
            self._counts = np.concatenate([self._counts, np.zeros(n - len(self._counts), np.int64)])

    def consume(self, record: FastqRecord) -> None:
        q = np.frombuffer(record.quality, dtype=np.uint8).astype(np.int64) - 33
        self._grow(len(q))
        self._sums[: len(q)] += q
        self._counts[: len(q)] += 1
        self.reads += 1

    def merge(self, other: "QualityStats") -> "QualityStats":
        self._grow(len(other._sums))
        self._sums[: len(other._sums)] += other._sums
        self._counts[: len(other._counts)] += other._counts
        self.reads += other.reads
        return self

    def mean_by_cycle(self) -> np.ndarray:
        with np.errstate(invalid="ignore"):
            return self._sums / np.maximum(self._counts, 1)

    @property
    def mean_quality(self) -> float:
        total = self._counts.sum()
        return float(self._sums.sum() / total) if total else 0.0


class GcProfile:
    """GC-content distribution across reads."""

    def __init__(self, bins: int = 20) -> None:
        if bins < 1:
            raise ValueError("bins must be >= 1")
        self.bins = bins
        self.histogram = np.zeros(bins, dtype=np.int64)
        self._gc_sum = 0.0
        self.reads = 0

    def consume(self, record: FastqRecord) -> None:
        seq = record.sequence
        if not seq:
            return
        gc = (seq.count(b"G") + seq.count(b"C")) / len(seq)
        idx = min(self.bins - 1, int(gc * self.bins))
        self.histogram[idx] += 1
        self._gc_sum += gc
        self.reads += 1

    def merge(self, other: "GcProfile") -> "GcProfile":
        if other.bins != self.bins:
            raise ValueError("cannot merge profiles with different bins")
        self.histogram += other.histogram
        self._gc_sum += other._gc_sum
        self.reads += other.reads
        return self

    @property
    def mean_gc(self) -> float:
        return self._gc_sum / self.reads if self.reads else 0.0


@dataclass
class LengthHistogram:
    """Read-length distribution."""

    counts: Counter = field(default_factory=Counter)
    reads: int = 0

    def consume(self, record: FastqRecord) -> None:
        self.counts[len(record.sequence)] += 1
        self.reads += 1

    def merge(self, other: "LengthHistogram") -> "LengthHistogram":
        self.counts.update(other.counts)
        self.reads += other.reads
        return self

    @property
    def modal_length(self) -> int:
        return self.counts.most_common(1)[0][0] if self.counts else 0
