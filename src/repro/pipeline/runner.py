"""The pipeline head: parallel decompression feeding mergeable analyzers.

This is the integration the paper's introduction motivates: every
sequencing tool "begins by reading large .fastq.gz file(s)", so the
decompressor's parallelism is only useful if the downstream analysis
can consume chunk outputs without re-serialising them.  The runner
exploits the two properties pugz gives us:

* chunk outputs are exact and independently translatable;
* read order is irrelevant for mergeable analyzers, so chunks are
  parsed and analysed as they arrive, with partial results merged at
  the end (the paper's "unsynchronised output" measurement mode).

Chunk boundaries fall mid-record; the runner stitches each chunk's
leading/trailing partial lines to its neighbours before parsing —
sequentially, on the tiny fragments only.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pugz import pugz_decompress
from repro.data.fastq import parse_fastq
from repro.errors import ReproError

__all__ = ["PipelineResult", "run_fastq_pipeline"]


@dataclass
class PipelineResult:
    """Merged analyzers plus run accounting."""

    analyzers: list
    reads: int
    chunks: int
    bytes_processed: int


def _split_records(chunk: bytes) -> tuple[bytes, bytes, bytes]:
    """(leading partial, whole records, trailing partial) of a chunk.

    A FASTQ record boundary inside a chunk is found by phasing on a
    header line: '@'-initial line whose +2 line starts with '+'.
    """
    if not chunk:
        return b"", b"", b""
    lines = chunk.split(b"\n")
    # Find the first line index that starts a record.
    start_line = None
    for i in range(min(8, len(lines))):
        if (
            lines[i].startswith(b"@")
            and i + 2 < len(lines)
            and lines[i + 2].startswith(b"+")
        ):
            start_line = i
            break
    if start_line is None:
        return chunk, b"", b""
    # Whole records: groups of 4 lines from start_line; the final line
    # of the chunk is partial unless the chunk ends with a newline.
    body_lines = lines[start_line:]
    trailing_partial = body_lines[-1]  # '' if chunk ends with \n
    body_lines = body_lines[:-1]
    n_whole = (len(body_lines) // 4) * 4
    head = b"\n".join(lines[:start_line])
    if start_line:
        head += b"\n"
    whole = b"\n".join(body_lines[:n_whole])
    if n_whole:
        whole += b"\n"
    tail = b"\n".join(body_lines[n_whole:])
    if len(body_lines) > n_whole:
        tail += b"\n"
    tail += trailing_partial
    return head, whole, tail


def run_fastq_pipeline(
    gz_data: bytes,
    analyzer_factories: list,
    n_chunks: int = 4,
    executor: str = "serial",
) -> PipelineResult:
    """Decompress a .fastq.gz in parallel and run analyzers over it.

    ``analyzer_factories`` is a list of zero-argument callables, each
    producing a fresh analyzer (``consume(record)`` + ``merge(other)``);
    one instance of each runs per chunk, merged at the end.
    """
    out, report = pugz_decompress(
        gz_data, n_chunks=n_chunks, executor=executor, return_report=True
    )
    # Re-split the output at the decompressor's chunk boundaries, so
    # the analysis sees the same units the parallel pass produced.
    offsets = [0]
    for size in report.chunk_output_sizes:
        offsets.append(offsets[-1] + size)
    chunks = [out[offsets[i] : offsets[i + 1]] for i in range(len(offsets) - 1)]

    per_chunk = [[f() for f in analyzer_factories] for _ in chunks]
    total_reads = 0
    carry = b""
    for ci, chunk in enumerate(chunks):
        head, whole, tail = _split_records(chunk)
        # Stitch the carried partial record to this chunk's head.
        stitched = carry + head
        carry = tail
        for source in (stitched, whole):
            if not source:
                continue
            records = parse_fastq(source)
            total_reads += len(records)
            for analyzer in per_chunk[ci]:
                for r in records:
                    analyzer.consume(r)
    if carry.strip():
        records = parse_fastq(carry if carry.endswith(b"\n") else carry + b"\n")
        total_reads += len(records)
        for analyzer in per_chunk[-1]:
            for r in records:
                analyzer.consume(r)

    merged = per_chunk[0]
    for others in per_chunk[1:]:
        for a, b in zip(merged, others):
            a.merge(b)
    return PipelineResult(
        analyzers=merged,
        reads=total_reads,
        chunks=len(chunks),
        bytes_processed=len(out),
    )
