"""Fault-injection harness for the decompression engine.

The paper motivates its machinery with forensics on damaged compressed
FASTQ archives (Section VI-B); this package stress-tests that story
systematically instead of anecdotally:

* :mod:`repro.robustness.injectors` — deterministic, seeded fault
  injectors (bit flips, byte corruption, truncation, trailer tampering,
  header mangling, member splicing);
* :mod:`repro.robustness.campaign` — a campaign runner that applies a
  grid of faults to generated corpora, runs the engine in both
  ``raise`` and ``recover`` modes, and classifies every outcome.

Outcome taxonomy (see docs/ROBUSTNESS.md):

``intact``
    The fault landed somewhere harmless (e.g. a gzip header comment
    bit); output is byte-identical to the original.
``clean-error``
    The engine raised a structured :class:`~repro.errors.ReproError`.
``salvaged``
    Recover mode returned partial output with holes/placeholder bytes
    and/or recorded verification failures in the report.
``silent-corruption``
    Output differs from the original but nothing raised and the report
    claims completeness — only possible with ``verify=False`` (the
    campaign runs both ways to measure exactly this).
``crash``
    Any non-:class:`~repro.errors.ReproError` exception: always a bug.
"""

from repro.robustness.campaign import (
    CampaignReport,
    CaseResult,
    default_corpora,
    run_campaign,
)
from repro.robustness.exec_faults import (
    EXECUTION_INJECTOR_NAMES,
    ExecutionFault,
    SabotageExecutor,
)
from repro.robustness.injectors import (
    ALL_INJECTOR_NAMES,
    FaultCase,
    INJECTOR_NAMES,
    corrupt_bytes,
    flip_bit,
    inject,
    mangle_header,
    splice_members,
    tamper_trailer,
    truncate,
)
from repro.robustness.limits import ResourceBudget

__all__ = [
    "FaultCase",
    "INJECTOR_NAMES",
    "ALL_INJECTOR_NAMES",
    "EXECUTION_INJECTOR_NAMES",
    "ExecutionFault",
    "SabotageExecutor",
    "ResourceBudget",
    "flip_bit",
    "corrupt_bytes",
    "truncate",
    "tamper_trailer",
    "mangle_header",
    "splice_members",
    "inject",
    "run_campaign",
    "CampaignReport",
    "CaseResult",
    "default_corpora",
]
