"""Seeded fault-injection campaigns against the decompression engine.

A campaign is a grid of (corpus × injector × seed) cases.  Every case:

1. generates the faulted stream deterministically
   (:func:`repro.robustness.injectors.inject`);
2. runs ``pugz_decompress`` in ``raise`` mode and classifies what
   happened against the original plaintext;
3. on a clean error, retries in ``recover`` mode and measures what was
   salvaged;
4. when the stream decoded, additionally runs trailer verification to
   measure whether ``verify=True`` would have caught the damage.

The golden invariant — enforced by ``tests/robustness`` and ``make
fuzz`` — is that **no case may crash**: every failure surfaces as a
structured :class:`~repro.errors.ReproError`, never an ``IndexError``
from three layers down.
"""

from __future__ import annotations

import gzip
import json
import random
import time
import warnings
from dataclasses import dataclass, field

from repro.core.pigz import pigz_compress
from repro.core.pugz import pugz_decompress
from repro.errors import ReproError
from repro.parallel.executor import ThreadExecutor
from repro.parallel.supervision import SupervisionPolicy
from repro.robustness.exec_faults import (
    EXECUTION_INJECTOR_NAMES,
    ExecutionFault,
    SabotageExecutor,
)
from repro.robustness.injectors import ALL_INJECTOR_NAMES, FaultCase, inject
from repro.robustness.limits import ResourceBudget

__all__ = ["CaseResult", "CampaignReport", "default_corpora", "build_cases", "run_campaign"]

OUTCOMES = ("intact", "clean-error", "salvaged", "silent-corruption", "crash")


def _random_dna(rng: random.Random, n: int) -> bytes:
    return bytes(rng.choice(b"ACGT") for _ in range(n))


def _fastq(rng: random.Random, reads: int, read_len: int = 80) -> bytes:
    out = []
    for i in range(reads):
        seq = _random_dna(rng, read_len).decode()
        qual = "".join(chr(33 + rng.randrange(40)) for _ in range(read_len))
        out.append(f"@read{i}/1\n{seq}\n+\n{qual}\n")
    return "".join(out).encode()


def default_corpora(seed: int = 20190521) -> dict[str, tuple[bytes, bytes]]:
    """Small deterministic corpora: ``name -> (plaintext, gzip bytes)``.

    Chosen to cover the engine's distinct code paths: a single huge
    DEFLATE block (no resync targets), a pigz-style multi-block stream
    (chunkable, resyncable), highly repetitive text (long back-reference
    chains), a near-empty file, and a multi-member file.
    """
    rng = random.Random(seed)
    dna = _fastq(rng, 60)  # ~10 KiB, gzip -> one DEFLATE block
    fastq = _fastq(rng, 150)  # ~26 KiB, pigz-chunked -> many blocks
    text = (b"The quick brown fox jumps over the lazy dog. " * 200)[:8192]
    tiny = b"ACGTACGTAC\n"
    member = _fastq(rng, 30)
    # ~850x expansion: exercises the ResourceBudget hot-path guards on
    # every case while staying small enough to decode when permitted.
    bomb = b"\x00" * (512 << 10)
    return {
        "dna-1block": (dna, gzip.compress(dna, 6, mtime=0)),
        "fastq-multiblock": (fastq, pigz_compress(fastq, level=6, chunk_size=4096)),
        "text-repetitive": (text, gzip.compress(text, 9, mtime=0)),
        "tiny": (tiny, gzip.compress(tiny, 6, mtime=0)),
        "two-members": (
            member + member,
            gzip.compress(member, 6, mtime=0) + gzip.compress(member, 6, mtime=0),
        ),
        "zip-bomb": (bomb, gzip.compress(bomb, 6, mtime=0)),
    }


@dataclass
class CaseResult:
    """Classification of one fault case."""

    corpus: str
    injector: str
    seed: int
    outcome: str
    #: Exception class name for clean-error / crash outcomes.
    error_type: str | None = None
    #: Structured context of the ReproError (bit_offset / chunk / stage).
    error_context: dict = field(default_factory=dict)
    #: Output bytes returned (recover mode for salvaged cases).
    recovered_bytes: int = 0
    #: Exact-match prefix length against the original plaintext.
    exact_prefix: int = 0
    holes: int = 0
    unresolved_markers: int = 0
    verify_failures: int = 0
    #: For cases whose stream decoded: did ``verify=True`` raise?
    #: ``None`` when verification was not reached (stream didn't decode).
    verify_caught: bool | None = None
    #: Supervised retries spent recovering execution faults (max over
    #: chunks; 0 for data-fault cases).
    retries: int = 0
    elapsed: float = 0.0

    @property
    def case_id(self) -> str:
        return f"{self.corpus}/{self.injector}/{self.seed}"

    def to_dict(self) -> dict:
        return {
            "case_id": self.case_id,
            "corpus": self.corpus,
            "injector": self.injector,
            "seed": self.seed,
            "outcome": self.outcome,
            "error_type": self.error_type,
            "error_context": self.error_context,
            "recovered_bytes": self.recovered_bytes,
            "exact_prefix": self.exact_prefix,
            "holes": self.holes,
            "unresolved_markers": self.unresolved_markers,
            "verify_failures": self.verify_failures,
            "verify_caught": self.verify_caught,
            "retries": self.retries,
            "elapsed": round(self.elapsed, 4),
        }


@dataclass
class CampaignReport:
    """Machine-readable result of a whole campaign."""

    cases: list[CaseResult] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def counts(self) -> dict[str, int]:
        out = {name: 0 for name in OUTCOMES}
        for c in self.cases:
            out[c.outcome] += 1
        return out

    @property
    def crashes(self) -> list[CaseResult]:
        return [c for c in self.cases if c.outcome == "crash"]

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(
            {
                "n_cases": len(self.cases),
                "counts": self.counts,
                "elapsed": round(self.elapsed, 3),
                "cases": [c.to_dict() for c in self.cases],
            },
            indent=indent,
        )

    def summary(self) -> str:
        counts = self.counts
        parts = [f"{len(self.cases)} cases in {self.elapsed:.1f}s"]
        parts += [f"{name}={counts[name]}" for name in OUTCOMES if counts[name]]
        return "  ".join(parts)


def _common_prefix_len(a: bytes, b: bytes) -> int:
    n = 0
    limit = min(len(a), len(b))
    while n < limit and a[n] == b[n]:
        n += 1
    return n


def build_cases(
    corpus_names,
    injectors=ALL_INJECTOR_NAMES,
    n_seeds: int = 9,
    base_seed: int = 1000,
) -> list[FaultCase]:
    """The full (corpus × injector × seed) grid, deterministically."""
    cases = []
    for corpus in corpus_names:
        for injector in injectors:
            for k in range(n_seeds):
                cases.append(FaultCase(corpus, injector, base_seed + k))
    return cases


def run_case(
    case: FaultCase,
    plain: bytes,
    gz: bytes,
    *,
    n_chunks: int = 2,
    max_resync_search_bits: int | None = 20000,
    budget: ResourceBudget | None = None,
) -> CaseResult:
    """Inject one fault and classify the engine's behaviour on it.

    Byte-stream injectors damage the data; execution injectors
    (:data:`~repro.robustness.exec_faults.EXECUTION_INJECTOR_NAMES`)
    leave the bytes alone and sabotage the executor instead, proving
    that supervision (deadline + bounded retries) turns a hung or dead
    worker into a recovered run rather than a hang.
    """
    t0 = time.perf_counter()
    faulted = inject(case, gz)
    result = CaseResult(case.corpus, case.injector, case.seed, outcome="crash")
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            if case.injector in EXECUTION_INJECTOR_NAMES:
                result.outcome = _classify_execution(
                    result, case, plain, gz, n_chunks, budget
                )
            else:
                result.outcome = _classify(
                    result, faulted, plain, n_chunks, max_resync_search_bits, budget
                )
    except ReproError as exc:  # pragma: no cover - classified inside
        result.outcome = "clean-error"
        result.error_type = type(exc).__name__
        result.error_context = exc.context()
    except Exception as exc:
        result.outcome = "crash"
        result.error_type = type(exc).__name__
        result.error_context = {"message": str(exc)[:200]}
    result.elapsed = time.perf_counter() - t0
    return result


def _classify(result, faulted, plain, n_chunks, max_resync_search_bits, budget) -> str:
    try:
        out = pugz_decompress(faulted, n_chunks=n_chunks, budget=budget)
    except ReproError as exc:
        result.error_type = type(exc).__name__
        result.error_context = exc.context()
        return _try_recover(
            result, faulted, plain, n_chunks, max_resync_search_bits, budget
        )
    # The stream decoded: measure whether verification would object.
    result.recovered_bytes = len(out)
    result.exact_prefix = _common_prefix_len(out, plain)
    try:
        pugz_decompress(faulted, n_chunks=n_chunks, verify=True, budget=budget)
        result.verify_caught = False
    except ReproError:
        result.verify_caught = True
    if out == plain:
        return "intact"
    return "silent-corruption"


def _classify_execution(result, case, plain, gz, n_chunks, budget) -> str:
    """Run the *pristine* stream under a sabotaged executor.

    The fault fires exactly once (a worker hangs or dies mid-pass-1);
    supervision must end it at the deadline and the bounded retry must
    produce a byte-identical result.  Anything else is a finding.
    """
    fault = ExecutionFault.from_injector(case.injector, case.seed)
    executor = SabotageExecutor(ThreadExecutor(n_workers=n_chunks), fault)
    policy = SupervisionPolicy(
        deadline_s=0.15, max_retries=2, backoff_base_s=0.01, seed=case.seed
    )
    out, rep = pugz_decompress(
        gz,
        executor=executor,
        n_chunks=n_chunks,
        return_report=True,
        supervision=policy,
        budget=budget,
    )
    result.recovered_bytes = len(out)
    result.exact_prefix = _common_prefix_len(out, plain)
    if rep.chunk_details:
        result.retries = max(d.retries for d in rep.chunk_details)
    if out == plain:
        return "intact"
    return "silent-corruption"


def _try_recover(result, faulted, plain, n_chunks, max_resync_search_bits, budget) -> str:
    try:
        out, rep = pugz_decompress(
            faulted,
            n_chunks=n_chunks,
            on_error="recover",
            verify=True,
            return_report=True,
            allow_trailing_garbage=True,
            max_resync_search_bits=max_resync_search_bits,
            budget=budget,
        )
    except ReproError:
        return "clean-error"
    result.recovered_bytes = len(out)
    result.exact_prefix = _common_prefix_len(out, plain)
    result.holes = len(rep.holes)
    result.unresolved_markers = rep.unresolved_markers
    result.verify_failures = len(rep.verify_failures)
    return "salvaged"


#: Campaign-wide resource budget: comfortably above every corpus's
#: honest output (largest is the 512 KiB zip-bomb plaintext) so clean
#: classifications are unchanged, but any fault-induced runaway decode
#: is stopped at 8 MiB instead of exhausting memory.
DEFAULT_CAMPAIGN_BUDGET = ResourceBudget(max_output_bytes=8 << 20)


def run_campaign(
    corpora: dict[str, tuple[bytes, bytes]] | None = None,
    injectors=ALL_INJECTOR_NAMES,
    n_seeds: int = 9,
    base_seed: int = 1000,
    *,
    n_chunks: int = 2,
    max_resync_search_bits: int | None = 20000,
    budget: ResourceBudget | None = DEFAULT_CAMPAIGN_BUDGET,
    progress=None,
) -> CampaignReport:
    """Run the full fault grid and classify every case.

    ``progress`` (optional) is called with each finished
    :class:`CaseResult` — the CLI uses it for live output.  With the
    defaults the campaign is 6 corpora × 8 injectors × 9 seeds = 432
    cases, deterministic end to end.  Every decode runs under
    ``budget`` so even a fault that fabricates an enormous match chain
    terminates with a structured :class:`~repro.errors.ResourceLimitError`.
    """
    if corpora is None:
        corpora = default_corpora()
    t0 = time.perf_counter()
    report = CampaignReport()
    for case in build_cases(corpora, injectors, n_seeds, base_seed):
        plain, gz = corpora[case.corpus]
        result = run_case(
            case,
            plain,
            gz,
            n_chunks=n_chunks,
            max_resync_search_bits=max_resync_search_bits,
            budget=budget,
        )
        report.cases.append(result)
        if progress is not None:
            progress(result)
    report.elapsed = time.perf_counter() - t0
    return report
