"""Execution-fault injection: sabotaged workers for supervision testing.

The byte-stream injectors (:mod:`repro.robustness.injectors`) model
*corrupt data*; this module models *misbehaving execution* — the other
half of the production failure space:

* ``slow_worker`` — one seeded task invocation sleeps long enough to
  blow any reasonable per-task deadline (a hung worker, in miniature);
* ``crashing_worker`` — one seeded task invocation raises a
  non-:class:`~repro.errors.ReproError` exception (a worker dying
  mid-chunk).

Both faults are **transient by construction**: they fire exactly once
per :class:`SabotageExecutor`, so a supervised retry of the victim task
succeeds.  That is precisely the property the fuzz campaign proves —
deadlines and retries turn a would-be hang into a bounded, fully
recovered run, deterministically (the victim invocation is chosen by
seed).

Sabotage state (the fire-once latch) lives in process memory, so the
executor wraps thread or serial backends only — which is also what the
campaign wants: a sabotaged *process* pool would test process spawn
overhead, not supervision logic.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.parallel.executor import Executor, Outcome, ProcessExecutor

__all__ = [
    "EXECUTION_INJECTOR_NAMES",
    "ExecutionFault",
    "SabotageExecutor",
    "WorkerSabotage",
]

#: Execution-fault injector names, registered alongside the byte-stream
#: injectors in :data:`repro.robustness.injectors.ALL_INJECTOR_NAMES`.
EXECUTION_INJECTOR_NAMES = ("slow_worker", "crashing_worker")


class WorkerSabotage(RuntimeError):
    """The injected worker crash — deliberately *not* a ReproError.

    Supervision classifies it as an execution fault and retries; an
    unsupervised run lets it escape, which is exactly the hang/crash
    behaviour the campaign exists to rule out.
    """


@dataclass(frozen=True)
class ExecutionFault:
    """One seeded execution fault.

    ``kind`` is ``slow`` (sleep ``sleep_s`` inside the victim task) or
    ``crash`` (raise :class:`WorkerSabotage`).  The victim is the
    ``seed % n``-th task invocation of the map, so the choice is
    deterministic without needing an RNG at injection time.
    """

    kind: str
    seed: int
    sleep_s: float = 0.75

    def __post_init__(self) -> None:
        if self.kind not in ("slow", "crash"):
            raise ValueError(f"fault kind must be 'slow' or 'crash', got {self.kind!r}")
        if self.sleep_s <= 0:
            raise ValueError(f"sleep_s must be positive, got {self.sleep_s}")

    @classmethod
    def from_injector(cls, injector: str, seed: int, sleep_s: float = 0.75) -> "ExecutionFault":
        if injector == "slow_worker":
            return cls("slow", seed, sleep_s)
        if injector == "crashing_worker":
            return cls("crash", seed, sleep_s)
        raise ValueError(f"unknown execution injector {injector!r}")


class _OnceLatch:
    """Thread-safe fire-once latch shared across a map sequence."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._fired = False

    def try_fire(self) -> bool:
        with self._lock:
            if self._fired:
                return False
            self._fired = True
            return True

    @property
    def fired(self) -> bool:
        return self._fired


class _Saboteur:
    """Wrap a work function; sabotage one seeded invocation, once.

    The invocation counter is per map call; the fire-once latch is
    shared (executor-scoped), so a retried victim — and every later
    map of the same pipeline, e.g. pugz's second pass — runs clean.
    """

    def __init__(self, fn, fault: ExecutionFault, n_items: int, latch: _OnceLatch) -> None:
        self.fn = fn
        self.fault = fault
        self.target = fault.seed % max(1, n_items)
        self.latch = latch
        self._calls = 0
        self._lock = threading.Lock()

    def __call__(self, item):
        with self._lock:
            k = self._calls
            self._calls += 1
        fire = k == self.target and self.latch.try_fire()
        if fire:
            if self.fault.kind == "crash":
                raise WorkerSabotage(
                    f"injected worker crash (seed {self.fault.seed})"
                )
            time.sleep(self.fault.sleep_s)
        return self.fn(item)


class SabotageExecutor(Executor):
    """Executor decorator injecting one execution fault, exactly once.

    Wraps every work function with a :class:`_Saboteur` and delegates
    to the inner executor, so supervision (``policy=``) applies exactly
    as it would in production.  The fire-once latch is shared across
    all ``map``/``map_outcomes`` calls on this executor: the seeded
    victim invocation of the *first* map is sabotaged, everything
    after (retries, later pipeline passes) runs clean.
    """

    def __init__(self, inner: Executor, fault: ExecutionFault) -> None:
        if isinstance(inner, ProcessExecutor):
            raise ValueError(
                "SabotageExecutor requires an in-process backend (serial/thread): "
                "the fire-once latch does not cross process boundaries"
            )
        self.inner = inner
        self.fault = fault
        self.latch = _OnceLatch()

    def map(self, fn, items: list) -> list:
        return self.inner.map(
            _Saboteur(fn, self.fault, len(items), self.latch), items
        )

    def map_outcomes(self, fn, items: list, policy=None) -> list[Outcome]:
        return self.inner.map_outcomes(
            _Saboteur(fn, self.fault, len(items), self.latch), items, policy
        )

    @property
    def parallelism(self) -> int:
        return self.inner.parallelism
