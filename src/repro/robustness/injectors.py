"""Deterministic fault injectors for gzip byte streams.

Every injector takes ``(data, rng)`` where ``rng`` is a
``random.Random`` seeded by the campaign — the same seed always
produces the same faulted stream, so failing cases replay exactly.
Injectors never mutate their input; they return a new ``bytes``.

The injectors model the damage classes seen in the wild:

========================  ====================================================
``flip_bit``              single-event upset (disk/RAM/transfer bit rot)
``corrupt_bytes``         a burst error overwriting a short byte run
``truncate``              an interrupted download / torn write
``tamper_trailer``        a wrong CRC32/ISIZE (bad re-concatenation, bit rot
                          in the 8 trailer bytes specifically)
``mangle_header``         damage inside the 10-byte gzip header / FLG fields
``splice_members``        two files cat'd together with garbage in between
                          (tar-extraction accidents, log rotation bugs)
========================  ====================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from types import MappingProxyType

__all__ = [
    "FaultCase",
    "INJECTOR_NAMES",
    "ALL_INJECTOR_NAMES",
    "flip_bit",
    "corrupt_bytes",
    "truncate",
    "tamper_trailer",
    "mangle_header",
    "splice_members",
    "inject",
]


def flip_bit(data: bytes, rng: random.Random) -> bytes:
    """Flip one random bit anywhere in the stream."""
    if not data:
        return data
    pos = rng.randrange(len(data))
    out = bytearray(data)
    out[pos] ^= 1 << rng.randrange(8)
    return bytes(out)


def corrupt_bytes(data: bytes, rng: random.Random, max_run: int = 16) -> bytes:
    """Overwrite a short run of bytes with random garbage."""
    if not data:
        return data
    run = rng.randint(1, max_run)
    pos = rng.randrange(len(data))
    out = bytearray(data)
    for i in range(pos, min(pos + run, len(out))):
        out[i] = rng.randrange(256)
    return bytes(out)


def truncate(data: bytes, rng: random.Random) -> bytes:
    """Cut the stream at a random point (possibly to nothing)."""
    if not data:
        return data
    return data[: rng.randrange(len(data))]


def tamper_trailer(data: bytes, rng: random.Random) -> bytes:
    """Corrupt one byte of the 8-byte CRC32/ISIZE trailer.

    XOR with a non-zero value guarantees the trailer actually changes,
    so ``verify=True`` must always catch this fault.
    """
    if len(data) < 8:
        return data
    pos = len(data) - 8 + rng.randrange(8)
    out = bytearray(data)
    out[pos] ^= rng.randint(1, 255)
    return bytes(out)


def mangle_header(data: bytes, rng: random.Random) -> bytes:
    """Corrupt one byte inside the 10-byte fixed gzip header."""
    if not data:
        return data
    pos = rng.randrange(min(10, len(data)))
    out = bytearray(data)
    out[pos] ^= rng.randint(1, 255)
    return bytes(out)


def splice_members(data: bytes, rng: random.Random, max_garbage: int = 32) -> bytes:
    """Concatenate the stream with itself, with garbage at the joint.

    Models a multi-member file assembled by a buggy tool: the second
    member's header is preceded by 0..``max_garbage`` junk bytes, so a
    reader either stops at the joint (trailing-garbage handling) or
    errors there with a precise offset.
    """
    garbage = bytes(rng.randrange(256) for _ in range(rng.randrange(max_garbage + 1)))
    return data + garbage + data


# Read-only view: this module is imported on both sides of the process
# boundary, so the registry must be identical under fork and spawn.
INJECTORS = MappingProxyType({
    "flip_bit": flip_bit,
    "corrupt_bytes": corrupt_bytes,
    "truncate": truncate,
    "tamper_trailer": tamper_trailer,
    "mangle_header": mangle_header,
    "splice_members": splice_members,
})

INJECTOR_NAMES = tuple(INJECTORS)

# Execution faults (slow/crashing workers) leave the bytes alone and
# sabotage the *executor* instead; they are registered here so one
# FaultCase grid spans both damage classes.  The campaign routes them
# to repro.robustness.exec_faults (a late import keeps this module free
# of executor dependencies on the worker side of the pickle boundary).
from repro.robustness.exec_faults import EXECUTION_INJECTOR_NAMES  # noqa: E402

ALL_INJECTOR_NAMES = INJECTOR_NAMES + EXECUTION_INJECTOR_NAMES


@dataclass(frozen=True)
class FaultCase:
    """One (corpus, injector, seed) grid point of a campaign."""

    corpus: str
    injector: str
    seed: int

    @property
    def case_id(self) -> str:
        return f"{self.corpus}/{self.injector}/{self.seed}"


def inject(case: FaultCase, data: bytes) -> bytes:
    """Apply the case's injector to ``data``, deterministically.

    Execution-fault injectors are byte-identity: they damage the
    *executor*, not the stream (see
    :class:`repro.robustness.exec_faults.SabotageExecutor`).
    """
    if case.injector in EXECUTION_INJECTOR_NAMES:
        return data
    fn = INJECTORS.get(case.injector)
    if fn is None:
        raise ValueError(f"unknown injector {case.injector!r}")
    return fn(data, random.Random(case.seed))
