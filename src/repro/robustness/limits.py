"""Resource budgets for hostile-input protection (zip bombs).

A crafted DEFLATE stream can expand by five orders of magnitude — a
40 KB file becomes 40 GB of output — so a service decompressing
untrusted data must bound *resident* memory, not trust the input's own
ISIZE field (which an attacker also controls).  :class:`ResourceBudget`
is that bound, threaded through the decode hot paths:

* ``max_output_bytes`` — hard cap on decompressed bytes produced by one
  decode call (one chunk of the parallel decompressor, or one
  sequential inflate);
* ``max_expansion_ratio`` — cap on ``output_bytes / compressed_bytes``
  consumed so far, the classic zip-bomb signature (enforced only once
  ``expansion_grace_bytes`` of output exist, so tiny-but-legitimate
  headers never trip it);
* ``max_marker_buffer_bytes`` — cap on the marker-domain symbol buffer
  (4 bytes per symbol), which is the dominant allocation of the
  parallel first pass.

Enforcement is amortized to stay off the per-symbol fast path: the
block-boundary check covers literal growth, and the match-copy path
pre-checks ``len + match_length`` against the cap *before* copying —
so on high-expansion streams (which are match-dominated by
construction) the error fires before resident output exceeds the
budget.  Worst-case overshoot is one block of pure literals, which is
bounded by 8x the compressed input.

The budget is a plain picklable dataclass so it crosses the
``ProcessExecutor`` boundary with each chunk job.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ResourceLimitError

__all__ = ["ResourceBudget", "UNLIMITED_CAP"]

#: Sentinel cap meaning "no limit" for the hot loops' single-compare
#: guard (an int comparison against this is always False in practice).
UNLIMITED_CAP = 1 << 62


@dataclass(frozen=True)
class ResourceBudget:
    """Resource limits for one decode call.  ``None`` disables a limit."""

    max_output_bytes: int | None = None
    max_expansion_ratio: float | None = None
    max_marker_buffer_bytes: int | None = None
    #: Expansion is only enforced once this many output bytes exist —
    #: below it, ratios are noise (a 10-byte header inflating to 4 KB).
    expansion_grace_bytes: int = 65536

    def __post_init__(self) -> None:
        if self.max_output_bytes is not None and self.max_output_bytes <= 0:
            raise ValueError(
                f"max_output_bytes must be positive, got {self.max_output_bytes}"
            )
        if self.max_expansion_ratio is not None and self.max_expansion_ratio <= 0:
            raise ValueError(
                f"max_expansion_ratio must be positive, got {self.max_expansion_ratio}"
            )
        if (
            self.max_marker_buffer_bytes is not None
            and self.max_marker_buffer_bytes <= 0
        ):
            raise ValueError(
                "max_marker_buffer_bytes must be positive, "
                f"got {self.max_marker_buffer_bytes}"
            )
        if self.expansion_grace_bytes < 0:
            raise ValueError(
                f"expansion_grace_bytes must be >= 0, got {self.expansion_grace_bytes}"
            )

    @property
    def unlimited(self) -> bool:
        """True when every limit is disabled (budget is a no-op)."""
        return (
            self.max_output_bytes is None
            and self.max_expansion_ratio is None
            and self.max_marker_buffer_bytes is None
        )

    def output_cap(self) -> int:
        """Hard cap on produced output bytes (``UNLIMITED_CAP`` if none)."""
        return (
            self.max_output_bytes
            if self.max_output_bytes is not None
            else UNLIMITED_CAP
        )

    def marker_symbol_cap(self) -> int:
        """Hard cap on marker-domain *symbols* (int32: 4 bytes each).

        The tighter of the marker-buffer limit and the plain output
        limit (each symbol renders to at most one output byte).
        """
        cap = UNLIMITED_CAP
        if self.max_marker_buffer_bytes is not None:
            cap = self.max_marker_buffer_bytes // 4
        if self.max_output_bytes is not None and self.max_output_bytes < cap:
            cap = self.max_output_bytes
        return cap

    def check_block(
        self,
        produced_bytes: int,
        consumed_bits: int,
        *,
        stage: str,
        bit_offset: int,
        chunk_index: int | None = None,
        marker_buffer_bytes: int | None = None,
    ) -> None:
        """Block-boundary check: raise if any configured limit is exceeded.

        ``produced_bytes`` is the output produced so far by this decode
        call, ``consumed_bits`` the compressed bits it has consumed
        (for the expansion ratio).
        """
        if self.max_output_bytes is not None and produced_bytes > self.max_output_bytes:
            raise ResourceLimitError(
                f"output {produced_bytes} bytes exceeds budget "
                f"{self.max_output_bytes}",
                limit="output_bytes",
                bit_offset=bit_offset,
                chunk_index=chunk_index,
                stage=stage,
            )
        if (
            self.max_expansion_ratio is not None
            and produced_bytes > self.expansion_grace_bytes
        ):
            consumed_bytes = max(1, consumed_bits >> 3)
            ratio = produced_bytes / consumed_bytes
            if ratio > self.max_expansion_ratio:
                raise ResourceLimitError(
                    f"expansion ratio {ratio:.0f}x ({produced_bytes} bytes from "
                    f"{consumed_bytes} compressed) exceeds budget "
                    f"{self.max_expansion_ratio:.0f}x",
                    limit="expansion_ratio",
                    bit_offset=bit_offset,
                    chunk_index=chunk_index,
                    stage=stage,
                )
        if (
            marker_buffer_bytes is not None
            and self.max_marker_buffer_bytes is not None
            and marker_buffer_bytes > self.max_marker_buffer_bytes
        ):
            raise ResourceLimitError(
                f"marker buffer {marker_buffer_bytes} bytes exceeds budget "
                f"{self.max_marker_buffer_bytes}",
                limit="marker_buffer_bytes",
                bit_offset=bit_offset,
                chunk_index=chunk_index,
                stage=stage,
            )

    def raise_output_cap(
        self,
        attempted_bytes: int,
        *,
        stage: str,
        bit_offset: int,
        chunk_index: int | None = None,
    ) -> None:
        """Raise the in-loop cap error (match copy would exceed the cap)."""
        raise ResourceLimitError(
            f"match copy would grow output to {attempted_bytes} bytes, "
            f"past budget {self.output_cap()}",
            limit="output_bytes",
            bit_offset=bit_offset,
            chunk_index=chunk_index,
            stage=stage,
        )
