"""Units of measure for stream offsets: bits vs. bytes.

The whole design of the two-pass decompressor (Section VI of the paper)
lives at *bit* granularity — DEFLATE blocks start at arbitrary bit
offsets, so block probing, resync and zran checkpoints all pass bit
positions around — while file I/O, chunk planning and container framing
work in *bytes*.  Mixing the two is the classic failure mode of parallel
gzip decoders (rapidgzip's authors call the offset bookkeeping the
hardest part of the implementation), and a swapped unit is silent in
Python: every offset is just an ``int``.

This module gives the two unit systems distinct static types:

* :data:`BitOffset` — an absolute bit position (bit 0 is the LSB of
  byte 0, RFC 1951 packing);
* :data:`ByteOffset` — an absolute byte position.

``typing.NewType`` is erased at runtime (zero cost on the hot paths),
but the names anchor two layers of checking: human readers and type
checkers see them in signatures, and the repo's dataflow lint
(REP009, :mod:`repro.lint.rules.unit_confusion`) seeds its units
lattice from these annotations, so a ``BitOffset`` flowing into a
byte-addressed sink is reported even across intermediate variables.

Conversions must be explicit — use the helpers below (the lint also
recognises the raw idioms ``* 8``, ``<< 3``, ``// 8``, ``>> 3``,
``& 7`` as unit conversions).
"""

from __future__ import annotations

from typing import NewType

__all__ = [
    "BitOffset",
    "ByteOffset",
    "bits_to_bytes",
    "bytes_to_bits",
    "intra_byte_bits",
    "ceil_bits_to_bytes",
]

#: Absolute position in a stream, counted in bits (LSB-first packing).
BitOffset = NewType("BitOffset", int)

#: Absolute position in a stream, counted in bytes.
ByteOffset = NewType("ByteOffset", int)


def bits_to_bytes(bit_offset: BitOffset) -> ByteOffset:
    """Byte containing ``bit_offset`` (floor division by 8)."""
    return ByteOffset(bit_offset >> 3)


def bytes_to_bits(byte_offset: ByteOffset) -> BitOffset:
    """First bit of the byte at ``byte_offset``."""
    return BitOffset(byte_offset * 8)


def intra_byte_bits(bit_offset: BitOffset) -> int:
    """Bit position *within* its byte: ``bit_offset - 8 * (bit_offset // 8)``.

    The invariant ``bytes_to_bits(bits_to_bytes(b)) + intra_byte_bits(b)
    == b`` holds for every non-negative ``b`` (property-tested in
    ``tests/deflate/test_bitio_units_property.py``).
    """
    return bit_offset & 7


def ceil_bits_to_bytes(bit_offset: BitOffset) -> ByteOffset:
    """First whole byte boundary at or after ``bit_offset``."""
    return ByteOffset((bit_offset + 7) >> 3)
