"""Shared fixtures: synthetic inputs and pre-compressed samples.

Expensive artefacts (MB-scale texts, compressed streams) are
session-scoped so the whole suite pays for them once.
"""

from __future__ import annotations

import gzip as stdlib_gzip
import zlib

import pytest

from repro.data import fastq_like, random_dna, synthetic_fastq


@pytest.fixture(scope="session")
def dna_100k() -> bytes:
    """100 kb of uniform random DNA."""
    return random_dna(100_000, seed=1)


@pytest.fixture(scope="session")
def fastq_small() -> bytes:
    """~250 KB synthetic FASTQ (safe quality alphabet)."""
    return synthetic_fastq(600, read_length=100, seed=2, quality_profile="safe")


@pytest.fixture(scope="session")
def fastq_medium() -> bytes:
    """~1.5 MB synthetic FASTQ (safe quality alphabet)."""
    return synthetic_fastq(4000, read_length=100, seed=3, quality_profile="safe")


@pytest.fixture(scope="session")
def fastq_medium_gz6(fastq_medium) -> bytes:
    """The medium FASTQ as a gzip file at level 6 (multi-block)."""
    return stdlib_gzip.compress(fastq_medium, 6, mtime=0)


@pytest.fixture(scope="session")
def fastq_like_1m() -> bytes:
    """1 MB of the paper's FASTQ-like string (150 DNA + 300 'x')."""
    return fastq_like(1_000_000, seed=4)


@pytest.fixture(scope="session")
def mixed_text() -> bytes:
    """English-ish text with repetition — a non-genomic workload."""
    para = (
        b"The quick brown fox jumps over the lazy dog. "
        b"Pack my box with five dozen liquor jugs. "
        b"How vexingly quick daft zebras jump! "
    )
    return para * 3000


def zlib_raw(data: bytes, level: int) -> bytes:
    """Raw DEFLATE stream (no container) via the system zlib."""
    co = zlib.compressobj(level, zlib.DEFLATED, -15)
    return co.compress(data) + co.flush()


@pytest.fixture(scope="session")
def zlib_raw_factory():
    """Expose :func:`zlib_raw` to tests as a fixture."""
    return zlib_raw
