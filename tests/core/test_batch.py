"""Batch decompression over a corpus."""

import gzip as stdlib_gzip

import pytest

from repro.core.batch import decompress_batch
from repro.data import CorpusSpec, build_corpus
from repro.errors import GzipFormatError


@pytest.fixture(scope="module")
def corpus_files():
    corpus = build_corpus(
        CorpusSpec(n_lowest=1, n_normal=2, n_highest=1,
                   reads_per_file=400, read_length=80)
    )
    return [(f.name, f.gz) for f in corpus]


class TestBatch:
    def test_all_files_decompress(self, corpus_files):
        outputs = {}
        result = decompress_batch(
            corpus_files, lambda n, d: outputs.__setitem__(n, d), n_chunks=2
        )
        assert len(result.succeeded) == len(corpus_files)
        assert not result.failed
        for name, gz in corpus_files:
            assert outputs[name] == stdlib_gzip.decompress(gz)
        assert result.total_output == sum(len(v) for v in outputs.values())

    def test_corrupt_file_isolated(self, corpus_files):
        bad = bytearray(corpus_files[0][1])
        bad[-5] ^= 0xFF  # break the CRC
        files = [("bad.gz", bytes(bad))] + corpus_files[1:]
        result = decompress_batch(files, lambda n, d: None, verify=True)
        assert len(result.failed) == 1
        assert result.failed[0].name == "bad.gz"
        assert "CRC" in result.failed[0].error
        assert len(result.succeeded) == len(corpus_files) - 1

    def test_stop_on_error(self, corpus_files):
        bad = b"\x1f\x8b\x08\x00" + b"\x00" * 10
        with pytest.raises(Exception):
            decompress_batch(
                [("bad.gz", bad)] + corpus_files,
                lambda n, d: None,
                stop_on_error=True,
            )

    def test_reports_attached(self, corpus_files):
        result = decompress_batch(corpus_files[:1], lambda n, d: None, n_chunks=3)
        outcome = result.succeeded[0]
        assert outcome.report is not None
        assert outcome.report.output_size == outcome.output_size
