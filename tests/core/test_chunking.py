"""Chunk planning: boundaries on confirmed block starts."""

import pytest

from repro.core.chunking import plan_chunks
from repro.deflate.inflate import inflate
from tests.conftest import zlib_raw


@pytest.fixture(scope="module")
def stream(fastq_medium):
    raw = zlib_raw(fastq_medium, 6)
    full = inflate(raw)
    return raw, full


class TestPlanChunks:
    def test_single_chunk(self, stream):
        raw, full = stream
        chunks = plan_chunks(raw, 0, 8 * len(raw), 1)
        assert len(chunks) == 1
        assert chunks[0].start_bit == 0
        assert chunks[0].stop_bit is None

    def test_boundaries_are_block_starts(self, stream):
        raw, full = stream
        starts = {b.start_bit for b in full.blocks}
        chunks = plan_chunks(raw, 0, 8 * len(raw), 4)
        for c in chunks:
            assert c.start_bit in starts

    def test_chunks_cover_stream_contiguously(self, stream):
        raw, full = stream
        chunks = plan_chunks(raw, 0, 8 * len(raw), 3)
        assert chunks[0].start_bit == 0
        for a, b in zip(chunks, chunks[1:]):
            assert a.stop_bit == b.start_bit
        assert chunks[-1].stop_bit is None

    def test_monotone_increasing(self, stream):
        raw, full = stream
        chunks = plan_chunks(raw, 0, 8 * len(raw), 5)
        starts = [c.start_bit for c in chunks]
        assert starts == sorted(set(starts))

    def test_more_chunks_than_blocks_collapses(self, stream):
        raw, full = stream
        n_blocks = len(full.blocks)
        chunks = plan_chunks(raw, 0, 8 * len(raw), n_blocks * 4)
        assert len(chunks) <= n_blocks

    def test_invalid_count(self, stream):
        raw, _ = stream
        with pytest.raises(ValueError):
            plan_chunks(raw, 0, 8 * len(raw), 0)

    def test_indices_sequential(self, stream):
        raw, _ = stream
        chunks = plan_chunks(raw, 0, 8 * len(raw), 4)
        assert [c.index for c in chunks] == list(range(len(chunks)))
